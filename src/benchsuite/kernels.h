/// \file
/// The evaluation benchmark suites (§7.2): the Porcupine kernels (image
/// filters and ML building blocks), the Coyote kernels (matrix multiply,
/// tree-structured max and sort over bit inputs), and the randomly
/// generated irregular polynomial trees (App. H.3). Each kernel is a
/// fully unrolled scalar IR program, exactly what the compilers under
/// comparison consume.
#pragma once

#include <string>
#include <vector>

#include "ir/evaluator.h"
#include "ir/expr.h"

namespace chehab::benchsuite {

/// One benchmark instance.
struct Kernel
{
    std::string name;
    ir::ExprPtr program;
};

/// \name Individual kernel builders
/// @{
Kernel dotProduct(int n);       ///< Σ aᵢ·bᵢ.
Kernel hammingDistance(int n);  ///< Σ XOR(aᵢ,bᵢ) over bit inputs.
Kernel l2Distance(int n);       ///< Σ (aᵢ-bᵢ)².
Kernel linearReg(int n);        ///< Vec of a·xᵢ + b (encrypted a, b).
Kernel polyReg(int n);          ///< Vec of (w·xᵢ + v)·xᵢ + u (Horner).
Kernel boxBlur(int image);      ///< 3x3 box filter, valid region.
Kernel gradientX(int w);        ///< Sobel Gx over a (w+2)² image.
Kernel gradientY(int w);        ///< Sobel Gy over a (w+2)² image.
Kernel robertsCross(int w);     ///< Roberts cross edge filter.
Kernel matMul(int k);           ///< k×k · k×k matrix product.
Kernel maxKernel(int k);        ///< Tree max over k bit inputs (OR tree).
Kernel sortKernel(int k);       ///< Sorting network over k bit inputs.
/// Random polynomial tree: density/homogeneity regimes of App. H.3
/// (tree-100-100 = full+homogeneous, tree-100-50 = full+mixed ops,
/// tree-50-50 = sparse+mixed), at the given depth.
Kernel polynomialTree(int density, int homogeneity, int depth,
                      std::uint64_t seed = 7);
/// @}

/// Deterministic synthetic inputs for executing a kernel: the i-th
/// distinct variable (ciphertext first, then plaintext, each in
/// first-occurrence order) gets the small value (i % 9) + 1 — identical
/// across processes, so chehabd --run, the execute benches and the
/// service tests all reproduce the same outputs and noise accounting.
ir::Env syntheticInputs(const ir::ExprPtr& program);

/// \name Suites
/// @{
std::vector<Kernel> porcupineSuite(int max_n = 16);
std::vector<Kernel> coyoteSuite();
std::vector<Kernel> treeSuite(int max_depth = 8);
std::vector<Kernel> fullSuite(int max_n = 16, int max_tree_depth = 8);
/// @}

} // namespace chehab::benchsuite
