#include "benchsuite/kernels.h"

#include "compiler/dsl.h"
#include "ir/analysis.h"
#include "support/rng.h"

namespace chehab::benchsuite {

using compiler::Ciphertext;
using compiler::DslProgram;
using compiler::Plaintext;
using ir::ExprPtr;

namespace {

std::string
sized(const char* base, int n)
{
    return std::string(base) + " " + std::to_string(n);
}

/// XOR over bit inputs: a + b - 2ab.
Ciphertext
xorBit(const Ciphertext& a, const Ciphertext& b)
{
    return a + b - Plaintext(2) * (a * b);
}

/// OR over bit inputs: a + b - ab (doubles as max for bits).
Ciphertext
orBit(const Ciphertext& a, const Ciphertext& b)
{
    return a + b - a * b;
}

/// AND over bit inputs (doubles as min for bits).
Ciphertext
andBit(const Ciphertext& a, const Ciphertext& b)
{
    return a * b;
}

} // namespace

Kernel
dotProduct(int n)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", n);
    const Ciphertext b = Ciphertext::inputVector("b", n);
    reduce_add(a * b).set_output();
    return {sized("Dot Product", n), program.build()};
}

Kernel
hammingDistance(int n)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", n);
    const Ciphertext b = Ciphertext::inputVector("b", n);
    std::vector<Ciphertext> bits;
    bits.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) bits.push_back(xorBit(a[i], b[i]));
    add_many(bits).set_output();
    return {sized("Hamm. Dist.", n), program.build()};
}

Kernel
l2Distance(int n)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", n);
    const Ciphertext b = Ciphertext::inputVector("b", n);
    reduce_add(square(a - b)).set_output();
    return {sized("L2 Distance", n), program.build()};
}

Kernel
linearReg(int n)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::inputVector("x", n);
    const Ciphertext a = Ciphertext::input("a");
    const Ciphertext b = Ciphertext::input("b");
    (a * x + b).set_output();
    return {sized("Linear Reg.", n), program.build()};
}

Kernel
polyReg(int n)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::inputVector("x", n);
    const Ciphertext w = Ciphertext::input("w");
    const Ciphertext v = Ciphertext::input("v");
    const Ciphertext u = Ciphertext::input("u");
    ((w * x + v) * x + u).set_output();
    return {sized("Poly. Reg.", n), program.build()};
}

Kernel
boxBlur(int image)
{
    // `image`x`image` input, 3x3 window, valid region output.
    DslProgram program;
    std::vector<std::vector<Ciphertext>> pixels(
        static_cast<std::size_t>(image));
    for (int i = 0; i < image; ++i) {
        for (int j = 0; j < image; ++j) {
            pixels[static_cast<std::size_t>(i)].push_back(
                Ciphertext::input("p_" + std::to_string(i) + "_" +
                                  std::to_string(j)));
        }
    }
    const int out = image - 2 > 0 ? image - 2 : 1;
    for (int i = 0; i < out; ++i) {
        for (int j = 0; j < out; ++j) {
            std::vector<Ciphertext> window;
            for (int di = 0; di < 3; ++di) {
                for (int dj = 0; dj < 3; ++dj) {
                    const int r = (i + di) % image;
                    const int c = (j + dj) % image;
                    window.push_back(
                        pixels[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(c)]);
                }
            }
            add_many(window).set_output();
        }
    }
    return {"Box Blur " + std::to_string(image) + "x" +
                std::to_string(image),
            program.build()};
}

namespace {

Kernel
sobel(const char* name, int w, const int taps[3][3])
{
    DslProgram program;
    const int image = w + 2;
    std::vector<std::vector<Ciphertext>> pixels(
        static_cast<std::size_t>(image));
    for (int i = 0; i < image; ++i) {
        for (int j = 0; j < image; ++j) {
            pixels[static_cast<std::size_t>(i)].push_back(
                Ciphertext::input("p_" + std::to_string(i) + "_" +
                                  std::to_string(j)));
        }
    }
    for (int i = 0; i < w; ++i) {
        for (int j = 0; j < w; ++j) {
            std::vector<Ciphertext> terms;
            for (int di = 0; di < 3; ++di) {
                for (int dj = 0; dj < 3; ++dj) {
                    const int tap = taps[di][dj];
                    if (tap == 0) continue;
                    const Ciphertext& p =
                        pixels[static_cast<std::size_t>(i + di)]
                              [static_cast<std::size_t>(j + dj)];
                    terms.push_back(tap == 1 ? p : Plaintext(tap) * p);
                }
            }
            add_many(terms).set_output();
        }
    }
    return {std::string(name) + " " + std::to_string(w) + "x" +
                std::to_string(w),
            program.build()};
}

} // namespace

Kernel
gradientX(int w)
{
    static const int taps[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
    return sobel("Gx", w, taps);
}

Kernel
gradientY(int w)
{
    static const int taps[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
    return sobel("Gy", w, taps);
}

Kernel
robertsCross(int w)
{
    DslProgram program;
    const int image = w + 1;
    std::vector<std::vector<Ciphertext>> pixels(
        static_cast<std::size_t>(image));
    for (int i = 0; i < image; ++i) {
        for (int j = 0; j < image; ++j) {
            pixels[static_cast<std::size_t>(i)].push_back(
                Ciphertext::input("p_" + std::to_string(i) + "_" +
                                  std::to_string(j)));
        }
    }
    for (int i = 0; i < w; ++i) {
        for (int j = 0; j < w; ++j) {
            const Ciphertext d1 =
                pixels[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
                pixels[static_cast<std::size_t>(i + 1)]
                      [static_cast<std::size_t>(j + 1)];
            const Ciphertext d2 =
                pixels[static_cast<std::size_t>(i + 1)]
                      [static_cast<std::size_t>(j)] -
                pixels[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j + 1)];
            (square(d1) + square(d2)).set_output();
        }
    }
    return {"Rob. Cross " + std::to_string(w) + "x" + std::to_string(w),
            program.build()};
}

Kernel
matMul(int k)
{
    DslProgram program;
    auto name = [](const char* m, int i, int j) {
        return std::string(m) + "_" + std::to_string(i) + "_" +
               std::to_string(j);
    };
    for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
            std::vector<Ciphertext> terms;
            for (int x = 0; x < k; ++x) {
                terms.push_back(Ciphertext::input(name("a", i, x)) *
                                Ciphertext::input(name("b", x, j)));
            }
            add_many(terms).set_output();
        }
    }
    return {"Mat. Mul. " + std::to_string(k) + "x" + std::to_string(k),
            program.build()};
}

Kernel
maxKernel(int k)
{
    // Balanced OR tree over bit inputs (exact max for bits).
    DslProgram program;
    std::vector<Ciphertext> values;
    for (int i = 0; i < k; ++i) {
        values.push_back(Ciphertext::input("a_" + std::to_string(i)));
    }
    while (values.size() > 1) {
        std::vector<Ciphertext> next;
        for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
            next.push_back(orBit(values[i], values[i + 1]));
        }
        if (values.size() % 2) next.push_back(values.back());
        values = std::move(next);
    }
    values[0].set_output();
    return {sized("Max", k), program.build()};
}

Kernel
sortKernel(int k)
{
    // Bubble sorting network over bit inputs; comparator =
    // (min, max) = (AND, OR), exact for bits (§7.2: tree-structured
    // unstructured code).
    DslProgram program;
    std::vector<Ciphertext> values;
    for (int i = 0; i < k; ++i) {
        values.push_back(Ciphertext::input("a_" + std::to_string(i)));
    }
    for (int pass = 0; pass < k - 1; ++pass) {
        for (int i = 0; i + 1 < k - pass; ++i) {
            const Ciphertext lo = andBit(values[static_cast<std::size_t>(i)],
                                         values[static_cast<std::size_t>(i + 1)]);
            const Ciphertext hi = orBit(values[static_cast<std::size_t>(i)],
                                        values[static_cast<std::size_t>(i + 1)]);
            values[static_cast<std::size_t>(i)] = lo;
            values[static_cast<std::size_t>(i + 1)] = hi;
        }
    }
    for (auto& v : values) v.set_output();
    return {sized("Sort", k), program.build()};
}

namespace {

ExprPtr
randomTree(int density, int homogeneity, int depth, Rng& rng, int& leaf_id)
{
    if (depth == 0) {
        return ir::var("t" + std::to_string(leaf_id++));
    }
    // Density: chance that a child is a full subtree rather than a leaf.
    auto child = [&](bool force_full) -> ExprPtr {
        if (force_full || rng.chance(density / 100.0)) {
            return randomTree(density, homogeneity, depth - 1, rng, leaf_id);
        }
        return ir::var("t" + std::to_string(leaf_id++));
    };
    // Homogeneity: chance the op is a multiply (100 = all-mul trees).
    const ExprPtr lhs = child(/*force_full=*/true);
    const ExprPtr rhs = child(/*force_full=*/false);
    if (rng.chance(homogeneity / 100.0)) return ir::mul(lhs, rhs);
    return ir::add(lhs, rhs);
}

} // namespace

Kernel
polynomialTree(int density, int homogeneity, int depth, std::uint64_t seed)
{
    Rng rng(seed + static_cast<std::uint64_t>(density * 1000 +
                                              homogeneity * 10 + depth));
    int leaf_id = 0;
    ExprPtr tree = randomTree(density, homogeneity, depth, rng, leaf_id);
    return {"Tree " + std::to_string(density) + "-" +
                std::to_string(homogeneity) + "-" + std::to_string(depth),
            std::move(tree)};
}

std::vector<Kernel>
porcupineSuite(int max_n)
{
    std::vector<Kernel> kernels;
    for (int n = 4; n <= max_n; n *= 2) {
        kernels.push_back(dotProduct(n));
        kernels.push_back(hammingDistance(n));
        kernels.push_back(l2Distance(n));
        kernels.push_back(linearReg(n));
        kernels.push_back(polyReg(n));
    }
    kernels.push_back(boxBlur(3));
    kernels.push_back(boxBlur(4));
    kernels.push_back(boxBlur(5));
    for (int w = 3; w <= 5; ++w) {
        kernels.push_back(gradientX(w));
        kernels.push_back(gradientY(w));
        kernels.push_back(robertsCross(w));
    }
    return kernels;
}

std::vector<Kernel>
coyoteSuite()
{
    std::vector<Kernel> kernels;
    for (int k = 3; k <= 5; ++k) kernels.push_back(matMul(k));
    for (int k = 3; k <= 5; ++k) kernels.push_back(maxKernel(k));
    kernels.push_back(sortKernel(3));
    kernels.push_back(sortKernel(4));
    return kernels;
}

std::vector<Kernel>
treeSuite(int max_depth)
{
    std::vector<Kernel> kernels;
    const int depths[2] = {5, max_depth};
    for (int depth : depths) {
        kernels.push_back(polynomialTree(50, 50, depth));
        kernels.push_back(polynomialTree(100, 50, depth));
        kernels.push_back(polynomialTree(100, 100, depth));
    }
    return kernels;
}

std::vector<Kernel>
fullSuite(int max_n, int max_tree_depth)
{
    std::vector<Kernel> kernels = porcupineSuite(max_n);
    for (Kernel& kernel : coyoteSuite()) kernels.push_back(std::move(kernel));
    for (Kernel& kernel : treeSuite(max_tree_depth)) {
        kernels.push_back(std::move(kernel));
    }
    return kernels;
}

ir::Env
syntheticInputs(const ir::ExprPtr& program)
{
    ir::Env env;
    std::int64_t next = 1;
    for (const std::string& name : ir::ciphertextVars(program)) {
        env[name] = (next++ % 9) + 1;
    }
    for (const std::string& name : ir::plaintextVars(program)) {
        env[name] = (next++ % 9) + 1;
    }
    return env;
}

} // namespace chehab::benchsuite
