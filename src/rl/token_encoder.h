/// \file
/// Pluggable program -> token-id encoding used by the policy. The default
/// is ICI tokenization (§5.1); the BPE variant exists for the Fig. 10
/// ablation, which measures the training-throughput cost of a learned
/// subword tokenizer.
#pragma once

#include <memory>
#include <vector>

#include "ir/expr.h"
#include "tokenizer/bpe.h"
#include "tokenizer/ici.h"

namespace chehab::rl {

/// Interface: encode a program into a fixed-length id sequence.
class TokenEncoder
{
  public:
    virtual ~TokenEncoder() = default;
    virtual std::vector<int> encode(const ir::ExprPtr& program,
                                    int max_len) const = 0;
    virtual int vocabSize() const = 0;
    virtual int padId() const = 0;
};

/// ICI-based encoder (single linear pass, fixed vocabulary).
class IciTokenEncoder : public TokenEncoder
{
  public:
    std::vector<int>
    encode(const ir::ExprPtr& program, int max_len) const override
    {
        return vocab_.encode(program, max_len);
    }
    int vocabSize() const override { return vocab_.size(); }
    int padId() const override { return vocab_.padId(); }

  private:
    tokenizer::IciVocab vocab_;
};

/// BPE-based encoder; requires a trained tokenizer.
class BpeTokenEncoder : public TokenEncoder
{
  public:
    explicit BpeTokenEncoder(tokenizer::BpeTokenizer bpe)
        : bpe_(std::move(bpe))
    {}

    std::vector<int>
    encode(const ir::ExprPtr& program, int max_len) const override
    {
        return bpe_.encode(program, max_len);
    }
    int vocabSize() const override { return bpe_.size(); }
    int padId() const override { return bpe_.padId(); }

  private:
    tokenizer::BpeTokenizer bpe_;
};

} // namespace chehab::rl
