/// \file
/// Actor-critic networks (§5.4): a sequence encoder (Transformer by
/// default, GRU for the ablation) producing the program embedding; a
/// hierarchical actor — rule-selection MLP (128-64) then location-selection
/// MLP (64-64) conditioned on the chosen rule — or a flat actor over
/// rule x location pairs (Fig. 13 ablation); and a critic MLP
/// (256-128-64) estimating the value function.
#pragma once

#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/layers.h"
#include "support/rng.h"

namespace chehab::rl {

/// Which sequence encoder embeds the program.
enum class EncoderKind : std::uint8_t { Transformer, Gru };

/// Policy architecture configuration.
struct PolicyConfig
{
    nn::EncoderConfig encoder;  ///< vocab_size/pad_id set from the encoder.
    int num_rules = 0;          ///< Rewrite rules (END handled internally).
    int max_locations = 16;
    bool hierarchical = true;   ///< False = flat rule x location head.
    EncoderKind encoder_kind = EncoderKind::Transformer;
    std::vector<int> rule_hidden = {128, 64};
    std::vector<int> loc_hidden = {64, 64};
    std::vector<int> critic_hidden = {256, 128, 64};
};

/// Sampled action with its behaviour-policy statistics.
struct ActionSample
{
    int rule = 0;      ///< num_rules == END.
    int location = 0;
    float log_prob = 0.0f;
    float value = 0.0f;
};

/// Differentiable evaluation of one (state, action) pair for PPO.
struct PolicyEval
{
    nn::Tensor log_prob; ///< Scalar.
    nn::Tensor value;    ///< Scalar.
    nn::Tensor entropy;  ///< Scalar (rule entropy + chosen-branch
                         ///  location entropy for the hierarchical actor).
};

/// Actor-critic bundle.
class Policy
{
  public:
    Policy(const PolicyConfig& config, Rng& rng);

    /// Sample an action under the current policy with rule/location
    /// masking (\p match_counts[r] = 0 disables rule r; END is index
    /// num_rules and always enabled). \p greedy takes the argmax instead.
    ActionSample sample(const std::vector<int>& ids,
                        const std::vector<int>& match_counts, Rng& rng,
                        bool greedy = false) const;

    /// Recompute log-prob/value/entropy of an action with gradients.
    PolicyEval evaluate(const std::vector<int>& ids,
                        const std::vector<int>& match_counts, int rule,
                        int location) const;

    /// State value only (bootstrap for truncated rollouts).
    float valueOf(const std::vector<int>& ids) const;

    /// All trainable parameters.
    std::vector<nn::Tensor> params() const;

    const PolicyConfig& config() const { return config_; }

  private:
    nn::Tensor embed(const std::vector<int>& ids) const;
    nn::Tensor ruleLogProbs(const nn::Tensor& embedding,
                            const std::vector<int>& match_counts) const;
    nn::Tensor locationLogProbs(const nn::Tensor& embedding, int rule,
                                int count) const;
    nn::Tensor flatLogProbs(const nn::Tensor& embedding,
                            const std::vector<int>& match_counts) const;

    PolicyConfig config_;
    nn::TransformerEncoder transformer_;
    nn::GruEncoder gru_;
    nn::Mlp rule_net_;  ///< Hierarchical: rules+END. Flat: rules*locs+1.
    nn::Mlp loc_net_;   ///< Hierarchical only.
    nn::Mlp critic_;
};

} // namespace chehab::rl
