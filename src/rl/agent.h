/// \file
/// CHEHAB RL agent: bundles tokenizer, policy, environment and trainer
/// into the object the compiler embeds. At compile time the agent runs a
/// greedy decode of its learned policy plus a configurable number of
/// stochastic rollouts and keeps the cheapest resulting circuit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "rl/token_encoder.h"
#include "trs/ruleset.h"

namespace chehab::rl {

/// Agent construction knobs.
struct AgentConfig
{
    EnvConfig env;
    PolicyConfig policy;      ///< encoder.vocab_size/pad_id filled in.
    PpoConfig ppo;
    int compile_rollouts = 4; ///< Stochastic rollouts at compile time
                              ///  (greedy decode always runs too).
    /// Also include one cost-guided (best-immediate-improvement) rollout
    /// in the compile-time candidate set. The paper's agent is trained
    /// for 2M steps (43 h); at the small training budgets this repo's
    /// benches use, the seed keeps compile output competitive while the
    /// policy rollouts take over as training grows.
    bool use_greedy_seed = true;
    std::uint64_t seed = 7;
};

/// Result of optimizing one program with the learned policy.
struct AgentResult
{
    ir::ExprPtr program;
    double initial_cost = 0.0;
    double final_cost = 0.0;
    int steps = 0;               ///< Rewrites in the winning rollout.
    std::vector<std::string> trace;
};

/// The RL-guided term rewriting system.
class RlAgent
{
  public:
    /// \p encoder defaults to ICI when null.
    RlAgent(const trs::Ruleset& ruleset, AgentConfig config,
            std::unique_ptr<TokenEncoder> encoder = nullptr);

    /// PPO-train the policy on \p dataset. NOT thread-safe: mutates the
    /// policy; no optimize() call may run concurrently with train().
    TrainStats train(const std::vector<ir::ExprPtr>& dataset,
                     const PpoTrainer::UpdateCallback& callback = nullptr);

    /// Optimize one program with the current policy.
    ///
    /// Thread-safe and deterministic once training is done: reads the
    /// policy, seeds a fresh local Rng from the fixed config seed, and
    /// touches no other shared state — concurrent service workers may
    /// share one trained agent and a given program always yields the
    /// same circuit.
    AgentResult optimize(const ir::ExprPtr& program) const;

    const Policy& policy() const { return *policy_; }
    Policy& policy() { return *policy_; }
    const AgentConfig& config() const { return config_; }
    const trs::Ruleset& ruleset() const { return *ruleset_; }
    const TokenEncoder& encoder() const { return *encoder_; }

  private:
    AgentResult rollout(const ir::ExprPtr& program, bool greedy,
                        Rng& rng) const;

    const trs::Ruleset* ruleset_;
    AgentConfig config_;
    std::unique_ptr<TokenEncoder> encoder_;
    std::unique_ptr<Policy> policy_;
};

} // namespace chehab::rl
