#include "rl/policy.h"

#include <cmath>

#include "support/error.h"

namespace chehab::rl {

using nn::Tensor;

Policy::Policy(const PolicyConfig& config, Rng& rng) : config_(config)
{
    CHEHAB_ASSERT(config_.num_rules > 0, "policy needs rules");
    if (config_.encoder_kind == EncoderKind::Transformer) {
        transformer_ = nn::TransformerEncoder(config_.encoder, rng);
    } else {
        gru_ = nn::GruEncoder(config_.encoder, rng);
    }

    const int d = config_.encoder.d_model;
    const int num_actions =
        config_.hierarchical
            ? config_.num_rules + 1
            : config_.num_rules * config_.max_locations + 1;

    std::vector<int> rule_sizes{d};
    for (int h : config_.rule_hidden) rule_sizes.push_back(h);
    rule_sizes.push_back(num_actions);
    rule_net_ = nn::Mlp(rule_sizes, rng);

    if (config_.hierarchical) {
        std::vector<int> loc_sizes{d + config_.num_rules + 1};
        for (int h : config_.loc_hidden) loc_sizes.push_back(h);
        loc_sizes.push_back(config_.max_locations);
        loc_net_ = nn::Mlp(loc_sizes, rng);
    }

    std::vector<int> critic_sizes{d};
    for (int h : config_.critic_hidden) critic_sizes.push_back(h);
    critic_sizes.push_back(1);
    critic_ = nn::Mlp(critic_sizes, rng);
}

Tensor
Policy::embed(const std::vector<int>& ids) const
{
    return config_.encoder_kind == EncoderKind::Transformer
               ? transformer_.encode(ids)
               : gru_.encode(ids);
}

Tensor
Policy::ruleLogProbs(const Tensor& embedding,
                     const std::vector<int>& match_counts) const
{
    const Tensor logits = rule_net_.forward(embedding);
    std::vector<float> mask(static_cast<std::size_t>(logits.cols()), 0.0f);
    for (int r = 0; r < config_.num_rules; ++r) {
        if (match_counts[static_cast<std::size_t>(r)] <= 0) {
            mask[static_cast<std::size_t>(r)] = -1e9f;
        }
    }
    return nn::logSoftmaxRows(nn::addConstMask(logits, mask));
}

Tensor
Policy::locationLogProbs(const Tensor& embedding, int rule, int count) const
{
    std::vector<float> onehot(
        static_cast<std::size_t>(config_.num_rules) + 1, 0.0f);
    onehot[static_cast<std::size_t>(rule)] = 1.0f;
    const Tensor rule_feat =
        Tensor::fromData(1, config_.num_rules + 1, std::move(onehot));
    const Tensor logits =
        loc_net_.forward(nn::concatCols(embedding, rule_feat));
    std::vector<float> mask(static_cast<std::size_t>(config_.max_locations),
                            0.0f);
    for (int l = count; l < config_.max_locations; ++l) {
        mask[static_cast<std::size_t>(l)] = -1e9f;
    }
    return nn::logSoftmaxRows(nn::addConstMask(logits, mask));
}

Tensor
Policy::flatLogProbs(const Tensor& embedding,
                     const std::vector<int>& match_counts) const
{
    const Tensor logits = rule_net_.forward(embedding);
    std::vector<float> mask(static_cast<std::size_t>(logits.cols()), 0.0f);
    for (int r = 0; r < config_.num_rules; ++r) {
        const int count = match_counts[static_cast<std::size_t>(r)];
        for (int l = 0; l < config_.max_locations; ++l) {
            if (l >= count) {
                mask[static_cast<std::size_t>(
                    r * config_.max_locations + l)] = -1e9f;
            }
        }
    }
    return nn::logSoftmaxRows(nn::addConstMask(logits, mask));
}

namespace {

int
sampleFromLogProbs(const Tensor& log_probs, Rng& rng, bool greedy)
{
    const auto& data = log_probs.data();
    if (greedy) {
        int best = 0;
        for (int i = 1; i < log_probs.cols(); ++i) {
            if (data[static_cast<std::size_t>(i)] >
                data[static_cast<std::size_t>(best)]) {
                best = i;
            }
        }
        return best;
    }
    const double u = rng.uniformReal();
    double cumulative = 0.0;
    for (int i = 0; i < log_probs.cols(); ++i) {
        cumulative += std::exp(static_cast<double>(
            data[static_cast<std::size_t>(i)]));
        if (u < cumulative) return i;
    }
    return log_probs.cols() - 1;
}

/// H = -sum p log p from a log-prob row.
nn::Tensor
entropyOf(const Tensor& log_probs)
{
    // -Σ exp(lp) * lp. exp(lp) via softmax of lp == exp(lp) since lp is
    // already normalized; reuse mulElem on exp values treated as constant
    // weights would bias gradients, so compute it differentiably:
    // H = -Σ softmax(lp) ⊙ lp where softmax over log-probs reproduces the
    // probabilities (log-probs are shift-invariant inputs to softmax).
    const Tensor probs = nn::softmaxRows(log_probs);
    return nn::scale(nn::sumAll(nn::mulElem(probs, log_probs)), -1.0f);
}

} // namespace

ActionSample
Policy::sample(const std::vector<int>& ids,
               const std::vector<int>& match_counts, Rng& rng,
               bool greedy) const
{
    const Tensor embedding = embed(ids);
    ActionSample action;
    action.value = critic_.forward(embedding).item();

    if (config_.hierarchical) {
        const Tensor rule_lp = ruleLogProbs(embedding, match_counts);
        action.rule = sampleFromLogProbs(rule_lp, rng, greedy);
        action.log_prob =
            rule_lp.data()[static_cast<std::size_t>(action.rule)];
        if (action.rule < config_.num_rules) {
            const int count =
                match_counts[static_cast<std::size_t>(action.rule)];
            const Tensor loc_lp =
                locationLogProbs(embedding, action.rule, count);
            action.location = sampleFromLogProbs(loc_lp, rng, greedy);
            action.log_prob +=
                loc_lp.data()[static_cast<std::size_t>(action.location)];
        } else {
            action.location = 0;
        }
    } else {
        const Tensor flat_lp = flatLogProbs(embedding, match_counts);
        const int flat = sampleFromLogProbs(flat_lp, rng, greedy);
        action.log_prob = flat_lp.data()[static_cast<std::size_t>(flat)];
        if (flat == config_.num_rules * config_.max_locations) {
            action.rule = config_.num_rules; // END.
            action.location = 0;
        } else {
            action.rule = flat / config_.max_locations;
            action.location = flat % config_.max_locations;
        }
    }
    return action;
}

PolicyEval
Policy::evaluate(const std::vector<int>& ids,
                 const std::vector<int>& match_counts, int rule,
                 int location) const
{
    const Tensor embedding = embed(ids);
    PolicyEval eval;
    eval.value = critic_.forward(embedding);

    if (config_.hierarchical) {
        const Tensor rule_lp = ruleLogProbs(embedding, match_counts);
        eval.log_prob = nn::pick(rule_lp, 0, rule);
        eval.entropy = entropyOf(rule_lp);
        if (rule < config_.num_rules) {
            const int count = match_counts[static_cast<std::size_t>(rule)];
            const Tensor loc_lp = locationLogProbs(embedding, rule, count);
            eval.log_prob = nn::add(eval.log_prob,
                                    nn::pick(loc_lp, 0, location));
            eval.entropy = nn::add(eval.entropy, entropyOf(loc_lp));
        }
    } else {
        const Tensor flat_lp = flatLogProbs(embedding, match_counts);
        const int flat = rule == config_.num_rules
                             ? config_.num_rules * config_.max_locations
                             : rule * config_.max_locations + location;
        eval.log_prob = nn::pick(flat_lp, 0, flat);
        eval.entropy = entropyOf(flat_lp);
    }
    return eval;
}

float
Policy::valueOf(const std::vector<int>& ids) const
{
    return critic_.forward(embed(ids)).item();
}

std::vector<nn::Tensor>
Policy::params() const
{
    std::vector<nn::Tensor> params;
    if (config_.encoder_kind == EncoderKind::Transformer) {
        transformer_.collectParams(params);
    } else {
        gru_.collectParams(params);
    }
    rule_net_.collectParams(params);
    if (config_.hierarchical) loc_net_.collectParams(params);
    critic_.collectParams(params);
    return params;
}

} // namespace chehab::rl
