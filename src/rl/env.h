/// \file
/// The rewrite-optimization MDP (§5): states are programs, actions are
/// (rule, location) pairs plus END, rewards come from the FHE-aware cost
/// function (§5.3) as an immediate step reward and a terminal reward.
#pragma once

#include <vector>

#include "ir/cost_model.h"
#include "ir/expr.h"
#include "trs/rewriter.h"
#include "trs/ruleset.h"

namespace chehab::rl {

/// Environment configuration (reward ablation switches included).
struct EnvConfig
{
    int max_steps = 75;       ///< Episode cap (App. G).
    int max_locations = 16;   ///< Location head width.
    ir::CostWeights weights;  ///< (w_ops, w_depth, w_mult); default (1,1,1).
    ir::OpCosts costs;
    bool use_step_reward = true;     ///< R_step after each action.
    bool use_terminal_reward = true; ///< R_final at episode end.
    double terminal_scale = 100.0;   ///< The x100 of §5.3.2.
    double invalid_penalty = -0.05;  ///< Selecting a non-matching action.
};

/// One environment step outcome.
struct StepResult
{
    double reward = 0.0;
    bool done = false;
    bool applied = false; ///< False if the action did not match.
};

/// Single-program rewrite episode. Action indices 0..numRules()-1 are
/// rewrite rules; numRules() is END.
class RewriteEnv
{
  public:
    RewriteEnv(const trs::Ruleset& ruleset, EnvConfig config = {});

    /// Begin a new episode on \p program.
    void reset(ir::ExprPtr program);

    const ir::ExprPtr& program() const { return program_; }
    int stepsTaken() const { return steps_; }
    bool done() const { return done_; }

    int numRules() const { return static_cast<int>(ruleset_->size()); }
    int endAction() const { return numRules(); }
    int maxLocations() const { return config_.max_locations; }
    const EnvConfig& config() const { return config_; }

    double initialCost() const { return initial_cost_; }
    double currentCost() const { return current_cost_; }

    /// Match count per rule for the current state (0 = inapplicable).
    /// Index numRules() (END) is always 1.
    const std::vector<int>& matchCounts() const { return match_counts_; }

    /// Apply \p rule at match ordinal \p location, or END. Returns the
    /// reward and whether the episode ended.
    StepResult step(int rule, int location);

  private:
    void refreshMatches();
    double terminalReward() const;

    const trs::Ruleset* ruleset_;
    EnvConfig config_;
    ir::ExprPtr program_;
    double initial_cost_ = 0.0;
    double current_cost_ = 0.0;
    int steps_ = 0;
    bool done_ = true;
    std::vector<int> match_counts_;
};

} // namespace chehab::rl
