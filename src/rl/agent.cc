#include "rl/agent.h"

namespace chehab::rl {

RlAgent::RlAgent(const trs::Ruleset& ruleset, AgentConfig config,
                 std::unique_ptr<TokenEncoder> encoder)
    : ruleset_(&ruleset), config_(std::move(config))
{
    encoder_ = encoder ? std::move(encoder)
                       : std::make_unique<IciTokenEncoder>();
    config_.policy.num_rules = static_cast<int>(ruleset.size());
    config_.policy.max_locations = config_.env.max_locations;
    config_.policy.encoder.vocab_size = encoder_->vocabSize();
    config_.policy.encoder.pad_id = encoder_->padId();
    Rng rng(config_.seed);
    policy_ = std::make_unique<Policy>(config_.policy, rng);
}

TrainStats
RlAgent::train(const std::vector<ir::ExprPtr>& dataset,
               const PpoTrainer::UpdateCallback& callback)
{
    RewriteEnv env(*ruleset_, config_.env);
    PpoTrainer trainer(*policy_, env, *encoder_, config_.ppo);
    return trainer.train(dataset, callback);
}

AgentResult
RlAgent::rollout(const ir::ExprPtr& program, bool greedy, Rng& rng) const
{
    RewriteEnv env(*ruleset_, config_.env);
    env.reset(program);
    AgentResult result;
    result.initial_cost = env.initialCost();

    // Keep the best state seen along the trajectory: the policy may walk
    // through (and past) a good circuit before choosing END, and the
    // compiler should ship the best circuit it visited.
    ir::ExprPtr best_program = env.program();
    double best_cost = env.currentCost();
    int best_steps = 0;

    while (!env.done()) {
        const std::vector<int> ids =
            encoder_->encode(env.program(), config_.ppo.max_token_len);
        const ActionSample action =
            policy_->sample(ids, env.matchCounts(), rng, greedy);
        if (action.rule < env.numRules()) {
            result.trace.push_back(
                (*ruleset_)[static_cast<std::size_t>(action.rule)].name());
        }
        env.step(action.rule, action.location);
        if (env.currentCost() < best_cost) {
            best_cost = env.currentCost();
            best_program = env.program();
            best_steps = static_cast<int>(result.trace.size());
        }
    }
    result.program = std::move(best_program);
    result.final_cost = best_cost;
    result.trace.resize(static_cast<std::size_t>(best_steps));
    result.steps = best_steps;
    return result;
}

AgentResult
RlAgent::optimize(const ir::ExprPtr& program) const
{
    Rng rng(config_.seed * 31 + 17);
    AgentResult best = rollout(program, /*greedy=*/true, rng);
    for (int i = 0; i < config_.compile_rollouts; ++i) {
        AgentResult candidate = rollout(program, /*greedy=*/false, rng);
        if (candidate.final_cost < best.final_cost) {
            best = std::move(candidate);
        }
    }
    if (config_.use_greedy_seed) {
        trs::OptimizeResult seeded = trs::greedyOptimize(
            *ruleset_, program, config_.env.weights, config_.env.costs,
            config_.env.max_steps, config_.env.max_locations);
        if (seeded.final_cost < best.final_cost) {
            best.program = std::move(seeded.program);
            best.final_cost = seeded.final_cost;
            best.initial_cost = seeded.initial_cost;
            best.steps = seeded.steps;
            best.trace = std::move(seeded.trace);
        }
    }
    // The compiler must never regress: fall back to the input program if
    // no rollout improved it.
    if (best.final_cost > best.initial_cost) {
        best.program = program;
        best.final_cost = best.initial_cost;
        best.steps = 0;
        best.trace.clear();
    }
    return best;
}

} // namespace chehab::rl
