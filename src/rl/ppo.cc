#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::rl {

using nn::Tensor;

PpoTrainer::PpoTrainer(Policy& policy, RewriteEnv& env,
                       const TokenEncoder& encoder, PpoConfig config)
    : policy_(&policy),
      env_(&env),
      encoder_(&encoder),
      config_(config),
      rng_(config.seed),
      optimizer_(policy.params(), [&config] {
          nn::AdamConfig adam;
          adam.learning_rate = config.learning_rate;
          adam.max_grad_norm = 0.5f;
          return adam;
      }())
{}

void
PpoTrainer::collectRollout(const std::vector<ir::ExprPtr>& dataset,
                           std::vector<Transition>& buffer,
                           TrainStats& stats)
{
    CHEHAB_ASSERT(!dataset.empty(), "PPO needs a training dataset");
    buffer.clear();
    buffer.reserve(static_cast<std::size_t>(config_.steps_per_update));

    while (static_cast<int>(buffer.size()) < config_.steps_per_update) {
        if (env_->done()) {
            env_->reset(dataset[rng_.pickIndex(dataset.size())]);
            current_episode_return_ = 0.0;
        }
        Transition t;
        t.ids = encoder_->encode(env_->program(), config_.max_token_len);
        t.match_counts = env_->matchCounts();
        const ActionSample action =
            policy_->sample(t.ids, t.match_counts, rng_);
        t.rule = action.rule;
        t.location = action.location;
        t.log_prob = action.log_prob;
        t.value = action.value;
        const StepResult step = env_->step(action.rule, action.location);
        t.reward = static_cast<float>(step.reward);
        t.done = step.done;
        current_episode_return_ += step.reward;
        if (step.done) {
            stats.episode_returns.push_back(current_episode_return_);
        }
        buffer.push_back(std::move(t));
    }
}

void
PpoTrainer::computeAdvantages(const std::vector<Transition>& buffer,
                              std::vector<float>& advantages,
                              std::vector<float>& returns) const
{
    const std::size_t n = buffer.size();
    advantages.assign(n, 0.0f);
    returns.assign(n, 0.0f);

    // Bootstrap value for a truncated final episode.
    float next_value = 0.0f;
    if (!buffer.empty() && !buffer.back().done && !env_->done()) {
        next_value = policy_->valueOf(
            encoder_->encode(env_->program(), config_.max_token_len));
    }

    float gae = 0.0f;
    for (std::size_t i = n; i-- > 0;) {
        const Transition& t = buffer[i];
        const float mask = t.done ? 0.0f : 1.0f;
        const float delta =
            t.reward +
            static_cast<float>(config_.gamma) * next_value * mask - t.value;
        gae = delta + static_cast<float>(config_.gamma * config_.gae_lambda) *
                          mask * gae;
        advantages[i] = gae;
        returns[i] = gae + t.value;
        next_value = t.value;
    }

    // Advantage normalization (SB3 default) keeps the x100 terminal reward
    // from blowing up the surrogate objective.
    double mean = 0.0;
    for (float a : advantages) mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (float a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const float std_dev = static_cast<float>(std::sqrt(var) + 1e-8);
    for (float& a : advantages) {
        a = static_cast<float>((a - mean) / std_dev);
    }
}

void
PpoTrainer::update(const std::vector<Transition>& buffer,
                   const std::vector<float>& advantages,
                   const std::vector<float>& returns)
{
    std::vector<std::size_t> order(buffer.size());
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic RNG.
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng_.pickIndex(i)]);
        }
        for (std::size_t begin = 0; begin < order.size();
             begin += static_cast<std::size_t>(config_.minibatch_size)) {
            const std::size_t end =
                std::min(begin + static_cast<std::size_t>(
                                     config_.minibatch_size),
                         order.size());
            Tensor loss;
            for (std::size_t k = begin; k < end; ++k) {
                const Transition& t = buffer[order[k]];
                const PolicyEval eval = policy_->evaluate(
                    t.ids, t.match_counts, t.rule, t.location);

                // Clipped surrogate: since clip() is not differentiable in
                // our op set, use the standard equivalent min formulation
                // computed with a stop-gradient style constant branch.
                const float adv = advantages[order[k]];
                const Tensor ratio_log =
                    nn::add(eval.log_prob,
                            Tensor::fromData(1, 1, {-t.log_prob}));
                const float ratio_value =
                    std::exp(ratio_log.item());
                const float clipped = std::clamp(
                    ratio_value, 1.0f - static_cast<float>(config_.clip_range),
                    1.0f + static_cast<float>(config_.clip_range));
                // d/dθ of the PPO objective is ratio * adv gradient only
                // when the unclipped branch is active.
                const bool unclipped_active =
                    ratio_value * adv <= clipped * adv + 1e-12f;
                Tensor policy_term;
                if (unclipped_active) {
                    // surrogate = ratio * adv; d surrogate = adv * ratio
                    // * dlogp; express as adv*exp(ratio_log).
                    policy_term = nn::scale(ratio_log, ratio_value * adv);
                    // Linearization: grad(adv * e^x) = adv * e^x * grad x.
                } else {
                    policy_term = nn::scale(ratio_log, 0.0f);
                }

                const Tensor value_err = nn::sub(
                    eval.value, Tensor::fromData(1, 1, {returns[order[k]]}));
                const Tensor value_loss =
                    nn::mulElem(value_err, value_err);

                Tensor sample_loss = nn::scale(policy_term, -1.0f);
                sample_loss = nn::add(
                    sample_loss, nn::scale(value_loss, config_.value_coef));
                sample_loss = nn::add(
                    sample_loss,
                    nn::scale(eval.entropy, -config_.entropy_coef));
                loss = loss.defined() ? nn::add(loss, sample_loss)
                                      : sample_loss;
            }
            loss = nn::scale(loss, 1.0f / static_cast<float>(end - begin));
            loss.backward();
            optimizer_.step();
        }
    }
}

TrainStats
PpoTrainer::train(const std::vector<ir::ExprPtr>& dataset,
                  const UpdateCallback& callback)
{
    TrainStats stats;
    Stopwatch watch;
    std::vector<Transition> buffer;
    std::vector<float> advantages;
    std::vector<float> returns;

    int update_index = 0;
    while (stats.total_steps < config_.total_timesteps) {
        collectRollout(dataset, buffer, stats);
        stats.total_steps += static_cast<int>(buffer.size());
        computeAdvantages(buffer, advantages, returns);
        update(buffer, advantages, returns);

        // Running mean of recent episode returns.
        const std::size_t window = std::min<std::size_t>(
            stats.episode_returns.size(), 16);
        double mean = 0.0;
        for (std::size_t i = stats.episode_returns.size() - window;
             i < stats.episode_returns.size(); ++i) {
            mean += stats.episode_returns[i];
        }
        stats.mean_return_curve.push_back(
            window ? mean / static_cast<double>(window) : 0.0);
        stats.timestep_curve.push_back(stats.total_steps);
        if (callback) callback(update_index, stats);
        ++update_index;
    }
    stats.wall_seconds = watch.elapsedSeconds();
    return stats;
}

} // namespace chehab::rl
