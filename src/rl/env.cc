#include "rl/env.h"

#include "support/error.h"

namespace chehab::rl {

RewriteEnv::RewriteEnv(const trs::Ruleset& ruleset, EnvConfig config)
    : ruleset_(&ruleset), config_(config)
{
    match_counts_.assign(ruleset_->size() + 1, 0);
}

void
RewriteEnv::reset(ir::ExprPtr program)
{
    program_ = std::move(program);
    initial_cost_ = ir::cost(program_, config_.weights, config_.costs);
    current_cost_ = initial_cost_;
    steps_ = 0;
    done_ = false;
    refreshMatches();
}

void
RewriteEnv::refreshMatches()
{
    for (std::size_t r = 0; r < ruleset_->size(); ++r) {
        match_counts_[r] = static_cast<int>(
            (*ruleset_)[r].findMatches(program_, config_.max_locations)
                .size());
    }
    match_counts_[ruleset_->size()] = 1; // END always available.
}

double
RewriteEnv::terminalReward() const
{
    if (initial_cost_ <= 0.0) return 0.0;
    return (initial_cost_ - current_cost_) / initial_cost_ *
           config_.terminal_scale;
}

StepResult
RewriteEnv::step(int rule, int location)
{
    CHEHAB_ASSERT(!done_, "step() on a finished episode");
    StepResult result;
    ++steps_;

    if (rule == endAction()) {
        result.done = true;
        result.applied = true;
        if (config_.use_terminal_reward) result.reward += terminalReward();
        done_ = true;
        return result;
    }

    CHEHAB_ASSERT(rule >= 0 && rule < numRules(), "rule index range");
    ir::ExprPtr next;
    if (location >= 0 && location < match_counts_[static_cast<std::size_t>(rule)]) {
        next = (*ruleset_)[static_cast<std::size_t>(rule)].applyAt(program_,
                                                                   location);
    }
    if (next) {
        const double next_cost =
            ir::cost(next, config_.weights, config_.costs);
        if (config_.use_step_reward && current_cost_ > 0.0) {
            result.reward += (current_cost_ - next_cost) / current_cost_;
        }
        program_ = std::move(next);
        current_cost_ = next_cost;
        result.applied = true;
        refreshMatches();
    } else {
        // Masked policies never get here, but the env stays well defined.
        result.reward += config_.invalid_penalty;
    }

    if (steps_ >= config_.max_steps) {
        result.done = true;
        if (config_.use_terminal_reward) result.reward += terminalReward();
        done_ = true;
    }
    return result;
}

} // namespace chehab::rl
