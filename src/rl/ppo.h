/// \file
/// Proximal Policy Optimization trainer (§7.1, Table 4): clipped
/// surrogate objective, GAE(λ) advantages, entropy bonus, Adam updates
/// over minibatches. Hyperparameter defaults follow Table 4 with smaller
/// rollout/epoch counts appropriate for single-core runs; the paper's
/// exact values are a constructor parameter away.
#pragma once

#include <functional>
#include <vector>

#include "rl/env.h"
#include "rl/policy.h"
#include "rl/token_encoder.h"
#include "support/rng.h"

namespace chehab::rl {

/// PPO hyperparameters.
struct PpoConfig
{
    double gamma = 0.99;       ///< Discount factor.
    double gae_lambda = 0.95;  ///< GAE lambda.
    double clip_range = 0.2;   ///< PPO clip epsilon.
    int update_epochs = 4;     ///< Paper: 20.
    int steps_per_update = 256;///< Paper: 2048.
    int minibatch_size = 64;   ///< Paper: 256.
    float learning_rate = 1e-4f;
    float value_coef = 0.5f;
    float entropy_coef = 0.01f;
    int total_timesteps = 8192;
    int max_token_len = 96;    ///< Truncation length for the encoder.
    std::uint64_t seed = 1;
};

/// One stored environment interaction.
struct Transition
{
    std::vector<int> ids;
    std::vector<int> match_counts;
    int rule = 0;
    int location = 0;
    float log_prob = 0.0f;
    float value = 0.0f;
    float reward = 0.0f;
    bool done = false;
};

/// Training diagnostics (the learning curves of Figs. 10 and 13).
struct TrainStats
{
    std::vector<double> episode_returns;    ///< Per finished episode.
    std::vector<double> mean_return_curve;  ///< Running mean per update.
    std::vector<int> timestep_curve;        ///< Env steps at each update.
    int total_steps = 0;
    double wall_seconds = 0.0;
};

/// PPO over the rewrite environment. The trainer owns nothing: policy,
/// environment and dataset are borrowed, mirroring SB3's structure.
class PpoTrainer
{
  public:
    using UpdateCallback =
        std::function<void(int update_index, const TrainStats&)>;

    PpoTrainer(Policy& policy, RewriteEnv& env, const TokenEncoder& encoder,
               PpoConfig config);

    /// Train on episodes drawn uniformly from \p dataset. Returns learning
    /// diagnostics.
    TrainStats train(const std::vector<ir::ExprPtr>& dataset,
                     const UpdateCallback& callback = nullptr);

  private:
    void collectRollout(const std::vector<ir::ExprPtr>& dataset,
                        std::vector<Transition>& buffer,
                        TrainStats& stats);
    void computeAdvantages(const std::vector<Transition>& buffer,
                           std::vector<float>& advantages,
                           std::vector<float>& returns) const;
    void update(const std::vector<Transition>& buffer,
                const std::vector<float>& advantages,
                const std::vector<float>& returns);

    Policy* policy_;
    RewriteEnv* env_;
    const TokenEncoder* encoder_;
    PpoConfig config_;
    Rng rng_;
    nn::Adam optimizer_;
    double current_episode_return_ = 0.0;
};

} // namespace chehab::rl
