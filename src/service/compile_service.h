/// \file
/// Multi-threaded compile-and-run front end over the single-shot
/// pipelines of compiler/pipeline.h.
///
/// Architecture:
///
///     submit(request)
///        |  canonicalize on the caller, derive CacheKey + cost estimate
///        v
///     KernelCache::acquire  -- owner --> ThreadPool (priority = cost)
///        |                                  | compileNoOpt/Greedy/WithAgent
///        |  hit / in-flight join            v
///        +-----------------------> CacheEntry settles -> futures resolve
///
/// Expensive kernels dispatch first (longest-processing-time-first on
/// the §5.3.1 cost estimate), which minimizes batch makespan when job
/// costs are heterogeneous. Identical concurrent requests compile once
/// (single-flight); later identical requests are cache hits.
///
/// Thread-safety contract: every public member function may be called
/// concurrently from any thread. Determinism: all three pipelines are
/// deterministic, so for a fixed request the service returns a
/// byte-identical instruction stream regardless of worker count or
/// submission order.
#pragma once

#include <future>
#include <memory>
#include <vector>

#include "compiler/pipeline.h"
#include "rl/agent.h"
#include "service/kernel_cache.h"
#include "service/request.h"
#include "support/thread_pool.h"
#include "trs/ruleset.h"

namespace chehab::service {

/// Service construction knobs.
struct ServiceConfig
{
    int num_workers = 4;
    /// Agent for OptMode::Rl requests; not owned, must outlive the
    /// service. Rl requests fail with a CompileError message when null.
    const rl::RlAgent* agent = nullptr;
};

/// Aggregate service counters (monotonic; snapshot via stats()).
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t compiled = 0;       ///< Owner compiles actually run.
    std::uint64_t failed = 0;         ///< Compiles that threw.
    double total_compile_seconds = 0.0; ///< Sum over owner compiles.
    KernelCache::Stats cache;
};

class CompileService
{
  public:
    explicit CompileService(ServiceConfig config = {});
    ~CompileService();

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /// Enqueue one request; the future resolves when the artifact is
    /// available (immediately on a cache hit). Never throws on compile
    /// failure — inspect CompileResponse::ok.
    std::future<CompileResponse> submit(CompileRequest request);

    /// Submit a whole batch and block for all responses, in input order.
    std::vector<CompileResponse> compileBatch(
        std::vector<CompileRequest> requests);

    ServiceStats stats() const;
    int numWorkers() const;
    const trs::Ruleset& ruleset() const { return ruleset_; }

  private:
    CompileResponse makeResponse(const CompileRequest& request,
                                 const CacheEntry::Settled& settled,
                                 bool cache_hit, bool deduplicated,
                                 double queue_seconds,
                                 double estimated_cost) const;

    ServiceConfig config_;
    trs::Ruleset ruleset_; ///< Owned, immutable after construction.
    KernelCache cache_;

    mutable std::mutex stats_mutex_;
    ServiceStats stats_;

    /// Declared last so it destructs first: worker tasks touch the
    /// cache and stats members above, which must outlive the drain.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace chehab::service
