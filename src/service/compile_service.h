/// \file
/// Multi-threaded compile-and-run front end over the unified
/// CompilerDriver (compiler/driver.h).
///
/// Compile path:
///
///     submit(request)
///        |  canonicalize on the caller, derive CacheKey + cost estimate
///        v
///     CompileCache::acquire -- owner --> ThreadPool (priority = cost)
///        |                                  | CompilerDriver::compile
///        |  hit / in-flight join            v
///        +-----------------------> CacheEntry settles -> futures resolve
///
/// Run path (submitRun) reuses the compile path end to end — run
/// requests and plain compile requests dedupe against the same kernel
/// cache — then chains execution onto the settled compile:
///
///     submitRun(request)
///        |  admit compile (above) + RunCache::acquire (single-flight)
///        v
///     compile settles -- run owner --> slot-batching coalescer:
///        |                             lane-safe kernels wait up to
///        |  run hit / join             batch_window for peers, then a
///        |                             packed group (or a solo run)
///        |                             executes on a pooled FheRuntime
///        +--------------------> RunEntry settles -> futures resolve
///
/// Slot batching: SealLite exposes n/2 SIMD lanes per ciphertext row,
/// but a small kernel touches only a handful of them. When max_lanes
/// allows it, run requests that share a compiled artifact and SealLite
/// parameters are coalesced: each request's inputs are packed into its
/// own lane-stride-aligned region of one shared row, the kernel
/// executes once, and per-lane output slices are scattered back into
/// individual responses (see service/batch_planner.h for the
/// lane-safety analysis that gates this). With cross_kernel on,
/// requests running *different* artifacts on the same parameters and
/// effective key budget share rows too: their programs are
/// concatenated onto disjoint lane blocks (registers renamed, key
/// plans merged) and the composite executes once. A group flushes when
/// it reaches its lane capacity or when the oldest member has waited
/// batch_window seconds.
///
/// Expensive work dispatches first: compile tasks and run tasks ride
/// one two-level priority queue ranked by the timer-augmented load
/// model's *predicted seconds* (service/load_model.h — measured EWMA
/// profiles when warm, the §5.3.1 static estimate scaled into seconds
/// when cold), which minimizes batch makespan when job costs are
/// heterogeneous. The same model drives cost-based consolidation of
/// window-flushed groups and arrival-rate-adaptive batch windows
/// (ServiceConfig::adaptive_window). Identical concurrent requests
/// compile (and execute) once: single-flight on both caches. Both
/// caches take an optional LRU capacity so long-running processes stay
/// bounded.
///
/// Thread-safety contract: every public member function may be called
/// concurrently from any thread. Determinism: the driver pipelines are
/// deterministic and the runtime pool reseeds per request (see
/// service/runtime_pool.h), so for a fixed request the service returns
/// a byte-identical instruction stream — and for run requests,
/// bit-identical outputs and noise accounting — regardless of worker
/// count or submission order. Packed runs keep the output side of that
/// guarantee unconditionally (a lane's outputs are bit-identical to its
/// solo run); their noise accounting is that of the shared row, which
/// is deterministic for a fixed group composition (see README,
/// "determinism contract for packed runs").
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/driver.h"
#include "compiler/pipeline.h"
#include "rl/agent.h"
#include "service/batch_planner.h"
#include "service/cache_key.h"
#include "service/load_model.h"
#include "service/request.h"
#include "service/runtime_pool.h"
#include "service/service_api.h"
#include "service/service_stats.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"
#include "trs/ruleset.h"

namespace chehab::service {

/// Service construction knobs.
struct ServiceConfig
{
    int num_workers = 4;
    /// Agent for rl-trs pipelines; not owned, must outlive the service.
    /// Pipelines naming "rl-trs" fail with a CompileError message when
    /// null.
    const rl::RlAgent* agent = nullptr;
    /// LRU capacity of the kernel (compile) cache; 0 = unbounded.
    std::size_t kernel_cache_capacity = 0;
    /// LRU capacity of the run-result cache; 0 = unbounded.
    std::size_t run_cache_capacity = 0;
    /// Slot-batching lane cap: 1 disables coalescing (default), 0 means
    /// "as many lanes as the row and the lane-safety analysis allow",
    /// any other value caps the lanes packed into one row.
    int max_lanes = 1;
    /// How long a pending coalescible run waits for peers before its
    /// (possibly partial) group flushes. Groups that reach their lane
    /// capacity flush immediately.
    double batch_window_seconds = 0.0005;
    /// Cross-kernel packing: when true (and max_lanes allows packing),
    /// runs of *different* compiled artifacts that share SealLite
    /// parameters and an effective key budget may ride one ciphertext
    /// row — the planner concatenates their programs onto disjoint lane
    /// blocks and executes the composite once (see batch_planner.h).
    /// When false (default) only runs of the same artifact coalesce.
    bool cross_kernel = false;
    /// Adaptive batch windows: when true (default) a pending group's
    /// flush deadline is derived from the load model's arrival-rate
    /// estimate for its group key — the expected time for the
    /// remaining lanes to arrive — bounded by batch_window_seconds as
    /// a ceiling, and recomputed (only ever earlier) on each arrival.
    /// Until the estimator has confidence (min_arrival_samples) the
    /// fixed window applies unchanged. False opts out: fixed windows
    /// always.
    bool adaptive_window = true;
    /// Timer-augmented load model knobs; load_model.enabled = false
    /// restores the fully static scheduler (static-cost LPT dispatch,
    /// stride-FFD consolidation, fixed windows) for A/B comparison.
    LoadModelConfig load_model;
    /// Request-lifecycle telemetry (support/telemetry.h): spans for
    /// enqueue/dispatch/compile/execute (with setup/evaluate/decode
    /// sub-phases), per-phase latency histograms, cache-hit and
    /// fallback instants. Always compiled in; when false (default) the
    /// recorder is a near-zero-cost no-op. Never affects scheduling or
    /// outputs — see the determinism contract above.
    bool telemetry = false;
    /// On-disk persistence root (service/persist.h). Empty (default) =
    /// no persistence. When set, each shard opens a PersistStore on
    /// this directory: cache-miss compiles first try a warm artifact
    /// load from disk, fresh compiles are stored back
    /// (content-addressed, crash-safe temp-file + rename, so the
    /// directory is safely shared by every shard and by concurrent
    /// service *processes*), and the load model snapshots/restores its
    /// measured profiles across restarts. Construction throws
    /// std::invalid_argument when the directory cannot be created.
    std::string cache_dir;
    /// When persistence is on, also snapshot the load model's EWMA
    /// profiles at shutdown and re-import them as priors at boot (the
    /// warm-scheduling half of a warm start). No effect with an empty
    /// cache_dir.
    bool persist_load_model = true;
    /// Shard count for ShardedService (service/shard_router.h): the
    /// fleet builds this many CompileService shards, each with this
    /// config (num_workers is *per shard*). A plain CompileService
    /// ignores it beyond validation. 1 = unsharded.
    int shards = 1;
    /// Which shard a CompileService instance is (set by ShardedService,
    /// 0 for a standalone service). Only affects telemetry track
    /// grouping — Chrome traces show one "shard N" track group per
    /// shard — never scheduling or outputs.
    int shard_id = 0;

    /// Reject nonsense configurations before they turn into deadlocks
    /// or silent misbehavior deep inside the service. Returns an empty
    /// string when the config is usable, else a one-line description of
    /// the first problem. CompileService and ShardedService construction
    /// call this and throw std::invalid_argument on failure; chehabd
    /// calls it right after flag parsing so the error surfaces as a
    /// usage message instead of an exception.
    ///
    /// Deliberately *valid* edge cases: kernel/run cache capacity 0
    /// (means unbounded, the default) and max_lanes 0 (means "as many
    /// lanes as the row allows") — both are long-standing semantics
    /// with in-tree users, so validate() only rejects values that no
    /// semantics is assigned to (negative counts, non-finite windows,
    /// out-of-range model fractions).
    std::string validate() const;
};

// ServiceStats (the aggregate counter snapshot, mergeable across
// shards) and checkStatsInvariants live in service/service_stats.h;
// the abstract caller-facing interface in service/service_api.h.

/// One service shard: the complete compile-and-run engine described at
/// the top of this file. ShardedService (service/shard_router.h) runs N
/// of these behind a router; both implement ServiceApi so every caller
/// is agnostic to the difference.
class CompileService final : public ServiceApi
{
  public:
    /// Throws std::invalid_argument when config.validate() rejects the
    /// configuration.
    explicit CompileService(ServiceConfig config = {});
    ~CompileService() override;

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /// Enqueue one compile; the future resolves when the artifact is
    /// available (immediately on a cache hit). Never throws on compile
    /// failure — inspect CompileResponse::ok.
    std::future<CompileResponse> submit(CompileRequest request) override;

    /// Enqueue one compile-then-execute job; the future resolves when
    /// the outputs are available. Never throws on compile or execution
    /// failure — inspect RunResponse::ok.
    std::future<RunResponse> submitRun(RunRequest request) override;

    ServiceStats stats() const override;
    int numWorkers() const override;
    const trs::Ruleset& ruleset() const { return ruleset_; }

    /// The shard load signal the router balances run traffic on: the
    /// load model's sum of predicted seconds over queued + in-flight
    /// work (see LoadModel::noteEnqueued). Instantaneous; exactly zero
    /// at quiescence.
    double predictedLoadSeconds() const
    {
        return load_model_.inflightPredictedSeconds();
    }

    /// Block until every task submitted so far has fully finished.
    /// Futures resolve from *inside* worker tasks, so a caller that was
    /// just unblocked can observe the pool mid-epilogue — in particular
    /// before the final task's dispatch span reached the trace
    /// recorder. Call this before exporting traces or asserting on
    /// span counts; responses themselves never need it.
    void drain() override;

    /// The service's trace recorder (always present; a no-op unless
    /// ServiceConfig::telemetry enabled it). Exposes the recorded
    /// events and the Chrome trace exporter.
    const telemetry::TraceRecorder& telemetry() const { return telemetry_; }

  private:
    /// Admit \p key into the kernel cache; when this caller becomes the
    /// owner, dispatch the compile of \p canonical under \p pipeline
    /// onto the pool at \p predicted (load-model seconds) priority.
    /// \p estimate is the static cost the model calibrates against;
    /// \p request_id tags the dispatch/compile telemetry spans.
    CompileCache::Admission admitCompile(const ir::ExprPtr& canonical,
                                         const compiler::DriverConfig& pipeline,
                                         const CacheKey& key,
                                         double estimate,
                                         double predicted,
                                         std::uint64_t request_id);

    /// The per-params runtime pool (created on first use).
    RuntimePool& poolFor(const fhe::SealLiteParams& params);

    CompileResponse makeResponse(const CompileRequest& request,
                                 const CacheEntry::Settled& settled,
                                 bool cache_hit, bool deduplicated,
                                 double queue_seconds,
                                 double estimated_cost,
                                 double predicted_seconds) const;

    /// Try to enqueue a settled-compile run job into the coalescer
    /// (its group identity travels in lane.group_key). Returns false —
    /// leaving \p lane untouched — when batching is off or the program
    /// is not lane-safe for these parameters; the caller must then
    /// execute solo. On success \p lane has been moved into the
    /// planner.
    bool tryCoalesce(BatchLane& lane);

    /// The consolidation policy the load model prescribes (cost-driven
    /// when enabled, legacy stride FFD otherwise).
    ConsolidatePolicy consolidatePolicy();

    /// Dispatch one flushed group onto the worker pool (solo execution
    /// for single-lane groups).
    void dispatchGroup(BatchPlanner::Group group, bool window_flush);

    /// Submit a solo execution task for \p lane onto the pool.
    void submitSoloRun(BatchLane lane);

    /// Record the "execute" span plus its setup/evaluate/decode
    /// sub-spans (offsets derived from the RunResult's measured phase
    /// split) and the phase histogram samples for one owner execution
    /// — solo or packed row. No-op when telemetry is disabled.
    void recordExecutePhases(int worker, std::int64_t start_ns,
                             std::uint64_t request_id,
                             const compiler::RunResult& result,
                             double seconds, int lanes);

    /// Execute \p lane solo on \p runtime and publish its entry
    /// (success or failure). The one solo-execution body: the pool task
    /// and the packed-row fallback both run through here, so their
    /// semantics (reseed scheme, stats, artifact fields, timing) cannot
    /// diverge.
    void runSoloLane(const BatchLane& lane, compiler::FheRuntime& runtime,
                     int worker);

    /// Execute a >= 2 lane group as one packed row (worker context):
    /// FheRuntime::runPacked for a single-member group, the cross-kernel
    /// composite path for a multi-member one.
    void executePacked(BatchPlanner::Group& group, int worker);

    /// The composite program for a canonicalized multi-member group,
    /// served from the content-addressed composite cache or freshly
    /// composed.
    std::shared_ptr<const compiler::CompositeProgram>
    compositeFor(const BatchPlanner::Group& group);

    /// Background loop flushing window-expired groups.
    void flusherLoop();

    ServiceConfig config_;
    trs::Ruleset ruleset_; ///< Owned, immutable after construction.
    CompileCache cache_;
    RunCache run_cache_;
    /// On-disk persistence tier; null when config_.cache_dir is empty.
    /// Declared before pool_ so workers may touch it until they drain.
    std::unique_ptr<PersistStore> persist_;
    /// Timer-augmented cost model behind dispatch priorities, adaptive
    /// windows and cost-driven consolidation. Internally synchronized;
    /// may be queried under batch_mutex_ (it never calls back out).
    LoadModel load_model_;

    mutable std::mutex pools_mutex_;
    std::unordered_map<std::uint64_t, std::unique_ptr<RuntimePool>> pools_;

    /// Guards stats_ — and, in stats(), is held across the cache /
    /// load-model / pool sub-snapshot reads so one snapshot is
    /// mutually consistent. Lock ordering: stats_mutex_ is a leaf for
    /// writers (never held while taking another service lock except
    /// inside stats(), which takes only the sub-stats' own leaf
    /// mutexes); batch_mutex_ -> stats_mutex_ is the one nesting.
    mutable std::mutex stats_mutex_;
    ServiceStats stats_;

    /// Request-lifecycle recorder (see ServiceConfig::telemetry).
    /// Declared before pool_ so it outlives the worker drain.
    telemetry::TraceRecorder telemetry_;
    /// Telemetry correlation ids, shared by compile and run requests
    /// (ids are process-unique, 1-based; 0 means "no request").
    std::atomic<std::uint64_t> next_request_id_{0};

    /// Memoized lane-safety verdict for one group identity: the
    /// analysis depends only on (compiled program, effective budget,
    /// row size), all captured by the BatchGroupKey, so the hot path —
    /// thousands of requests for the same small kernel — computes it
    /// once per kernel instead of once per request.
    struct GroupFit
    {
        LaneFit fit;
        compiler::RotationKeyPlan plan;
    };

    /// Coalescer state: planner, fit memo and composite cache guarded
    /// by batch_mutex_; the flusher thread sleeps on batch_cv_ until
    /// the earliest group deadline.
    std::mutex batch_mutex_;
    std::condition_variable batch_cv_;
    BatchPlanner planner_;
    std::unordered_map<BatchGroupKey, GroupFit, BatchGroupKeyHash>
        fit_cache_;
    /// Content-addressed composite cache: compositeFingerprint of the
    /// canonicalized group -> composed program, so a recurring mix of
    /// kernels composes (and renames) once. Same crude churn bound as
    /// the fit memo.
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const compiler::CompositeProgram>>
        composite_cache_;
    bool batch_stop_ = false;
    std::thread flusher_;

    /// Declared last so it destructs first: worker tasks touch the
    /// cache, pool and stats members above, which must outlive the
    /// drain.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace chehab::service
