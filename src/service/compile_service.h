/// \file
/// Multi-threaded compile-and-run front end over the unified
/// CompilerDriver (compiler/driver.h).
///
/// Compile path:
///
///     submit(request)
///        |  canonicalize on the caller, derive CacheKey + cost estimate
///        v
///     KernelCache::acquire  -- owner --> ThreadPool (priority = cost)
///        |                                  | CompilerDriver::compile
///        |  hit / in-flight join            v
///        +-----------------------> CacheEntry settles -> futures resolve
///
/// Run path (submitRun) reuses the compile path end to end — run
/// requests and plain compile requests dedupe against the same kernel
/// cache — then chains execution onto the settled compile:
///
///     submitRun(request)
///        |  admit compile (above) + RunCache::acquire (single-flight)
///        v
///     compile settles -- run owner --> ThreadPool: lease pooled
///        |                             FheRuntime (per-params), reseed
///        |  run hit / join             deterministically, execute
///        +--------------------> RunEntry settles -> futures resolve
///
/// Expensive kernels dispatch first (longest-processing-time-first on
/// the §5.3.1 cost estimate), which minimizes batch makespan when job
/// costs are heterogeneous. Identical concurrent requests compile (and
/// execute) once: single-flight on both caches. Both caches take an
/// optional LRU capacity so long-running processes stay bounded.
///
/// Thread-safety contract: every public member function may be called
/// concurrently from any thread. Determinism: the driver pipelines are
/// deterministic and the runtime pool reseeds per request (see
/// service/runtime_pool.h), so for a fixed request the service returns
/// a byte-identical instruction stream — and for run requests,
/// bit-identical outputs and noise accounting — regardless of worker
/// count or submission order.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compiler/driver.h"
#include "compiler/pipeline.h"
#include "rl/agent.h"
#include "service/kernel_cache.h"
#include "service/request.h"
#include "service/runtime_pool.h"
#include "support/thread_pool.h"
#include "trs/ruleset.h"

namespace chehab::service {

/// What the run cache stores per entry: the executed program's compile
/// artifact plus the execution outcome.
struct RunArtifact
{
    compiler::Compiled compiled;
    compiler::RunResult result;
    double compile_seconds = 0.0; ///< Wall time of the producing compile.
};

using RunEntry = SettleEntry<RunArtifact>;
using RunCache = SingleFlightCache<RunKey, RunKeyHash, RunArtifact>;

/// Service construction knobs.
struct ServiceConfig
{
    int num_workers = 4;
    /// Agent for rl-trs pipelines; not owned, must outlive the service.
    /// Pipelines naming "rl-trs" fail with a CompileError message when
    /// null.
    const rl::RlAgent* agent = nullptr;
    /// LRU capacity of the kernel (compile) cache; 0 = unbounded.
    std::size_t kernel_cache_capacity = 0;
    /// LRU capacity of the run-result cache; 0 = unbounded.
    std::size_t run_cache_capacity = 0;
};

/// Aggregate service counters (monotonic; snapshot via stats()).
struct ServiceStats
{
    std::uint64_t submitted = 0;      ///< Compile requests accepted.
    std::uint64_t compiled = 0;       ///< Owner compiles actually run.
    std::uint64_t failed = 0;         ///< Compiles that threw.
    double total_compile_seconds = 0.0; ///< Sum over owner compiles.

    std::uint64_t run_submitted = 0;  ///< Run requests accepted.
    std::uint64_t executed = 0;       ///< Owner executions actually run.
    std::uint64_t run_failed = 0;     ///< Runs that failed (either stage).
    double total_exec_seconds = 0.0;  ///< Sum over owner executions.
    std::uint64_t runtimes_created = 0; ///< Pooled FheRuntimes built.

    KernelCache::Stats cache;         ///< Hits/misses/evictions etc.
    RunCache::Stats run_cache;
};

class CompileService
{
  public:
    explicit CompileService(ServiceConfig config = {});
    ~CompileService();

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /// Enqueue one compile; the future resolves when the artifact is
    /// available (immediately on a cache hit). Never throws on compile
    /// failure — inspect CompileResponse::ok.
    std::future<CompileResponse> submit(CompileRequest request);

    /// Submit a whole batch and block for all responses, in input order.
    std::vector<CompileResponse> compileBatch(
        std::vector<CompileRequest> requests);

    /// Enqueue one compile-then-execute job; the future resolves when
    /// the outputs are available. Never throws on compile or execution
    /// failure — inspect RunResponse::ok.
    std::future<RunResponse> submitRun(RunRequest request);

    /// Submit a whole run batch and block for all responses, in input
    /// order.
    std::vector<RunResponse> runBatch(std::vector<RunRequest> requests);

    ServiceStats stats() const;
    int numWorkers() const;
    const trs::Ruleset& ruleset() const { return ruleset_; }

  private:
    /// Admit \p key into the kernel cache; when this caller becomes the
    /// owner, dispatch the compile of \p canonical under \p pipeline
    /// onto the pool at \p estimate priority.
    KernelCache::Admission admitCompile(const ir::ExprPtr& canonical,
                                        const compiler::DriverConfig& pipeline,
                                        const CacheKey& key,
                                        double estimate);

    /// The per-params runtime pool (created on first use).
    RuntimePool& poolFor(const fhe::SealLiteParams& params);

    CompileResponse makeResponse(const CompileRequest& request,
                                 const CacheEntry::Settled& settled,
                                 bool cache_hit, bool deduplicated,
                                 double queue_seconds,
                                 double estimated_cost) const;

    ServiceConfig config_;
    trs::Ruleset ruleset_; ///< Owned, immutable after construction.
    KernelCache cache_;
    RunCache run_cache_;

    mutable std::mutex pools_mutex_;
    std::unordered_map<std::uint64_t, std::unique_ptr<RuntimePool>> pools_;

    mutable std::mutex stats_mutex_;
    ServiceStats stats_;

    /// Declared last so it destructs first: worker tasks touch the
    /// cache, pool and stats members above, which must outlive the
    /// drain.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace chehab::service
