#include "service/runtime_pool.h"

#include <utility>

namespace chehab::service {

RuntimePool::RuntimePool(fhe::SealLiteParams params) : params_(params) {}

std::unique_ptr<compiler::FheRuntime>
RuntimePool::createRuntime()
{
    auto runtime = std::make_unique<compiler::FheRuntime>(params_);
    // Warm the fresh-budget cache now, while the randomness stream is
    // in its deterministic post-construction state: the cached value
    // must not depend on which request happens to run first on this
    // instance (runJob reseeds per request, so a first-use measurement
    // would vary with scheduling).
    runtime->scheme().freshNoiseBudget();
    return runtime;
}

RuntimePool::Lease
RuntimePool::acquire()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            std::unique_ptr<compiler::FheRuntime> runtime =
                std::move(idle_.back());
            idle_.pop_back();
            return Lease(this, std::move(runtime));
        }
        ++created_;
    }
    // Construct outside the lock: keygen is the expensive part and
    // concurrent first-use requests should not serialize on it.
    std::unique_ptr<compiler::FheRuntime> runtime = createRuntime();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        all_.push_back(runtime.get());
    }
    return Lease(this, std::move(runtime));
}

fhe::PolyArena::Stats
RuntimePool::arenaStats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    fhe::PolyArena::Stats total;
    for (const compiler::FheRuntime* runtime : all_) {
        const fhe::PolyArena::Stats s = runtime->arenaStats();
        total.allocs += s.allocs;
        total.reuses += s.reuses;
        total.bytes += s.bytes;
    }
    return total;
}

void
RuntimePool::release(std::unique_ptr<compiler::FheRuntime> runtime)
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.push_back(std::move(runtime));
}

int
RuntimePool::created() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return created_;
}

} // namespace chehab::service
