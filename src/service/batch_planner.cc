#include "service/batch_planner.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace chehab::service {

namespace {

using compiler::FheInstr;
using compiler::FheOpcode;
using compiler::FheProgram;
using compiler::PackSlot;
using compiler::RotationKeyPlan;

bool
isPow2(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

int
nextPow2(int x)
{
    int p = 1;
    while (p < x) p <<= 1;
    return p;
}

/// Conservative lane state of one virtual register at stride S.
///
/// Invariants (per lane region of S slots):
///   - uniform: the packed value is exact and identical in every lane;
///     periodic additionally says the *solo* row is period-S (a
///     replicated or all-zero constant pack), which is what whole-row
///     rotations need to keep a uniform register exact — a
///     non-replicated constant pack is identical per region in the
///     packed row but zero-tailed in the solo row, so rotating it
///     wraps constants where solo semantics has zeros;
///   - otherwise, region offsets [dirty_bot, S - dirty_top) hold
///     exactly what a solo run of that lane would hold there, and
///     offsets [zero_from, S) are zero in solo semantics (zero_from = S
///     when unknown).
struct RegState
{
    bool uniform = false;
    bool periodic = false;
    int dirty_bot = 0;
    int dirty_top = 0;
    int zero_from = 0;
};

/// True when \p x is provably zero — in both packed and solo semantics
/// — at every region offset in [k, S).
bool
zeroAbove(const RegState& x, int k, int stride)
{
    if (k >= stride) return true;
    if (x.uniform) return x.zero_from <= k;
    return x.dirty_top == 0 && x.zero_from <= k && x.dirty_bot <= k;
}

RegState
packState(const FheInstr& instr, int stride)
{
    RegState st;
    const int width = static_cast<int>(instr.slots.size());
    bool all_const = true;
    int last_nonzero = -1;
    for (int i = 0; i < width; ++i) {
        const PackSlot& slot = instr.slots[static_cast<std::size_t>(i)];
        if (slot.kind != PackSlot::Kind::Const) {
            all_const = false;
            break;
        }
        if (slot.value != 0) last_nonzero = i;
    }
    // Constant packs (masks above all) hold the same values in every
    // lane; anything touching inputs is lane-specific. The periodic
    // (rotation-exact) claim for a replicated constant needs its period
    // to divide the stride: per-region replication restarts the phase
    // at every region base, so a non-dividing width disagrees with the
    // solo row's continuous period once a rotation crosses a region
    // boundary. (The scheduler only replicates power-of-two widths, for
    // which pow2 strides always divide evenly, but analyzeLaneFit is a
    // public API and must stay sound for arbitrary programs.)
    st.uniform = all_const;
    st.periodic =
        all_const &&
        ((instr.replicate && width > 0 && stride % width == 0) ||
         last_nonzero < 0);
    if (instr.replicate) {
        // Period-w fill of the whole region: zero only if all-zero.
        st.zero_from = (all_const && last_nonzero < 0) ? 0 : stride;
    } else {
        st.zero_from = all_const ? last_nonzero + 1 : width;
    }
    return st;
}

RegState
combine(const RegState& a, const RegState& b, bool is_mul, int stride)
{
    RegState o;
    o.uniform = a.uniform && b.uniform;
    o.periodic = a.periodic && b.periodic; // Pointwise ops keep period.
    // Virtual zero support of the result: a product is zero where
    // either factor is, a sum/difference where both are.
    o.zero_from = is_mul ? std::min(a.zero_from, b.zero_from)
                         : std::max(a.zero_from, b.zero_from);
    if (o.uniform) return o;

    int dirty_a = a.dirty_top;
    int dirty_b = b.dirty_top;
    if (is_mul) {
        // Mask cleaning: multiplying a dirty top margin by an operand
        // that is provably zero there yields exact zeros — this is how
        // the scheduler's own wraparound masks confine rotation spill.
        if (dirty_a > 0 && zeroAbove(b, stride - dirty_a, stride)) {
            dirty_a = 0;
        }
        if (dirty_b > 0 && zeroAbove(a, stride - dirty_b, stride)) {
            dirty_b = 0;
        }
    }
    o.dirty_top = std::max(dirty_a, dirty_b);
    // Zero knowledge is top-anchored, so bottom margins never clean.
    o.dirty_bot = std::max(a.dirty_bot, b.dirty_bot);
    return o;
}

/// Apply one physical rotation by \p step (positive = left) to \p s.
RegState
rotateState(RegState s, int step, int stride)
{
    if (step == 0) return s;
    // A period-S row rotates identically whole-row or per-region:
    // uniform survives. A uniform-but-aperiodic row (non-replicated
    // constant pack) does not — its packed row repeats the pattern per
    // region while the solo row is zero past the pattern, so rotation
    // wraps constants where solo has zeros. Demote it to the
    // dirty-margin rules, for which its (0, 0, zero_from) state is a
    // valid starting point.
    if (s.uniform && s.periodic) return s;
    s.uniform = false;
    if (step > 0) {
        const int c = std::min(step, stride);
        s.dirty_bot = std::max(0, s.dirty_bot - c);
        s.dirty_top = std::min(stride, s.dirty_top + c);
        // Zeros shift toward the region base but the top c slots now
        // hold (wrapped or neighbouring) unknowns.
        if (s.zero_from != 0) s.zero_from = stride;
        return s;
    }
    const int m = std::min(-step, stride);
    // A right rotation drags the *previous* lane's top slots into this
    // lane's readout zone — unless those slots are provable zeros, in
    // which case the packed row and solo semantics agree.
    if (zeroAbove(s, stride - m, stride)) {
        s.dirty_bot =
            s.dirty_bot == 0 ? 0 : std::min(stride, s.dirty_bot + m);
        s.dirty_top = 0;
    } else {
        s.dirty_bot = std::min(stride, s.dirty_bot + m);
        s.dirty_top = std::max(0, s.dirty_top - m);
    }
    s.zero_from = std::min(stride, s.zero_from + m);
    return s;
}

/// Run the dataflow at one candidate stride. Returns true when the
/// output register's readout window [0, output_width) is certified
/// exact for every lane.
bool
safeAtStride(const FheProgram& program, const RotationKeyPlan& plan,
             int stride, std::string* reason)
{
    // Seed every register as "no knowledge" (zero_from = stride, i.e.
    // no provable zeros): a register read before any instruction
    // writes it must not pass for all-zero, or the mask-cleaning rule
    // could certify an unsound packing. (Such programs fail at
    // execution anyway — the runtime's register maps throw — but the
    // analysis is a public API and must stay conservative on its own.)
    RegState unknown;
    unknown.zero_from = stride;
    std::vector<RegState> regs(
        static_cast<std::size_t>(std::max(program.num_regs, 1)), unknown);
    for (const FheInstr& instr : program.instrs) {
        RegState st;
        switch (instr.op) {
          case FheOpcode::PackCipher:
          case FheOpcode::PackPlain:
            if (static_cast<int>(instr.slots.size()) > stride) {
                if (reason) *reason = "pack wider than lane stride";
                return false;
            }
            st = packState(instr, stride);
            break;
          case FheOpcode::Add:
          case FheOpcode::Sub:
          case FheOpcode::AddPlain:
            st = combine(regs[static_cast<std::size_t>(instr.a)],
                         regs[static_cast<std::size_t>(instr.b)],
                         /*is_mul=*/false, stride);
            break;
          case FheOpcode::Mul:
          case FheOpcode::MulPlain:
            st = combine(regs[static_cast<std::size_t>(instr.a)],
                         regs[static_cast<std::size_t>(instr.b)],
                         /*is_mul=*/true, stride);
            break;
          case FheOpcode::Negate:
            st = regs[static_cast<std::size_t>(instr.a)];
            break;
          case FheOpcode::Rotate: {
            auto seq = plan.decomposition.find(instr.step);
            if (seq == plan.decomposition.end()) {
                if (reason) *reason = "rotation step missing from key plan";
                return false;
            }
            // The physical rotations are the decomposed components, but
            // whole-row cyclic shifts compose exactly: the sequence IS
            // the rotation by its net sum, in both packed and solo
            // semantics, and no intermediate row is ever observed. So
            // the dataflow applies the net displacement once — which is
            // what lets a NAF decomposition with negative components
            // (e.g. 3 -> {-1, 4}) certify: component-wise application
            // would smear a spurious dirty bottom margin from the right
            // rotation even though the dragged slots rotate straight
            // back.
            long long net = 0;
            for (int component : seq->second) net += component;
            st = rotateState(
                regs[static_cast<std::size_t>(instr.a)],
                static_cast<int>(std::max<long long>(
                    std::min<long long>(net, stride), -stride)),
                stride);
            break;
          }
        }
        regs[static_cast<std::size_t>(instr.dst)] = st;
    }
    if (program.output_reg < 0 ||
        program.output_reg >= static_cast<int>(regs.size())) {
        if (reason) *reason = "program has no output register";
        return false;
    }
    const RegState& out = regs[static_cast<std::size_t>(program.output_reg)];
    if (out.uniform) return true;
    if (out.dirty_bot > 0) {
        if (reason) *reason = "rotations dirty the lane's readout base";
        return false;
    }
    if (program.output_width > stride - out.dirty_top) {
        if (reason) *reason = "rotation spill reaches the output window";
        return false;
    }
    return true;
}

/// Total order on compile keys, for deterministic member layout.
bool
compileKeyLess(const CacheKey& a, const CacheKey& b)
{
    return std::make_tuple(a.source.hi, a.source.lo, a.pipeline) <
           std::make_tuple(b.source.hi, b.source.lo, b.pipeline);
}

} // namespace

LaneFit
analyzeLaneFit(const compiler::FheProgram& program,
               const compiler::RotationKeyPlan& plan, int row_slots)
{
    LaneFit fit;
    if (!isPow2(row_slots)) {
        fit.reason = "row size is not a power of two";
        return fit;
    }
    int width_max = 1;
    for (const FheInstr& instr : program.instrs) {
        if (instr.op == FheOpcode::PackCipher ||
            instr.op == FheOpcode::PackPlain) {
            width_max = std::max(width_max,
                                 static_cast<int>(instr.slots.size()));
        }
    }
    const int start =
        nextPow2(std::max({1, width_max, program.output_width}));
    std::string reason = "no certifying stride";
    // Safety is monotone in the stride, so the first certified stride
    // is the smallest — and therefore packs the most lanes per row.
    for (int stride = start; stride <= row_slots; stride <<= 1) {
        if (safeAtStride(program, plan, stride, &reason)) {
            fit.safe = true;
            fit.stride = stride;
            fit.max_lanes = row_slots / stride;
            if (fit.max_lanes < 2) {
                fit.safe = false;
                fit.reason = "kernel fills the row; nothing to coalesce";
            }
            return fit;
        }
    }
    fit.reason = reason;
    return fit;
}

std::optional<compiler::RotationKeyPlan>
mergeKeyPlans(const compiler::RotationKeyPlan& a,
              const compiler::RotationKeyPlan& b)
{
    compiler::RotationKeyPlan merged = a;
    for (const auto& [step, sequence] : b.decomposition) {
        auto it = merged.decomposition.find(step);
        if (it == merged.decomposition.end()) {
            merged.decomposition.emplace(step, sequence);
        } else if (it->second != sequence) {
            // The members realize the same logical rotation through
            // different physical sequences; one merged plan cannot
            // honour both certificates.
            return std::nullopt;
        }
    }
    merged.keys.insert(merged.keys.end(), b.keys.begin(), b.keys.end());
    std::sort(merged.keys.begin(), merged.keys.end());
    merged.keys.erase(std::unique(merged.keys.begin(), merged.keys.end()),
                      merged.keys.end());
    return merged;
}

int
BatchPlanner::Group::capacityAt(int at_stride) const
{
    if (at_stride <= 0) return 0;
    const int row_bound = row_slots / at_stride;
    return lanes_cap > 0 ? std::min(row_bound, lanes_cap) : row_bound;
}

namespace {

/// A feasible merge of one group onto one row, computed without
/// mutating either side.
struct MergePlan
{
    int new_stride = 0;
    compiler::RotationKeyPlan merged_plan;
};

/// Can every lane of \p group ride \p row? Same row identity, stride
/// grown to cover both, capacity respected, key plans compatible.
std::optional<MergePlan>
planMerge(const BatchPlanner::Group& row, const BatchPlanner::Group& group)
{
    if (!(row.key == group.key) || row.row_slots != group.row_slots) {
        return std::nullopt;
    }
    const int new_stride = std::max(row.stride, group.stride);
    if (new_stride > row.row_slots || row.row_slots % new_stride != 0) {
        return std::nullopt;
    }
    if (row.total_lanes + group.total_lanes > row.capacityAt(new_stride)) {
        return std::nullopt;
    }
    std::optional<compiler::RotationKeyPlan> merged =
        mergeKeyPlans(row.merged_plan, group.merged_plan);
    if (!merged) return std::nullopt; // Incompatible rotation plans.
    MergePlan plan;
    plan.new_stride = new_stride;
    plan.merged_plan = std::move(*merged);
    return plan;
}

/// Move \p group's members onto \p row under \p plan.
void
commitMerge(BatchPlanner::Group& row, BatchPlanner::Group& group,
            MergePlan plan)
{
    row.stride = plan.new_stride;
    row.merged_plan = std::move(plan.merged_plan);
    row.estimate_sum += group.estimate_sum;
    row.predicted_sum += group.predicted_sum;
    row.total_lanes += group.total_lanes;
    for (BatchPlanner::GroupMember& member : group.members) {
        row.members.push_back(std::move(member));
    }
}

/// Wasted lanes of \p row if \p group joined it at \p new_stride.
int
wasteAfter(const BatchPlanner::Group& row,
           const BatchPlanner::Group& group, int new_stride)
{
    return row.capacityAt(new_stride) -
           (row.total_lanes + group.total_lanes);
}

/// Total order on rows for cost-driven tie-breaks: compile-key content
/// of the first member, so row choice is a pure function of the
/// flushed set, never of row creation order alone.
bool
rowContentLess(const BatchPlanner::Group& a, const BatchPlanner::Group& b)
{
    return compileKeyLess(a.members.front().compile,
                          b.members.front().compile);
}

/// A chosen seat: the row index and the merge plan that admits it.
struct Seat
{
    std::size_t row = 0;
    MergePlan plan;
};

/// The row in \p rows that \p group should join under \p policy, or
/// nullopt when no row is feasible (or the cost rule prefers an own
/// row). Cost-driven choice minimizes the resulting predicted row
/// seconds (the makespan objective), then wasted lanes, then row
/// content; legacy choice is first fit.
std::optional<Seat>
chooseRow(std::vector<BatchPlanner::Group>& rows,
          const BatchPlanner::Group& group, const ConsolidatePolicy& policy,
          bool allow_new_row)
{
    std::optional<Seat> best;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::optional<MergePlan> plan = planMerge(rows[r], group);
        if (!plan) continue;
        if (!policy.cost_driven || !best) {
            best = Seat{r, std::move(*plan)};
            if (!policy.cost_driven) break; // First fit.
            continue;
        }
        const auto score = [&](std::size_t idx, const MergePlan& p) {
            return std::make_pair(rows[idx].predicted_sum +
                                      group.predicted_sum,
                                  wasteAfter(rows[idx], group,
                                             p.new_stride));
        };
        const auto cand = score(r, *plan);
        const auto incumbent = score(best->row, best->plan);
        if (cand < incumbent ||
            (cand == incumbent &&
             rowContentLess(rows[r], rows[best->row]))) {
            best = Seat{r, std::move(*plan)};
        }
    }
    if (!best) return std::nullopt;
    if (policy.cost_driven && allow_new_row && policy.shareable &&
        policy.parallelism > 0 &&
        static_cast<int>(rows.size()) < policy.parallelism &&
        !policy.shareable(group)) {
        // Execution-dominated group with worker slots still free:
        // sharing a row would serialize real work for an overhead
        // saving that cannot pay for it — give it its own row.
        return std::nullopt;
    }
    return best;
}

} // namespace

std::optional<BatchPlanner::Group>
BatchPlanner::add(const BatchGroupKey& key, const MemberSpec& member,
                  BatchLane lane, int row_slots, int lanes_cap,
                  Clock::time_point now, double adaptive_wait_seconds)
{
    auto it = pending_.find(key);
    if (it == pending_.end()) {
        Group group;
        group.key.params_hash = key.params_hash;
        group.key.key_budget = key.key_budget;
        group.row_slots = row_slots;
        group.lanes_cap = lanes_cap;
        group.stride = member.min_stride;
        group.hard_deadline = now + window_;
        group.deadline = group.hard_deadline;
        group.merged_plan = *member.plan;
        // One program execution per member, however many lanes ride it:
        // the group's predicted seconds count each member once.
        group.predicted_sum = lane.predicted;
        GroupMember fresh;
        fresh.compile = member.compile;
        fresh.compiled = member.compiled;
        fresh.plan = *member.plan;
        fresh.min_stride = member.min_stride;
        group.members.push_back(std::move(fresh));
        it = pending_.emplace(key, std::move(group)).first;
    }
    Group& group = it->second;
    group.estimate_sum += lane.estimate;
    group.members.front().lanes.push_back(std::move(lane));
    ++group.total_lanes;
    if (group.full()) {
        Group full = std::move(group);
        pending_.erase(it);
        return full;
    }
    if (adaptive_wait_seconds >= 0.0) {
        // Recompute the effective deadline from the arrival-rate
        // estimate on every arrival, ceiling-bounded by the fixed
        // window. The caller must notify its flusher afterwards: the
        // new deadline may be earlier than the one it sleeps on.
        const auto wait = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(adaptive_wait_seconds));
        group.deadline = std::min(group.hard_deadline, now + wait);
    } else {
        group.deadline = group.hard_deadline;
    }
    return std::nullopt;
}

std::optional<BatchPlanner::Clock::time_point>
BatchPlanner::earliestDeadline() const
{
    std::optional<Clock::time_point> earliest;
    for (const auto& [key, group] : pending_) {
        if (!earliest || group.deadline < *earliest) {
            earliest = group.deadline;
        }
    }
    return earliest;
}

std::vector<BatchPlanner::Group>
BatchPlanner::takeDue(Clock::time_point now)
{
    std::vector<Group> due;
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline <= now) {
            due.push_back(std::move(it->second));
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    return due;
}

std::size_t
BatchPlanner::pendingLanesFor(const BatchGroupKey& key) const
{
    auto it = pending_.find(key);
    if (it == pending_.end()) return 0;
    return static_cast<std::size_t>(it->second.total_lanes);
}

std::vector<BatchPlanner::Group>
BatchPlanner::consolidateDue(std::vector<Group> due,
                             const ConsolidatePolicy& policy)
{
    std::vector<Group> rows = consolidateGroups(std::move(due), policy);
    for (auto it = pending_.begin(); it != pending_.end();) {
        // A pending row-mate is pulled forward only when it joins a row
        // — and, under the cost rule, only when it is overhead-
        // dominated: pulling an execution-dominated mate would
        // serialize its work early when letting it keep its window (and
        // likely its own row) costs nothing.
        bool joined = false;
        if (!policy.cost_driven || !policy.shareable ||
            policy.shareable(it->second)) {
            std::optional<Seat> seat = chooseRow(rows, it->second, policy,
                                                 /*allow_new_row=*/false);
            if (seat) {
                commitMerge(rows[seat->row], it->second,
                            std::move(seat->plan));
                joined = true;
            }
        }
        it = joined ? pending_.erase(it) : std::next(it);
    }
    return rows;
}

std::vector<BatchPlanner::Group>
BatchPlanner::takeAll()
{
    std::vector<Group> all;
    all.reserve(pending_.size());
    for (auto& [key, group] : pending_) all.push_back(std::move(group));
    pending_.clear();
    return all;
}

std::size_t
BatchPlanner::pendingLanes() const
{
    std::size_t lanes = 0;
    for (const auto& [key, group] : pending_) {
        lanes += static_cast<std::size_t>(group.total_lanes);
    }
    return lanes;
}

std::vector<BatchPlanner::Group>
consolidateGroups(std::vector<BatchPlanner::Group> groups,
                  const ConsolidatePolicy& policy)
{
    // Sorting first makes the consolidation a pure function of the
    // flushed set (arrival interleaving must not leak into row
    // composition). Cost-driven mode places the heaviest-predicted
    // groups first — the makespan analogue of longest-processing-time
    // scheduling — while the legacy mode keeps first-fit decreasing
    // over the certified strides (widest members seed rows, narrower
    // ones fill the remaining lanes). Every input group keeps its
    // lanes in one member, so each program still executes exactly
    // once.
    std::sort(groups.begin(), groups.end(),
              [&policy](const BatchPlanner::Group& a,
                        const BatchPlanner::Group& b) {
                  if (policy.cost_driven &&
                      a.predicted_sum != b.predicted_sum) {
                      return a.predicted_sum > b.predicted_sum;
                  }
                  if (a.stride != b.stride) return a.stride > b.stride;
                  if (a.total_lanes != b.total_lanes) {
                      return a.total_lanes > b.total_lanes;
                  }
                  return compileKeyLess(a.members.front().compile,
                                        b.members.front().compile);
              });
    std::vector<BatchPlanner::Group> rows;
    for (BatchPlanner::Group& group : groups) {
        std::optional<Seat> seat =
            chooseRow(rows, group, policy, /*allow_new_row=*/true);
        if (seat) {
            commitMerge(rows[seat->row], group, std::move(seat->plan));
        } else {
            rows.push_back(std::move(group));
        }
    }
    return rows;
}

std::uint64_t
BatchPlanner::canonicalizeAndSeed(Group& group)
{
    // Neither the member layout nor the lane order may depend on the
    // arrival interleaving: members sort by compile-key content, lanes
    // within a member by the full run identity (lanes are distinct by
    // single-flight, so the tuple is a total order in practice).
    std::stable_sort(group.members.begin(), group.members.end(),
                     [](const GroupMember& a, const GroupMember& b) {
                         return compileKeyLess(a.compile, b.compile);
                     });
    int lane_base = 0;
    for (GroupMember& member : group.members) {
        std::stable_sort(
            member.lanes.begin(), member.lanes.end(),
            [](const BatchLane& a, const BatchLane& b) {
                return std::make_tuple(a.run_key.env_hash,
                                       a.run_key.key_budget,
                                       a.run_key.params_hash,
                                       a.run_key.compile.source.hi,
                                       a.run_key.compile.source.lo,
                                       a.run_key.compile.pipeline) <
                       std::make_tuple(b.run_key.env_hash,
                                       b.run_key.key_budget,
                                       b.run_key.params_hash,
                                       b.run_key.compile.source.hi,
                                       b.run_key.compile.source.lo,
                                       b.run_key.compile.pipeline);
            });
        member.lane_base = lane_base;
        lane_base += static_cast<int>(member.lanes.size());
    }
    std::size_t h = 0x5041434b53454544ULL; // "PACKSEED"
    detail::mix(h, static_cast<std::uint64_t>(group.total_lanes));
    for (const GroupMember& member : group.members) {
        for (const BatchLane& lane : member.lanes) {
            detail::mix(h, static_cast<std::uint64_t>(
                               RunKeyHash{}(lane.run_key)));
        }
    }
    return static_cast<std::uint64_t>(h);
}

std::uint64_t
compositeFingerprint(const BatchPlanner::Group& group)
{
    std::size_t h = 0x434f4d504f534954ULL; // "COMPOSIT"
    detail::mix(h, static_cast<std::uint64_t>(group.stride));
    detail::mix(h, static_cast<std::uint64_t>(group.row_slots));
    // The members' effective key plans — and therefore the composite's
    // merged plan — are a function of (artifact, effective budget), so
    // the budget is part of the composite identity.
    detail::mix(h, static_cast<std::uint64_t>(group.key.key_budget));
    detail::mix(h, group.key.params_hash);
    for (const BatchPlanner::GroupMember& member : group.members) {
        detail::mix(h, member.compile.source.hi);
        detail::mix(h, member.compile.source.lo);
        detail::mix(h, member.compile.pipeline);
        detail::mix(h, static_cast<std::uint64_t>(member.lane_base));
        detail::mix(h, static_cast<std::uint64_t>(member.lanes.size()));
    }
    return static_cast<std::uint64_t>(h);
}

compiler::CompositeProgram
composeGroup(const BatchPlanner::Group& group)
{
    compiler::CompositeProgram composite;
    composite.lane_stride = group.stride;
    composite.plan = group.merged_plan;
    int reg_base = 0;
    for (const BatchPlanner::GroupMember& member : group.members) {
        const FheProgram& source = member.compiled->program;
        compiler::CompositeMember slice;
        slice.instr_begin =
            static_cast<int>(composite.program.instrs.size());
        for (const FheInstr& instr : source.instrs) {
            FheInstr renamed = instr;
            if (renamed.dst >= 0) renamed.dst += reg_base;
            if (renamed.a >= 0) renamed.a += reg_base;
            if (renamed.b >= 0) renamed.b += reg_base;
            composite.program.instrs.push_back(std::move(renamed));
        }
        slice.instr_end = static_cast<int>(composite.program.instrs.size());
        slice.lane_base = member.lane_base;
        slice.lane_count = static_cast<int>(member.lanes.size());
        slice.output_reg = source.output_reg + reg_base;
        slice.output_width = source.output_width;
        composite.members.push_back(slice);
        // Carry each member's mod-switch plan into the composite stream
        // (points shift by the slice offset). Drops are global barriers
        // at runtime — they switch every member's ciphertexts — so the
        // composite keeps the most conservative margin/floor of any
        // member that requested the pass.
        if (!source.mod_switch.empty()) {
            compiler::ModSwitchPlan& merged = composite.program.mod_switch;
            for (int point : source.mod_switch.points) {
                merged.points.push_back(point + slice.instr_begin);
            }
            merged.margin_bits = std::max(merged.margin_bits,
                                          source.mod_switch.margin_bits);
            merged.min_level =
                std::max(merged.min_level, source.mod_switch.min_level);
        }
        reg_base += std::max(source.num_regs, 1);
    }
    composite.program.num_regs = reg_base;
    // The composite's own output fields are unused (readout happens per
    // member slice), but keep them valid: point them at the last
    // member's output.
    composite.program.output_reg = composite.members.back().output_reg;
    composite.program.output_width = composite.members.back().output_width;
    return composite;
}

} // namespace chehab::service
