#include "service/shard_router.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "compiler/passes.h"
#include "support/error.h"

namespace chehab::service {

namespace {

/// splitmix64 finalizer: the ring needs well-spread 64-bit points from
/// sequential (shard, vnode) pairs, and key lookups need the CacheKey
/// hash whitened the same way so arcs and keys land in one space.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
ringPoint(const CacheKey& key)
{
    return mix64(static_cast<std::uint64_t>(CacheKeyHash{}(key)));
}

} // namespace

ShardRouter::ShardRouter(int shards, RouterConfig config)
    : shards_(shards), config_(config)
{
    if (shards < 1) {
        throw std::invalid_argument("ShardRouter: shards must be >= 1 "
                                    "(got " +
                                    std::to_string(shards) + ")");
    }
    if (config.vnodes < 1) {
        throw std::invalid_argument("ShardRouter: vnodes must be >= 1 "
                                    "(got " +
                                    std::to_string(config.vnodes) + ")");
    }
    ring_.reserve(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(config.vnodes));
    for (int shard = 0; shard < shards; ++shard) {
        for (int vnode = 0; vnode < config.vnodes; ++vnode) {
            // A shard's vnode points depend only on (shard, vnode) —
            // never on the total shard count — which is what makes the
            // mapping stable under growth: shard N+1's points are
            // *added* to the ring, every existing point stays put.
            const std::uint64_t point =
                mix64((static_cast<std::uint64_t>(shard) << 32) |
                      static_cast<std::uint64_t>(vnode));
            ring_.push_back(VNode{point, shard});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const VNode& a, const VNode& b) {
                  if (a.point != b.point) return a.point < b.point;
                  return a.shard < b.shard;
              });
}

int
ShardRouter::affinityShard(const CacheKey& key) const
{
    if (shards_ == 1) return 0;
    const std::uint64_t point = ringPoint(key);
    // The key belongs to the first vnode at or past its point,
    // wrapping to the ring's start past the last arc.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const VNode& node, std::uint64_t p) { return node.point < p; });
    if (it == ring_.end()) it = ring_.begin();
    return it->shard;
}

int
ShardRouter::routeCompile(const CacheKey& key)
{
    const int shard = affinityShard(key);
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.compile_routed;
    }
    return shard;
}

int
ShardRouter::routeRun(const CacheKey& key,
                      const std::vector<double>& predicted_loads)
{
    const int affinity = affinityShard(key);
    if (shards_ == 1 ||
        predicted_loads.size() != static_cast<std::size_t>(shards_)) {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.run_affinity;
        return affinity;
    }
    int coolest = 0;
    for (int shard = 1; shard < shards_; ++shard) {
        if (predicted_loads[static_cast<std::size_t>(shard)] <
            predicted_loads[static_cast<std::size_t>(coolest)]) {
            coolest = shard;
        }
    }
    const double affinity_load =
        predicted_loads[static_cast<std::size_t>(affinity)];
    const double min_load =
        predicted_loads[static_cast<std::size_t>(coolest)];
    // Hot test: relative to the idlest shard, with absolute slack so
    // near-empty fleets never trade cache affinity for microseconds.
    const bool hot = affinity_load >
                     config_.hot_factor * min_load +
                         config_.hot_slack_seconds;
    const int target = hot ? coolest : affinity;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        if (target == affinity) {
            ++stats_.run_affinity;
        } else {
            ++stats_.run_rerouted;
        }
    }
    return target;
}

RouterStats
ShardRouter::stats() const
{
    std::unique_lock<std::mutex> lock(stats_mutex_);
    return stats_;
}

ShardedService::ShardedService(ServiceConfig config,
                               RouterConfig router_config)
    : router_(std::max(config.shards, 1), router_config)
{
    const std::string problem = config.validate();
    if (!problem.empty()) {
        throw std::invalid_argument("ServiceConfig: " + problem);
    }
    shards_.reserve(static_cast<std::size_t>(config.shards));
    for (int shard = 0; shard < config.shards; ++shard) {
        ServiceConfig shard_config = config;
        shard_config.shard_id = shard;
        shards_.push_back(
            std::make_unique<CompileService>(shard_config));
    }
}

bool
ShardedService::routingKey(const ir::ExprPtr& source,
                           const compiler::DriverConfig& pipeline,
                           CacheKey& out)
{
    try {
        if (!source) return false;
        out = makeCacheKey(compiler::canonicalize(source), pipeline);
        return true;
    } catch (const std::exception&) {
        // The shard's own submit re-canonicalizes and produces the
        // identical error response; routing only has to be
        // deterministic, and "always shard 0" is.
        return false;
    }
}

std::vector<double>
ShardedService::predictedLoads() const
{
    std::vector<double> loads;
    loads.reserve(shards_.size());
    for (const std::unique_ptr<CompileService>& shard : shards_) {
        loads.push_back(shard->predictedLoadSeconds());
    }
    return loads;
}

std::future<CompileResponse>
ShardedService::submit(CompileRequest request)
{
    CacheKey key{};
    const int shard = routingKey(request.source, request.pipeline, key)
                          ? router_.routeCompile(key)
                          : 0;
    return shards_[static_cast<std::size_t>(shard)]->submit(
        std::move(request));
}

std::future<RunResponse>
ShardedService::submitRun(RunRequest request)
{
    CacheKey key{};
    const int shard = routingKey(request.source, request.pipeline, key)
                          ? router_.routeRun(key, predictedLoads())
                          : 0;
    return shards_[static_cast<std::size_t>(shard)]->submitRun(
        std::move(request));
}

ServiceStats
ShardedService::stats() const
{
    ServiceStats merged;
    bool first = true;
    for (const std::unique_ptr<CompileService>& shard : shards_) {
        if (first) {
            merged = shard->stats();
            first = false;
        } else {
            merged.merge(shard->stats());
        }
    }
    return merged;
}

ServiceStats
ShardedService::shardStats(int shard) const
{
    return shards_.at(static_cast<std::size_t>(shard))->stats();
}

int
ShardedService::numWorkers() const
{
    int workers = 0;
    for (const std::unique_ptr<CompileService>& shard : shards_) {
        workers += shard->numWorkers();
    }
    return workers;
}

void
ShardedService::drain()
{
    for (const std::unique_ptr<CompileService>& shard : shards_) {
        shard->drain();
    }
}

void
ShardedService::writeChromeTrace(std::ostream& out) const
{
    std::vector<const telemetry::TraceRecorder*> recorders;
    recorders.reserve(shards_.size());
    for (const std::unique_ptr<CompileService>& shard : shards_) {
        recorders.push_back(&shard->telemetry());
    }
    telemetry::writeChromeTraceMerged(out, recorders);
}

} // namespace chehab::service
