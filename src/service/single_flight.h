/// \file
/// Generic content-addressed, single-flight, LRU-bounded cache — the
/// machinery behind both the kernel (compile) cache and the run-result
/// cache. For N concurrent identical requests, exactly one caller
/// becomes the *owner* (does the work and publishes), the other N-1
/// attach continuations that fire when the entry settles.
///
/// With a nonzero capacity the map evicts least-recently-used *settled*
/// entries once it grows past the limit, so a long-running service
/// process cannot grow without bound. Pending entries are never evicted
/// (they are about to be needed by their joiners); eviction only
/// removes the map slot — joiners and the owner keep the entry alive
/// through their shared_ptr until their futures resolve.
///
/// Thread-safety: all public member functions may be called from any
/// thread. Continuations run either inline on the caller (entry already
/// settled) or on the publisher's thread; they must not block.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.h"

namespace chehab::service {

/// One cache slot holding an artifact of type \p Artifact; shared
/// between the owner and any joiners.
template <typename Artifact>
class SettleEntry
{
  public:
    enum class State : std::uint8_t { Pending, Ready, Failed };

    /// Snapshot of a settled entry passed to continuations.
    struct Settled
    {
        State state = State::Pending;
        const Artifact* artifact = nullptr; ///< Ready only.
        const std::string* error = nullptr; ///< Failed only.
        double seconds = 0.0; ///< Wall time of the work that produced it.
        int worker_id = -1;
    };

    /// Publish a successful result and run all queued continuations.
    void
    publishReady(Artifact artifact, double seconds, int worker_id)
    {
        std::vector<std::function<void(const Settled&)>> pending;
        Settled snapshot;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            CHEHAB_ASSERT(state_ == State::Pending,
                          "cache entry published twice");
            artifact_ = std::move(artifact);
            seconds_ = seconds;
            worker_id_ = worker_id;
            state_ = State::Ready;
            pending.swap(continuations_);
            snapshot = snapshotLocked();
        }
        settled_.notify_all();
        for (auto& fn : pending) fn(snapshot);
    }

    /// Publish a failure (error text) and run continuations.
    void
    publishFailure(std::string error, int worker_id)
    {
        std::vector<std::function<void(const Settled&)>> pending;
        Settled snapshot;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            CHEHAB_ASSERT(state_ == State::Pending,
                          "cache entry published twice");
            error_ = std::move(error);
            worker_id_ = worker_id;
            state_ = State::Failed;
            pending.swap(continuations_);
            snapshot = snapshotLocked();
        }
        settled_.notify_all();
        for (auto& fn : pending) fn(snapshot);
    }

    /// Run \p fn with the settled snapshot — immediately if the entry
    /// has settled, otherwise when it does. Continuations run at most
    /// once and in attach order.
    void
    onSettled(std::function<void(const Settled&)> fn)
    {
        Settled snapshot;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (state_ == State::Pending) {
                continuations_.push_back(std::move(fn));
                return;
            }
            snapshot = snapshotLocked();
        }
        fn(snapshot);
    }

    /// Block until settled and return the snapshot (test/CLI helper;
    /// never call from a pool worker, the owner task may be queued
    /// behind the caller).
    Settled
    waitSettled()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        settled_.wait(lock, [this] { return state_ != State::Pending; });
        return snapshotLocked();
    }

    /// True once publishReady/publishFailure has run.
    bool
    isSettled() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return state_ != State::Pending;
    }

  private:
    Settled
    snapshotLocked() const
    {
        Settled snapshot;
        snapshot.state = state_;
        snapshot.seconds = seconds_;
        snapshot.worker_id = worker_id_;
        if (state_ == State::Ready) snapshot.artifact = &artifact_;
        if (state_ == State::Failed) snapshot.error = &error_;
        return snapshot;
    }

    mutable std::mutex mutex_;
    std::condition_variable settled_;
    State state_ = State::Pending;
    Artifact artifact_;
    std::string error_;
    double seconds_ = 0.0;
    int worker_id_ = -1;
    std::vector<std::function<void(const Settled&)>> continuations_;
};

/// The content-addressed map: single-flight admission, hit/miss/join/
/// eviction accounting, optional LRU capacity bound.
template <typename Key, typename KeyHash, typename Artifact>
class SingleFlightCache
{
  public:
    using Entry = SettleEntry<Artifact>;

    struct Stats
    {
        std::uint64_t misses = 0;         ///< Owner admissions (work runs).
        std::uint64_t hits = 0;           ///< Served from a settled entry.
        std::uint64_t inflight_joins = 0; ///< Attached to a pending entry.
        /// Admissions of a fresh entry (monotonic; a key readmitted
        /// after eviction counts again).
        std::uint64_t entries = 0;
        std::uint64_t evictions = 0;      ///< LRU evictions.
        std::uint64_t resident = 0;       ///< Entries currently mapped.
    };

    struct Admission
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;       ///< Caller must do the work and publish.
        bool was_pending = false; ///< Joined an in-flight computation.
    };

    /// \p capacity 0 = unbounded; otherwise the maximum number of
    /// resident entries (best effort: pending entries never count
    /// toward eviction candidates, so the map may transiently exceed
    /// the capacity while many keys are in flight).
    explicit SingleFlightCache(std::size_t capacity = 0)
        : capacity_(capacity)
    {}

    /// Look up \p key; the first caller for a key becomes the owner.
    /// Touches the key's LRU recency either way.
    Admission
    acquire(const Key& key)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Admission admission;
        auto it = map_.find(key);
        if (it == map_.end()) {
            lru_.push_front(key);
            auto [slot, inserted] = map_.emplace(
                key, Slot{std::make_shared<Entry>(), lru_.begin()});
            (void)inserted;
            admission.entry = slot->second.entry;
            admission.owner = true;
            ++stats_.misses;
            ++stats_.entries;
            evictLocked();
            return admission;
        }
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        it->second.lru_it = lru_.begin();
        admission.entry = it->second.entry;
        // An entry that has settled by admission time is a plain hit; a
        // pending one is an in-flight join (single-flight dedup). The
        // entry can settle between this check and the caller's
        // onSettled() attach — that only makes the continuation run
        // inline, the accounting stays consistent with what the caller
        // observed.
        if (admission.entry->isSettled()) {
            ++stats_.hits;
        } else {
            admission.was_pending = true;
            ++stats_.inflight_joins;
        }
        return admission;
    }

    Stats
    stats() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Stats snapshot = stats_;
        snapshot.resident = map_.size();
        return snapshot;
    }

  private:
    struct Slot
    {
        std::shared_ptr<Entry> entry;
        typename std::list<Key>::iterator lru_it;
    };

    void
    evictLocked()
    {
        if (capacity_ == 0) return;
        auto it = lru_.end();
        while (map_.size() > capacity_ && it != lru_.begin()) {
            --it;
            auto slot = map_.find(*it);
            CHEHAB_ASSERT(slot != map_.end(), "LRU list out of sync");
            if (!slot->second.entry->isSettled()) continue;
            map_.erase(slot);
            it = lru_.erase(it);
            ++stats_.evictions;
        }
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::unordered_map<Key, Slot, KeyHash> map_;
    std::list<Key> lru_; ///< Front = most recently used.
    Stats stats_;
};

} // namespace chehab::service
