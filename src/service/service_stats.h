/// \file
/// Aggregate service counters and their cross-shard merge.
///
/// ServiceStats is the one snapshot type every reporting surface
/// consumes — chehabd's footer tables, --stats-json, the bench CSVs and
/// checkStatsInvariants(). It lived inside compile_service.h while the
/// service was a singleton; the sharded refactor hoists it here so a
/// ShardedService can fold N per-shard snapshots into one aggregate
/// through a single merge() path.
///
/// Everything in the snapshot is additive by construction: the service
/// counters are monotonic sums, the cache/pool/load-model sub-stats are
/// per-instance counters, and the telemetry histograms share one fixed
/// bucket layout (LatencyHistogram::merge). That additivity is what
/// makes the merge trivially correct — and what keeps every invariant
/// in checkStatsInvariants() closed under merging: the invariants are
/// linear equalities and inequalities over the counters, so if each
/// shard's snapshot satisfies them, the bucket-wise sum does too.
#pragma once

#include <cstdint>
#include <string>

#include "service/cache_key.h"
#include "service/load_model.h"
#include "service/persist.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"

namespace chehab::service {

/// Aggregate service counters (monotonic; snapshot via
/// CompileService::stats() or ShardedService::stats()).
struct ServiceStats
{
    std::uint64_t submitted = 0;      ///< Compile requests accepted.
    std::uint64_t compiled = 0;       ///< Owner compiles actually run.
    std::uint64_t failed = 0;         ///< Compiles that threw.
    double total_compile_seconds = 0.0; ///< Sum over owner compiles.

    std::uint64_t run_submitted = 0;  ///< Run requests accepted.
    /// Owner executions actually run: one per solo run and one per
    /// packed group (however many lanes it carried).
    std::uint64_t executed = 0;
    std::uint64_t run_failed = 0;     ///< Runs that failed (either stage).
    double total_exec_seconds = 0.0;  ///< Sum over owner executions.
    std::uint64_t runtimes_created = 0; ///< Pooled FheRuntimes built.
    /// \name Poly-arena counters (summed over every pooled runtime)
    /// Fresh buffers minted vs. acquires served from the freelist, and
    /// total bytes backing minted buffers. Steady-state evaluation on a
    /// warm pool should grow arena_reuses only — a rising arena_allocs
    /// under stable traffic means scratch is leaking past the arena.
    /// @{
    std::uint64_t arena_allocs = 0;
    std::uint64_t arena_reuses = 0;
    std::uint64_t arena_bytes = 0;
    /// @}
    /// Mid-circuit modulus drops the runtime's mod-switch gate took,
    /// summed over owner executions (solo and packed). Zero unless a
    /// request's pipeline includes the "mod-switch" pass.
    std::uint64_t mod_switch_drops = 0;

    /// \name Slot-batching coalescer
    /// @{
    std::uint64_t packed_groups = 0;  ///< Packed (>= 2 lane) executions.
    std::uint64_t packed_lanes = 0;   ///< Requests served via packed rows.
    std::uint64_t solo_runs = 0;      ///< Owner runs executed unbatched.
    std::uint64_t full_flushes = 0;   ///< Groups flushed at lane capacity.
    std::uint64_t window_flushes = 0; ///< Groups flushed by the window.
    /// Members (per-kernel instruction slices) whose noise budget hit
    /// zero in a packed row and whose lanes were re-executed solo
    /// (solo semantics win over amortization).
    std::uint64_t packed_fallbacks = 0;
    /// Packed executions whose row mixed >= 2 distinct kernels
    /// (a subset of packed_groups).
    std::uint64_t composite_groups = 0;
    /// Distinct-kernel members across those composite rows.
    std::uint64_t composite_members = 0;
    /// Lane-safety verdicts served from the group-identity memo vs.
    /// freshly analyzed (one miss per distinct (artifact, params,
    /// budget) identity).
    std::uint64_t fit_memo_hits = 0;
    std::uint64_t fit_memo_misses = 0;
    /// Composite programs served from the content-addressed composite
    /// cache vs. freshly composed.
    std::uint64_t composite_cache_hits = 0;
    std::uint64_t composite_cache_misses = 0;
    /// @}

    CompileCache::Stats cache;        ///< Hits/misses/evictions etc.
    RunCache::Stats run_cache;
    /// On-disk persistence tier (service/persist.h): artifact loads
    /// served warm from the cache_dir vs. compiled fresh, corrupt
    /// entries skipped, files written. All zero when persistence is
    /// off (ServiceConfig::cache_dir empty).
    PersistStats persist;
    /// Timer-augmented load model activity: profile counts, warm vs
    /// cold predictions, window shrinks, consolidation share advice,
    /// and the instantaneous queued-plus-in-flight load signal the
    /// shard router balances on.
    LoadModelSnapshot load_model;
    /// Worker-pool execution counters (tasks completed, busy seconds).
    ThreadPool::Stats pool;
    /// Per-phase latency histograms + trace-event counters; only
    /// populated (enabled = true) when ServiceConfig::telemetry is on.
    telemetry::TelemetrySnapshot telemetry;

    /// Fold \p other into this snapshot: counters add, the nested
    /// cache/load-model/pool stats add field-wise, and the telemetry
    /// histograms merge bucket-wise (their layout is identical for
    /// every instance). Merging per-shard snapshots this way yields
    /// exactly the aggregate a single service handling the union of
    /// the traffic would have reported — the profile-count fields
    /// (cache entries, load-model profiles) become sums of per-shard
    /// table sizes, which is the resident total across the fleet.
    void merge(const ServiceStats& other);
};

/// Cross-counter consistency check over one stats() snapshot. Returns
/// an empty string when consistent, else a description of the first
/// violated invariant. The always-true invariants hold for any
/// snapshot (stats() freezes the service counters while gathering the
/// cache/pool sub-stats, and every cross-group counter pair is
/// incremented in an order that preserves them mid-flight); with
/// \p quiescent set, the stricter accounting equalities that only hold
/// once every submitted request has resolved are checked too. Every
/// invariant is a linear relation over the counters, so merged
/// multi-shard snapshots satisfy exactly the same checks.
std::string checkStatsInvariants(const ServiceStats& stats,
                                 bool quiescent = false);

} // namespace chehab::service
