/// \file
/// The compile-side instantiations of the generic single-flight cache
/// (service/single_flight.h): CacheEntry holds one Compiled artifact,
/// KernelCache maps compile cache keys to entries with LRU bounding and
/// hit/miss/join/eviction accounting.
#pragma once

#include "compiler/pipeline.h"
#include "service/cache_key.h"
#include "service/single_flight.h"

namespace chehab::service {

using CacheEntry = SettleEntry<compiler::Compiled>;
using KernelCache =
    SingleFlightCache<CacheKey, CacheKeyHash, compiler::Compiled>;

} // namespace chehab::service
