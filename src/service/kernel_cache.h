/// \file
/// Content-addressed cache of Compiled artifacts with single-flight
/// admission: for N concurrent identical requests, exactly one caller
/// becomes the *owner* (compiles and publishes), the other N-1 attach
/// continuations that fire when the entry settles. Entries never expire;
/// the working set is bounded by the number of distinct (kernel, mode,
/// parameters) combinations a deployment serves.
///
/// Thread-safety: all public member functions may be called from any
/// thread. Continuations run either inline on the caller (entry already
/// settled) or on the publisher's thread; they must not block.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/pipeline.h"
#include "service/cache_key.h"

namespace chehab::service {

/// One cache slot; shared between the owner and any joiners.
class CacheEntry
{
  public:
    enum class State : std::uint8_t { Pending, Ready, Failed };

    /// Snapshot of a settled entry passed to continuations.
    struct Settled
    {
        State state = State::Pending;
        const compiler::Compiled* compiled = nullptr; ///< Ready only.
        const std::string* error = nullptr;           ///< Failed only.
        double compile_seconds = 0.0;
        int worker_id = -1;
    };

    /// Publish a successful compile and run all queued continuations.
    void publishReady(compiler::Compiled compiled, double compile_seconds,
                      int worker_id);

    /// Publish a failure (CompileError text) and run continuations.
    void publishFailure(std::string error, int worker_id);

    /// Run \p fn with the settled snapshot — immediately if the entry
    /// has settled, otherwise when it does. Continuations run at most
    /// once and in attach order.
    void onSettled(std::function<void(const Settled&)> fn);

    /// Block until settled and return the snapshot (test/CLI helper;
    /// never call from a pool worker, the owner task may be queued
    /// behind the caller).
    Settled waitSettled();

    /// True once publishReady/publishFailure has run.
    bool isSettled() const;

  private:
    Settled snapshotLocked() const;

    mutable std::mutex mutex_;
    std::condition_variable settled_;
    State state_ = State::Pending;
    compiler::Compiled compiled_;
    std::string error_;
    double compile_seconds_ = 0.0;
    int worker_id_ = -1;
    std::vector<std::function<void(const Settled&)>> continuations_;
};

/// The content-addressed map plus hit/miss accounting.
class KernelCache
{
  public:
    struct Stats
    {
        std::uint64_t misses = 0;         ///< Owner admissions (compiles).
        std::uint64_t hits = 0;           ///< Served from a settled entry.
        std::uint64_t inflight_joins = 0; ///< Attached to a pending entry.
        std::uint64_t entries = 0;        ///< Distinct keys ever admitted.
    };

    struct Admission
    {
        std::shared_ptr<CacheEntry> entry;
        bool owner = false;     ///< Caller must compile and publish.
        bool was_pending = false; ///< Joined an in-flight compile.
    };

    /// Look up \p key; the first caller for a key becomes the owner.
    Admission acquire(const CacheKey& key);

    Stats stats() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<CacheKey, std::shared_ptr<CacheEntry>, CacheKeyHash>
        entries_;
    Stats stats_;
};

} // namespace chehab::service
