/// \file
/// Pooled SealLite runtimes for the execute path.
///
/// Constructing an FheRuntime is expensive — secret/relinearization key
/// generation plus NTT/CRT precomputation — so the service keeps one
/// RuntimePool per distinct SealLiteParams and leases instances to
/// executing workers. A leased runtime is exclusively owned until the
/// lease is released (FheRuntime is not internally synchronized); the
/// pool grows on demand up to the service's worker concurrency and
/// never shrinks.
///
/// Determinism contract: every instance in a pool is constructed from
/// the same parameters, so secret and relin keys are bit-identical
/// across instances; Galois keys are bit-identical per step by the
/// SealLite keygen contract (randomness derived from params seed +
/// step); and runJob() reseeds the encryption randomness from the run
/// key before executing. A given run request therefore produces
/// bit-identical outputs *and noise accounting* no matter which pooled
/// instance serves it, in what order, or at what worker count —
/// reusing key material across requests costs no reproducibility.
///
/// Thread-safety: acquire()/release() may be called from any thread.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "compiler/runtime.h"
#include "fhe/sealite.h"

namespace chehab::service {

class RuntimePool
{
  public:
    explicit RuntimePool(fhe::SealLiteParams params);

    /// Exclusive RAII lease of one runtime; returns it to the pool on
    /// destruction.
    class Lease
    {
      public:
        Lease(RuntimePool* pool,
              std::unique_ptr<compiler::FheRuntime> runtime)
            : pool_(pool), runtime_(std::move(runtime))
        {}

        ~Lease()
        {
            if (pool_ && runtime_) pool_->release(std::move(runtime_));
        }

        Lease(Lease&& other) noexcept
            : pool_(other.pool_), runtime_(std::move(other.runtime_))
        {
            other.pool_ = nullptr;
        }

        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;

        compiler::FheRuntime& runtime() { return *runtime_; }
        compiler::FheRuntime* operator->() { return runtime_.get(); }

      private:
        RuntimePool* pool_;
        std::unique_ptr<compiler::FheRuntime> runtime_;
    };

    /// Lease an idle runtime, constructing a fresh one (identical key
    /// material — see the determinism contract) when none is idle.
    Lease acquire();

    /// Total runtimes ever constructed by this pool.
    int created() const;

    /// Arena counters summed over every runtime this pool ever built —
    /// leased instances included (PolyArena is internally locked, so
    /// reading a leased runtime's counters mid-execution is safe; the
    /// snapshot is monotone, not exact).
    fhe::PolyArena::Stats arenaStats() const;

    const fhe::SealLiteParams& params() const { return params_; }

  private:
    friend class Lease;
    void release(std::unique_ptr<compiler::FheRuntime> runtime);

    /// Construct + deterministically warm up one runtime.
    std::unique_ptr<compiler::FheRuntime> createRuntime();

    const fhe::SealLiteParams params_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<compiler::FheRuntime>> idle_;
    /// Every runtime ever constructed, for stats aggregation. Entries
    /// outlive the pool's idle list (runtimes cycle between idle_ and
    /// leases but are never destroyed), so the raw pointers stay valid
    /// for the pool's lifetime.
    std::vector<compiler::FheRuntime*> all_;
    int created_ = 0;
};

} // namespace chehab::service
