/// \file
/// Content-addressed cache key for compiled kernels.
///
/// Two requests map to the same key — and therefore to the same cache
/// entry — exactly when they would produce the same Compiled artifact:
/// same canonicalized IR (ir::Fingerprint over the *canonicalized* tree,
/// so syntactically different sources that canonicalize identically
/// share an entry), same optimizer mode, and same mode-relevant
/// parameters. Cost weights are compared by exact bit pattern: a weight
/// nudge is a different compilation.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>

#include "ir/cost_model.h"
#include "ir/expr.h"
#include "service/request.h"

namespace chehab::service {

/// Cache identity of one compile job.
struct CacheKey
{
    ir::Fingerprint source;      ///< Fingerprint of the canonical IR.
    OptMode mode = OptMode::NoOpt;
    std::uint64_t w_ops_bits = 0;
    std::uint64_t w_depth_bits = 0;
    std::uint64_t w_mult_bits = 0;
    int max_steps = 0;

    friend bool
    operator==(const CacheKey& a, const CacheKey& b)
    {
        return a.source == b.source && a.mode == b.mode &&
               a.w_ops_bits == b.w_ops_bits &&
               a.w_depth_bits == b.w_depth_bits &&
               a.w_mult_bits == b.w_mult_bits && a.max_steps == b.max_steps;
    }
};

/// Build the key for a request whose source canonicalized to
/// \p canonical. Mode-irrelevant parameters are zeroed so e.g. two NoOpt
/// requests with different greedy budgets still share an entry.
inline CacheKey
makeCacheKey(const ir::ExprPtr& canonical, const CompileRequest& request)
{
    CacheKey key;
    key.source = ir::fingerprint(canonical);
    key.mode = request.mode;
    if (request.mode == OptMode::Greedy) {
        auto bits = [](double value) {
            std::uint64_t out = 0;
            std::memcpy(&out, &value, sizeof(out));
            return out;
        };
        key.w_ops_bits = bits(request.weights.w_ops);
        key.w_depth_bits = bits(request.weights.w_depth);
        key.w_mult_bits = bits(request.weights.w_mult);
        key.max_steps = request.max_steps;
    }
    return key;
}

struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey& key) const
    {
        // The fingerprint is already uniformly mixed; fold in the
        // parameters with the usual golden-ratio combine.
        std::size_t h = static_cast<std::size_t>(key.source.hi ^
                                                 (key.source.lo << 1));
        auto mix = [&h](std::uint64_t v) {
            h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                 (h << 6) + (h >> 2);
        };
        mix(static_cast<std::uint64_t>(key.mode));
        mix(key.w_ops_bits);
        mix(key.w_depth_bits);
        mix(key.w_mult_bits);
        mix(static_cast<std::uint64_t>(key.max_steps));
        return h;
    }
};

} // namespace chehab::service
