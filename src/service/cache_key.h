/// \file
/// Content-addressed cache keys for compiled kernels and run results.
///
/// Two compile requests map to the same key — and therefore to the same
/// cache entry — exactly when they would produce the same Compiled
/// artifact: same canonicalized IR (ir::Fingerprint over the
/// *canonicalized* tree, so syntactically different sources that
/// canonicalize identically share an entry) and same driver pass
/// configuration (compiler::DriverConfig::fingerprint(): the pass-name
/// sequence plus the parameters of the passes actually present, with
/// cost weights compared by exact bit pattern — a weight nudge is a
/// different compilation, and a NoOpt pipeline ignores greedy-only
/// parameters because the greedy pass is absent).
///
/// A run key extends the compile key with everything execution depends
/// on: the input bindings, the runtime key budget, and the SealLite
/// parameters.
///
/// This header also instantiates the generic single-flight cache
/// (service/single_flight.h) for both stages: CompileCache maps compile
/// keys to Compiled artifacts, RunCache maps run keys to executed
/// RunArtifacts, each with LRU bounding and hit/miss/join/eviction
/// accounting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compiler/driver.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "fhe/sealite.h"
#include "ir/evaluator.h"
#include "ir/expr.h"
#include "service/request.h"
#include "service/single_flight.h"

namespace chehab::service {

namespace detail {

/// Golden-ratio hash combine shared by the key hashers.
inline void
mix(std::size_t& h, std::uint64_t v)
{
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
}

} // namespace detail

/// Cache identity of one compile job.
struct CacheKey
{
    ir::Fingerprint source;      ///< Fingerprint of the canonical IR.
    std::uint64_t pipeline = 0;  ///< DriverConfig::fingerprint().

    friend bool
    operator==(const CacheKey& a, const CacheKey& b)
    {
        return a.source == b.source && a.pipeline == b.pipeline;
    }
};

/// Build the key for a request whose source canonicalized to
/// \p canonical.
inline CacheKey
makeCacheKey(const ir::ExprPtr& canonical,
             const compiler::DriverConfig& pipeline)
{
    CacheKey key;
    key.source = ir::fingerprint(canonical);
    key.pipeline = pipeline.fingerprint();
    return key;
}

struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey& key) const
    {
        // The fingerprint is already uniformly mixed; fold in the
        // pipeline hash with the usual golden-ratio combine.
        std::size_t h = static_cast<std::size_t>(key.source.hi ^
                                                 (key.source.lo << 1));
        detail::mix(h, key.pipeline);
        return h;
    }
};

/// Order-independent content hash of an input environment.
inline std::uint64_t
envFingerprint(const ir::Env& env)
{
    std::vector<std::pair<std::string, std::int64_t>> entries(env.begin(),
                                                              env.end());
    std::sort(entries.begin(), entries.end());
    std::size_t h = 0x243f6a8885a308d3ULL; // pi digits: arbitrary seed.
    for (const auto& [name, value] : entries) {
        for (char c : name) {
            detail::mix(h, static_cast<unsigned char>(c));
        }
        detail::mix(h, 0xffu); // Name/value separator.
        detail::mix(h, static_cast<std::uint64_t>(value));
    }
    return static_cast<std::uint64_t>(h);
}

/// Content hash of the SealLite parameter set (every field: equal
/// hashes are intended to mean interchangeable runtimes).
inline std::uint64_t
paramsFingerprint(const fhe::SealLiteParams& params)
{
    std::size_t h = 0x13198a2e03707344ULL;
    detail::mix(h, static_cast<std::uint64_t>(params.n));
    detail::mix(h, static_cast<std::uint64_t>(params.prime_bits));
    detail::mix(h, static_cast<std::uint64_t>(params.prime_count));
    detail::mix(h, params.plain_modulus);
    detail::mix(h, params.seed);
    detail::mix(h, static_cast<std::uint64_t>(params.error_stddev_x10));
    detail::mix(h, static_cast<std::uint64_t>(params.decomp_bits));
    return static_cast<std::uint64_t>(h);
}

/// Cache identity of one run job: compile identity + execution inputs.
struct RunKey
{
    CacheKey compile;
    std::uint64_t env_hash = 0;
    int key_budget = 0;
    std::uint64_t params_hash = 0;

    friend bool
    operator==(const RunKey& a, const RunKey& b)
    {
        return a.compile == b.compile && a.env_hash == b.env_hash &&
               a.key_budget == b.key_budget &&
               a.params_hash == b.params_hash;
    }
};

/// Build the run key for a request whose source canonicalized to
/// \p canonical.
inline RunKey
makeRunKey(const ir::ExprPtr& canonical, const RunRequest& request)
{
    RunKey key;
    key.compile = makeCacheKey(canonical, request.pipeline);
    key.env_hash = envFingerprint(request.inputs);
    // The budget only matters when the compiled artifact carries no key
    // plan (the plan wins otherwise) — but whether it will is a
    // pipeline property, so folding the budget in unconditionally can
    // only split entries that would have been shared, never alias
    // distinct executions.
    key.key_budget = request.pipeline.hasPass("key-select")
                         ? 0
                         : request.key_budget;
    key.params_hash = paramsFingerprint(request.params);
    return key;
}

struct RunKeyHash
{
    std::size_t
    operator()(const RunKey& key) const
    {
        std::size_t h = CacheKeyHash{}(key.compile);
        detail::mix(h, key.env_hash);
        detail::mix(h, static_cast<std::uint64_t>(key.key_budget));
        detail::mix(h, key.params_hash);
        return h;
    }
};

/// \name Cache instantiations
/// @{
using CacheEntry = SettleEntry<compiler::Compiled>;
using CompileCache =
    SingleFlightCache<CacheKey, CacheKeyHash, compiler::Compiled>;

/// What the run cache stores per entry: the executed program's compile
/// artifact plus the execution outcome. For a request served from a
/// packed (slot-coalesced) row, packed_lanes records how many requests
/// shared that row and lane which region this request occupied.
struct RunArtifact
{
    compiler::Compiled compiled;
    compiler::RunResult result;
    double compile_seconds = 0.0; ///< Wall time of the producing compile.
    /// Load-model predicted wall seconds of the execution that
    /// produced this artifact (the row's prediction for packed runs);
    /// feeds the pred-vs-measured error reporting in chehabd.
    double predicted_seconds = 0.0;
    /// Seconds this request waited in the slot-batching coalescer for
    /// row-mates before its group flushed (0 for solo-path runs);
    /// completes the queue/window/compile/setup/evaluate/decode phase
    /// breakdown every RunResponse carries.
    double window_wait_seconds = 0.0;
    int packed_lanes = 1;         ///< Requests sharing the executed row.
    int lane = 0;                 ///< This request's lane index.
};

using RunEntry = SettleEntry<RunArtifact>;
using RunCache = SingleFlightCache<RunKey, RunKeyHash, RunArtifact>;
/// @}

} // namespace chehab::service
