/// \file
/// On-disk persistence tier: crash-safe warm starts for the compiled-
/// artifact cache and the load model.
///
/// Every process restart used to pay cold compiles and cold scheduling
/// again — the single-flight LRU caches and the EWMA load-model
/// profiles evaporate with the process. The PersistStore gives both a
/// durable home under one `cache_dir`:
///
///   - **Artifacts** are content-addressed: the file name is the
///     CacheKey (canonical-source fingerprint x pipeline fingerprint),
///     so an entry's name fully determines its contents and N service
///     processes can share one directory with no coordination — two
///     writers of the same key write the same bytes, and a reader can
///     trust any complete entry. This is also what makes cross-process
///     shard-stealing cheap: the stealing shard loads the artifact
///     instead of recompiling it.
///   - **Load-model snapshots** (per-key EWMA compile/run profiles and
///     the seconds-per-cost calibration ratios) are written per shard
///     at clean shutdown and re-imported as priors at boot, so a warm
///     fleet schedules with measured truth from the first request.
///
/// Durability contract (the crash-safety sweep in the tests flips
/// bytes, truncates files and mismatches versions to enforce it):
///
///   - Every file is `magic + format version + kind + payload length +
///     payload + FNV-1a-64 checksum`. A version mismatch is refused —
///     the store cold-starts rather than guess at an old layout.
///   - Writes go to a unique temp file in the same directory, then
///     `std::rename` into place: readers see the old complete entry or
///     the new complete entry, never a torn one, even across
///     concurrently restarting processes.
///   - A corrupt entry (truncated, checksum mismatch, malformed
///     payload, wrong version) is *skipped and counted* — the caller
///     compiles fresh. Corruption is never a crash and never a wrong
///     artifact: the checksum gate runs before deserialization ever
///     sees the bytes.
///
/// Determinism: compilation is a pure function of the cache key, and
/// serialization rebuilds the artifact through the same factories a
/// fresh compile uses, so a warm-loaded artifact is bit-identical to a
/// fresh compile of the same fingerprint (compiler/serialize.h; the
/// round-trip differential tests compare content bytes and
/// disassembly).
///
/// Thread-safety: all methods may be called concurrently; counters sit
/// behind one mutex and file operations rely on the atomic-rename
/// protocol rather than locks, which is what makes the directory
/// shareable *between* processes too.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "compiler/pipeline.h"
#include "service/cache_key.h"
#include "service/load_model.h"

namespace chehab::service {

/// Monotonic persistence counters (merged additively into
/// ServiceStats::persist; see checkStatsInvariants for the relations
/// they satisfy).
struct PersistStats
{
    std::uint64_t hits = 0;    ///< Artifact loads served from disk.
    std::uint64_t misses = 0;  ///< Artifact lookups with no usable entry
                               ///  (absent or corrupt — corrupt is the
                               ///  subset below).
    std::uint64_t corrupt = 0; ///< Entries skipped as unusable:
                               ///  truncated, bad checksum, malformed
                               ///  payload or wrong format version.
    std::uint64_t writes = 0;  ///< Files durably written (artifacts +
                               ///  load-model snapshots).
};

/// One on-disk store rooted at a cache directory. Cheap to construct;
/// each CompileService shard owns one (they may all point at the same
/// directory — including shards of different processes).
class PersistStore
{
  public:
    /// Bumped whenever the file layout changes; files carrying any
    /// other version are refused (counted corrupt) so an old store
    /// never feeds a new binary garbage.
    static constexpr std::uint32_t kFormatVersion = 1;

    /// Creates \p dir (and its artifacts/ subdirectory) if missing.
    /// \p shard_id names this shard's load-model snapshot file.
    /// Throws std::runtime_error when the directory cannot be created
    /// or is not writable — a misconfigured cache_dir should fail
    /// loudly at construction, unlike runtime file corruption, which
    /// never throws.
    explicit PersistStore(std::string dir, int shard_id = 0);

    const std::string& dir() const { return dir_; }

    /// The stored artifact for \p key, or nullopt (counting a miss,
    /// plus corrupt when an entry existed but was unusable).
    std::optional<compiler::Compiled> loadArtifact(const CacheKey& key);

    /// Durably store \p compiled under \p key (temp file + rename).
    /// Returns false — without throwing — when the write fails; the
    /// in-process caches still hold the artifact, so serving continues.
    bool storeArtifact(const CacheKey& key,
                       const compiler::Compiled& compiled);

    /// Import this shard's load-model snapshot into \p model as boot
    /// priors. Returns false when no usable snapshot exists (counting
    /// corrupt if one existed but was unusable; absence counts
    /// nothing — unlike artifacts, a missing snapshot is the normal
    /// first-boot state and pollutes no per-request counter).
    bool loadLoadModelInto(LoadModel& model);

    /// Snapshot \p model's persistable state to this shard's file.
    bool storeLoadModel(const LoadModel& model);

    PersistStats stats() const;

    /// \name File layout (exposed for tests and tooling)
    /// @{
    static std::string artifactFileName(const CacheKey& key);
    std::string artifactPath(const CacheKey& key) const;
    std::string loadModelPath() const;
    /// @}

  private:
    /// Frame \p payload (header + checksum) and write it atomically.
    bool writeFileAtomic(const std::string& path, std::uint8_t kind,
                         const std::string& payload);

    /// Read and unframe \p path. nullopt when the file is absent or
    /// unusable (the latter bumps the corrupt counter).
    std::optional<std::string> readFileChecked(const std::string& path,
                                               std::uint8_t kind);

    void countCorrupt();

    std::string dir_;
    std::string artifacts_dir_;
    int shard_id_;

    mutable std::mutex mutex_;
    PersistStats stats_;
};

} // namespace chehab::service
