#include "service/compile_service.h"

#include <exception>
#include <utility>

#include "compiler/passes.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::service {

namespace {

/// Encryption-randomness seed for one run: any deterministic function
/// of the run identity works; mixing the key hash with a tag keeps it
/// disjoint from the seeds used elsewhere.
std::uint64_t
runSeed(const RunKey& key)
{
    return static_cast<std::uint64_t>(RunKeyHash{}(key)) ^
           0x52554e5345454421ULL; // "RUNSEED!"
}

} // namespace

const char*
optModeName(OptMode mode)
{
    switch (mode) {
    case OptMode::NoOpt: return "noopt";
    case OptMode::Greedy: return "greedy";
    case OptMode::Rl: return "rl";
    }
    return "?";
}

compiler::DriverConfig
makePipeline(OptMode mode, const ir::CostWeights& weights, int max_steps)
{
    switch (mode) {
    case OptMode::NoOpt: return compiler::DriverConfig::noOpt();
    case OptMode::Greedy:
        return compiler::DriverConfig::greedy(weights, max_steps);
    case OptMode::Rl: return compiler::DriverConfig::rl();
    }
    return compiler::DriverConfig::greedy(weights, max_steps);
}

CompileService::CompileService(ServiceConfig config)
    : config_(config), ruleset_(trs::buildChehabRuleset()),
      cache_(config.kernel_cache_capacity),
      run_cache_(config.run_cache_capacity),
      pool_(std::make_unique<ThreadPool>(config.num_workers))
{}

CompileService::~CompileService() = default;

int
CompileService::numWorkers() const
{
    return pool_->size();
}

ServiceStats
CompileService::stats() const
{
    ServiceStats snapshot;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        snapshot = stats_;
    }
    snapshot.cache = cache_.stats();
    snapshot.run_cache = run_cache_.stats();
    {
        std::unique_lock<std::mutex> lock(pools_mutex_);
        for (const auto& [key, pool] : pools_) {
            snapshot.runtimes_created +=
                static_cast<std::uint64_t>(pool->created());
        }
    }
    return snapshot;
}

RuntimePool&
CompileService::poolFor(const fhe::SealLiteParams& params)
{
    const std::uint64_t key = paramsFingerprint(params);
    std::unique_lock<std::mutex> lock(pools_mutex_);
    std::unique_ptr<RuntimePool>& slot = pools_[key];
    if (!slot) slot = std::make_unique<RuntimePool>(params);
    return *slot;
}

CompileResponse
CompileService::makeResponse(const CompileRequest& request,
                             const CacheEntry::Settled& settled,
                             bool cache_hit, bool deduplicated,
                             double queue_seconds,
                             double estimated_cost) const
{
    CompileResponse response;
    response.name = request.name;
    response.cache_hit = cache_hit;
    response.deduplicated = deduplicated;
    response.queue_seconds = queue_seconds;
    response.compile_seconds = settled.seconds;
    response.estimated_cost = estimated_cost;
    response.worker_id = settled.worker_id;
    if (settled.state == CacheEntry::State::Ready) {
        response.ok = true;
        response.compiled = *settled.artifact;
    } else {
        response.ok = false;
        response.error = *settled.error;
    }
    return response;
}

KernelCache::Admission
CompileService::admitCompile(const ir::ExprPtr& canonical,
                             const compiler::DriverConfig& pipeline,
                             const CacheKey& key, double estimate)
{
    KernelCache::Admission admission = cache_.acquire(key);
    if (!admission.owner) return admission;

    // This caller admitted the key: compile on the pool, most expensive
    // kernels first (LPT order minimizes batch makespan). The worker
    // compiles the canonical tree computed by the caller: the driver's
    // own canonicalize pass becomes a cheap no-op and the cache key
    // provably describes the compiled source.
    std::shared_ptr<CacheEntry> entry = admission.entry;
    pool_->submit(
        [this, entry, canonical, pipeline](int worker) {
            const Stopwatch compile_watch;
            try {
                const compiler::CompilerDriver driver(&ruleset_,
                                                      config_.agent);
                compiler::Compiled compiled =
                    driver.compile(canonical, pipeline);
                const double seconds = compile_watch.elapsedSeconds();
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.compiled;
                    stats_.total_compile_seconds += seconds;
                }
                entry->publishReady(std::move(compiled), seconds, worker);
            } catch (const std::exception& e) {
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.failed;
                }
                entry->publishFailure(e.what(), worker);
            }
        },
        estimate);
    return admission;
}

std::future<CompileResponse>
CompileService::submit(CompileRequest request)
{
    auto promise = std::make_shared<std::promise<CompileResponse>>();
    std::future<CompileResponse> future = promise->get_future();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.submitted;
    }

    const Stopwatch queue_watch;

    // Canonicalize on the caller: the cache key must identify the
    // *canonical* program so syntactic variants share one entry, and
    // the cost estimate prices what the optimizer will actually see.
    ir::ExprPtr canonical;
    try {
        if (!request.source) throw CompileError("null request source");
        canonical = compiler::canonicalize(request.source);
    } catch (const std::exception& e) {
        CompileResponse response;
        response.name = request.name;
        response.error = e.what();
        promise->set_value(std::move(response));
        return future;
    }

    const CacheKey key = makeCacheKey(canonical, request.pipeline);
    const double estimate = ir::cost(canonical, request.pipeline.weights);

    KernelCache::Admission admission =
        admitCompile(canonical, request.pipeline, key, estimate);
    const bool cache_hit = !admission.owner && !admission.was_pending;
    const bool deduplicated = admission.was_pending;

    // Hit, join, or owner alike: resolve the future when the entry
    // settles. Runs inline for an already-settled entry, otherwise on
    // the publishing worker — never blocks a pool thread.
    admission.entry->onSettled(
        [this, promise, request = std::move(request), cache_hit,
         deduplicated, queue_watch,
         estimate](const CacheEntry::Settled& settled) {
            promise->set_value(makeResponse(request, settled, cache_hit,
                                            deduplicated,
                                            queue_watch.elapsedSeconds(),
                                            estimate));
        });
    return future;
}

std::future<RunResponse>
CompileService::submitRun(RunRequest request)
{
    auto promise = std::make_shared<std::promise<RunResponse>>();
    std::future<RunResponse> future = promise->get_future();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.run_submitted;
    }

    const Stopwatch queue_watch;

    ir::ExprPtr canonical;
    try {
        if (!request.source) throw CompileError("null request source");
        canonical = compiler::canonicalize(request.source);
    } catch (const std::exception& e) {
        RunResponse response;
        response.name = request.name;
        response.error = e.what();
        promise->set_value(std::move(response));
        return future;
    }

    const CacheKey compile_key = makeCacheKey(canonical, request.pipeline);
    const double estimate = ir::cost(canonical, request.pipeline.weights);

    const RunKey run_key = makeRunKey(canonical, request);
    RunCache::Admission run_admission = run_cache_.acquire(run_key);
    const bool run_hit =
        !run_admission.owner && !run_admission.was_pending;
    const bool run_dedup = run_admission.was_pending;
    const std::string name = request.name;

    // Only the run owner touches the kernel cache: a request served
    // from the run cache definitionally reused the compile stage too
    // (the artifact is embedded in the run entry), so its compile
    // provenance mirrors the run provenance — and admitting the
    // compile key anyway could schedule a recompile nothing consumes
    // when the compile entry was LRU-evicted after the run settled.
    bool compile_hit = run_hit;
    bool compile_dedup = run_dedup;

    if (run_admission.owner) {
        // Run requests and plain compile requests share the kernel
        // cache: a run of a kernel someone already compiled reuses
        // that artifact, and vice versa.
        KernelCache::Admission compile_admission = admitCompile(
            canonical, request.pipeline, compile_key, estimate);
        compile_hit =
            !compile_admission.owner && !compile_admission.was_pending;
        compile_dedup = compile_admission.was_pending;

        // Single-flight execute: chain onto the compile entry, then run
        // on the pool. The continuation only enqueues — execution never
        // runs inline on the publishing worker's continuation path.
        std::shared_ptr<RunEntry> run_entry = run_admission.entry;
        std::shared_ptr<CacheEntry> compile_entry = compile_admission.entry;
        RunRequest job = std::move(request);
        compile_admission.entry->onSettled(
            [this, run_entry, compile_entry, job = std::move(job), run_key,
             estimate](const CacheEntry::Settled& compile_settled) {
                if (compile_settled.state != CacheEntry::State::Ready) {
                    {
                        std::unique_lock<std::mutex> lock(stats_mutex_);
                        ++stats_.run_failed;
                    }
                    run_entry->publishFailure(*compile_settled.error,
                                              compile_settled.worker_id);
                    return;
                }
                // The artifact pointer stays valid because the execute
                // task holds the compile entry alive via shared_ptr.
                const compiler::Compiled* compiled =
                    compile_settled.artifact;
                const double compile_seconds = compile_settled.seconds;
                pool_->submit(
                    [this, run_entry, compile_entry, compiled,
                     compile_seconds, job, run_key](int worker) {
                        const Stopwatch exec_watch;
                        try {
                            RunArtifact artifact;
                            artifact.compiled = *compiled;
                            artifact.compile_seconds = compile_seconds;
                            RuntimePool::Lease lease =
                                poolFor(job.params).acquire();
                            // Per-request reseed: bit-identical noise
                            // accounting on any pooled instance (see
                            // runtime_pool.h).
                            lease->scheme().reseedRandomness(
                                runSeed(run_key));
                            if (artifact.compiled.key_planned) {
                                artifact.result = lease->run(
                                    artifact.compiled.program, job.inputs,
                                    artifact.compiled.key_plan);
                            } else {
                                artifact.result = lease->run(
                                    artifact.compiled.program, job.inputs,
                                    job.key_budget);
                            }
                            const double seconds =
                                exec_watch.elapsedSeconds();
                            {
                                std::unique_lock<std::mutex> lock(
                                    stats_mutex_);
                                ++stats_.executed;
                                stats_.total_exec_seconds += seconds;
                            }
                            run_entry->publishReady(std::move(artifact),
                                                    seconds, worker);
                        } catch (const std::exception& e) {
                            {
                                std::unique_lock<std::mutex> lock(
                                    stats_mutex_);
                                ++stats_.run_failed;
                            }
                            run_entry->publishFailure(e.what(), worker);
                        }
                    },
                    estimate);
            });
    }

    run_admission.entry->onSettled(
        [promise, name, compile_hit, compile_dedup, run_hit,
         run_dedup, queue_watch,
         estimate](const RunEntry::Settled& settled) {
            RunResponse response;
            response.name = name;
            response.compile_cache_hit = compile_hit;
            response.compile_deduplicated = compile_dedup;
            response.run_cache_hit = run_hit;
            response.run_deduplicated = run_dedup;
            response.queue_seconds = queue_watch.elapsedSeconds();
            response.exec_seconds = settled.seconds;
            response.estimated_cost = estimate;
            response.worker_id = settled.worker_id;
            if (settled.state == RunEntry::State::Ready) {
                response.ok = true;
                response.compiled = settled.artifact->compiled;
                response.result = settled.artifact->result;
                response.compile_seconds =
                    settled.artifact->compile_seconds;
            } else {
                response.ok = false;
                response.error = *settled.error;
            }
            promise->set_value(std::move(response));
        });
    return future;
}

std::vector<CompileResponse>
CompileService::compileBatch(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileResponse>> futures;
    futures.reserve(requests.size());
    for (CompileRequest& request : requests) {
        futures.push_back(submit(std::move(request)));
    }
    std::vector<CompileResponse> responses;
    responses.reserve(futures.size());
    for (auto& future : futures) responses.push_back(future.get());
    return responses;
}

std::vector<RunResponse>
CompileService::runBatch(std::vector<RunRequest> requests)
{
    std::vector<std::future<RunResponse>> futures;
    futures.reserve(requests.size());
    for (RunRequest& request : requests) {
        futures.push_back(submitRun(std::move(request)));
    }
    std::vector<RunResponse> responses;
    responses.reserve(futures.size());
    for (auto& future : futures) responses.push_back(future.get());
    return responses;
}

} // namespace chehab::service
