#include "service/compile_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "compiler/passes.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::service {

namespace {

/// Encryption-randomness seed for one solo run: any deterministic
/// function of the run identity works; mixing the key hash with a tag
/// keeps it disjoint from the seeds used elsewhere.
std::uint64_t
runSeed(const RunKey& key)
{
    return static_cast<std::uint64_t>(RunKeyHash{}(key)) ^
           0x52554e5345454421ULL; // "RUNSEED!"
}

std::chrono::nanoseconds
toWindow(double seconds)
{
    if (seconds <= 0.0) return std::chrono::nanoseconds{0};
    return std::chrono::nanoseconds{
        static_cast<std::int64_t>(seconds * 1e9)};
}

} // namespace

const char*
optModeName(OptMode mode)
{
    switch (mode) {
    case OptMode::NoOpt: return "noopt";
    case OptMode::Greedy: return "greedy";
    case OptMode::Rl: return "rl";
    }
    return "?";
}

compiler::DriverConfig
makePipeline(OptMode mode, const ir::CostWeights& weights, int max_steps)
{
    switch (mode) {
    case OptMode::NoOpt: return compiler::DriverConfig::noOpt();
    case OptMode::Greedy:
        return compiler::DriverConfig::greedy(weights, max_steps);
    case OptMode::Rl: return compiler::DriverConfig::rl();
    }
    return compiler::DriverConfig::greedy(weights, max_steps);
}

std::string
ServiceConfig::validate() const
{
    if (num_workers < 1) {
        return "num_workers must be >= 1 (got " +
               std::to_string(num_workers) + ")";
    }
    if (max_lanes < 0) {
        return "max_lanes must be >= 0 (0 = row capacity, 1 = no "
               "coalescing; got " +
               std::to_string(max_lanes) + ")";
    }
    if (!std::isfinite(batch_window_seconds) ||
        batch_window_seconds < 0.0) {
        return "batch_window_seconds must be finite and >= 0 (got " +
               std::to_string(batch_window_seconds) + ")";
    }
    if (shards < 1) {
        return "shards must be >= 1 (got " + std::to_string(shards) + ")";
    }
    if (shard_id < 0 || shard_id >= shards) {
        return "shard_id must be in [0, shards) (got " +
               std::to_string(shard_id) + " with " +
               std::to_string(shards) + " shards)";
    }
    const LoadModelConfig& lm = load_model;
    if (!std::isfinite(lm.alpha) || lm.alpha <= 0.0 || lm.alpha > 1.0) {
        return "load_model.alpha must be in (0, 1] (got " +
               std::to_string(lm.alpha) + ")";
    }
    if (!std::isfinite(lm.arrival_alpha) || lm.arrival_alpha <= 0.0 ||
        lm.arrival_alpha > 1.0) {
        return "load_model.arrival_alpha must be in (0, 1] (got " +
               std::to_string(lm.arrival_alpha) + ")";
    }
    if (lm.min_arrival_samples < 0) {
        return "load_model.min_arrival_samples must be >= 0 (got " +
               std::to_string(lm.min_arrival_samples) + ")";
    }
    if (!std::isfinite(lm.window_safety) || lm.window_safety <= 0.0) {
        return "load_model.window_safety must be finite and > 0 (got " +
               std::to_string(lm.window_safety) + ")";
    }
    if (!std::isfinite(lm.window_floor_fraction) ||
        lm.window_floor_fraction < 0.0 || lm.window_floor_fraction > 1.0) {
        return "load_model.window_floor_fraction must be in [0, 1] "
               "(got " +
               std::to_string(lm.window_floor_fraction) + ")";
    }
    if (!std::isfinite(lm.merge_cost_factor) ||
        lm.merge_cost_factor <= 0.0) {
        return "load_model.merge_cost_factor must be finite and > 0 "
               "(got " +
               std::to_string(lm.merge_cost_factor) + ")";
    }
    if (!std::isfinite(lm.seed_seconds_per_cost) ||
        lm.seed_seconds_per_cost <= 0.0) {
        return "load_model.seed_seconds_per_cost must be finite and > 0 "
               "(got " +
               std::to_string(lm.seed_seconds_per_cost) + ")";
    }
    return {};
}

namespace {

/// Gate for the constructor's init list: members are built straight
/// from the config, so a nonsense value must throw before any of them
/// (a NaN batch window would otherwise hit undefined casts in
/// toWindow, a zero worker count would wedge the pool).
ServiceConfig
validated(ServiceConfig config)
{
    const std::string problem = config.validate();
    if (!problem.empty()) {
        throw std::invalid_argument("ServiceConfig: " + problem);
    }
    return config;
}

} // namespace

CompileService::CompileService(ServiceConfig config)
    : config_(validated(config)), ruleset_(trs::buildChehabRuleset()),
      cache_(config.kernel_cache_capacity),
      run_cache_(config.run_cache_capacity),
      load_model_(config.load_model),
      telemetry_(config.telemetry),
      planner_(toWindow(config.batch_window_seconds)),
      pool_(std::make_unique<ThreadPool>(config.num_workers, &telemetry_))
{
    // Chrome traces group this shard's tracks under pid = shard_id + 1
    // ("shard N"); the default (shard 0 -> pid 1) matches what the
    // exporter always emitted, so unsharded traces are unchanged.
    telemetry_.setTrackGroup(config_.shard_id + 1);
    if (!config_.cache_dir.empty()) {
        // An unusable directory fails construction loudly, in the same
        // spirit as validate() — only runtime file corruption is
        // handled silently (skip + count).
        try {
            persist_ =
                std::make_unique<PersistStore>(config_.cache_dir,
                                               config_.shard_id);
        } catch (const std::runtime_error& error) {
            throw std::invalid_argument(std::string("ServiceConfig: ") +
                                        error.what());
        }
        if (config_.persist_load_model) {
            // Warm scheduling priors: measured EWMA profiles from the
            // previous incarnation of this shard, if a usable snapshot
            // exists.
            persist_->loadLoadModelInto(load_model_);
        }
    }
    if (config_.max_lanes != 1) {
        flusher_ = std::thread([this] { flusherLoop(); });
    }
}

CompileService::~CompileService()
{
    if (flusher_.joinable()) {
        {
            std::unique_lock<std::mutex> lock(batch_mutex_);
            batch_stop_ = true;
        }
        batch_cv_.notify_all();
        flusher_.join();
        // Flush whatever the window never reached so every outstanding
        // future resolves; the pool destructor (pool_ is declared last,
        // so it destructs first) drains these tasks before any other
        // member goes away.
        std::vector<BatchPlanner::Group> rest;
        {
            std::unique_lock<std::mutex> lock(batch_mutex_);
            rest = planner_.takeAll();
        }
        if (config_.cross_kernel) {
            rest = consolidateGroups(std::move(rest), consolidatePolicy());
        }
        for (BatchPlanner::Group& group : rest) {
            dispatchGroup(std::move(group), /*window_flush=*/true);
        }
    }
    if (persist_ && config_.persist_load_model) {
        // Snapshot the load model once every in-flight observation has
        // landed (the pool still exists — pool_ is declared last, so
        // it destructs after this body runs).
        pool_->wait();
        persist_->storeLoadModel(load_model_);
    }
}

int
CompileService::numWorkers() const
{
    return pool_->size();
}

void
CompileService::drain()
{
    // The pool decrements its pending counter only after the task's
    // telemetry epilogue (the dispatch span), so an idle pool means
    // every span of every completed request has been recorded.
    pool_->wait();
}

ServiceStats
CompileService::stats() const
{
    // One consistent snapshot: stats_mutex_ is held across the whole
    // assembly, so the service counters are frozen while the cache /
    // load-model / pool / telemetry sub-stats are gathered. Deadlock-
    // free because every sub-stats call takes only its own leaf mutex
    // (single-flight map mutex, model mutex, pool mutex, recorder
    // shard mutexes) and none of those holders ever acquires
    // stats_mutex_ — writers that want it simply block until the
    // snapshot completes. The frozen counters plus the
    // read-after-freeze sub-stats are what makes every invariant in
    // checkStatsInvariants() hold for any snapshot, not just at
    // quiescence.
    ServiceStats snapshot;
    std::unique_lock<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    snapshot.cache = cache_.stats();
    snapshot.run_cache = run_cache_.stats();
    snapshot.load_model = load_model_.snapshot();
    if (persist_) snapshot.persist = persist_->stats();
    snapshot.pool = pool_->stats();
    snapshot.telemetry = telemetry_.snapshot();
    {
        std::unique_lock<std::mutex> pools_lock(pools_mutex_);
        for (const auto& [key, pool] : pools_) {
            snapshot.runtimes_created +=
                static_cast<std::uint64_t>(pool->created());
            const fhe::PolyArena::Stats arena = pool->arenaStats();
            snapshot.arena_allocs += arena.allocs;
            snapshot.arena_reuses += arena.reuses;
            snapshot.arena_bytes += arena.bytes;
        }
    }
    return snapshot;
}

RuntimePool&
CompileService::poolFor(const fhe::SealLiteParams& params)
{
    const std::uint64_t key = paramsFingerprint(params);
    std::unique_lock<std::mutex> lock(pools_mutex_);
    std::unique_ptr<RuntimePool>& slot = pools_[key];
    if (!slot) slot = std::make_unique<RuntimePool>(params);
    return *slot;
}

CompileResponse
CompileService::makeResponse(const CompileRequest& request,
                             const CacheEntry::Settled& settled,
                             bool cache_hit, bool deduplicated,
                             double queue_seconds,
                             double estimated_cost,
                             double predicted_seconds) const
{
    CompileResponse response;
    response.name = request.name;
    response.cache_hit = cache_hit;
    response.deduplicated = deduplicated;
    response.queue_seconds = queue_seconds;
    response.compile_seconds = settled.seconds;
    response.estimated_cost = estimated_cost;
    response.predicted_seconds = predicted_seconds;
    response.worker_id = settled.worker_id;
    if (settled.state == CacheEntry::State::Ready) {
        response.ok = true;
        response.compiled = *settled.artifact;
    } else {
        response.ok = false;
        response.error = *settled.error;
    }
    return response;
}

CompileCache::Admission
CompileService::admitCompile(const ir::ExprPtr& canonical,
                             const compiler::DriverConfig& pipeline,
                             const CacheKey& key, double estimate,
                             double predicted, std::uint64_t request_id)
{
    CompileCache::Admission admission = cache_.acquire(key);
    if (!admission.owner) return admission;

    // This caller admitted the key: compile on the pool, longest
    // *predicted* wall time first (LPT order minimizes batch makespan,
    // and predicted seconds rank compile tasks against run tasks in
    // the shared queue). The worker compiles the canonical tree
    // computed by the caller: the driver's own canonicalize pass
    // becomes a cheap no-op and the cache key provably describes the
    // compiled source. Measured wall time feeds the load model so the
    // next compile of this key dispatches on truth, not estimate.
    std::shared_ptr<CacheEntry> entry = admission.entry;
    // This compile now counts toward the shard's predicted load until
    // its entry publishes (the router's run-routing signal; see
    // LoadModel::noteEnqueued).
    load_model_.noteEnqueued(predicted);
    pool_->submit(
        [this, entry, canonical, pipeline, key, estimate, predicted,
         request_id](int worker) {
            const std::int64_t span_start =
                telemetry_.enabled() ? telemetry_.nowNs() : 0;
            const Stopwatch compile_watch;
            if (persist_) {
                // Warm path: a previous process (or an evicted entry of
                // this one) already compiled this key — load the stored
                // artifact instead of recompiling. Bit-identical to a
                // fresh compile by the determinism contract
                // (compiler/serialize.h), so joiners cannot tell the
                // difference. The measured load time deliberately does
                // NOT feed observeCompile: the EWMA profile predicts
                // *compiles*, and a sub-millisecond load sample would
                // poison the next cold-prediction for this key.
                std::optional<compiler::Compiled> loaded =
                    persist_->loadArtifact(key);
                if (loaded) {
                    const double seconds = compile_watch.elapsedSeconds();
                    if (telemetry_.enabled()) {
                        telemetry_.instant("persist_hit", worker,
                                           request_id);
                        telemetry_.span("compile", worker, span_start,
                                        telemetry_.nowNs(), request_id,
                                        {{"est_cost", estimate},
                                         {"meas_s", seconds}});
                    }
                    // noteFinished strictly before publish, here and at
                    // every publish site: a client that has collected
                    // every response must observe a drained load signal
                    // (the quiescent inflight_jobs == 0 invariant).
                    load_model_.noteFinished(predicted);
                    entry->publishReady(std::move(*loaded), seconds,
                                        worker);
                    return;
                }
            }
            try {
                const compiler::CompilerDriver driver(&ruleset_,
                                                      config_.agent);
                compiler::Compiled compiled =
                    driver.compile(canonical, pipeline);
                const double seconds = compile_watch.elapsedSeconds();
                if (telemetry_.enabled()) {
                    telemetry_.span("compile", worker, span_start,
                                    telemetry_.nowNs(), request_id,
                                    {{"est_cost", estimate},
                                     {"meas_s", seconds}});
                    telemetry_.observe(telemetry::Phase::Compile, seconds);
                }
                load_model_.observeCompile(key, estimate, seconds);
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.compiled;
                    stats_.total_compile_seconds += seconds;
                }
                // Store before publish (publish consumes the artifact):
                // the write is crash-safe and content-addressed, so a
                // failure here only costs the next process a recompile.
                if (persist_) persist_->storeArtifact(key, compiled);
                load_model_.noteFinished(predicted);
                entry->publishReady(std::move(compiled), seconds, worker);
            } catch (const std::exception& e) {
                telemetry_.instant("compile_failed", worker, request_id);
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.failed;
                }
                load_model_.noteFinished(predicted);
                entry->publishFailure(e.what(), worker);
            }
        },
        predicted, ThreadPool::TaskTag{"dispatch", request_id, predicted});
    return admission;
}

std::future<CompileResponse>
CompileService::submit(CompileRequest request)
{
    auto promise = std::make_shared<std::promise<CompileResponse>>();
    std::future<CompileResponse> future = promise->get_future();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.submitted;
    }

    const Stopwatch queue_watch;
    const bool traced = telemetry_.enabled();
    const std::uint64_t rid =
        traced ? next_request_id_.fetch_add(1) + 1 : 0;
    const int client_tid = telemetry::TraceRecorder::clientTid();
    const std::int64_t enqueue_start = traced ? telemetry_.nowNs() : 0;

    // Canonicalize on the caller: the cache key must identify the
    // *canonical* program so syntactic variants share one entry, and
    // the cost estimate prices what the optimizer will actually see.
    ir::ExprPtr canonical;
    try {
        if (!request.source) throw CompileError("null request source");
        canonical = compiler::canonicalize(request.source);
    } catch (const std::exception& e) {
        CompileResponse response;
        response.name = request.name;
        response.error = e.what();
        promise->set_value(std::move(response));
        return future;
    }

    const CacheKey key = makeCacheKey(canonical, request.pipeline);
    const double estimate = ir::cost(canonical, request.pipeline.weights);
    const double predicted =
        load_model_.predictCompileSeconds(key, estimate);

    CompileCache::Admission admission =
        admitCompile(canonical, request.pipeline, key, estimate, predicted,
                     rid);
    const bool cache_hit = !admission.owner && !admission.was_pending;
    const bool deduplicated = admission.was_pending;

    if (traced) {
        // The client-side admission span: canonicalize, key derivation,
        // cache acquire and (for owners) the pool dispatch.
        telemetry_.span("enqueue", client_tid, enqueue_start,
                        telemetry_.nowNs(), rid, {{"pred_s", predicted}});
        telemetry_.observe(telemetry::Phase::Enqueue,
                           queue_watch.elapsedSeconds());
        if (cache_hit) {
            telemetry_.instant("compile_cache_hit", client_tid, rid);
        }
    }

    // Hit, join, or owner alike: resolve the future when the entry
    // settles. Runs inline for an already-settled entry, otherwise on
    // the publishing worker — never blocks a pool thread.
    admission.entry->onSettled(
        [this, promise, request = std::move(request), cache_hit,
         deduplicated, queue_watch, estimate,
         predicted](const CacheEntry::Settled& settled) {
            promise->set_value(makeResponse(request, settled, cache_hit,
                                            deduplicated,
                                            queue_watch.elapsedSeconds(),
                                            estimate, predicted));
        });
    return future;
}

bool
CompileService::tryCoalesce(BatchLane& lane)
{
    if (config_.max_lanes == 1) return false;
    const int row_slots = lane.request.params.n / 2;
    if (row_slots <= 0) return false;

    const BatchGroupKey& fit_key = lane.group_key;
    const int effective_budget = fit_key.key_budget;

    const int lanes_cap = config_.max_lanes > 1 ? config_.max_lanes : 0;

    std::optional<BatchPlanner::Group> full;
    {
        std::unique_lock<std::mutex> lock(batch_mutex_);
        if (batch_stop_) return false; // Shutting down: run solo.
        auto it = fit_cache_.find(fit_key);
        const bool memo_hit = it != fit_cache_.end();
        if (!memo_hit) {
            // Analyze the exact rotation sequences this run will
            // execute: the compiler's key plan when present, the
            // runtime's budget-derived plan otherwise (mirroring the
            // solo execution path). Memoized per group identity.
            GroupFit entry;
            if (lane.compiled->key_planned) {
                entry.plan = lane.compiled->key_plan;
            } else {
                entry.plan = compiler::effectiveKeyPlan(
                    lane.compiled->program, effective_budget);
            }
            entry.fit = analyzeLaneFit(lane.compiled->program, entry.plan,
                                       row_slots);
            // Crude bound so a churn of distinct kernels cannot grow
            // the memo without limit; recomputation is cheap.
            if (fit_cache_.size() >= 4096) fit_cache_.clear();
            it = fit_cache_.emplace(fit_key, std::move(entry)).first;
        }
        {
            std::unique_lock<std::mutex> stats_lock(stats_mutex_);
            if (memo_hit) {
                ++stats_.fit_memo_hits;
            } else {
                ++stats_.fit_memo_misses;
            }
        }
        const GroupFit& group_fit = it->second;
        if (!group_fit.fit.safe) return false;
        int capacity = row_slots / group_fit.fit.stride;
        if (lanes_cap > 0) capacity = std::min(capacity, lanes_cap);
        if (capacity < 2) return false;
        BatchPlanner::MemberSpec member;
        member.compile = fit_key.compile;
        member.compiled = lane.compiled;
        member.plan = &group_fit.plan;
        member.min_stride = group_fit.fit.stride;
        // Feed the arrival estimator, then derive how much longer the
        // group should keep its seat open: the expected fill time of
        // the remaining lanes, ceiling-bounded by the fixed window
        // (fixed-window semantics until the estimator has confidence,
        // or when adaptive windows are opted out).
        const BatchPlanner::Clock::time_point now =
            BatchPlanner::Clock::now();
        double adaptive_wait = -1.0;
        if (config_.adaptive_window) {
            // The arrival tracker only feeds the adaptive window, so
            // the fixed-window configuration skips it entirely.
            load_model_.observeArrival(fit_key, now,
                                       config_.batch_window_seconds);
            const int remaining =
                capacity -
                (static_cast<int>(planner_.pendingLanesFor(fit_key)) + 1);
            adaptive_wait = load_model_.adaptiveWaitSeconds(
                fit_key, remaining, config_.batch_window_seconds);
        }
        if (telemetry_.enabled()) {
            // Stamp the coalescer arrival: dispatchGroup turns it into
            // the lane's window-wait measurement at flush time.
            lane.coalesce_ns = telemetry_.nowNs();
            if (adaptive_wait >= 0.0 &&
                adaptive_wait < config_.batch_window_seconds) {
                telemetry_.instant("window_shrink",
                                   telemetry::TraceRecorder::clientTid(),
                                   lane.request_id,
                                   {{"wait_s", adaptive_wait}});
            }
        }
        full = planner_.add(fit_key, member, std::move(lane), row_slots,
                            lanes_cap, now, adaptive_wait);
    }
    if (full) {
        dispatchGroup(std::move(*full), /*window_flush=*/false);
    } else {
        // The add may have created a new earliest deadline OR — under
        // the adaptive window — shortened an existing one: wake the
        // flusher so it re-derives its wait_until target instead of
        // sleeping out the stale deadline.
        batch_cv_.notify_one();
    }
    return true;
}

ConsolidatePolicy
CompileService::consolidatePolicy()
{
    ConsolidatePolicy policy;
    policy.cost_driven = load_model_.enabled();
    policy.parallelism = pool_->size();
    if (policy.cost_driven) {
        // The model never locks back into the service, so this
        // callback is safe under batch_mutex_.
        policy.shareable = [this](const BatchPlanner::Group& group) {
            return load_model_.preferRowShare(group.key.params_hash,
                                              group.predicted_sum);
        };
    }
    return policy;
}

void
CompileService::flusherLoop()
{
    std::unique_lock<std::mutex> lock(batch_mutex_);
    while (!batch_stop_) {
        // Re-derive the wait target on every pass: the adaptive window
        // recomputes group deadlines on each arrival — possibly
        // *earlier* than what this thread last slept on — and every
        // such update notifies batch_cv_, so waking here and re-reading
        // earliestDeadline() is what keeps a shortened window from
        // being slept out at its old fixed deadline.
        const std::optional<BatchPlanner::Clock::time_point> deadline =
            planner_.earliestDeadline();
        if (!deadline) {
            batch_cv_.wait(lock, [this] {
                return batch_stop_ || planner_.pendingLanes() > 0;
            });
            continue;
        }
        batch_cv_.wait_until(lock, *deadline);
        std::vector<BatchPlanner::Group> due =
            planner_.takeDue(BatchPlanner::Clock::now());
        if (due.empty()) continue;
        // Window-expired partial groups are where cross-kernel packing
        // pays: consolidate compatible ones into shared rows and offer
        // still-pending row-mates a seat (mates that do not fit keep
        // their window) before dispatching. Full groups never reach
        // this path — they dispatched at capacity, already perfectly
        // packed.
        if (config_.cross_kernel) {
            const std::size_t before = due.size();
            due = planner_.consolidateDue(std::move(due),
                                          consolidatePolicy());
            if (telemetry_.enabled() && due.size() != before) {
                telemetry_.instant(
                    "consolidate", telemetry::TraceRecorder::kFlusherTid,
                    0,
                    {{"groups_in", static_cast<double>(before)},
                     {"groups_out", static_cast<double>(due.size())}});
            }
        }
        lock.unlock();
        for (BatchPlanner::Group& group : due) {
            dispatchGroup(std::move(group), /*window_flush=*/true);
        }
        lock.lock();
    }
}

void
CompileService::dispatchGroup(BatchPlanner::Group group, bool window_flush)
{
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        if (window_flush) {
            ++stats_.window_flushes;
        } else {
            ++stats_.full_flushes;
        }
    }
    if (telemetry_.enabled()) {
        // Close every lane's coalescer wait: arrival stamp -> this
        // flush. Measured here (not at execution) so the wait excludes
        // the pool queue — that part is the dispatch span's qwait.
        const std::int64_t now = telemetry_.nowNs();
        for (BatchPlanner::GroupMember& member : group.members) {
            for (BatchLane& lane : member.lanes) {
                if (lane.coalesce_ns <= 0) continue;
                lane.window_wait_seconds =
                    static_cast<double>(now - lane.coalesce_ns) / 1e9;
                telemetry_.observe(telemetry::Phase::WindowWait,
                                   lane.window_wait_seconds);
            }
        }
        // Full flushes happen on the arriving client's thread,
        // window flushes on the flusher (or the destructor's drain).
        telemetry_.instant(
            window_flush ? "window_flush" : "full_flush",
            window_flush ? telemetry::TraceRecorder::kFlusherTid
                         : telemetry::TraceRecorder::clientTid(),
            group.members.front().lanes.front().request_id,
            {{"lanes", static_cast<double>(group.total_lanes)},
             {"members", static_cast<double>(group.members.size())}});
    }
    if (group.total_lanes == 1) {
        // A group the window closed before any peer arrived: packing a
        // single request buys nothing, run it solo.
        submitSoloRun(std::move(group.members.front().lanes.front()));
        return;
    }
    // LPT on the row's predicted seconds (one program execution per
    // member), in the same unit compile tasks are ranked by.
    const double priority = group.predicted_sum;
    const std::uint64_t rid =
        group.members.front().lanes.front().request_id;
    auto shared = std::make_shared<BatchPlanner::Group>(std::move(group));
    pool_->submit(
        [this, shared](int worker) { executePacked(*shared, worker); },
        priority, ThreadPool::TaskTag{"dispatch", rid, priority});
}

void
CompileService::recordExecutePhases(int worker, std::int64_t start_ns,
                                    std::uint64_t request_id,
                                    const compiler::RunResult& result,
                                    double seconds, int lanes)
{
    if (!telemetry_.enabled()) return;
    const std::int64_t end_ns =
        start_ns + static_cast<std::int64_t>(seconds * 1e9);
    telemetry_.span("execute", worker, start_ns, end_ns, request_id,
                    {{"lanes", static_cast<double>(lanes)},
                     {"meas_s", seconds}});
    // The sub-phases ran back to back inside the execution; rebuild
    // their bounds from the measured split (clamped so FP rounding
    // never pushes a child past its parent).
    const auto offset = [&](double s) {
        return std::min(end_ns,
                        start_ns + static_cast<std::int64_t>(s * 1e9));
    };
    const std::int64_t setup_end = offset(result.setup_seconds);
    const std::int64_t eval_end =
        offset(result.setup_seconds + result.exec_seconds);
    const std::int64_t decode_end =
        offset(result.setup_seconds + result.exec_seconds +
               result.decode_seconds);
    telemetry_.span("setup", worker, start_ns, setup_end, request_id);
    telemetry_.span("evaluate", worker, setup_end, eval_end, request_id);
    telemetry_.span("decode", worker, eval_end, decode_end, request_id);
    telemetry_.observe(telemetry::Phase::Execute, seconds);
    telemetry_.observe(telemetry::Phase::Setup, result.setup_seconds);
    telemetry_.observe(telemetry::Phase::Evaluate, result.exec_seconds);
    telemetry_.observe(telemetry::Phase::Decode, result.decode_seconds);
}

void
CompileService::runSoloLane(const BatchLane& lane,
                            compiler::FheRuntime& runtime, int worker)
{
    const std::int64_t span_start =
        telemetry_.enabled() ? telemetry_.nowNs() : 0;
    const Stopwatch exec_watch;
    try {
        RunArtifact artifact;
        artifact.compiled = *lane.compiled;
        artifact.compile_seconds = lane.compile_seconds;
        artifact.predicted_seconds = lane.predicted;
        artifact.window_wait_seconds = lane.window_wait_seconds;
        // Per-request reseed: bit-identical noise accounting on any
        // pooled instance (see runtime_pool.h).
        runtime.scheme().reseedRandomness(runSeed(lane.run_key));
        if (artifact.compiled.key_planned) {
            artifact.result =
                runtime.run(artifact.compiled.program, lane.request.inputs,
                            artifact.compiled.key_plan);
        } else {
            artifact.result =
                runtime.run(artifact.compiled.program, lane.request.inputs,
                            lane.request.key_budget);
        }
        const double seconds = exec_watch.elapsedSeconds();
        recordExecutePhases(worker, span_start, lane.request_id,
                            artifact.result, seconds, /*lanes=*/1);
        load_model_.observeRun(lane.group_key, lane.estimate, seconds,
                               artifact.result.setup_seconds);
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            ++stats_.executed;
            ++stats_.solo_runs;
            stats_.total_exec_seconds += seconds;
            stats_.mod_switch_drops += static_cast<std::uint64_t>(
                artifact.result.mod_switch_drops);
        }
        load_model_.noteFinished(lane.predicted);
        lane.entry->publishReady(std::move(artifact), seconds, worker);
    } catch (const std::exception& e) {
        telemetry_.instant("run_failed", worker, lane.request_id);
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            ++stats_.run_failed;
        }
        load_model_.noteFinished(lane.predicted);
        lane.entry->publishFailure(e.what(), worker);
    }
}

void
CompileService::submitSoloRun(BatchLane lane)
{
    const double priority = lane.predicted;
    const ThreadPool::TaskTag tag{"dispatch", lane.request_id,
                                  lane.predicted};
    auto shared = std::make_shared<BatchLane>(std::move(lane));
    pool_->submit(
        [this, shared](int worker) {
            const BatchLane& lane = *shared;
            try {
                RuntimePool::Lease lease =
                    poolFor(lane.request.params).acquire();
                runSoloLane(lane, lease.runtime(), worker);
            } catch (const std::exception& e) {
                // Lease acquisition failed (runtime construction threw).
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.run_failed;
                }
                load_model_.noteFinished(lane.predicted);
                lane.entry->publishFailure(e.what(), worker);
            }
        },
        priority, tag);
}

std::shared_ptr<const compiler::CompositeProgram>
CompileService::compositeFor(const BatchPlanner::Group& group)
{
    const std::uint64_t fingerprint = compositeFingerprint(group);
    {
        std::unique_lock<std::mutex> lock(batch_mutex_);
        auto it = composite_cache_.find(fingerprint);
        if (it != composite_cache_.end()) {
            std::unique_lock<std::mutex> stats_lock(stats_mutex_);
            ++stats_.composite_cache_hits;
            return it->second;
        }
    }
    auto composite = std::make_shared<const compiler::CompositeProgram>(
        composeGroup(group));
    {
        std::unique_lock<std::mutex> lock(batch_mutex_);
        // Crude churn bound, mirroring the fit memo. A racing composer
        // may have published the same fingerprint meanwhile; both
        // values are identical by content-addressing, either wins.
        if (composite_cache_.size() >= 1024) composite_cache_.clear();
        composite_cache_.emplace(fingerprint, composite);
    }
    {
        std::unique_lock<std::mutex> stats_lock(stats_mutex_);
        ++stats_.composite_cache_misses;
    }
    return composite;
}

void
CompileService::executePacked(BatchPlanner::Group& group, int worker)
{
    // The group is executed exactly once, on this worker; every lane's
    // entry is published from here (success, fallback, or failure).
    const std::uint64_t seed = BatchPlanner::canonicalizeAndSeed(group);
    // Canonical flat lane order, for exception-safe publication.
    std::vector<const BatchLane*> flat;
    flat.reserve(static_cast<std::size_t>(group.total_lanes));
    for (const BatchPlanner::GroupMember& member : group.members) {
        for (const BatchLane& lane : member.lanes) flat.push_back(&lane);
    }
    const std::int64_t span_start =
        telemetry_.enabled() ? telemetry_.nowNs() : 0;
    const Stopwatch exec_watch;
    std::size_t published = 0; ///< Lane entries settled so far.
    try {
        RuntimePool::Lease lease =
            poolFor(flat.front()->request.params).acquire();
        lease->scheme().reseedRandomness(seed);

        // Run the row: one kernel -> the packed fast path; a mix of
        // kernels -> the composed concatenation. Both produce the same
        // shape: per-member final budgets and per-lane output slices.
        std::vector<int> member_budgets;
        std::vector<std::vector<std::vector<std::int64_t>>> member_outputs;
        compiler::RunResult shared;
        if (group.members.size() == 1) {
            const BatchPlanner::GroupMember& member = group.members.front();
            std::vector<const ir::Env*> envs;
            envs.reserve(member.lanes.size());
            for (const BatchLane& lane : member.lanes) {
                envs.push_back(&lane.request.inputs);
            }
            compiler::PackedRunResult packed =
                lease->runPacked(member.compiled->program, envs,
                                 member.plan, group.stride);
            shared = std::move(packed.shared);
            member_budgets.push_back(shared.final_noise_budget);
            member_outputs.push_back(std::move(packed.lane_outputs));
        } else {
            std::shared_ptr<const compiler::CompositeProgram> composite =
                compositeFor(group);
            std::vector<std::vector<const ir::Env*>> member_lanes;
            member_lanes.reserve(group.members.size());
            for (const BatchPlanner::GroupMember& member : group.members) {
                std::vector<const ir::Env*> envs;
                envs.reserve(member.lanes.size());
                for (const BatchLane& lane : member.lanes) {
                    envs.push_back(&lane.request.inputs);
                }
                member_lanes.push_back(std::move(envs));
            }
            compiler::CompositeRunResult result =
                lease->runComposite(*composite, member_lanes);
            shared = std::move(result.shared);
            member_budgets = std::move(result.member_final_budgets);
            member_outputs = std::move(result.member_outputs);
        }

        const double seconds = exec_watch.elapsedSeconds();
        recordExecutePhases(worker, span_start,
                            flat.front()->request_id, shared, seconds,
                            group.total_lanes);
        // For proportional measured-time attribution per member (each
        // member's program ran exactly once on this row); equal split
        // when every prediction is zero.
        double total_pred = 0.0;
        for (const BatchPlanner::GroupMember& member : group.members) {
            total_pred += member.lanes.front().predicted;
        }
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            ++stats_.executed;
            ++stats_.packed_groups;
            if (group.members.size() > 1) {
                ++stats_.composite_groups;
                stats_.composite_members += group.members.size();
            }
            stats_.total_exec_seconds += seconds;
            stats_.mod_switch_drops +=
                static_cast<std::uint64_t>(shared.mod_switch_drops);
        }

        for (std::size_t m = 0; m < group.members.size(); ++m) {
            const BatchPlanner::GroupMember& member = group.members[m];
            if (member_budgets[m] <= 0) {
                // This member's noise headroom ran out on the shared
                // row (other lanes' messages fatten the multiply
                // noise): its packed outputs are no longer
                // trustworthy, so re-execute its lanes solo — exactly
                // as if they had never been coalesced. Other members'
                // outputs live in their own ciphertexts and stand.
                telemetry_.instant(
                    "solo_fallback", worker,
                    member.lanes.front().request_id,
                    {{"lanes",
                      static_cast<double>(member.lanes.size())}});
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.packed_fallbacks;
                }
                for (const BatchLane& lane : member.lanes) {
                    // runSoloLane settles the entry on success AND
                    // failure.
                    runSoloLane(lane, lease.runtime(), worker);
                    ++published;
                }
                continue;
            }
            // Feed the measured row time back, attributed to this
            // member's predicted share; fallback members are skipped —
            // their packed execution was discarded and runSoloLane just
            // observed their true solo cost, so a diluted packed-share
            // sample would only bias the profile low for exactly the
            // groups that should read as expensive.
            {
                const BatchLane& first = member.lanes.front();
                const double share =
                    total_pred > 0.0
                        ? first.predicted / total_pred
                        : 1.0 / static_cast<double>(group.members.size());
                load_model_.observeRun(first.group_key, first.estimate,
                                       seconds * share,
                                       shared.setup_seconds * share);
            }
            // packed_lanes counts per publication (not the group size
            // up front) so a mid-loop throw leaves the counters
            // consistent with what was actually delivered.
            for (std::size_t l = 0; l < member.lanes.size(); ++l) {
                RunArtifact artifact;
                artifact.compiled = *member.compiled;
                artifact.compile_seconds =
                    member.lanes[l].compile_seconds;
                artifact.predicted_seconds = group.predicted_sum;
                artifact.window_wait_seconds =
                    member.lanes[l].window_wait_seconds;
                artifact.result = shared;
                artifact.result.counts =
                    member.compiled->program.counts();
                artifact.result.final_noise_budget = member_budgets[m];
                artifact.result.consumed_noise =
                    shared.fresh_noise_budget - member_budgets[m];
                artifact.result.output = member_outputs[m][l];
                artifact.packed_lanes = group.total_lanes;
                artifact.lane = member.lane_base + static_cast<int>(l);
                {
                    std::unique_lock<std::mutex> lock(stats_mutex_);
                    ++stats_.packed_lanes;
                }
                load_model_.noteFinished(member.lanes[l].predicted);
                member.lanes[l].entry->publishReady(std::move(artifact),
                                                    seconds, worker);
                ++published;
            }
        }
    } catch (const std::exception& e) {
        // Fail only the lanes not yet published: an already-settled
        // entry must never be published twice.
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            stats_.run_failed +=
                static_cast<std::uint64_t>(flat.size() - published);
        }
        for (std::size_t l = published; l < flat.size(); ++l) {
            load_model_.noteFinished(flat[l]->predicted);
            flat[l]->entry->publishFailure(e.what(), worker);
        }
    }
}

std::future<RunResponse>
CompileService::submitRun(RunRequest request)
{
    auto promise = std::make_shared<std::promise<RunResponse>>();
    std::future<RunResponse> future = promise->get_future();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.run_submitted;
    }

    const Stopwatch queue_watch;
    const bool traced = telemetry_.enabled();
    const std::uint64_t rid =
        traced ? next_request_id_.fetch_add(1) + 1 : 0;
    const int client_tid = telemetry::TraceRecorder::clientTid();
    const std::int64_t enqueue_start = traced ? telemetry_.nowNs() : 0;

    ir::ExprPtr canonical;
    try {
        if (!request.source) throw CompileError("null request source");
        canonical = compiler::canonicalize(request.source);
    } catch (const std::exception& e) {
        RunResponse response;
        response.name = request.name;
        response.error = e.what();
        promise->set_value(std::move(response));
        return future;
    }

    const CacheKey compile_key = makeCacheKey(canonical, request.pipeline);
    const double estimate = ir::cost(canonical, request.pipeline.weights);

    const RunKey run_key = makeRunKey(canonical, request);
    RunCache::Admission run_admission = run_cache_.acquire(run_key);
    const bool run_hit =
        !run_admission.owner && !run_admission.was_pending;
    const bool run_dedup = run_admission.was_pending;
    const std::string name = request.name;

    // Only the run owner touches the kernel cache: a request served
    // from the run cache definitionally reused the compile stage too
    // (the artifact is embedded in the run entry), so its compile
    // provenance mirrors the run provenance — and admitting the
    // compile key anyway could schedule a recompile nothing consumes
    // when the compile entry was LRU-evicted after the run settled.
    bool compile_hit = run_hit;
    bool compile_dedup = run_dedup;

    if (run_admission.owner) {
        // Run requests and plain compile requests share the kernel
        // cache: a run of a kernel someone already compiled reuses
        // that artifact, and vice versa.
        CompileCache::Admission compile_admission = admitCompile(
            canonical, request.pipeline, compile_key, estimate,
            load_model_.predictCompileSeconds(compile_key, estimate), rid);
        compile_hit =
            !compile_admission.owner && !compile_admission.was_pending;
        compile_dedup = compile_admission.was_pending;

        // Single-flight execute: chain onto the compile entry. The
        // continuation hands the job to the slot-batching coalescer
        // (lane-safe kernels wait up to the batch window for peers to
        // share a ciphertext row with) or enqueues a solo execution —
        // it never runs the kernel inline on the publishing worker.
        std::shared_ptr<RunEntry> run_entry = run_admission.entry;
        std::shared_ptr<CacheEntry> compile_entry = compile_admission.entry;
        RunRequest job = std::move(request);
        compile_admission.entry->onSettled(
            [this, run_entry, compile_entry, job = std::move(job), run_key,
             compile_key, estimate,
             rid](const CacheEntry::Settled& settled) {
                if (settled.state != CacheEntry::State::Ready) {
                    {
                        std::unique_lock<std::mutex> lock(stats_mutex_);
                        ++stats_.run_failed;
                    }
                    run_entry->publishFailure(*settled.error,
                                              settled.worker_id);
                    return;
                }
                // The artifact pointer stays valid because the lane
                // holds the compile entry alive via shared_ptr.
                BatchLane lane;
                lane.entry = run_entry;
                lane.compile_entry = compile_entry;
                lane.compiled = settled.artifact;
                lane.compile_seconds = settled.seconds;
                lane.request = job;
                lane.run_key = run_key;
                // Group identity (artifact x params x effective
                // budget): the load model's run-profile key and, when
                // coalescible, the planner's group key.
                lane.group_key.compile = compile_key;
                lane.group_key.params_hash =
                    paramsFingerprint(lane.request.params);
                lane.group_key.key_budget =
                    settled.artifact->key_planned
                        ? 0
                        : lane.request.key_budget;
                lane.estimate = estimate;
                lane.predicted = load_model_.predictRunSeconds(
                    lane.group_key, estimate);
                lane.request_id = rid;
                // The lane counts toward the shard's predicted load
                // from admission to publication; every publication
                // path (solo, packed, fallback, failure) pairs this
                // with noteFinished(lane.predicted).
                load_model_.noteEnqueued(lane.predicted);
                if (!tryCoalesce(lane)) {
                    submitSoloRun(std::move(lane));
                }
            });
    }

    if (traced) {
        // The client-side admission span: canonicalize, both cache
        // acquires and (for owners) the compile dispatch / chaining.
        telemetry_.span("enqueue", client_tid, enqueue_start,
                        telemetry_.nowNs(), rid,
                        {{"est_cost", estimate}});
        telemetry_.observe(telemetry::Phase::Enqueue,
                           queue_watch.elapsedSeconds());
        if (run_hit) {
            telemetry_.instant("run_cache_hit", client_tid, rid);
        } else if (run_admission.owner && compile_hit) {
            telemetry_.instant("compile_cache_hit", client_tid, rid);
        }
    }

    run_admission.entry->onSettled(
        [promise, name, compile_hit, compile_dedup, run_hit,
         run_dedup, queue_watch,
         estimate](const RunEntry::Settled& settled) {
            RunResponse response;
            response.name = name;
            response.compile_cache_hit = compile_hit;
            response.compile_deduplicated = compile_dedup;
            response.run_cache_hit = run_hit;
            response.run_deduplicated = run_dedup;
            response.queue_seconds = queue_watch.elapsedSeconds();
            response.exec_seconds = settled.seconds;
            response.estimated_cost = estimate;
            response.worker_id = settled.worker_id;
            if (settled.state == RunEntry::State::Ready) {
                response.ok = true;
                response.compiled = settled.artifact->compiled;
                response.result = settled.artifact->result;
                response.compile_seconds =
                    settled.artifact->compile_seconds;
                response.predicted_seconds =
                    settled.artifact->predicted_seconds;
                response.window_wait_seconds =
                    settled.artifact->window_wait_seconds;
                response.packed_lanes = settled.artifact->packed_lanes;
                response.lane = settled.artifact->lane;
            } else {
                response.ok = false;
                response.error = *settled.error;
            }
            promise->set_value(std::move(response));
        });
    return future;
}

} // namespace chehab::service
