#include "service/compile_service.h"

#include <exception>
#include <utility>

#include "compiler/passes.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::service {

const char*
optModeName(OptMode mode)
{
    switch (mode) {
    case OptMode::NoOpt: return "noopt";
    case OptMode::Greedy: return "greedy";
    case OptMode::Rl: return "rl";
    }
    return "?";
}

CompileService::CompileService(ServiceConfig config)
    : config_(config), ruleset_(trs::buildChehabRuleset()),
      pool_(std::make_unique<ThreadPool>(config.num_workers))
{}

CompileService::~CompileService() = default;

int
CompileService::numWorkers() const
{
    return pool_->size();
}

ServiceStats
CompileService::stats() const
{
    std::unique_lock<std::mutex> lock(stats_mutex_);
    ServiceStats snapshot = stats_;
    snapshot.cache = cache_.stats();
    return snapshot;
}

CompileResponse
CompileService::makeResponse(const CompileRequest& request,
                             const CacheEntry::Settled& settled,
                             bool cache_hit, bool deduplicated,
                             double queue_seconds,
                             double estimated_cost) const
{
    CompileResponse response;
    response.name = request.name;
    response.cache_hit = cache_hit;
    response.deduplicated = deduplicated;
    response.queue_seconds = queue_seconds;
    response.compile_seconds = settled.compile_seconds;
    response.estimated_cost = estimated_cost;
    response.worker_id = settled.worker_id;
    if (settled.state == CacheEntry::State::Ready) {
        response.ok = true;
        response.compiled = *settled.compiled;
    } else {
        response.ok = false;
        response.error = *settled.error;
    }
    return response;
}

std::future<CompileResponse>
CompileService::submit(CompileRequest request)
{
    auto promise = std::make_shared<std::promise<CompileResponse>>();
    std::future<CompileResponse> future = promise->get_future();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.submitted;
    }

    const Stopwatch queue_watch;

    // Canonicalize on the caller: the cache key must identify the
    // *canonical* program so syntactic variants share one entry, and
    // the cost estimate prices what the optimizer will actually see.
    ir::ExprPtr canonical;
    try {
        if (!request.source) throw CompileError("null request source");
        canonical = compiler::canonicalize(request.source);
    } catch (const std::exception& e) {
        CompileResponse response;
        response.name = request.name;
        response.error = e.what();
        promise->set_value(std::move(response));
        return future;
    }

    const CacheKey key = makeCacheKey(canonical, request);
    const double estimate = ir::cost(canonical, request.weights);

    KernelCache::Admission admission = cache_.acquire(key);
    const bool cache_hit = !admission.owner && !admission.was_pending;
    const bool deduplicated = admission.was_pending;

    if (admission.owner) {
        // This caller admitted the key: compile on the pool, most
        // expensive kernels first (LPT order minimizes batch makespan).
        std::shared_ptr<CacheEntry> entry = admission.entry;
        CompileRequest job = request;
        // Hand the worker the canonical tree computed above: the
        // pipeline's own canonicalize pass becomes a cheap no-op and
        // the cache key provably describes the compiled source.
        job.source = canonical;
        pool_->submit(
            [this, entry, job = std::move(job)](int worker) {
                const Stopwatch compile_watch;
                try {
                    compiler::Compiled compiled;
                    switch (job.mode) {
                    case OptMode::NoOpt:
                        compiled = compiler::compileNoOpt(job.source);
                        break;
                    case OptMode::Greedy:
                        compiled = compiler::compileGreedy(
                            ruleset_, job.source, job.weights,
                            job.max_steps);
                        break;
                    case OptMode::Rl:
                        if (!config_.agent) {
                            throw CompileError(
                                "OptMode::Rl request but the service was "
                                "configured without an RL agent");
                        }
                        compiled =
                            compiler::compileWithAgent(*config_.agent,
                                                       job.source);
                        break;
                    }
                    const double seconds = compile_watch.elapsedSeconds();
                    {
                        std::unique_lock<std::mutex> lock(stats_mutex_);
                        ++stats_.compiled;
                        stats_.total_compile_seconds += seconds;
                    }
                    entry->publishReady(std::move(compiled), seconds,
                                        worker);
                } catch (const std::exception& e) {
                    {
                        std::unique_lock<std::mutex> lock(stats_mutex_);
                        ++stats_.failed;
                    }
                    entry->publishFailure(e.what(), worker);
                }
            },
            estimate);
    }

    // Hit, join, or owner alike: resolve the future when the entry
    // settles. Runs inline for an already-settled entry, otherwise on
    // the publishing worker — never blocks a pool thread.
    admission.entry->onSettled(
        [this, promise, request = std::move(request), cache_hit,
         deduplicated, queue_watch,
         estimate](const CacheEntry::Settled& settled) {
            promise->set_value(makeResponse(request, settled, cache_hit,
                                            deduplicated,
                                            queue_watch.elapsedSeconds(),
                                            estimate));
        });
    return future;
}

std::vector<CompileResponse>
CompileService::compileBatch(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileResponse>> futures;
    futures.reserve(requests.size());
    for (CompileRequest& request : requests) {
        futures.push_back(submit(std::move(request)));
    }
    std::vector<CompileResponse> responses;
    responses.reserve(futures.size());
    for (auto& future : futures) responses.push_back(future.get());
    return responses;
}

} // namespace chehab::service
