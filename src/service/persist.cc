#include "service/persist.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include <unistd.h>

#include "compiler/serialize.h"
#include "support/binary_io.h"

namespace chehab::service {

namespace fs = std::filesystem;

namespace {

/// "CHB\x01" little-endian — rejects arbitrary files dropped into the
/// cache directory before any length field is trusted.
constexpr std::uint32_t kMagic = 0x01424843u;

/// File kinds: the header pins what a file claims to be, so a snapshot
/// renamed over an artifact path still fails closed.
constexpr std::uint8_t kKindArtifact = 1;
constexpr std::uint8_t kKindLoadModel = 2;

/// magic u32 + version u32 + kind u8 + payload length u64.
constexpr std::size_t kHeaderSize = 4 + 4 + 1 + 8;
constexpr std::size_t kChecksumSize = 8;

std::string
hex64(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

std::string
serializeLoadModelState(const LoadModelState& state)
{
    ByteWriter out;
    out.u32(static_cast<std::uint32_t>(state.compile.size()));
    for (const auto& [key, profile] : state.compile) {
        out.u64(key.source.hi);
        out.u64(key.source.lo);
        out.u64(key.pipeline);
        out.f64(profile.seconds_ewma);
        out.f64(profile.setup_ewma);
        out.u64(profile.samples);
    }
    out.u32(static_cast<std::uint32_t>(state.run.size()));
    for (const auto& [key, profile] : state.run) {
        out.u64(key.compile.source.hi);
        out.u64(key.compile.source.lo);
        out.u64(key.compile.pipeline);
        out.u64(key.params_hash);
        out.i32(key.key_budget);
        out.f64(profile.seconds_ewma);
        out.f64(profile.setup_ewma);
        out.u64(profile.samples);
    }
    out.u32(static_cast<std::uint32_t>(state.cheapest_run.size()));
    for (const auto& [params_hash, floor] : state.cheapest_run) {
        out.u64(params_hash);
        out.f64(floor);
    }
    out.f64(state.compile_ratio);
    out.u64(state.compile_ratio_samples);
    out.f64(state.run_ratio);
    out.u64(state.run_ratio_samples);
    return out.take();
}

LoadModelState
deserializeLoadModelState(const std::string& bytes)
{
    ByteReader in(bytes);
    LoadModelState state;
    const std::uint32_t num_compile = in.u32();
    if (num_compile > in.remaining()) {
        throw std::runtime_error("compile-profile count exceeds stream size");
    }
    state.compile.reserve(num_compile);
    for (std::uint32_t i = 0; i < num_compile; ++i) {
        CacheKey key;
        key.source.hi = in.u64();
        key.source.lo = in.u64();
        key.pipeline = in.u64();
        ProfileState profile;
        profile.seconds_ewma = in.f64();
        profile.setup_ewma = in.f64();
        profile.samples = in.u64();
        state.compile.emplace_back(key, profile);
    }
    const std::uint32_t num_run = in.u32();
    if (num_run > in.remaining()) {
        throw std::runtime_error("run-profile count exceeds stream size");
    }
    state.run.reserve(num_run);
    for (std::uint32_t i = 0; i < num_run; ++i) {
        BatchGroupKey key;
        key.compile.source.hi = in.u64();
        key.compile.source.lo = in.u64();
        key.compile.pipeline = in.u64();
        key.params_hash = in.u64();
        key.key_budget = in.i32();
        ProfileState profile;
        profile.seconds_ewma = in.f64();
        profile.setup_ewma = in.f64();
        profile.samples = in.u64();
        state.run.emplace_back(key, profile);
    }
    const std::uint32_t num_floors = in.u32();
    if (num_floors > in.remaining()) {
        throw std::runtime_error("floor count exceeds stream size");
    }
    state.cheapest_run.reserve(num_floors);
    for (std::uint32_t i = 0; i < num_floors; ++i) {
        const std::uint64_t params_hash = in.u64();
        const double floor = in.f64();
        state.cheapest_run.emplace_back(params_hash, floor);
    }
    state.compile_ratio = in.f64();
    state.compile_ratio_samples = in.u64();
    state.run_ratio = in.f64();
    state.run_ratio_samples = in.u64();
    if (!in.atEnd()) {
        throw std::runtime_error("trailing bytes after load-model snapshot");
    }
    return state;
}

} // namespace

PersistStore::PersistStore(std::string dir, int shard_id)
    : dir_(std::move(dir)), shard_id_(shard_id)
{
    if (dir_.empty()) {
        throw std::runtime_error("PersistStore: empty cache directory");
    }
    std::error_code ec;
    artifacts_dir_ = (fs::path(dir_) / "artifacts").string();
    fs::create_directories(artifacts_dir_, ec);
    if (ec || !fs::is_directory(artifacts_dir_)) {
        throw std::runtime_error("PersistStore: cannot create '" +
                                 artifacts_dir_ + "': " + ec.message());
    }
}

std::string
PersistStore::artifactFileName(const CacheKey& key)
{
    return hex64(key.source.hi) + "-" + hex64(key.source.lo) + "-" +
           hex64(key.pipeline) + ".art";
}

std::string
PersistStore::artifactPath(const CacheKey& key) const
{
    return (fs::path(artifacts_dir_) / artifactFileName(key)).string();
}

std::string
PersistStore::loadModelPath() const
{
    return (fs::path(dir_) /
            ("load_model.shard" + std::to_string(shard_id_) + ".snap"))
        .string();
}

void
PersistStore::countCorrupt()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
}

bool
PersistStore::writeFileAtomic(const std::string& path, std::uint8_t kind,
                              const std::string& payload)
{
    ByteWriter framed;
    framed.u32(kMagic);
    framed.u32(kFormatVersion);
    framed.u8(kind);
    framed.u64(payload.size());
    // (Header ends here; everything after is payload + its checksum.)
    const std::string& bytes = framed.bytes();

    // Unique temp name per writer (pid x in-process sequence) in the
    // *same* directory, so the final std::rename is atomic on POSIX:
    // readers only ever see absent or complete files, even with
    // concurrent writers from other processes racing on the same key —
    // they all rename identical content-addressed bytes into place.
    static std::atomic<std::uint64_t> sequence{0};
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        const std::uint64_t checksum = fnv1a64(payload);
        ByteWriter tail;
        tail.u64(checksum);
        out.write(tail.bytes().data(),
                  static_cast<std::streamsize>(tail.bytes().size()));
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(temp, ec);
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::error_code ec;
        fs::remove(temp, ec);
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
    return true;
}

std::optional<std::string>
PersistStore::readFileChecked(const std::string& path, std::uint8_t kind)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    try {
        ByteReader reader(bytes);
        if (reader.u32() != kMagic) {
            throw std::runtime_error("bad magic");
        }
        if (reader.u32() != kFormatVersion) {
            // Refuse-and-cold-start: never guess at another layout.
            throw std::runtime_error("format version mismatch");
        }
        if (reader.u8() != kind) {
            throw std::runtime_error("wrong file kind");
        }
        const std::uint64_t payload_size = reader.u64();
        if (bytes.size() < kHeaderSize + kChecksumSize ||
            payload_size != bytes.size() - kHeaderSize - kChecksumSize) {
            throw std::runtime_error("payload length mismatch");
        }
        std::string payload = bytes.substr(kHeaderSize, payload_size);
        ByteReader tail(std::string_view(bytes).substr(
            kHeaderSize + payload_size));
        if (tail.u64() != fnv1a64(payload)) {
            throw std::runtime_error("checksum mismatch");
        }
        return payload;
    } catch (const std::exception&) {
        countCorrupt();
        return std::nullopt;
    }
}

std::optional<compiler::Compiled>
PersistStore::loadArtifact(const CacheKey& key)
{
    std::optional<std::string> payload =
        readFileChecked(artifactPath(key), kKindArtifact);
    if (payload) {
        try {
            compiler::Compiled compiled =
                compiler::deserializeCompiled(*payload);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
            return compiled;
        } catch (const std::exception&) {
            // The checksum passed but the payload would not decode: a
            // writer bug or a store written by a different build. Skip
            // it like any other corrupt entry.
            countCorrupt();
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
}

bool
PersistStore::storeArtifact(const CacheKey& key,
                            const compiler::Compiled& compiled)
{
    try {
        return writeFileAtomic(artifactPath(key), kKindArtifact,
                               compiler::serializeCompiled(compiled));
    } catch (const std::exception&) {
        return false;
    }
}

bool
PersistStore::loadLoadModelInto(LoadModel& model)
{
    std::optional<std::string> payload =
        readFileChecked(loadModelPath(), kKindLoadModel);
    if (!payload) return false;
    try {
        model.importState(deserializeLoadModelState(*payload));
        return true;
    } catch (const std::exception&) {
        countCorrupt();
        return false;
    }
}

bool
PersistStore::storeLoadModel(const LoadModel& model)
{
    try {
        return writeFileAtomic(loadModelPath(), kKindLoadModel,
                               serializeLoadModelState(model.exportState()));
    } catch (const std::exception&) {
        return false;
    }
}

PersistStats
PersistStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace chehab::service
