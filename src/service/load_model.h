/// \file
/// Timer-augmented load model: the one adaptive scheduling layer behind
/// dispatch, consolidation and batch-window sizing.
///
/// Every scheduling decision the service makes used to be driven by a
/// *static* a-priori estimate: thread-pool dispatch ranked tasks by
/// ir::cost(), consolidation bin-packed rows by stride alone, and the
/// coalescer flushed on a fixed window. Once per-task cost is uneven,
/// measured-runtime feedback beats any static cost function (cf. the
/// timer-augmented DSMC load-balancing literature in PAPERS.md), so the
/// LoadModel keeps online EWMA profiles of *measured* compile and run
/// wall times — keyed by the same content-addressed fingerprints the
/// caches use — and an arrival-rate estimator per coalescer group key:
///
///   - Compile profiles (per CacheKey): EWMA of the owner compile's
///     wall seconds. Cold start falls back to the static ir::cost()
///     estimate scaled by a globally calibrated seconds-per-cost-unit
///     ratio, so cold predictions keep the static ordering while warm
///     ones are measured truth.
///   - Run profiles (per BatchGroupKey = artifact x params x effective
///     key budget): EWMA of one full execution's wall seconds (setup +
///     evaluation), plus the setup share (key generation, packing,
///     encryption — RunResult::setup_seconds) that row sharing
///     amortizes. The cheapest observed execution per parameter family
///     doubles as the row-overhead floor consolidation prices merges
///     against.
///   - Arrival estimator (per BatchGroupKey): EWMA over intra-burst
///     inter-arrival gaps. Gaps longer than the batch window mark a new
///     burst (the previous group has long flushed) and reset the
///     tracker instead of polluting the average.
///
/// The three consumers:
///   1. Dispatch — the thread pool runs one two-level priority queue:
///      compile tasks and run tasks are both ranked by *predicted
///      seconds* (longest-processing-time first), so a heavy compile
///      outranks a light run and vice versa — the units are finally
///      comparable.
///   2. Consolidation — cost-driven row assignment minimizes the
///      predicted composite makespan and wasted lanes instead of
///      first-fit-decreasing over stride alone (see
///      consolidateGroups).
///   3. Batch windows — the flusher derives each group's deadline from
///      the estimated arrival rate (expected time for the remaining
///      lanes to show up), bounded by ServiceConfig's
///      batch_window_seconds as a ceiling.
///
/// Adaptivity never changes outputs: packed/composite/solo results stay
/// bit-identical at any worker count — the model only reorders,
/// regroups and retimes work (see README, "Adaptive scheduling").
///
/// Thread-safety: every member function may be called concurrently
/// from any thread; all state lives behind one internal mutex and the
/// counters are TSan-clean. The model never calls back into the
/// service, so it can be queried under the service's coalescer lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/batch_planner.h"
#include "service/cache_key.h"

namespace chehab::service {

/// LoadModel knobs (embedded in ServiceConfig::load_model).
struct LoadModelConfig
{
    /// Master switch. When false every prediction degrades to the
    /// static estimate scaled by the seed ratio (pure static LPT), the
    /// adaptive window always returns its ceiling, and consolidation
    /// falls back to first-fit decreasing over stride — the pre-model
    /// scheduler, kept for A/B benchmarking (bench_load_model).
    bool enabled = true;
    /// EWMA smoothing for measured compile/run seconds: profile ewma =
    /// alpha * sample + (1 - alpha) * ewma.
    double alpha = 0.3;
    /// EWMA smoothing for inter-arrival gaps.
    double arrival_alpha = 0.3;
    /// Arrival-gap observations required per group key before the
    /// adaptive window may shorten below its ceiling. Below this the
    /// estimator has no confidence and the fixed window wins — which
    /// keeps small deterministic test batches grouping exactly as they
    /// would under the fixed window.
    int min_arrival_samples = 8;
    /// Safety multiplier on the expected remaining-lane fill time.
    double window_safety = 2.0;
    /// The adaptive window never shrinks below this fraction of the
    /// ceiling, so a just-finished burst still collects stragglers.
    double window_floor_fraction = 1.0 / 16.0;
    /// Consolidation prices a merge against the cheapest measured
    /// execution of the row's parameter family (≈ one row's fixed
    /// overhead: lease + keygen + encrypt/decrypt). A group predicted
    /// to cost more than merge_cost_factor times that floor is
    /// execution-dominated: sharing a row would serialize real work,
    /// so it prefers its own row while idle workers remain.
    double merge_cost_factor = 4.0;
    /// Seed seconds-per-static-cost-unit ratio used before any
    /// observation calibrates the global ratios.
    double seed_seconds_per_cost = 1e-6;
    /// Churn bound on each profile map (cleared when exceeded,
    /// mirroring the service's fit memo).
    std::size_t max_profiles = 65536;
};

/// Monotonic counters describing the model's activity; snapshot via
/// LoadModel::snapshot() (also embedded in ServiceStats::load_model).
struct LoadModelSnapshot
{
    std::uint64_t compile_profiles = 0; ///< Distinct compile keys seen.
    std::uint64_t run_profiles = 0;     ///< Distinct run group keys seen.
    std::uint64_t compile_observations = 0;
    std::uint64_t run_observations = 0;
    /// Predictions served from a measured EWMA profile vs. from the
    /// static-estimate cold-start fallback.
    std::uint64_t warm_predictions = 0;
    std::uint64_t cold_predictions = 0;
    /// Adaptive-window queries answered below the ceiling vs. at it.
    std::uint64_t window_shrinks = 0;
    std::uint64_t window_ceilings = 0;
    /// Consolidation share queries answered "share a row" vs. "prefer
    /// an own row" (execution-dominated groups).
    std::uint64_t share_preferred = 0;
    std::uint64_t solo_preferred = 0;
    /// \name Per-shard load signal (instantaneous, not monotonic)
    /// Jobs currently admitted but not yet published (queued in the
    /// coalescer or pool, or mid-execution) and the sum of their
    /// predicted seconds — the shard load the router balances run
    /// traffic on. Both drain to exactly zero at quiescence.
    /// @{
    std::uint64_t inflight_jobs = 0;
    double inflight_predicted_seconds = 0.0;
    /// @}
};

/// One EWMA profile in snapshot form (see LoadModelState).
struct ProfileState
{
    double seconds_ewma = 0.0;
    double setup_ewma = 0.0;
    std::uint64_t samples = 0;
};

/// The persistable slice of a LoadModel: measured compile/run profiles,
/// the per-parameter-family execution floors and the globally
/// calibrated seconds-per-cost ratios. Exported at shutdown and
/// re-imported as priors at boot (service/persist.{h,cc}), so a warm
/// restart schedules with measured truth from the first request. The
/// arrival-rate trackers are deliberately absent: they hold
/// steady_clock time points that are meaningless in another process,
/// and the estimator re-converges within one burst anyway.
struct LoadModelState
{
    std::vector<std::pair<CacheKey, ProfileState>> compile;
    std::vector<std::pair<BatchGroupKey, ProfileState>> run;
    std::vector<std::pair<std::uint64_t, double>> cheapest_run;
    double compile_ratio = 0.0;
    std::uint64_t compile_ratio_samples = 0;
    double run_ratio = 0.0;
    std::uint64_t run_ratio_samples = 0;
};

class LoadModel
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit LoadModel(LoadModelConfig config = {});

    /// \name Timer-augmented cost predictions (seconds)
    /// Warm: the key's EWMA of measured wall seconds. Cold: the static
    /// cost estimate scaled by the globally calibrated ratio — ordering
    /// degrades gracefully to static LPT.
    /// @{
    double predictCompileSeconds(const CacheKey& key,
                                 double static_cost) const;
    double predictRunSeconds(const BatchGroupKey& key,
                             double static_cost) const;
    /// @}

    /// \name Measured-timing feedback
    /// @{
    void observeCompile(const CacheKey& key, double static_cost,
                        double measured_seconds);
    /// \p setup_seconds is the execution's client-side share (keygen,
    /// packing, encryption — RunResult::setup_seconds), the part row
    /// sharing amortizes.
    void observeRun(const BatchGroupKey& key, double static_cost,
                    double measured_seconds, double setup_seconds);
    /// @}

    /// Record one coalescible arrival for \p key. \p window_ceiling
    /// (seconds) bounds what counts as an intra-burst gap: longer gaps
    /// reset the tracker (the previous group has already flushed).
    void observeArrival(const BatchGroupKey& key, Clock::time_point now,
                        double window_ceiling);

    /// How long a group for \p key should keep waiting for its
    /// remaining \p remaining_lanes peers: the expected fill time under
    /// the estimated arrival rate (with safety margin), clamped to
    /// [floor_fraction, 1] x \p ceiling_seconds. Returns the ceiling
    /// until min_arrival_samples gaps have been observed (or when the
    /// model is disabled).
    double adaptiveWaitSeconds(const BatchGroupKey& key,
                               int remaining_lanes,
                               double ceiling_seconds) const;

    /// \name Per-shard load signal
    /// The service calls noteEnqueued(predicted) when it admits a unit
    /// of owner work (a compile task or a run lane) and
    /// noteFinished(the same predicted value) when that unit publishes
    /// — success or failure — so inflightPredictedSeconds() is at all
    /// times the predicted seconds of queued + in-flight work on this
    /// shard. The ShardRouter (service/shard_router.h) routes run
    /// traffic to the least-loaded feasible shard on this signal.
    /// Tracked even when the model is disabled (static predictions
    /// still carry LPT-comparable units). Enqueue/finish pairs carry
    /// the same value, so the sum returns to exactly zero when the
    /// shard drains.
    /// @{
    void noteEnqueued(double predicted_seconds);
    void noteFinished(double predicted_seconds);
    double inflightPredictedSeconds() const;
    /// @}

    /// Consolidation advice: true when a group predicted to cost
    /// \p predicted_seconds on the \p params_hash parameter family is
    /// overhead-dominated and should share a row whenever one fits;
    /// false when it is execution-dominated and deserves its own row
    /// while idle workers remain. Always true while the model is cold
    /// (no measured floor yet) or disabled.
    bool preferRowShare(std::uint64_t params_hash,
                        double predicted_seconds) const;

    bool enabled() const { return config_.enabled; }
    const LoadModelConfig& config() const { return config_; }

    LoadModelSnapshot snapshot() const;

    /// \name Persistable state (warm restarts)
    /// exportState returns the measured profiles and calibration ratios
    /// in a deterministic order (sorted by key, so equal models export
    /// equal snapshots); importState seeds them back as boot-time
    /// priors. Import replaces any same-key profile and both global
    /// ratios (it is meant for a freshly constructed model), leaves the
    /// arrival trackers and in-flight signal untouched, and respects
    /// max_profiles. Counters (compile_profiles, run_profiles) reflect
    /// imported entries, so a warm boot is visible in snapshot().
    /// @{
    LoadModelState exportState() const;
    void importState(const LoadModelState& state);
    /// @}

  private:
    struct Profile
    {
        double seconds_ewma = 0.0;
        double setup_ewma = 0.0;
        std::uint64_t samples = 0;
    };

    struct ArrivalTrack
    {
        Clock::time_point last{};
        bool has_last = false;
        double gap_ewma = 0.0;
        std::uint64_t samples = 0;
    };

    /// EWMA update helper: first sample seeds the average.
    static double ewma(double current, double sample, double alpha,
                       std::uint64_t samples_before);

    LoadModelConfig config_;

    mutable std::mutex mutex_;
    std::unordered_map<CacheKey, Profile, CacheKeyHash> compile_;
    std::unordered_map<BatchGroupKey, Profile, BatchGroupKeyHash> run_;
    std::unordered_map<BatchGroupKey, ArrivalTrack, BatchGroupKeyHash>
        arrivals_;
    /// Cheapest measured full execution per parameter family: the
    /// row-overhead floor consolidation prices merges against.
    std::unordered_map<std::uint64_t, double> cheapest_run_;
    /// Globally calibrated seconds-per-static-cost-unit ratios (EWMA
    /// over measured/static), one per task class so compile and run
    /// predictions land in comparable units even when cold.
    double compile_ratio_;
    std::uint64_t compile_ratio_samples_ = 0;
    double run_ratio_;
    std::uint64_t run_ratio_samples_ = 0;
    /// Queued + in-flight load signal (see noteEnqueued): the job
    /// count and the sum of their predicted seconds.
    std::uint64_t inflight_jobs_ = 0;
    double inflight_predicted_ = 0.0;
    mutable LoadModelSnapshot counters_;
};

} // namespace chehab::service
