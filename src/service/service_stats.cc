#include "service/service_stats.h"

#include <string>

namespace chehab::service {

namespace {

/// CompileCache::Stats and RunCache::Stats are distinct instantiations
/// of the same shape; fold field-wise.
template <typename CacheStats>
void
mergeCache(CacheStats& into, const CacheStats& other)
{
    into.hits += other.hits;
    into.misses += other.misses;
    into.inflight_joins += other.inflight_joins;
    into.entries += other.entries;
    into.evictions += other.evictions;
    into.resident += other.resident;
}

} // namespace

void
ServiceStats::merge(const ServiceStats& other)
{
    submitted += other.submitted;
    compiled += other.compiled;
    failed += other.failed;
    total_compile_seconds += other.total_compile_seconds;

    run_submitted += other.run_submitted;
    executed += other.executed;
    run_failed += other.run_failed;
    total_exec_seconds += other.total_exec_seconds;
    runtimes_created += other.runtimes_created;
    arena_allocs += other.arena_allocs;
    arena_reuses += other.arena_reuses;
    arena_bytes += other.arena_bytes;
    mod_switch_drops += other.mod_switch_drops;

    packed_groups += other.packed_groups;
    packed_lanes += other.packed_lanes;
    solo_runs += other.solo_runs;
    full_flushes += other.full_flushes;
    window_flushes += other.window_flushes;
    packed_fallbacks += other.packed_fallbacks;
    composite_groups += other.composite_groups;
    composite_members += other.composite_members;
    fit_memo_hits += other.fit_memo_hits;
    fit_memo_misses += other.fit_memo_misses;
    composite_cache_hits += other.composite_cache_hits;
    composite_cache_misses += other.composite_cache_misses;

    mergeCache(cache, other.cache);
    mergeCache(run_cache, other.run_cache);

    persist.hits += other.persist.hits;
    persist.misses += other.persist.misses;
    persist.corrupt += other.persist.corrupt;
    persist.writes += other.persist.writes;

    load_model.compile_profiles += other.load_model.compile_profiles;
    load_model.run_profiles += other.load_model.run_profiles;
    load_model.compile_observations +=
        other.load_model.compile_observations;
    load_model.run_observations += other.load_model.run_observations;
    load_model.warm_predictions += other.load_model.warm_predictions;
    load_model.cold_predictions += other.load_model.cold_predictions;
    load_model.window_shrinks += other.load_model.window_shrinks;
    load_model.window_ceilings += other.load_model.window_ceilings;
    load_model.share_preferred += other.load_model.share_preferred;
    load_model.solo_preferred += other.load_model.solo_preferred;
    load_model.inflight_jobs += other.load_model.inflight_jobs;
    load_model.inflight_predicted_seconds +=
        other.load_model.inflight_predicted_seconds;

    pool.tasks_run += other.pool.tasks_run;
    pool.busy_seconds += other.pool.busy_seconds;

    telemetry.enabled = telemetry.enabled || other.telemetry.enabled;
    telemetry.events += other.telemetry.events;
    telemetry.dropped += other.telemetry.dropped;
    for (int p = 0; p < telemetry::kPhaseCount; ++p) {
        telemetry.hist[static_cast<std::size_t>(p)].merge(
            other.telemetry.hist[static_cast<std::size_t>(p)]);
    }
}

std::string
checkStatsInvariants(const ServiceStats& stats, bool quiescent)
{
    const auto fail = [](const char* what, std::uint64_t lhs,
                         std::uint64_t rhs) {
        return std::string("stats invariant violated: ") + what + " (" +
               std::to_string(lhs) + " vs " + std::to_string(rhs) + ")";
    };

    // Always-true invariants. Counters on each side of an equality are
    // incremented inside one stats_mutex_ critical section, and every
    // inequality pairs a frozen counter with one that is only
    // incremented strictly earlier (or read after the freeze), so these
    // hold for any stats() snapshot — mid-flight included. Each is a
    // linear relation, so they survive cross-shard merging unchanged.
    if (stats.executed != stats.solo_runs + stats.packed_groups) {
        return fail("executed == solo_runs + packed_groups",
                    stats.executed, stats.solo_runs + stats.packed_groups);
    }
    if (stats.composite_groups > stats.packed_groups) {
        return fail("composite_groups <= packed_groups",
                    stats.composite_groups, stats.packed_groups);
    }
    if (stats.composite_members < 2 * stats.composite_groups) {
        return fail("composite_members >= 2 * composite_groups",
                    stats.composite_members, 2 * stats.composite_groups);
    }
    if (stats.packed_groups > stats.full_flushes + stats.window_flushes) {
        return fail("packed_groups <= full_flushes + window_flushes",
                    stats.packed_groups,
                    stats.full_flushes + stats.window_flushes);
    }
    // Every cache miss resolves as a fresh compile, a compile failure
    // or a warm artifact load from the persistence tier.
    if (stats.compiled + stats.failed + stats.persist.hits >
        stats.cache.misses) {
        return fail("compiled + failed + persist.hits <= cache.misses",
                    stats.compiled + stats.failed + stats.persist.hits,
                    stats.cache.misses);
    }
    // Persistence lookups only happen for cache-miss owners, and each
    // lookup is a hit or a miss (corrupt being the skipped subset of
    // the misses).
    if (stats.persist.hits + stats.persist.misses > stats.cache.misses) {
        return fail("persist.hits + persist.misses <= cache.misses",
                    stats.persist.hits + stats.persist.misses,
                    stats.cache.misses);
    }
    if (stats.packed_lanes + stats.solo_runs + stats.run_failed >
        stats.run_cache.misses) {
        return fail(
            "packed_lanes + solo_runs + run_failed <= run_cache.misses",
            stats.packed_lanes + stats.solo_runs + stats.run_failed,
            stats.run_cache.misses);
    }
    // Drops are only counted inside the executed-owner stats blocks, so
    // a non-zero counter implies at least one execution happened.
    if (stats.mod_switch_drops > 0 && stats.executed == 0) {
        return fail("mod_switch_drops > 0 implies executed > 0",
                    stats.mod_switch_drops, stats.executed);
    }
    // Arena traffic only exists inside pooled runtimes, so any counter
    // activity implies at least one runtime was constructed.
    if ((stats.arena_allocs > 0 || stats.arena_reuses > 0) &&
        stats.runtimes_created == 0) {
        return fail("arena activity implies runtimes_created > 0",
                    stats.arena_allocs + stats.arena_reuses,
                    stats.runtimes_created);
    }

    if (!quiescent) return {};

    // Quiescent accounting equalities: every accepted request has
    // resolved, so admissions balance against outcomes exactly.
    const std::uint64_t cache_acquires =
        stats.cache.hits + stats.cache.inflight_joins + stats.cache.misses;
    const std::uint64_t run_acquires = stats.run_cache.hits +
                                       stats.run_cache.inflight_joins +
                                       stats.run_cache.misses;
    if (run_acquires != stats.run_submitted) {
        return fail("run-cache acquires == run_submitted", run_acquires,
                    stats.run_submitted);
    }
    // Compile acquires: one per compile request plus one per run-cache
    // owner (only run owners touch the kernel cache).
    if (cache_acquires != stats.submitted + stats.run_cache.misses) {
        return fail("cache acquires == submitted + run_cache.misses",
                    cache_acquires,
                    stats.submitted + stats.run_cache.misses);
    }
    if (stats.cache.misses !=
        stats.compiled + stats.failed + stats.persist.hits) {
        return fail("cache.misses == compiled + failed + persist.hits",
                    stats.cache.misses,
                    stats.compiled + stats.failed + stats.persist.hits);
    }
    if (stats.run_cache.misses !=
        stats.packed_lanes + stats.solo_runs + stats.run_failed) {
        return fail(
            "run_cache.misses == packed_lanes + solo_runs + run_failed",
            stats.run_cache.misses,
            stats.packed_lanes + stats.solo_runs + stats.run_failed);
    }
    // The queued-plus-in-flight load signal drains to zero once every
    // admitted job has published: enqueue/finish pairs are exact.
    if (stats.load_model.inflight_jobs != 0) {
        return fail("load_model.inflight_jobs == 0 at quiescence",
                    stats.load_model.inflight_jobs, 0);
    }
    return {};
}

} // namespace chehab::service
