/// \file
/// Request/response types of the compile-and-run service.
///
/// A CompileRequest names one kernel and how to compile it; the service
/// answers with a CompileResponse carrying the full Compiled artifact
/// plus provenance (cache hit vs. fresh compile vs. joined in-flight
/// compile) and latency breakdown. Requests are value types: once
/// submitted, the service owns its copy and the caller may reuse or
/// destroy the original.
#pragma once

#include <string>

#include "compiler/pipeline.h"
#include "ir/cost_model.h"
#include "ir/expr.h"

namespace chehab::service {

/// Which optimizer pipeline to run (mirrors compiler/pipeline.h).
enum class OptMode : std::uint8_t {
    NoOpt,  ///< canonicalize + schedule only (Table 6 "Initial").
    Greedy, ///< greedy best-improvement TRS (original CHEHAB).
    Rl,     ///< RL-guided TRS; requires an agent on the service.
};

/// Printable mode name ("noopt"/"greedy"/"rl").
const char* optModeName(OptMode mode);

/// One compile job.
struct CompileRequest
{
    std::string name;           ///< Client label echoed in the response.
    ir::ExprPtr source;         ///< Kernel IR (e.g. from ir::parse).
    OptMode mode = OptMode::Greedy;
    ir::CostWeights weights{};  ///< Cost weights (Greedy only).
    int max_steps = 75;         ///< Rewrite budget (Greedy only).
};

/// The service's answer to one request.
struct CompileResponse
{
    std::string name;
    bool ok = false;
    std::string error;          ///< CompileError text when !ok.
    compiler::Compiled compiled;

    bool cache_hit = false;     ///< Served from an already-ready entry.
    bool deduplicated = false;  ///< Joined an in-flight identical compile.
    double queue_seconds = 0.0; ///< Submit -> result available.
    /// Wall time of the compile that produced the artifact. Cache-served
    /// responses report the *original* compile's duration (what the
    /// cache saved, not what this request spent — that is
    /// queue_seconds).
    double compile_seconds = 0.0;
    double estimated_cost = 0.0; ///< Cost-model dispatch priority used.
    /// Worker that compiled the artifact (also for cache-served
    /// responses); -1 only when the request failed before dispatch.
    int worker_id = -1;
};

} // namespace chehab::service
