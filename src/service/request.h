/// \file
/// Request/response types of the compile-and-run service.
///
/// A CompileRequest names one kernel and the driver pipeline to compile
/// it with; the service answers with a CompileResponse carrying the full
/// Compiled artifact plus provenance (cache hit vs. fresh compile vs.
/// joined in-flight compile) and latency breakdown. A RunRequest
/// additionally carries inputs and runtime parameters; the service
/// compiles (or reuses a cached/in-flight compile), then executes the
/// program on a pooled SealLite runtime and answers with the outputs
/// and the Table-6-style noise/latency accounting. Requests are value
/// types: once submitted, the service owns its copy and the caller may
/// reuse or destroy the original.
#pragma once

#include <string>

#include "compiler/driver.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "fhe/sealite.h"
#include "ir/cost_model.h"
#include "ir/evaluator.h"
#include "ir/expr.h"

namespace chehab::service {

/// Convenience names for the three canonical pipelines. The service
/// itself keys on the full pass configuration
/// (compiler::DriverConfig::fingerprint()), not on this enum — it only
/// exists as CLI/test sugar for makePipeline().
enum class OptMode : std::uint8_t {
    NoOpt,  ///< canonicalize + schedule only (Table 6 "Initial").
    Greedy, ///< greedy best-improvement TRS (original CHEHAB).
    Rl,     ///< RL-guided TRS; requires an agent on the service.
};

/// Printable mode name ("noopt"/"greedy"/"rl").
const char* optModeName(OptMode mode);

/// The canonical driver pipeline for \p mode.
compiler::DriverConfig makePipeline(OptMode mode,
                                    const ir::CostWeights& weights = {},
                                    int max_steps = 75);

/// One compile job.
struct CompileRequest
{
    std::string name;   ///< Client label echoed in the response.
    ir::ExprPtr source; ///< Kernel IR (e.g. from ir::parse).
    /// The pass pipeline to run; defaults to the greedy TRS pipeline.
    compiler::DriverConfig pipeline = compiler::DriverConfig::greedy();
};

/// The service's answer to one request.
struct CompileResponse
{
    std::string name;
    bool ok = false;
    std::string error;          ///< CompileError text when !ok.
    compiler::Compiled compiled;

    bool cache_hit = false;     ///< Served from an already-ready entry.
    bool deduplicated = false;  ///< Joined an in-flight identical compile.
    double queue_seconds = 0.0; ///< Submit -> result available.
    /// Wall time of the compile that produced the artifact. Cache-served
    /// responses report the *original* compile's duration (what the
    /// cache saved, not what this request spent — that is
    /// queue_seconds).
    double compile_seconds = 0.0;
    double estimated_cost = 0.0; ///< Static §5.3.1 cost estimate.
    /// Load-model predicted compile wall time at submission (the
    /// dispatch priority actually used): the key's measured EWMA when
    /// warm, the scaled static estimate when cold. Compare against
    /// compile_seconds for the model's prediction error.
    double predicted_seconds = 0.0;
    /// Worker that compiled the artifact (also for cache-served
    /// responses); -1 only when the request failed before dispatch.
    int worker_id = -1;
};

/// One compile-and-execute job.
struct RunRequest
{
    std::string name;   ///< Client label echoed in the response.
    ir::ExprPtr source; ///< Kernel IR.
    compiler::DriverConfig pipeline = compiler::DriverConfig::greedy();
    ir::Env inputs;     ///< Variable bindings for execution.
    /// Rotation-key budget for execution when the pipeline has no
    /// key-select pass (0 = one key per distinct step). Ignored when
    /// the compiled artifact carries a key plan — the plan wins.
    int key_budget = 0;
    /// SealLite parameters; requests with equal parameters share one
    /// pooled runtime family (and therefore key material).
    fhe::SealLiteParams params{};
};

/// The service's answer to one run request.
struct RunResponse
{
    std::string name;
    bool ok = false;
    std::string error; ///< Compile or execution error text when !ok.
    compiler::Compiled compiled;
    compiler::RunResult result; ///< Outputs + noise/latency accounting.

    /// Compile-stage provenance. A response served from the run cache
    /// reused the compile stage by definition (the artifact is part of
    /// the run entry), so these mirror the run provenance then.
    bool compile_cache_hit = false;
    bool compile_deduplicated = false;
    bool run_cache_hit = false;     ///< Served from a settled run entry.
    bool run_deduplicated = false;  ///< Joined an in-flight identical run.
    double queue_seconds = 0.0;     ///< Submit -> result available.
    double compile_seconds = 0.0;   ///< Original compile's wall time.
    /// Wall time of the execution that produced the artifact (packing,
    /// key generation and homomorphic evaluation; the server-side
    /// evaluation alone is result.exec_seconds). Cache-served responses
    /// report the original execution's duration.
    double exec_seconds = 0.0;
    double estimated_cost = 0.0; ///< Static §5.3.1 cost estimate.
    /// Load-model predicted execution wall time at dispatch: for a
    /// solo run, this run's per-execution prediction; for a packed or
    /// composite run, the predicted seconds of the shared row (compare
    /// against exec_seconds, which is also the shared row's wall
    /// time). Cache-served responses report the original prediction.
    double predicted_seconds = 0.0;
    /// Seconds the request waited in the slot-batching coalescer for
    /// row-mates before its group flushed (0 for solo-path and
    /// cache-served responses report the original wait). Together with
    /// queue_seconds, compile_seconds, exec_seconds and the
    /// setup/exec/decode split inside \c result this completes the
    /// request's phase breakdown.
    double window_wait_seconds = 0.0;
    int worker_id = -1;          ///< Worker that executed the program.

    /// Slot-batching provenance: how many run requests shared the
    /// ciphertext row this one executed on (1 = solo), and which lane
    /// this request occupied. Packed outputs are bit-identical to a
    /// solo run; the noise fields of \c result describe the shared row.
    int packed_lanes = 1;
    int lane = 0;
};

} // namespace chehab::service
