/// \file
/// Two-level service sharding: N independent CompileService shards
/// behind a ShardRouter.
///
/// Level 1 (this file) spreads *requests* across shards; level 2 (each
/// shard's own ThreadPool) spreads *tasks* across workers. One big
/// CompileService scales until its shared serialization points — the
/// pool's priority-queue mutex, the coalescer's batch_mutex_, the
/// stats mutex, the single-flight cache maps — become the bottleneck;
/// splitting the fleet into shards multiplies every one of those locks
/// by N while keeping each shard's cache hot for the keys routed to
/// it.
///
/// Routing policy, per traffic class:
///
///   - Compile traffic routes by **cache affinity**: the CacheKey
///     consistent-hashes onto a vnode ring, so one kernel always lands
///     on one shard — its compile cache hits, its single-flight dedupe
///     collapses concurrent identical compiles, and no artifact is
///     compiled N times. The ring (vnodes per shard, sorted hash
///     points) keeps the mapping stable under shard-count changes:
///     growing N -> N+1 shards only remaps the ~1/(N+1) of keys the
///     new shard's vnodes capture; every other key keeps its shard and
///     its warm cache.
///   - Run traffic routes by **predicted load** with an affinity
///     preference: a run request first consults its affinity shard
///     (that is where the kernel cache and run cache for its key are
///     warm). Only when that shard is *hot* — its predicted in-flight
///     seconds (LoadModel::inflightPredictedSeconds, the per-shard
///     load signal) exceed hot_factor x the least-loaded shard's plus
///     hot_slack_seconds — does the router re-route to the
///     least-loaded shard. This is the work-stealing hook: a skewed
///     mix that piles onto one shard spills its overflow to idle
///     shards instead of queueing, at the price of a cold compile
///     cache on the stealing shard (single-flight still collapses the
///     duplicates there).
///
/// Determinism: routing only selects *where* a request executes.
/// Pipelines are deterministic and runtimes reseed per request, so
/// outputs, noise accounting and instruction streams are bit-identical
/// at any shard count x any worker count — a 1-shard ShardedService
/// behaves exactly like a plain CompileService (it routes everything
/// to its only shard).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "service/cache_key.h"
#include "service/compile_service.h"
#include "service/service_api.h"

namespace chehab::service {

/// ShardRouter knobs (embedded in ShardedService's constructor).
struct RouterConfig
{
    /// Virtual nodes per shard on the consistent-hash ring. More
    /// vnodes flatten the key distribution (the classic variance
    /// reduction) at O(shards x vnodes) ring size; 64 keeps the
    /// per-shard share within a few percent of uniform.
    int vnodes = 64;
    /// A run request abandons its affinity shard when that shard's
    /// predicted load exceeds hot_factor x the minimum shard load plus
    /// hot_slack_seconds. The factor makes the test relative (a shard
    /// twice as loaded as the idlest is hot) ...
    double hot_factor = 2.0;
    /// ... and the absolute slack keeps tiny loads from triggering
    /// re-routes: when every shard holds milliseconds of work, cache
    /// affinity is worth more than perfect balance.
    double hot_slack_seconds = 0.010;
};

/// Monotonic routing counters (snapshot via ShardRouter::stats()).
struct RouterStats
{
    std::uint64_t compile_routed = 0;  ///< Compile routing decisions.
    std::uint64_t run_affinity = 0;    ///< Runs kept on their affinity shard.
    std::uint64_t run_rerouted = 0;    ///< Runs stolen by a cooler shard.
};

/// The routing policy alone — pure decision logic over a CacheKey and
/// a load vector, no service ownership — so tests can exercise ring
/// distribution, stability and hot-shard re-routing without spinning
/// up worker pools.
class ShardRouter
{
  public:
    /// Builds the vnode ring for \p shards shards. \p shards must be
    /// >= 1 and \p config.vnodes >= 1 (throws std::invalid_argument
    /// otherwise).
    explicit ShardRouter(int shards, RouterConfig config = {});

    int shards() const { return shards_; }
    const RouterConfig& config() const { return config_; }

    /// The shard whose ring arc \p key hashes into: where compile
    /// traffic for this key always goes, and where run traffic
    /// prefers to go. Deterministic and stable under shard-count
    /// growth (only keys on the new shard's arcs move).
    int affinityShard(const CacheKey& key) const;

    /// Route one compile request (counts the decision).
    int routeCompile(const CacheKey& key);

    /// Route one run request: the affinity shard unless it is hot
    /// relative to the least-loaded one (see RouterConfig), in which
    /// case the least-loaded shard steals the work.
    /// \p predicted_loads holds each shard's predicted in-flight
    /// seconds, indexed by shard id; it must have shards() entries.
    int routeRun(const CacheKey& key,
                 const std::vector<double>& predicted_loads);

    RouterStats stats() const;

  private:
    struct VNode
    {
        std::uint64_t point;
        int shard;
    };

    int shards_;
    RouterConfig config_;
    std::vector<VNode> ring_; ///< Sorted by point; immutable after ctor.

    mutable std::mutex stats_mutex_;
    RouterStats stats_;
};

/// N CompileService shards behind a ShardRouter, presenting the same
/// ServiceApi as a single shard. See the file comment for the routing
/// policy and the determinism contract.
class ShardedService final : public ServiceApi
{
  public:
    /// Builds config.shards shards, each a CompileService with this
    /// config (config.num_workers is per shard; shard i runs with
    /// shard_id = i, which groups its telemetry tracks under "shard i"
    /// in exported traces). Throws std::invalid_argument when
    /// config.validate() rejects the configuration.
    explicit ShardedService(ServiceConfig config,
                            RouterConfig router_config = {});

    /// Routes by cache affinity on the request's CacheKey.
    std::future<CompileResponse> submit(CompileRequest request) override;

    /// Routes by predicted load with affinity preference.
    std::future<RunResponse> submitRun(RunRequest request) override;

    /// Counters merged across all shards (ServiceStats::merge); the
    /// merged snapshot satisfies every checkStatsInvariants relation
    /// the per-shard ones do, the invariants being additive.
    ServiceStats stats() const override;

    /// One shard's own snapshot (for per-shard breakdowns).
    ServiceStats shardStats(int shard) const;

    /// Direct access to one shard, bypassing the router — benches and
    /// tests use this to pre-warm per-shard caches or inspect a single
    /// shard's state. Production traffic goes through submit/submitRun.
    CompileService& shard(int index)
    {
        return *shards_.at(static_cast<std::size_t>(index));
    }

    int shards() const { return static_cast<int>(shards_.size()); }
    int numWorkers() const override;

    void drain() override;

    const ShardRouter& router() const { return router_; }
    RouterStats routerStats() const { return router_.stats(); }

    /// Export one Chrome trace covering every shard: each shard's
    /// spans appear under their own "shard N" track group (pid), with
    /// all timestamps aligned onto one common epoch
    /// (telemetry::writeChromeTraceMerged).
    void writeChromeTrace(std::ostream& out) const;

  private:
    /// The routing key for \p source under \p pipeline, or false when
    /// the source fails canonicalization — the caller then routes to
    /// shard 0, whose submit reproduces the identical error response.
    static bool routingKey(const ir::ExprPtr& source,
                           const compiler::DriverConfig& pipeline,
                           CacheKey& out);

    std::vector<double> predictedLoads() const;

    ShardRouter router_;
    std::vector<std::unique_ptr<CompileService>> shards_;
};

} // namespace chehab::service
