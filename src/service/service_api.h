/// \file
/// The shard-facing service interface.
///
/// CompileService grew as a singleton; the sharded refactor splits its
/// public surface into this abstract interface so one CompileService
/// (a single shard) and a ShardedService (N shards behind a
/// ShardRouter, see service/shard_router.h) are interchangeable to
/// every caller — tests, benches, chehabd and the future network front
/// end all program against ServiceApi.
///
/// The batch conveniences are deliberately *non-virtual*: compileBatch
/// and runBatch are defined once, here, in terms of the virtual
/// submit/submitRun, so a shard and a sharded fleet cannot diverge in
/// batch semantics (submit everything first, then block for responses
/// in input order — the submission loop never waits, which is what
/// lets a batch coalesce and dedupe against itself).
#pragma once

#include <future>
#include <vector>

#include "service/request.h"
#include "service/service_stats.h"

namespace chehab::service {

class ServiceApi
{
  public:
    virtual ~ServiceApi() = default;

    /// Enqueue one compile; the future resolves when the artifact is
    /// available (immediately on a cache hit). Never throws on compile
    /// failure — inspect CompileResponse::ok.
    virtual std::future<CompileResponse> submit(CompileRequest request) = 0;

    /// Enqueue one compile-then-execute job; the future resolves when
    /// the outputs are available. Never throws on compile or execution
    /// failure — inspect RunResponse::ok.
    virtual std::future<RunResponse> submitRun(RunRequest request) = 0;

    /// One service-wide counter snapshot (merged across shards for a
    /// sharded implementation).
    virtual ServiceStats stats() const = 0;

    /// Total worker threads behind this service (summed across shards).
    virtual int numWorkers() const = 0;

    /// Block until every task submitted so far has fully finished.
    /// Futures resolve from *inside* worker tasks, so a caller that was
    /// just unblocked can observe a pool mid-epilogue — in particular
    /// before the final task's dispatch span reached the trace
    /// recorder. Call this before exporting traces or asserting on
    /// span counts; responses themselves never need it.
    virtual void drain() = 0;

    /// Submit a whole batch and block for all responses, in input
    /// order.
    std::vector<CompileResponse>
    compileBatch(std::vector<CompileRequest> requests)
    {
        std::vector<std::future<CompileResponse>> futures;
        futures.reserve(requests.size());
        for (CompileRequest& request : requests) {
            futures.push_back(submit(std::move(request)));
        }
        std::vector<CompileResponse> responses;
        responses.reserve(futures.size());
        for (auto& future : futures) responses.push_back(future.get());
        return responses;
    }

    /// Submit a whole run batch and block for all responses, in input
    /// order.
    std::vector<RunResponse> runBatch(std::vector<RunRequest> requests)
    {
        std::vector<std::future<RunResponse>> futures;
        futures.reserve(requests.size());
        for (RunRequest& request : requests) {
            futures.push_back(submitRun(std::move(request)));
        }
        std::vector<RunResponse> responses;
        responses.reserve(futures.size());
        for (auto& future : futures) responses.push_back(future.get());
        return responses;
    }
};

} // namespace chehab::service
