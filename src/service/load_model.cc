#include "service/load_model.h"

#include <algorithm>
#include <tuple>

namespace chehab::service {

LoadModel::LoadModel(LoadModelConfig config)
    : config_(config), compile_ratio_(config.seed_seconds_per_cost),
      run_ratio_(config.seed_seconds_per_cost)
{}

double
LoadModel::ewma(double current, double sample, double alpha,
                std::uint64_t samples_before)
{
    if (samples_before == 0) return sample;
    return alpha * sample + (1.0 - alpha) * current;
}

double
LoadModel::predictCompileSeconds(const CacheKey& key,
                                 double static_cost) const
{
    const double floor_cost = std::max(static_cost, 1.0);
    std::unique_lock<std::mutex> lock(mutex_);
    if (config_.enabled) {
        auto it = compile_.find(key);
        if (it != compile_.end() && it->second.samples > 0) {
            ++counters_.warm_predictions;
            return it->second.seconds_ewma;
        }
    }
    ++counters_.cold_predictions;
    return floor_cost * compile_ratio_;
}

double
LoadModel::predictRunSeconds(const BatchGroupKey& key,
                             double static_cost) const
{
    const double floor_cost = std::max(static_cost, 1.0);
    std::unique_lock<std::mutex> lock(mutex_);
    if (config_.enabled) {
        auto it = run_.find(key);
        if (it != run_.end() && it->second.samples > 0) {
            ++counters_.warm_predictions;
            return it->second.seconds_ewma;
        }
    }
    ++counters_.cold_predictions;
    return floor_cost * run_ratio_;
}

void
LoadModel::observeCompile(const CacheKey& key, double static_cost,
                          double measured_seconds)
{
    if (measured_seconds < 0.0) return; // Clock hiccup: ignore.
    std::unique_lock<std::mutex> lock(mutex_);
    ++counters_.compile_observations;
    if (compile_.size() >= config_.max_profiles) compile_.clear();
    Profile& profile = compile_[key];
    profile.seconds_ewma = ewma(profile.seconds_ewma, measured_seconds,
                                config_.alpha, profile.samples);
    ++profile.samples;
    const double ratio = measured_seconds / std::max(static_cost, 1.0);
    compile_ratio_ = ewma(compile_ratio_, ratio, config_.alpha,
                          compile_ratio_samples_);
    ++compile_ratio_samples_;
}

void
LoadModel::observeRun(const BatchGroupKey& key, double static_cost,
                      double measured_seconds, double setup_seconds)
{
    if (measured_seconds < 0.0) return;
    std::unique_lock<std::mutex> lock(mutex_);
    ++counters_.run_observations;
    if (run_.size() >= config_.max_profiles) {
        run_.clear();
        cheapest_run_.clear();
    }
    Profile& profile = run_[key];
    profile.seconds_ewma = ewma(profile.seconds_ewma, measured_seconds,
                                config_.alpha, profile.samples);
    profile.setup_ewma = ewma(profile.setup_ewma,
                              std::max(setup_seconds, 0.0), config_.alpha,
                              profile.samples);
    ++profile.samples;
    const double ratio = measured_seconds / std::max(static_cost, 1.0);
    run_ratio_ =
        ewma(run_ratio_, ratio, config_.alpha, run_ratio_samples_);
    ++run_ratio_samples_;
    auto [floor_it, inserted] =
        cheapest_run_.emplace(key.params_hash, measured_seconds);
    if (!inserted && measured_seconds < floor_it->second) {
        floor_it->second = measured_seconds;
    }
}

void
LoadModel::observeArrival(const BatchGroupKey& key, Clock::time_point now,
                          double window_ceiling)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (arrivals_.size() >= config_.max_profiles) arrivals_.clear();
    ArrivalTrack& track = arrivals_[key];
    if (track.has_last) {
        const double gap =
            std::chrono::duration<double>(now - track.last).count();
        if (gap >= 0.0 && gap <= std::max(window_ceiling, 0.0)) {
            // An intra-burst gap: fold it into the rate estimate. A
            // longer gap means the previous group flushed long ago —
            // this arrival opens a new burst, and averaging the idle
            // period in would drown the signal the window needs.
            track.gap_ewma = ewma(track.gap_ewma, gap,
                                  config_.arrival_alpha, track.samples);
            ++track.samples;
        }
    }
    track.last = now;
    track.has_last = true;
}

double
LoadModel::adaptiveWaitSeconds(const BatchGroupKey& key,
                               int remaining_lanes,
                               double ceiling_seconds) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!config_.enabled) {
        ++counters_.window_ceilings;
        return ceiling_seconds;
    }
    auto it = arrivals_.find(key);
    if (it == arrivals_.end() ||
        it->second.samples <
            static_cast<std::uint64_t>(
                std::max(config_.min_arrival_samples, 1))) {
        ++counters_.window_ceilings;
        return ceiling_seconds;
    }
    const double expected_fill = it->second.gap_ewma *
                                 config_.window_safety *
                                 std::max(remaining_lanes, 1);
    const double floor =
        ceiling_seconds * std::clamp(config_.window_floor_fraction, 0.0,
                                     1.0);
    const double wait =
        std::clamp(expected_fill, floor, ceiling_seconds);
    if (wait < ceiling_seconds) {
        ++counters_.window_shrinks;
    } else {
        ++counters_.window_ceilings;
    }
    return wait;
}

void
LoadModel::noteEnqueued(double predicted_seconds)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ++inflight_jobs_;
    inflight_predicted_ += std::max(predicted_seconds, 0.0);
}

void
LoadModel::noteFinished(double predicted_seconds)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (inflight_jobs_ > 0) --inflight_jobs_;
    inflight_predicted_ -= std::max(predicted_seconds, 0.0);
    // Enqueue/finish pairs carry identical values, so the sum is zero
    // whenever the count is — pin it there so floating-point rounding
    // can never accumulate into a phantom load (or a negative one).
    if (inflight_jobs_ == 0 || inflight_predicted_ < 0.0) {
        inflight_predicted_ = 0.0;
    }
}

double
LoadModel::inflightPredictedSeconds() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return inflight_predicted_;
}

bool
LoadModel::preferRowShare(std::uint64_t params_hash,
                          double predicted_seconds) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (config_.enabled) {
        auto it = cheapest_run_.find(params_hash);
        if (it != cheapest_run_.end() &&
            predicted_seconds >
                config_.merge_cost_factor * it->second) {
            ++counters_.solo_preferred;
            return false;
        }
    }
    ++counters_.share_preferred;
    return true;
}

LoadModelState
LoadModel::exportState() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    LoadModelState state;
    state.compile.reserve(compile_.size());
    for (const auto& [key, profile] : compile_) {
        state.compile.emplace_back(
            key, ProfileState{profile.seconds_ewma, profile.setup_ewma,
                              profile.samples});
    }
    state.run.reserve(run_.size());
    for (const auto& [key, profile] : run_) {
        state.run.emplace_back(
            key, ProfileState{profile.seconds_ewma, profile.setup_ewma,
                              profile.samples});
    }
    state.cheapest_run.assign(cheapest_run_.begin(), cheapest_run_.end());
    state.compile_ratio = compile_ratio_;
    state.compile_ratio_samples = compile_ratio_samples_;
    state.run_ratio = run_ratio_;
    state.run_ratio_samples = run_ratio_samples_;
    lock.unlock();

    // Deterministic export order: the maps are unordered, and equal
    // models must serialize to equal snapshot bytes.
    std::sort(state.compile.begin(), state.compile.end(),
              [](const auto& a, const auto& b) {
                  const CacheKey& ka = a.first;
                  const CacheKey& kb = b.first;
                  return std::tie(ka.source.hi, ka.source.lo, ka.pipeline) <
                         std::tie(kb.source.hi, kb.source.lo, kb.pipeline);
              });
    std::sort(state.run.begin(), state.run.end(),
              [](const auto& a, const auto& b) {
                  const BatchGroupKey& ka = a.first;
                  const BatchGroupKey& kb = b.first;
                  return std::tie(ka.compile.source.hi, ka.compile.source.lo,
                                  ka.compile.pipeline, ka.params_hash,
                                  ka.key_budget) <
                         std::tie(kb.compile.source.hi, kb.compile.source.lo,
                                  kb.compile.pipeline, kb.params_hash,
                                  kb.key_budget);
              });
    std::sort(state.cheapest_run.begin(), state.cheapest_run.end());
    return state;
}

void
LoadModel::importState(const LoadModelState& state)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (const auto& [key, profile] : state.compile) {
        if (compile_.size() >= config_.max_profiles) break;
        Profile& slot = compile_[key];
        slot.seconds_ewma = profile.seconds_ewma;
        slot.setup_ewma = profile.setup_ewma;
        slot.samples = profile.samples;
    }
    for (const auto& [key, profile] : state.run) {
        if (run_.size() >= config_.max_profiles) break;
        Profile& slot = run_[key];
        slot.seconds_ewma = profile.seconds_ewma;
        slot.setup_ewma = profile.setup_ewma;
        slot.samples = profile.samples;
    }
    for (const auto& [params_hash, floor] : state.cheapest_run) {
        if (cheapest_run_.size() >= config_.max_profiles) break;
        auto [it, inserted] = cheapest_run_.emplace(params_hash, floor);
        if (!inserted && floor < it->second) it->second = floor;
    }
    if (state.compile_ratio_samples > 0 && state.compile_ratio > 0.0) {
        compile_ratio_ = state.compile_ratio;
        compile_ratio_samples_ = state.compile_ratio_samples;
    }
    if (state.run_ratio_samples > 0 && state.run_ratio > 0.0) {
        run_ratio_ = state.run_ratio;
        run_ratio_samples_ = state.run_ratio_samples;
    }
}

LoadModelSnapshot
LoadModel::snapshot() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    LoadModelSnapshot snap = counters_;
    snap.compile_profiles = static_cast<std::uint64_t>(compile_.size());
    snap.run_profiles = static_cast<std::uint64_t>(run_.size());
    snap.inflight_jobs = inflight_jobs_;
    snap.inflight_predicted_seconds = inflight_predicted_;
    return snap;
}

} // namespace chehab::service
