#include "service/kernel_cache.h"

#include "support/error.h"

namespace chehab::service {

CacheEntry::Settled
CacheEntry::snapshotLocked() const
{
    Settled snapshot;
    snapshot.state = state_;
    snapshot.compile_seconds = compile_seconds_;
    snapshot.worker_id = worker_id_;
    if (state_ == State::Ready) snapshot.compiled = &compiled_;
    if (state_ == State::Failed) snapshot.error = &error_;
    return snapshot;
}

void
CacheEntry::publishReady(compiler::Compiled compiled, double compile_seconds,
                         int worker_id)
{
    std::vector<std::function<void(const Settled&)>> pending;
    Settled snapshot;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        CHEHAB_ASSERT(state_ == State::Pending,
                      "cache entry published twice");
        compiled_ = std::move(compiled);
        compile_seconds_ = compile_seconds;
        worker_id_ = worker_id;
        state_ = State::Ready;
        pending.swap(continuations_);
        snapshot = snapshotLocked();
    }
    settled_.notify_all();
    for (auto& fn : pending) fn(snapshot);
}

void
CacheEntry::publishFailure(std::string error, int worker_id)
{
    std::vector<std::function<void(const Settled&)>> pending;
    Settled snapshot;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        CHEHAB_ASSERT(state_ == State::Pending,
                      "cache entry published twice");
        error_ = std::move(error);
        worker_id_ = worker_id;
        state_ = State::Failed;
        pending.swap(continuations_);
        snapshot = snapshotLocked();
    }
    settled_.notify_all();
    for (auto& fn : pending) fn(snapshot);
}

void
CacheEntry::onSettled(std::function<void(const Settled&)> fn)
{
    Settled snapshot;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (state_ == State::Pending) {
            continuations_.push_back(std::move(fn));
            return;
        }
        snapshot = snapshotLocked();
    }
    fn(snapshot);
}

CacheEntry::Settled
CacheEntry::waitSettled()
{
    std::unique_lock<std::mutex> lock(mutex_);
    settled_.wait(lock, [this] { return state_ != State::Pending; });
    return snapshotLocked();
}

bool
CacheEntry::isSettled() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return state_ != State::Pending;
}

KernelCache::Admission
KernelCache::acquire(const CacheKey& key)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Admission admission;
    auto [it, inserted] =
        entries_.try_emplace(key, std::make_shared<CacheEntry>());
    admission.entry = it->second;
    if (inserted) {
        admission.owner = true;
        ++stats_.misses;
        ++stats_.entries;
        return admission;
    }
    // An entry that has settled by admission time is a plain hit; a
    // pending one is an in-flight join (single-flight dedup). The entry
    // can settle between this check and the caller's onSettled() attach
    // — that only makes the continuation run inline, the accounting
    // stays consistent with what the caller observed.
    if (admission.entry->isSettled()) {
        ++stats_.hits;
    } else {
        admission.was_pending = true;
        ++stats_.inflight_joins;
    }
    return admission;
}

KernelCache::Stats
KernelCache::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace chehab::service
