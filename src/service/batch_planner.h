/// \file
/// Slot-batching coalescer: packs concurrent run requests into shared
/// ciphertext rows.
///
/// SealLite batches n/2 SIMD slots per ciphertext, but a small kernel
/// (a dot-8, a 3x3 blur) occupies a handful of them — the rest of every
/// row the service encrypts, evaluates and decrypts is wasted work. The
/// BatchPlanner groups pending run jobs that share a compiled artifact,
/// SealLite parameters and rotation-key plan, assigns each a contiguous
/// *lane* (a lane_stride-slot region of the row), and hands full or
/// window-expired groups back to the service, which executes the kernel
/// once per group via FheRuntime::runPacked and scatters per-lane
/// output slices into the individual responses.
///
/// Lane safety. Packing is only sound when the program's whole-row
/// rotations cannot leak one lane's data into the slots another lane
/// reads. analyzeLaneFit() proves this statically with a per-register
/// dataflow over the instruction stream (using the *decomposed*
/// rotation sequences of the key plan, since those are the physical
/// rotations). Each register carries a conservative lane state:
///
///   - uniform: the value is identical in every lane (constant masks
///     and anything derived only from them) — exact under any op;
///   - dirty_bot / dirty_top: slots at the bottom/top of each lane's
///     region that may differ from what a solo run of that lane would
///     hold (rotations grow these margins as they drag neighbouring
///     lanes' slots across region boundaries);
///   - zero_from: region offset past which the value is zero in solo
///     semantics (non-replicated packs zero-fill their region), which
///     lets mask multiplies *clean* dirty margins and right rotations
///     pull in provable zeros instead of neighbour data.
///
/// A stride S certifies the program when the output register's bottom
/// margin is zero and its top margin leaves output_width clean slots.
/// Safety is monotone in S (every rule's S-dependence is of the form
/// "x <= S - y"), so the planner picks the smallest certified
/// power-of-two stride — maximizing lanes per row — and a certified
/// packed run equals the same lanes' solo runs bit-for-bit.
///
/// Thread-safety: BatchPlanner is NOT internally synchronized; the
/// CompileService wraps it with its coalescer mutex. analyzeLaneFit is
/// a pure function.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/schedule.h"
#include "service/cache_key.h"

namespace chehab::service {

/// Outcome of the static lane-safety analysis for one (program, key
/// plan, row) combination.
struct LaneFit
{
    bool safe = false; ///< Certified at stride for >= 2 lanes.
    int stride = 0;    ///< Slots per lane (power of two).
    int max_lanes = 1; ///< row_slots / stride when safe.
    std::string reason; ///< Why coalescing was refused (diagnostics).
};

/// Prove (or refuse) lane-packed execution of \p program under the
/// decomposed rotation sequences of \p plan on a \p row_slots-slot row.
/// Returns the smallest certified power-of-two stride; a result with
/// max_lanes < 2 means packing buys nothing and the caller should run
/// solo.
LaneFit analyzeLaneFit(const compiler::FheProgram& program,
                       const compiler::RotationKeyPlan& plan,
                       int row_slots);

/// Identity of one coalescible group: requests may share a row exactly
/// when they run the same compiled artifact on the same SealLite
/// parameters under the same effective key budget (0 when the artifact
/// carries a compiler key plan — the plan wins, so the request budget
/// is irrelevant, mirroring makeRunKey).
struct BatchGroupKey
{
    CacheKey compile;
    std::uint64_t params_hash = 0;
    int key_budget = 0;

    friend bool
    operator==(const BatchGroupKey& a, const BatchGroupKey& b)
    {
        return a.compile == b.compile && a.params_hash == b.params_hash &&
               a.key_budget == b.key_budget;
    }
};

struct BatchGroupKeyHash
{
    std::size_t
    operator()(const BatchGroupKey& key) const
    {
        std::size_t h = CacheKeyHash{}(key.compile);
        detail::mix(h, key.params_hash);
        detail::mix(h, static_cast<std::uint64_t>(key.key_budget));
        return h;
    }
};

/// One pending run job awaiting a lane: everything the service needs to
/// execute it (solo or packed) and publish its entry once done. The
/// compile entry shared_ptr keeps \c compiled alive until publication.
struct BatchLane
{
    std::shared_ptr<RunEntry> entry;
    std::shared_ptr<CacheEntry> compile_entry;
    const compiler::Compiled* compiled = nullptr;
    double compile_seconds = 0.0;
    RunRequest request;
    RunKey run_key;
    double estimate = 0.0;
};

/// Groups pending coalescible runs and decides when each group is ready
/// to execute. Window semantics: a group's deadline is fixed when its
/// first lane arrives; it flushes early the moment it reaches capacity.
class BatchPlanner
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Group
    {
        BatchGroupKey key;
        std::vector<BatchLane> lanes;
        int stride = 0;
        int capacity = 0; ///< Lane cap (analysis row limit x config cap).
        compiler::RotationKeyPlan plan;
        double estimate_sum = 0.0; ///< Dispatch priority of the group.
        Clock::time_point deadline;
    };

    explicit BatchPlanner(std::chrono::nanoseconds window =
                              std::chrono::nanoseconds{0})
        : window_(window)
    {}

    /// Append \p lane to the group identified by \p key (creating it
    /// with \p capacity, \p stride and \p plan when absent). Returns
    /// the full group — removed from the pending map — once it reaches
    /// capacity, nullopt otherwise.
    std::optional<Group> add(const BatchGroupKey& key, BatchLane lane,
                             int capacity, int stride,
                             const compiler::RotationKeyPlan& plan,
                             Clock::time_point now);

    /// Deadline of the oldest pending group, if any.
    std::optional<Clock::time_point> earliestDeadline() const;

    /// Remove and return every group whose deadline has passed.
    std::vector<Group> takeDue(Clock::time_point now);

    /// Remove and return every pending group (service shutdown).
    std::vector<Group> takeAll();

    std::size_t pendingLanes() const;

    /// Order \p group's lanes deterministically — by the full run-key
    /// contents, env hash first (within one group the compile, params
    /// and budget fields are equal, so the env hash is what
    /// discriminates) — so packed noise accounting does not depend on
    /// the arrival interleaving, then return the group's packing seed:
    /// a content hash of the ordered lane identities that reseeds the
    /// runtime's encryption randomness exactly like the solo path's
    /// per-request seed does.
    static std::uint64_t canonicalizeAndSeed(Group& group);

  private:
    std::chrono::nanoseconds window_;
    std::unordered_map<BatchGroupKey, Group, BatchGroupKeyHash> pending_;
};

} // namespace chehab::service
