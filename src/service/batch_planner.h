/// \file
/// Slot-batching coalescer: packs concurrent run requests into shared
/// ciphertext rows.
///
/// SealLite batches n/2 SIMD slots per ciphertext, but a small kernel
/// (a dot-8, a 3x3 blur) occupies a handful of them — the rest of every
/// row the service encrypts, evaluates and decrypts is wasted work. The
/// BatchPlanner groups pending run jobs that share SealLite parameters
/// and an effective rotation-key budget, assigns each a contiguous
/// *lane* (a lane_stride-slot region of the row), and hands full or
/// window-expired groups back to the service, which executes each group
/// once — via FheRuntime::runPacked when every lane runs the same
/// compiled artifact, via FheRuntime::runComposite when the group mixes
/// artifacts (cross-kernel packing) — and scatters per-lane output
/// slices into the individual responses.
///
/// Cross-kernel packing. With ServiceConfig::cross_kernel on, a row
/// may be shared by requests running *different* compiled programs:
/// the group then holds one member per distinct artifact, each member
/// owning a disjoint block of composite lanes, and composeGroup()
/// concatenates the members' scheduled instruction streams into one
/// composite program (per-member register renaming keeps their
/// ciphertexts disjoint; a merged union key plan covers every member's
/// decomposed rotations). Placement policy: lanes always accumulate
/// per artifact — same-kernel lanes ride one member and therefore one
/// program execution, which is where packing's compute saving lives —
/// and only at *flush* time are window-expired partial groups that
/// share a row identity consolidated (consolidateGroups — cost-driven
/// row assignment under the load model, legacy first-fit decreasing
/// over the certified strides otherwise) into composite rows, so a
/// mixed workload of small distinct kernels shares the runtime lease,
/// the merged Galois keygen and the dispatch instead of paying them
/// once per kernel. Groups that fill on their own dispatch untouched:
/// consolidating full rows could only multiply program executions.
/// Each member must be lane-safe at the composite's common stride —
/// the maximum of the members' smallest certified strides, sound
/// because certification is monotone in the stride — and members whose
/// key plans decompose a shared rotation step differently never share
/// a row (their certificates would disagree with the merged plan's
/// physical rotation sequences).
///
/// Lane safety. Packing is only sound when the program's whole-row
/// rotations cannot leak one lane's data into the slots another lane
/// reads. analyzeLaneFit() proves this statically with a per-register
/// dataflow over the instruction stream (using the *decomposed*
/// rotation sequences of the key plan, since those are the physical
/// rotations; a decomposed sequence is exactly the whole-row rotation
/// by its net sum, so the dataflow applies the net displacement — which
/// is what certifies NAF decompositions with negative components).
/// Each register carries a conservative lane state:
///
///   - uniform: the value is identical in every lane (constant masks
///     and anything derived only from them) — exact under any op;
///   - dirty_bot / dirty_top: slots at the bottom/top of each lane's
///     region that may differ from what a solo run of that lane would
///     hold (rotations grow these margins as they drag neighbouring
///     lanes' slots across region boundaries);
///   - zero_from: region offset past which the value is zero in solo
///     semantics (non-replicated packs zero-fill their region), which
///     lets mask multiplies *clean* dirty margins and right rotations
///     pull in provable zeros instead of neighbour data.
///
/// A stride S certifies the program when the output register's bottom
/// margin is zero and its top margin leaves output_width clean slots.
/// Safety is monotone in S (every rule's S-dependence is of the form
/// "x <= S - y"), so the planner picks the smallest certified
/// power-of-two stride — maximizing lanes per row — and a certified
/// packed run equals the same lanes' solo runs bit-for-bit.
///
/// Thread-safety: BatchPlanner is NOT internally synchronized; the
/// CompileService wraps it with its coalescer mutex. analyzeLaneFit,
/// mergeKeyPlans, composeGroup and compositeFingerprint are pure
/// functions.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/runtime.h"
#include "compiler/schedule.h"
#include "service/cache_key.h"

namespace chehab::service {

/// Outcome of the static lane-safety analysis for one (program, key
/// plan, row) combination.
struct LaneFit
{
    bool safe = false; ///< Certified at stride for >= 2 lanes.
    int stride = 0;    ///< Slots per lane (power of two).
    int max_lanes = 1; ///< row_slots / stride when safe.
    std::string reason; ///< Why coalescing was refused (diagnostics).
};

/// Prove (or refuse) lane-packed execution of \p program under the
/// decomposed rotation sequences of \p plan on a \p row_slots-slot row.
/// Returns the smallest certified power-of-two stride; a result with
/// max_lanes < 2 means packing buys nothing and the caller should run
/// solo.
LaneFit analyzeLaneFit(const compiler::FheProgram& program,
                       const compiler::RotationKeyPlan& plan,
                       int row_slots);

/// Identity of one coalescible member: requests of one member run the
/// same compiled artifact on the same SealLite parameters under the
/// same effective key budget (0 when the artifact carries a compiler
/// key plan — the plan wins, so the request budget is irrelevant,
/// mirroring makeRunKey). Also the memo key of the service's
/// lane-safety fit cache.
struct BatchGroupKey
{
    CacheKey compile;
    std::uint64_t params_hash = 0;
    int key_budget = 0;

    friend bool
    operator==(const BatchGroupKey& a, const BatchGroupKey& b)
    {
        return a.compile == b.compile && a.params_hash == b.params_hash &&
               a.key_budget == b.key_budget;
    }
};

struct BatchGroupKeyHash
{
    std::size_t
    operator()(const BatchGroupKey& key) const
    {
        std::size_t h = CacheKeyHash{}(key.compile);
        detail::mix(h, key.params_hash);
        detail::mix(h, static_cast<std::uint64_t>(key.key_budget));
        return h;
    }
};

/// Identity of one shareable *row*: requests may ride the same
/// ciphertext row exactly when they run on the same SealLite parameters
/// under the same effective key budget (the artifact tier lives below
/// this, in the group's members).
struct RowKey
{
    std::uint64_t params_hash = 0;
    int key_budget = 0;

    friend bool
    operator==(const RowKey& a, const RowKey& b)
    {
        return a.params_hash == b.params_hash &&
               a.key_budget == b.key_budget;
    }
};

/// One pending run job awaiting a lane: everything the service needs to
/// execute it (solo or packed) and publish its entry once done. The
/// compile entry shared_ptr keeps \c compiled alive until publication.
struct BatchLane
{
    std::shared_ptr<RunEntry> entry;
    std::shared_ptr<CacheEntry> compile_entry;
    const compiler::Compiled* compiled = nullptr;
    double compile_seconds = 0.0;
    RunRequest request;
    RunKey run_key;
    /// Coalescer group identity (artifact x params x effective budget);
    /// also the load model's run-profile and arrival-estimator key.
    BatchGroupKey group_key;
    double estimate = 0.0;  ///< Static ir::cost() estimate.
    /// Load-model predicted seconds of executing this lane's program
    /// once (measured EWMA when warm, scaled static estimate when
    /// cold); drives dispatch priority and consolidation.
    double predicted = 0.0;
    /// Telemetry correlation id of the originating run request (0 when
    /// telemetry is off).
    std::uint64_t request_id = 0;
    /// Recorder timestamp when the lane entered the coalescer (0 =
    /// never coalesced or telemetry off); the dispatch path turns it
    /// into the window-wait measurement below.
    std::int64_t coalesce_ns = 0;
    /// Seconds this lane waited in the coalescer before its group
    /// dispatched; 0 for solo-path lanes. Copied into RunArtifact so
    /// every response carries its phase breakdown.
    double window_wait_seconds = 0.0;
};

/// Union of two rotation-key plans, or nullopt when they disagree on
/// the decomposition of a shared step (the merged plan could then not
/// preserve both members' certified physical rotation sequences).
/// Merged keys are sorted, so the plan — and the Galois keygen it
/// drives — is a pure function of the member set.
std::optional<compiler::RotationKeyPlan>
mergeKeyPlans(const compiler::RotationKeyPlan& a,
              const compiler::RotationKeyPlan& b);

struct ConsolidatePolicy;

/// Groups pending coalescible runs and decides when each group is ready
/// to execute. Window semantics: a group's *hard* deadline is fixed
/// when its first lane arrives (first arrival + window); the adaptive
/// window may pull the effective deadline earlier — never later — on
/// each arrival, and the group flushes early the moment it reaches
/// capacity. Pending groups are strictly per artifact (one open group
/// per BatchGroupKey); cross-kernel rows only form when the service
/// consolidates window-flushed partial groups (consolidateGroups).
class BatchPlanner
{
  public:
    using Clock = std::chrono::steady_clock;

    /// What the service knows about one compiled artifact when it
    /// hands a lane to the planner.
    struct MemberSpec
    {
        CacheKey compile;
        const compiler::Compiled* compiled = nullptr;
        /// The member's effective rotation-key plan (compiler plan when
        /// key_planned, budget-derived otherwise). Not owned; must
        /// outlive the add() call (the planner copies it).
        const compiler::RotationKeyPlan* plan = nullptr;
        int min_stride = 0; ///< Smallest certified power-of-two stride.
    };

    /// One distinct artifact inside a group, carrying its lanes.
    struct GroupMember
    {
        CacheKey compile;
        const compiler::Compiled* compiled = nullptr;
        compiler::RotationKeyPlan plan; ///< Member's own effective plan.
        int min_stride = 0;
        int lane_base = 0; ///< Assigned by canonicalizeAndSeed.
        std::vector<BatchLane> lanes;
    };

    struct Group
    {
        RowKey key;
        int row_slots = 0;
        int lanes_cap = 0; ///< Config lane cap (0 = row-bound only).
        int stride = 0;    ///< Common stride: max member min_stride.
        int total_lanes = 0;
        std::vector<GroupMember> members;
        compiler::RotationKeyPlan merged_plan; ///< Union over members.
        double estimate_sum = 0.0; ///< Static-cost sum over lanes.
        /// Predicted seconds of executing this group once: the sum of
        /// its members' per-execution predictions (a member's program
        /// runs once however many lanes it carries). Dispatch priority
        /// and the consolidation makespan objective both read this.
        double predicted_sum = 0.0;
        /// Effective flush deadline (what the flusher sleeps on). The
        /// adaptive window may move it earlier than hard_deadline and
        /// recomputes it on every arrival; it never passes the ceiling.
        Clock::time_point deadline;
        /// First arrival + the configured batch window: the ceiling.
        Clock::time_point hard_deadline;

        /// Lanes the row can hold at \p stride (row bound under the
        /// configured lane cap) — the one source of truth for both
        /// capacity-triggered flushing and consolidation-time packing.
        int capacityAt(int stride) const;
        /// Lanes the row can hold at the current stride.
        int capacity() const { return capacityAt(stride); }
        bool full() const { return total_lanes >= capacity(); }
    };

    explicit BatchPlanner(std::chrono::nanoseconds window =
                              std::chrono::nanoseconds{0})
        : window_(window)
    {}

    /// Append \p lane to the pending group for \p key (creating it from
    /// \p member, \p row_slots and \p lanes_cap when absent). Returns
    /// the full group — removed from the pending map — once it reaches
    /// capacity, nullopt otherwise. Precondition: min_stride divides
    /// row_slots and allows >= 2 lanes under \p lanes_cap (the service
    /// refuses such lanes upstream).
    ///
    /// \p adaptive_wait_seconds, when non-negative, is the load model's
    /// estimate of how long the remaining lanes will take to arrive:
    /// the group's effective deadline becomes min(hard ceiling, now +
    /// wait), recomputed on every arrival. Negative means fixed-window
    /// semantics (deadline = hard ceiling). Whenever the effective
    /// deadline may have moved earlier, the caller must notify its
    /// flusher so it re-derives its wait_until target instead of
    /// sleeping out the stale deadline.
    std::optional<Group> add(const BatchGroupKey& key,
                             const MemberSpec& member, BatchLane lane,
                             int row_slots, int lanes_cap,
                             Clock::time_point now,
                             double adaptive_wait_seconds = -1.0);

    /// Deadline of the oldest pending group, if any.
    std::optional<Clock::time_point> earliestDeadline() const;

    /// Lanes currently pending for \p key (0 when no open group).
    std::size_t pendingLanesFor(const BatchGroupKey& key) const;

    /// Remove and return every group whose deadline has passed.
    std::vector<Group> takeDue(Clock::time_point now);

    /// Cross-kernel flush: consolidate the window-expired groups in
    /// \p due among themselves (consolidateGroups), then offer every
    /// still-pending row-mate a seat on the resulting rows. A pending
    /// group is removed ONLY when it actually joins a row — a mate the
    /// rows cannot take (stride, lane cap, key-plan conflict, or the
    /// policy's cost rule) keeps its place and its batch window, so an
    /// incompatible neighbour's flush never degrades it to an early
    /// solo dispatch.
    std::vector<Group> consolidateDue(std::vector<Group> due,
                                      const ConsolidatePolicy& policy);

    /// Remove and return every pending group (service shutdown).
    std::vector<Group> takeAll();

    std::size_t pendingLanes() const;

    /// Order \p group deterministically — members by compile-key
    /// content, lanes within a member by the full run-key contents —
    /// and assign each member its contiguous composite lane block, so
    /// neither the lane layout nor the packed noise accounting depends
    /// on the arrival interleaving. Returns the group's packing seed: a
    /// content hash of the ordered lane identities that reseeds the
    /// runtime's encryption randomness exactly like the solo path's
    /// per-request seed does.
    static std::uint64_t canonicalizeAndSeed(Group& group);

  private:
    std::chrono::nanoseconds window_;
    std::unordered_map<BatchGroupKey, Group, BatchGroupKeyHash> pending_;
};

/// How consolidateGroups assigns flushed groups to rows.
struct ConsolidatePolicy
{
    /// Cost-driven row assignment (the load model's mode): groups are
    /// placed heaviest-predicted first onto the feasible row that
    /// minimizes the resulting predicted row seconds, then wasted
    /// lanes (best-fit by makespan); execution-dominated groups (the
    /// \c shareable callback answers false) seed their own rows while
    /// fewer than \c parallelism rows exist, so a few heavy kernels
    /// spread across workers instead of serializing on one shared row.
    /// When false: the legacy first-fit-decreasing over certified
    /// strides, blind to cost.
    bool cost_driven = false;
    /// Worker parallelism available to execute rows; 0 disables the
    /// own-row rule (always pack as tightly as rows allow).
    int parallelism = 0;
    /// Cost advice for one group: true = overhead-dominated, share a
    /// row whenever one fits; false = execution-dominated, prefer an
    /// own row (see LoadModel::preferRowShare). Null = always share.
    std::function<bool(const BatchPlanner::Group&)> shareable;
};

/// Consolidate flushed groups that share a row identity (RowKey) into
/// cross-kernel composite rows, growing each row's common stride as
/// members join and respecting its lane cap and key-plan
/// compatibility. Row assignment follows \p policy: cost-driven
/// (minimize predicted composite makespan, then wasted lanes, ties
/// broken by compile-key content so row composition stays a pure
/// function of the flushed set) or the legacy first-fit decreasing
/// over certified strides. Input groups are single-artifact (as the
/// planner produces them); each either seeds a row or joins one, so no
/// program ever executes more than once per flush. Deterministic for a
/// fixed input set and fixed predictions — independent of input order,
/// worker count and arrival interleaving.
std::vector<BatchPlanner::Group>
consolidateGroups(std::vector<BatchPlanner::Group> groups,
                  const ConsolidatePolicy& policy = {});

/// Content hash of a canonicalized group's composite identity: the
/// member artifact fingerprints, their lane assignment and the common
/// stride — everything the composite program is a function of. The
/// service's composite cache keys on this.
std::uint64_t compositeFingerprint(const BatchPlanner::Group& group);

/// Concatenate a canonicalized (>= 1 member) group's programs into one
/// composite: registers renamed to disjoint ranges, one CompositeMember
/// per group member mirroring its lane block, and the group's merged
/// key plan. Pure; the result owns copies of everything it needs.
compiler::CompositeProgram composeGroup(const BatchPlanner::Group& group);

} // namespace chehab::service
