#include "nn/adam.h"

#include <cmath>

namespace chehab::nn {

Adam::Adam(std::vector<Tensor> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Tensor& p : params_) {
        m_.emplace_back(static_cast<std::size_t>(p.size()), 0.0f);
        v_.emplace_back(static_cast<std::size_t>(p.size()), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;

    // Global-norm clipping (matches Stable-Baselines3 PPO behaviour).
    double norm_sq = 0.0;
    for (const Tensor& p : params_) {
        for (float g : p.grad()) norm_sq += static_cast<double>(g) * g;
    }
    last_grad_norm_ = static_cast<float>(std::sqrt(norm_sq));
    float clip_scale = 1.0f;
    if (config_.max_grad_norm > 0.0f &&
        last_grad_norm_ > config_.max_grad_norm) {
        clip_scale = config_.max_grad_norm / (last_grad_norm_ + 1e-12f);
    }

    const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));

    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& p = params_[i];
        auto& value = p.mutableData();
        const auto& grad = p.grad();
        auto& m = m_[i];
        auto& v = v_[i];
        for (std::size_t j = 0; j < value.size(); ++j) {
            const float g = grad[j] * clip_scale;
            m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
            v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
            const float m_hat = m[j] / bc1;
            const float v_hat = v[j] / bc2;
            value[j] -= config_.learning_rate * m_hat /
                        (std::sqrt(v_hat) + config_.epsilon);
        }
    }
    zeroGrad();
}

void
Adam::zeroGrad()
{
    for (Tensor& p : params_) p.zeroGrad();
}

} // namespace chehab::nn
