#include "nn/layers.h"

#include <cmath>

#include "support/error.h"

namespace chehab::nn {

// ---------------------------------------------------------------------
// Linear.
// ---------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng& rng)
{
    const float limit = 1.0f / std::sqrt(static_cast<float>(in_features));
    weight_ = Tensor::randn(in_features, out_features, rng, limit, true);
    bias_ = Tensor::zeros(1, out_features, true);
}

Tensor
Linear::forward(const Tensor& x) const
{
    return addRowBroadcast(matmul(x, weight_), bias_);
}

void
Linear::collectParams(std::vector<Tensor>& params) const
{
    params.push_back(weight_);
    params.push_back(bias_);
}

// ---------------------------------------------------------------------
// MLP.
// ---------------------------------------------------------------------

Mlp::Mlp(const std::vector<int>& sizes, Rng& rng)
{
    CHEHAB_ASSERT(sizes.size() >= 2, "Mlp needs at least two sizes");
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        layers_.emplace_back(sizes[i], sizes[i + 1], rng);
    }
}

Tensor
Mlp::forward(const Tensor& x) const
{
    Tensor h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        if (i + 1 < layers_.size()) h = relu(h);
    }
    return h;
}

void
Mlp::collectParams(std::vector<Tensor>& params) const
{
    for (const auto& layer : layers_) layer.collectParams(params);
}

// ---------------------------------------------------------------------
// Transformer encoder.
// ---------------------------------------------------------------------

TransformerEncoder::TransformerEncoder(const EncoderConfig& config, Rng& rng)
    : config_(config)
{
    CHEHAB_ASSERT(config.d_model % config.n_heads == 0,
                  "d_model must be divisible by n_heads");
    const float emb_scale =
        1.0f / std::sqrt(static_cast<float>(config.d_model));
    token_embedding_ =
        Tensor::randn(config.vocab_size, config.d_model, rng, emb_scale,
                      true);
    position_embedding_ =
        Tensor::randn(config.max_len, config.d_model, rng, emb_scale, true);
    for (int l = 0; l < config.n_layers; ++l) {
        Layer layer;
        layer.wq = Linear(config.d_model, config.d_model, rng);
        layer.wk = Linear(config.d_model, config.d_model, rng);
        layer.wv = Linear(config.d_model, config.d_model, rng);
        layer.wo = Linear(config.d_model, config.d_model, rng);
        layer.ln1_gain = Tensor::fromData(
            1, config.d_model,
            std::vector<float>(static_cast<std::size_t>(config.d_model),
                               1.0f),
            true);
        layer.ln1_bias = Tensor::zeros(1, config.d_model, true);
        layer.ff1 = Linear(config.d_model, config.d_ff, rng);
        layer.ff2 = Linear(config.d_ff, config.d_model, rng);
        layer.ln2_gain = Tensor::fromData(
            1, config.d_model,
            std::vector<float>(static_cast<std::size_t>(config.d_model),
                               1.0f),
            true);
        layer.ln2_bias = Tensor::zeros(1, config.d_model, true);
        layers_.push_back(std::move(layer));
    }
}

Tensor
TransformerEncoder::attention(const Layer& layer, const Tensor& x,
                              const std::vector<float>& key_mask) const
{
    const int len = x.rows();
    const int d_model = config_.d_model;
    const int n_heads = config_.n_heads;
    const int d_head = d_model / n_heads;
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d_head));

    const Tensor q = layer.wq.forward(x);
    const Tensor k = layer.wk.forward(x);
    const Tensor v = layer.wv.forward(x);

    // Additive attention mask: column j blocked when ids[j] is PAD.
    std::vector<float> mask(static_cast<std::size_t>(len) * len, 0.0f);
    for (int i = 0; i < len; ++i) {
        for (int j = 0; j < len; ++j) {
            if (key_mask[static_cast<std::size_t>(j)] == 0.0f) {
                mask[static_cast<std::size_t>(i) * len + j] = -1e9f;
            }
        }
    }

    Tensor heads;
    for (int h = 0; h < n_heads; ++h) {
        const Tensor qh = sliceCols(q, h * d_head, (h + 1) * d_head);
        const Tensor kh = sliceCols(k, h * d_head, (h + 1) * d_head);
        const Tensor vh = sliceCols(v, h * d_head, (h + 1) * d_head);
        Tensor scores = scale(matmul(qh, transpose(kh)), inv_sqrt);
        scores = addConstMask(scores, mask);
        const Tensor attn = softmaxRows(scores);
        const Tensor out_h = matmul(attn, vh);
        heads = h == 0 ? out_h : concatCols(heads, out_h);
    }
    return layer.wo.forward(heads);
}

Tensor
TransformerEncoder::encodeSequence(const std::vector<int>& ids) const
{
    const int len = std::min(static_cast<int>(ids.size()), config_.max_len);
    std::vector<int> clipped(ids.begin(), ids.begin() + len);
    std::vector<int> positions(static_cast<std::size_t>(len));
    std::vector<float> key_mask(static_cast<std::size_t>(len), 1.0f);
    for (int i = 0; i < len; ++i) {
        positions[static_cast<std::size_t>(i)] = i;
        if (clipped[static_cast<std::size_t>(i)] == config_.pad_id) {
            key_mask[static_cast<std::size_t>(i)] = 0.0f;
        }
    }

    Tensor x = add(embeddingLookup(token_embedding_, clipped),
                   embeddingLookup(position_embedding_, positions));
    for (const Layer& layer : layers_) {
        const Tensor attn = attention(layer, x, key_mask);
        x = layerNormRows(add(x, attn), layer.ln1_gain, layer.ln1_bias);
        const Tensor ff = layer.ff2.forward(relu(layer.ff1.forward(x)));
        x = layerNormRows(add(x, ff), layer.ln2_gain, layer.ln2_bias);
    }
    return x;
}

Tensor
TransformerEncoder::encode(const std::vector<int>& ids) const
{
    // Row 0 is the CLS token (IciVocab::encode prepends it).
    return sliceRow(encodeSequence(ids), 0);
}

void
TransformerEncoder::collectParams(std::vector<Tensor>& params) const
{
    params.push_back(token_embedding_);
    params.push_back(position_embedding_);
    for (const Layer& layer : layers_) {
        layer.wq.collectParams(params);
        layer.wk.collectParams(params);
        layer.wv.collectParams(params);
        layer.wo.collectParams(params);
        params.push_back(layer.ln1_gain);
        params.push_back(layer.ln1_bias);
        layer.ff1.collectParams(params);
        layer.ff2.collectParams(params);
        params.push_back(layer.ln2_gain);
        params.push_back(layer.ln2_bias);
    }
}

// ---------------------------------------------------------------------
// GRU encoder.
// ---------------------------------------------------------------------

GruEncoder::GruEncoder(const EncoderConfig& config, Rng& rng)
    : config_(config)
{
    const float emb_scale =
        1.0f / std::sqrt(static_cast<float>(config.d_model));
    token_embedding_ =
        Tensor::randn(config.vocab_size, config.d_model, rng, emb_scale,
                      true);
    wz_ = Linear(config.d_model, config.d_model, rng);
    uz_ = Linear(config.d_model, config.d_model, rng);
    wr_ = Linear(config.d_model, config.d_model, rng);
    ur_ = Linear(config.d_model, config.d_model, rng);
    wh_ = Linear(config.d_model, config.d_model, rng);
    uh_ = Linear(config.d_model, config.d_model, rng);
}

Tensor
GruEncoder::encode(const std::vector<int>& ids) const
{
    const int len = std::min(static_cast<int>(ids.size()), config_.max_len);
    std::vector<int> clipped(ids.begin(), ids.begin() + len);
    const Tensor embedded = embeddingLookup(token_embedding_, clipped);

    Tensor h = Tensor::zeros(1, config_.d_model);
    for (int t = 0; t < len; ++t) {
        if (clipped[static_cast<std::size_t>(t)] == config_.pad_id) continue;
        const Tensor x_t = sliceRow(embedded, t);
        const Tensor z = sigmoid(add(wz_.forward(x_t), uz_.forward(h)));
        const Tensor r = sigmoid(add(wr_.forward(x_t), ur_.forward(h)));
        const Tensor h_tilde =
            tanhT(add(wh_.forward(x_t), uh_.forward(mulElem(r, h))));
        // h = (1 - z) * h + z * h_tilde.
        const Tensor one_minus_z = scale(sub(z, Tensor::fromData(
            1, config_.d_model,
            std::vector<float>(static_cast<std::size_t>(config_.d_model),
                               1.0f))), -1.0f);
        h = add(mulElem(one_minus_z, h), mulElem(z, h_tilde));
    }
    return h;
}

void
GruEncoder::collectParams(std::vector<Tensor>& params) const
{
    params.push_back(token_embedding_);
    wz_.collectParams(params);
    uz_.collectParams(params);
    wr_.collectParams(params);
    ur_.collectParams(params);
    wh_.collectParams(params);
    uh_.collectParams(params);
}

} // namespace chehab::nn
