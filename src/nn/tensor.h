/// \file
/// Minimal reverse-mode automatic differentiation over 2-D float tensors.
///
/// This is the substrate under the policy/value networks and the
/// Transformer/GRU encoders (§5.1, §5.4). Tensors are handles to graph
/// nodes; operations record a backward closure that scatters gradients to
/// the operands. Calling backward() on a scalar runs the tape in reverse
/// topological order.
///
/// Scope decisions: everything is a 2-D matrix [rows x cols] (sequences
/// are rows, features are columns); batching is done by looping, which is
/// the right trade-off for the single-core, small-model training runs in
/// this reproduction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/rng.h"

namespace chehab::nn {

/// Autograd graph node. Users interact through Tensor.
struct Node
{
    int rows = 0;
    int cols = 0;
    std::vector<float> value;
    std::vector<float> grad;
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    /// Accumulates this node's grad into its parents' grads.
    std::function<void(Node&)> backward_fn;

    int size() const { return rows * cols; }
    float& at(int r, int c) { return value[static_cast<std::size_t>(r) * cols + c]; }
    float at(int r, int c) const
    {
        return value[static_cast<std::size_t>(r) * cols + c];
    }
    float& gradAt(int r, int c)
    {
        return grad[static_cast<std::size_t>(r) * cols + c];
    }
};

/// Value-semantics handle to a Node; cheap to copy.
class Tensor
{
  public:
    Tensor() = default;

    /// Fresh tensor of zeros.
    static Tensor zeros(int rows, int cols, bool requires_grad = false);

    /// Gaussian init scaled by \p scale (e.g. Xavier-style 1/sqrt(fan_in)).
    static Tensor randn(int rows, int cols, Rng& rng, float scale,
                        bool requires_grad = true);

    /// Wrap explicit row-major data.
    static Tensor fromData(int rows, int cols, std::vector<float> data,
                           bool requires_grad = false);

    bool defined() const { return node_ != nullptr; }
    int rows() const { return node_->rows; }
    int cols() const { return node_->cols; }
    int size() const { return node_->size(); }

    const std::vector<float>& data() const { return node_->value; }
    std::vector<float>& mutableData() { return node_->value; }
    const std::vector<float>& grad() const { return node_->grad; }
    float item() const { return node_->value[0]; }
    float at(int r, int c) const { return node_->at(r, c); }

    bool requiresGrad() const { return node_->requires_grad; }

    /// Zero this tensor's gradient buffer. (Const: Tensor is a handle;
    /// this mutates the shared node, not the handle.)
    void zeroGrad() const;

    /// Run reverse-mode AD from this scalar (1x1) tensor.
    void backward() const;

    std::shared_ptr<Node> node() const { return node_; }

    /// Internal: wrap an existing node.
    explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  private:
    std::shared_ptr<Node> node_;
};

/// \name Differentiable operations
/// @{
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor add(const Tensor& a, const Tensor& b);          ///< Same shape.
Tensor addRowBroadcast(const Tensor& a, const Tensor& row); ///< a + 1·rowᵀ.
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mulElem(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float factor);
Tensor relu(const Tensor& a);
Tensor tanhT(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor transpose(const Tensor& a);

/// Row-wise softmax with an optional additive mask (use -1e9 entries to
/// exclude padded positions, as in attention).
Tensor softmaxRows(const Tensor& a);
Tensor addConstMask(const Tensor& a, const std::vector<float>& mask);

/// Row-wise log-softmax (numerically stable); used for policy log-probs.
Tensor logSoftmaxRows(const Tensor& a);

/// Row-wise layer normalization with learnable gain/bias (1 x cols each).
Tensor layerNormRows(const Tensor& a, const Tensor& gain, const Tensor& bias,
                     float epsilon = 1e-5f);

/// Gather rows of \p table by \p ids (embedding lookup). Gradient
/// scatters back into the table.
Tensor embeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Select a single row as a 1 x cols tensor (differentiable slice).
Tensor sliceRow(const Tensor& a, int row);

/// Select a column range [begin, end) (differentiable slice).
Tensor sliceCols(const Tensor& a, int begin, int end);

/// Concatenate along columns (both operands must share rows).
Tensor concatCols(const Tensor& a, const Tensor& b);

/// Concatenate along rows (both operands must share cols).
Tensor concatRows(const Tensor& a, const Tensor& b);

/// Mean of all entries -> scalar.
Tensor meanAll(const Tensor& a);

/// Sum of all entries -> scalar.
Tensor sumAll(const Tensor& a);

/// Pick one entry as a scalar (differentiable).
Tensor pick(const Tensor& a, int r, int c);

/// Mean over rows of masked positions: rows with mask 0 are excluded.
/// Used to mean-pool non-PAD token embeddings.
Tensor maskedMeanRows(const Tensor& a, const std::vector<float>& row_mask);
/// @}

} // namespace chehab::nn
