/// \file
/// Adam optimizer with global-norm gradient clipping — the update rule
/// used by the PPO trainer (Table 4: learning rate 1e-4).
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace chehab::nn {

/// Adam hyperparameters.
struct AdamConfig
{
    float learning_rate = 1e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float max_grad_norm = 0.5f; ///< Global clip; <= 0 disables.
};

/// Standard Adam with bias correction over a fixed parameter list.
class Adam
{
  public:
    Adam(std::vector<Tensor> params, const AdamConfig& config = {});

    /// Apply one update from the accumulated gradients, then zero them.
    void step();

    /// Zero all parameter gradients without updating.
    void zeroGrad();

    /// Global gradient L2 norm before clipping (diagnostics).
    float lastGradNorm() const { return last_grad_norm_; }

    int numSteps() const { return t_; }
    const AdamConfig& config() const { return config_; }
    void setLearningRate(float lr) { config_.learning_rate = lr; }

  private:
    std::vector<Tensor> params_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    AdamConfig config_;
    int t_ = 0;
    float last_grad_norm_ = 0.0f;
};

} // namespace chehab::nn
