#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/error.h"

namespace chehab::nn {

namespace {

std::shared_ptr<Node>
makeRaw(int rows, int cols, bool requires_grad)
{
    auto node = std::make_shared<Node>();
    node->rows = rows;
    node->cols = cols;
    node->value.assign(static_cast<std::size_t>(rows) * cols, 0.0f);
    node->grad.assign(static_cast<std::size_t>(rows) * cols, 0.0f);
    node->requires_grad = requires_grad;
    return node;
}

/// Result node whose gradient flows back to its parents.
std::shared_ptr<Node>
makeResult(int rows, int cols, std::vector<std::shared_ptr<Node>> parents,
           std::function<void(Node&)> backward_fn)
{
    auto node = makeRaw(rows, cols, true);
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
    return node;
}

} // namespace

Tensor
Tensor::zeros(int rows, int cols, bool requires_grad)
{
    return Tensor(makeRaw(rows, cols, requires_grad));
}

Tensor
Tensor::randn(int rows, int cols, Rng& rng, float scale, bool requires_grad)
{
    auto node = makeRaw(rows, cols, requires_grad);
    for (auto& v : node->value) {
        v = static_cast<float>(rng.normal()) * scale;
    }
    return Tensor(node);
}

Tensor
Tensor::fromData(int rows, int cols, std::vector<float> data,
                 bool requires_grad)
{
    CHEHAB_ASSERT(static_cast<int>(data.size()) == rows * cols,
                  "fromData size mismatch");
    auto node = makeRaw(rows, cols, requires_grad);
    node->value = std::move(data);
    return Tensor(node);
}

void
Tensor::zeroGrad() const
{
    std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void
Tensor::backward() const
{
    CHEHAB_ASSERT(node_->size() == 1, "backward() needs a scalar");
    // Topological order via iterative DFS.
    std::vector<Node*> order;
    std::unordered_set<Node*> visited;
    std::vector<std::pair<Node*, std::size_t>> stack;
    stack.emplace_back(node_.get(), 0);
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto& [node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            Node* parent = node->parents[next_child++].get();
            if (visited.insert(parent).second) {
                stack.emplace_back(parent, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
    node_->grad[0] = 1.0f;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if ((*it)->backward_fn) (*it)->backward_fn(**it);
    }
}

// ---------------------------------------------------------------------
// Operations.
// ---------------------------------------------------------------------

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    CHEHAB_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
    const int m = a.rows();
    const int k = a.cols();
    const int n = b.cols();
    auto pa = a.node();
    auto pb = b.node();
    auto out = makeResult(m, n, {pa, pb}, [m, k, n, pa, pb](Node& self) {
        // dA = dC Bᵀ ; dB = Aᵀ dC.
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                const float g = self.gradAt(i, j);
                if (g == 0.0f) continue;
                for (int t = 0; t < k; ++t) {
                    pa->gradAt(i, t) += g * pb->at(t, j);
                    pb->gradAt(t, j) += g * pa->at(i, t);
                }
            }
        }
    });
    for (int i = 0; i < m; ++i) {
        for (int t = 0; t < k; ++t) {
            const float av = pa->at(i, t);
            if (av == 0.0f) continue;
            for (int j = 0; j < n; ++j) {
                out->at(i, j) += av * pb->at(t, j);
            }
        }
    }
    return Tensor(out);
}

Tensor
add(const Tensor& a, const Tensor& b)
{
    CHEHAB_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "add shape mismatch");
    auto pa = a.node();
    auto pb = b.node();
    auto out = makeResult(a.rows(), a.cols(), {pa, pb}, [pa, pb](Node& self) {
        for (int i = 0; i < self.size(); ++i) {
            pa->grad[static_cast<std::size_t>(i)] += self.grad[static_cast<std::size_t>(i)];
            pb->grad[static_cast<std::size_t>(i)] += self.grad[static_cast<std::size_t>(i)];
        }
    });
    for (int i = 0; i < out->size(); ++i) {
        out->value[static_cast<std::size_t>(i)] =
            pa->value[static_cast<std::size_t>(i)] +
            pb->value[static_cast<std::size_t>(i)];
    }
    return Tensor(out);
}

Tensor
addRowBroadcast(const Tensor& a, const Tensor& row)
{
    CHEHAB_ASSERT(row.rows() == 1 && row.cols() == a.cols(),
                  "addRowBroadcast shape mismatch");
    auto pa = a.node();
    auto pr = row.node();
    const int rows = a.rows();
    const int cols = a.cols();
    auto out = makeResult(rows, cols, {pa, pr},
                          [rows, cols, pa, pr](Node& self) {
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < cols; ++j) {
                const float g = self.gradAt(i, j);
                pa->gradAt(i, j) += g;
                pr->gradAt(0, j) += g;
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            out->at(i, j) = pa->at(i, j) + pr->at(0, j);
        }
    }
    return Tensor(out);
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    return add(a, scale(b, -1.0f));
}

Tensor
mulElem(const Tensor& a, const Tensor& b)
{
    CHEHAB_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "mulElem shape mismatch");
    auto pa = a.node();
    auto pb = b.node();
    auto out = makeResult(a.rows(), a.cols(), {pa, pb}, [pa, pb](Node& self) {
        for (int i = 0; i < self.size(); ++i) {
            const auto idx = static_cast<std::size_t>(i);
            pa->grad[idx] += self.grad[idx] * pb->value[idx];
            pb->grad[idx] += self.grad[idx] * pa->value[idx];
        }
    });
    for (int i = 0; i < out->size(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        out->value[idx] = pa->value[idx] * pb->value[idx];
    }
    return Tensor(out);
}

Tensor
scale(const Tensor& a, float factor)
{
    auto pa = a.node();
    auto out = makeResult(a.rows(), a.cols(), {pa}, [pa, factor](Node& self) {
        for (int i = 0; i < self.size(); ++i) {
            pa->grad[static_cast<std::size_t>(i)] +=
                factor * self.grad[static_cast<std::size_t>(i)];
        }
    });
    for (int i = 0; i < out->size(); ++i) {
        out->value[static_cast<std::size_t>(i)] =
            factor * pa->value[static_cast<std::size_t>(i)];
    }
    return Tensor(out);
}

namespace {

template <typename Fn, typename DFn>
Tensor
unaryOp(const Tensor& a, Fn fn, DFn dfn)
{
    auto pa = a.node();
    auto out = makeResult(a.rows(), a.cols(), {pa}, [pa, dfn](Node& self) {
        for (int i = 0; i < self.size(); ++i) {
            const auto idx = static_cast<std::size_t>(i);
            pa->grad[idx] += self.grad[idx] * dfn(pa->value[idx],
                                                  self.value[idx]);
        }
    });
    for (int i = 0; i < out->size(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        out->value[idx] = fn(pa->value[idx]);
    }
    return Tensor(out);
}

} // namespace

Tensor
relu(const Tensor& a)
{
    return unaryOp(
        a, [](float x) { return x > 0.0f ? x : 0.0f; },
        [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor
tanhT(const Tensor& a)
{
    return unaryOp(
        a, [](float x) { return std::tanh(x); },
        [](float, float y) { return 1.0f - y * y; });
}

Tensor
sigmoid(const Tensor& a)
{
    return unaryOp(
        a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
        [](float, float y) { return y * (1.0f - y); });
}

Tensor
transpose(const Tensor& a)
{
    auto pa = a.node();
    const int rows = a.rows();
    const int cols = a.cols();
    auto out = makeResult(cols, rows, {pa}, [rows, cols, pa](Node& self) {
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < cols; ++j) {
                pa->gradAt(i, j) += self.gradAt(j, i);
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) out->at(j, i) = pa->at(i, j);
    }
    return Tensor(out);
}

Tensor
softmaxRows(const Tensor& a)
{
    auto pa = a.node();
    const int rows = a.rows();
    const int cols = a.cols();
    auto out = makeResult(rows, cols, {pa}, [rows, cols, pa](Node& self) {
        for (int i = 0; i < rows; ++i) {
            float dot = 0.0f;
            for (int j = 0; j < cols; ++j) {
                dot += self.gradAt(i, j) * self.at(i, j);
            }
            for (int j = 0; j < cols; ++j) {
                pa->gradAt(i, j) +=
                    self.at(i, j) * (self.gradAt(i, j) - dot);
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        float max_v = pa->at(i, 0);
        for (int j = 1; j < cols; ++j) max_v = std::max(max_v, pa->at(i, j));
        float denom = 0.0f;
        for (int j = 0; j < cols; ++j) {
            out->at(i, j) = std::exp(pa->at(i, j) - max_v);
            denom += out->at(i, j);
        }
        for (int j = 0; j < cols; ++j) out->at(i, j) /= denom;
    }
    return Tensor(out);
}

Tensor
addConstMask(const Tensor& a, const std::vector<float>& mask)
{
    CHEHAB_ASSERT(static_cast<int>(mask.size()) == a.size(),
                  "mask size mismatch");
    auto pa = a.node();
    auto out = makeResult(a.rows(), a.cols(), {pa}, [pa](Node& self) {
        for (int i = 0; i < self.size(); ++i) {
            pa->grad[static_cast<std::size_t>(i)] +=
                self.grad[static_cast<std::size_t>(i)];
        }
    });
    for (int i = 0; i < out->size(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        out->value[idx] = pa->value[idx] + mask[idx];
    }
    return Tensor(out);
}

Tensor
logSoftmaxRows(const Tensor& a)
{
    auto pa = a.node();
    const int rows = a.rows();
    const int cols = a.cols();
    auto out = makeResult(rows, cols, {pa}, [rows, cols, pa](Node& self) {
        for (int i = 0; i < rows; ++i) {
            float grad_sum = 0.0f;
            for (int j = 0; j < cols; ++j) grad_sum += self.gradAt(i, j);
            for (int j = 0; j < cols; ++j) {
                pa->gradAt(i, j) += self.gradAt(i, j) -
                                    std::exp(self.at(i, j)) * grad_sum;
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        float max_v = pa->at(i, 0);
        for (int j = 1; j < cols; ++j) max_v = std::max(max_v, pa->at(i, j));
        float denom = 0.0f;
        for (int j = 0; j < cols; ++j) {
            denom += std::exp(pa->at(i, j) - max_v);
        }
        const float log_denom = std::log(denom) + max_v;
        for (int j = 0; j < cols; ++j) {
            out->at(i, j) = pa->at(i, j) - log_denom;
        }
    }
    return Tensor(out);
}

Tensor
layerNormRows(const Tensor& a, const Tensor& gain, const Tensor& bias,
              float epsilon)
{
    CHEHAB_ASSERT(gain.rows() == 1 && gain.cols() == a.cols() &&
                      bias.rows() == 1 && bias.cols() == a.cols(),
                  "layerNorm parameter shape mismatch");
    auto pa = a.node();
    auto pg = gain.node();
    auto pb = bias.node();
    const int rows = a.rows();
    const int cols = a.cols();

    // Cache per-row statistics for the backward pass.
    auto mean = std::make_shared<std::vector<float>>(rows);
    auto inv_std = std::make_shared<std::vector<float>>(rows);

    auto out = makeResult(
        rows, cols, {pa, pg, pb},
        [rows, cols, pa, pg, pb, mean, inv_std](Node& self) {
            for (int i = 0; i < rows; ++i) {
                const float istd = (*inv_std)[static_cast<std::size_t>(i)];
                const float mu = (*mean)[static_cast<std::size_t>(i)];
                float sum_gy = 0.0f;
                float sum_gyx = 0.0f;
                for (int j = 0; j < cols; ++j) {
                    const float gy = self.gradAt(i, j) * pg->at(0, j);
                    const float xhat = (pa->at(i, j) - mu) * istd;
                    sum_gy += gy;
                    sum_gyx += gy * xhat;
                    pg->gradAt(0, j) += self.gradAt(i, j) * xhat;
                    pb->gradAt(0, j) += self.gradAt(i, j);
                }
                for (int j = 0; j < cols; ++j) {
                    const float gy = self.gradAt(i, j) * pg->at(0, j);
                    const float xhat = (pa->at(i, j) - mu) * istd;
                    pa->gradAt(i, j) +=
                        istd * (gy - (sum_gy + xhat * sum_gyx) /
                                         static_cast<float>(cols));
                }
            }
        });

    for (int i = 0; i < rows; ++i) {
        float mu = 0.0f;
        for (int j = 0; j < cols; ++j) mu += pa->at(i, j);
        mu /= static_cast<float>(cols);
        float var = 0.0f;
        for (int j = 0; j < cols; ++j) {
            const float d = pa->at(i, j) - mu;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float istd = 1.0f / std::sqrt(var + epsilon);
        (*mean)[static_cast<std::size_t>(i)] = mu;
        (*inv_std)[static_cast<std::size_t>(i)] = istd;
        for (int j = 0; j < cols; ++j) {
            out->at(i, j) =
                pg->at(0, j) * (pa->at(i, j) - mu) * istd + pb->at(0, j);
        }
    }
    return Tensor(out);
}

Tensor
embeddingLookup(const Tensor& table, const std::vector<int>& ids)
{
    auto pt = table.node();
    const int cols = table.cols();
    const int rows = static_cast<int>(ids.size());
    auto ids_copy = std::make_shared<std::vector<int>>(ids);
    auto out = makeResult(rows, cols, {pt},
                          [rows, cols, pt, ids_copy](Node& self) {
        for (int i = 0; i < rows; ++i) {
            const int id = (*ids_copy)[static_cast<std::size_t>(i)];
            for (int j = 0; j < cols; ++j) {
                pt->gradAt(id, j) += self.gradAt(i, j);
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        const int id = ids[static_cast<std::size_t>(i)];
        CHEHAB_ASSERT(id >= 0 && id < table.rows(), "embedding id range");
        for (int j = 0; j < cols; ++j) out->at(i, j) = pt->at(id, j);
    }
    return Tensor(out);
}

Tensor
sliceRow(const Tensor& a, int row)
{
    CHEHAB_ASSERT(row >= 0 && row < a.rows(), "sliceRow range");
    auto pa = a.node();
    const int cols = a.cols();
    auto out = makeResult(1, cols, {pa}, [row, cols, pa](Node& self) {
        for (int j = 0; j < cols; ++j) {
            pa->gradAt(row, j) += self.gradAt(0, j);
        }
    });
    for (int j = 0; j < cols; ++j) out->at(0, j) = pa->at(row, j);
    return Tensor(out);
}

Tensor
sliceCols(const Tensor& a, int begin, int end)
{
    CHEHAB_ASSERT(begin >= 0 && begin < end && end <= a.cols(),
                  "sliceCols range");
    auto pa = a.node();
    const int rows = a.rows();
    const int width = end - begin;
    auto out = makeResult(rows, width, {pa},
                          [rows, width, begin, pa](Node& self) {
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < width; ++j) {
                pa->gradAt(i, begin + j) += self.gradAt(i, j);
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < width; ++j) out->at(i, j) = pa->at(i, begin + j);
    }
    return Tensor(out);
}

Tensor
concatCols(const Tensor& a, const Tensor& b)
{
    CHEHAB_ASSERT(a.rows() == b.rows(), "concatCols shape mismatch");
    auto pa = a.node();
    auto pb = b.node();
    const int rows = a.rows();
    const int ca = a.cols();
    const int cb = b.cols();
    auto out = makeResult(rows, ca + cb, {pa, pb},
                          [rows, ca, cb, pa, pb](Node& self) {
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < ca; ++j) {
                pa->gradAt(i, j) += self.gradAt(i, j);
            }
            for (int j = 0; j < cb; ++j) {
                pb->gradAt(i, j) += self.gradAt(i, ca + j);
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < ca; ++j) out->at(i, j) = pa->at(i, j);
        for (int j = 0; j < cb; ++j) out->at(i, ca + j) = pb->at(i, j);
    }
    return Tensor(out);
}

Tensor
concatRows(const Tensor& a, const Tensor& b)
{
    CHEHAB_ASSERT(a.cols() == b.cols(), "concatRows shape mismatch");
    auto pa = a.node();
    auto pb = b.node();
    const int ra = a.rows();
    const int rb = b.rows();
    const int cols = a.cols();
    auto out = makeResult(ra + rb, cols, {pa, pb},
                          [ra, rb, cols, pa, pb](Node& self) {
        for (int i = 0; i < ra; ++i) {
            for (int j = 0; j < cols; ++j) {
                pa->gradAt(i, j) += self.gradAt(i, j);
            }
        }
        for (int i = 0; i < rb; ++i) {
            for (int j = 0; j < cols; ++j) {
                pb->gradAt(i, j) += self.gradAt(ra + i, j);
            }
        }
    });
    for (int i = 0; i < ra; ++i) {
        for (int j = 0; j < cols; ++j) out->at(i, j) = pa->at(i, j);
    }
    for (int i = 0; i < rb; ++i) {
        for (int j = 0; j < cols; ++j) out->at(ra + i, j) = pb->at(i, j);
    }
    return Tensor(out);
}

Tensor
meanAll(const Tensor& a)
{
    auto pa = a.node();
    const float inv_n = 1.0f / static_cast<float>(a.size());
    auto out = makeResult(1, 1, {pa}, [pa, inv_n](Node& self) {
        for (auto& g : pa->grad) g += self.grad[0] * inv_n;
    });
    float total = 0.0f;
    for (float v : pa->value) total += v;
    out->value[0] = total * inv_n;
    return Tensor(out);
}

Tensor
sumAll(const Tensor& a)
{
    auto pa = a.node();
    auto out = makeResult(1, 1, {pa}, [pa](Node& self) {
        for (auto& g : pa->grad) g += self.grad[0];
    });
    float total = 0.0f;
    for (float v : pa->value) total += v;
    out->value[0] = total;
    return Tensor(out);
}

Tensor
pick(const Tensor& a, int r, int c)
{
    CHEHAB_ASSERT(r >= 0 && r < a.rows() && c >= 0 && c < a.cols(),
                  "pick range");
    auto pa = a.node();
    auto out = makeResult(1, 1, {pa}, [r, c, pa](Node& self) {
        pa->gradAt(r, c) += self.grad[0];
    });
    out->value[0] = pa->at(r, c);
    return Tensor(out);
}

Tensor
maskedMeanRows(const Tensor& a, const std::vector<float>& row_mask)
{
    CHEHAB_ASSERT(static_cast<int>(row_mask.size()) == a.rows(),
                  "row mask size mismatch");
    auto pa = a.node();
    const int rows = a.rows();
    const int cols = a.cols();
    float count = 0.0f;
    for (float m : row_mask) count += m;
    if (count == 0.0f) count = 1.0f;
    const float inv = 1.0f / count;
    auto mask = std::make_shared<std::vector<float>>(row_mask);
    auto out = makeResult(1, cols, {pa},
                          [rows, cols, pa, mask, inv](Node& self) {
        for (int i = 0; i < rows; ++i) {
            const float m = (*mask)[static_cast<std::size_t>(i)];
            if (m == 0.0f) continue;
            for (int j = 0; j < cols; ++j) {
                pa->gradAt(i, j) += self.gradAt(0, j) * inv * m;
            }
        }
    });
    for (int i = 0; i < rows; ++i) {
        const float m = row_mask[static_cast<std::size_t>(i)];
        if (m == 0.0f) continue;
        for (int j = 0; j < cols; ++j) {
            out->at(0, j) += pa->at(i, j) * inv * m;
        }
    }
    return Tensor(out);
}

} // namespace chehab::nn
