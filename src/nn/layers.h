/// \file
/// Neural network modules used by CHEHAB RL: Linear/MLP blocks, the
/// 4-layer 8-head Transformer encoder that produces the 256-d program
/// embedding (§5.1; dimensions are configurable and default smaller for
/// single-core training), and the GRU encoder used by the architecture
/// ablation (Appendix I.1).
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "support/rng.h"

namespace chehab::nn {

/// Affine layer y = xW + b.
class Linear
{
  public:
    Linear() = default;
    Linear(int in_features, int out_features, Rng& rng);

    Tensor forward(const Tensor& x) const;
    void collectParams(std::vector<Tensor>& params) const;

    int inFeatures() const { return weight_.defined() ? weight_.rows() : 0; }
    int outFeatures() const { return weight_.defined() ? weight_.cols() : 0; }

  private:
    Tensor weight_;
    Tensor bias_;
};

/// Multi-layer perceptron with ReLU activations between layers (the rule
/// network 128-64, location network 64-64 and critic 256-128-64 of §5.4
/// are all instances).
class Mlp
{
  public:
    Mlp() = default;
    /// \p sizes is the full layer-width list, e.g. {256, 128, 64, 85}.
    Mlp(const std::vector<int>& sizes, Rng& rng);

    /// Forward pass; ReLU after every layer except the last.
    Tensor forward(const Tensor& x) const;
    void collectParams(std::vector<Tensor>& params) const;

  private:
    std::vector<Linear> layers_;
};

/// Configuration of the sequence encoders.
struct EncoderConfig
{
    int vocab_size = 0;
    int d_model = 64;    ///< Embedding width (paper: 256).
    int n_layers = 2;    ///< Transformer layers (paper: 4).
    int n_heads = 4;     ///< Attention heads (paper: 8).
    int d_ff = 128;      ///< Feed-forward width.
    int max_len = 96;    ///< Maximum token sequence length.
    int pad_id = 0;
};

/// Transformer encoder producing one fixed-length embedding per program
/// (the CLS row), with learned absolute positional embeddings and padding
/// masking.
class TransformerEncoder
{
  public:
    TransformerEncoder() = default;
    TransformerEncoder(const EncoderConfig& config, Rng& rng);

    /// Encode a padded id sequence; returns a 1 x d_model embedding (the
    /// CLS position after the final layer).
    Tensor encode(const std::vector<int>& ids) const;

    /// Contextual embeddings for all positions (used by the autoencoder
    /// experiment); rows = sequence length.
    Tensor encodeSequence(const std::vector<int>& ids) const;

    void collectParams(std::vector<Tensor>& params) const;
    const EncoderConfig& config() const { return config_; }

  private:
    struct Layer
    {
        Linear wq, wk, wv, wo;
        Tensor ln1_gain, ln1_bias;
        Linear ff1, ff2;
        Tensor ln2_gain, ln2_bias;
    };

    Tensor attention(const Layer& layer, const Tensor& x,
                     const std::vector<float>& key_mask) const;

    EncoderConfig config_;
    Tensor token_embedding_;
    Tensor position_embedding_;
    std::vector<Layer> layers_;
};

/// Single-layer GRU encoder (final hidden state as the program
/// embedding); the recurrent baseline of the Transformer-vs-GRU ablation.
class GruEncoder
{
  public:
    GruEncoder() = default;
    GruEncoder(const EncoderConfig& config, Rng& rng);

    /// Encode a padded id sequence; returns the 1 x d_model final hidden
    /// state (PAD steps are skipped).
    Tensor encode(const std::vector<int>& ids) const;

    void collectParams(std::vector<Tensor>& params) const;
    const EncoderConfig& config() const { return config_; }

  private:
    EncoderConfig config_;
    Tensor token_embedding_;
    Linear wz_, uz_, wr_, ur_, wh_, uh_;
};

} // namespace chehab::nn
