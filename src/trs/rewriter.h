/// \file
/// Rewrite engine utilities on top of the rule set: action enumeration
/// for the RL environment, and the greedy best-improvement optimizer that
/// implements the *original* (pre-RL) CHEHAB TRS used as a baseline in
/// Fig. 12.
///
/// Thread-safety: both functions are pure — no statics, no RNG, no
/// mutation of the ruleset or program — so any number of threads may
/// run them concurrently against one shared Ruleset. greedyOptimize is
/// deterministic (ties break on rule order, then match ordinal).
#pragma once

#include <vector>

#include "ir/cost_model.h"
#include "ir/expr.h"
#include "trs/ruleset.h"

namespace chehab::trs {

/// Per-rule applicability snapshot for the current program.
struct RuleMatches
{
    int rule_index = 0;
    std::vector<int> locations; ///< Pre-order indices of valid matches.
};

/// Enumerate, for every rule, the locations where it currently applies.
/// Rules with no matches are omitted. \p max_locations bounds the match
/// list per rule (the location head of the policy is fixed-width).
std::vector<RuleMatches> enumerateActions(const Ruleset& ruleset,
                                          const ir::ExprPtr& program,
                                          int max_locations = 16);

/// Result of an optimization run.
struct OptimizeResult
{
    ir::ExprPtr program;             ///< Final rewritten program.
    double initial_cost = 0.0;
    double final_cost = 0.0;
    int steps = 0;                   ///< Rewrites actually applied.
    std::vector<std::string> trace;  ///< Rule names in application order.
};

/// Greedy best-improvement TRS: at every step evaluates all applicable
/// (rule, location) pairs and applies the one with the largest strict
/// cost decrease; stops when no rewrite improves the cost or after
/// \p max_steps. This is deterministic and corresponds to the original
/// CHEHAB compiler's heuristic rule application.
OptimizeResult greedyOptimize(const Ruleset& ruleset,
                              const ir::ExprPtr& program,
                              const ir::CostWeights& weights = {},
                              const ir::OpCosts& costs = {},
                              int max_steps = 75,
                              int max_locations = 16);

} // namespace chehab::trs
