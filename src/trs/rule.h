/// \file
/// Rewrite rules and the location-indexed application interface the RL
/// agent uses (§5.2): a rule may match many sub-expressions, so the agent
/// selects a rule first, then the ordinal of the match to rewrite.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "trs/pattern.h"

namespace chehab::trs {

/// Classification used by ablations and docs.
enum class RuleKind : std::uint8_t {
    Vectorize,  ///< Packs scalar ops into vector ops.
    Simplify,   ///< Algebraic simplification (reduces ops/depth).
    Transform,  ///< Semantics-preserving reshaping (commutativity, ...).
    Rotation,   ///< Introduces or manipulates rotations.
    Balance,    ///< Tree balancing (reduces multiplicative depth).
};

/// One rewrite rule. Either pattern-based (LHS pattern + RHS template +
/// optional guard) or programmatic (an arbitrary function from subtree to
/// rewritten subtree), since several CHEHAB rules — balancing, rotation
/// reductions, non-isomorphic packing — are arity-generic and cannot be
/// expressed as a finite pattern.
class RewriteRule
{
  public:
    /// Guard over the match site and bindings; return false to veto.
    using Guard = std::function<bool(const Bindings&, const ir::ExprPtr&)>;

    /// Programmatic rewriter: return the replacement subtree or nullopt if
    /// the rule does not apply at this node.
    using Rewriter = std::function<std::optional<ir::ExprPtr>(
        const ir::ExprPtr&)>;

    /// Pattern-based rule from IR text, e.g.
    /// RewriteRule("comm-factor", "(+ (* ?a ?b) (* ?a ?c))",
    ///             "(* ?a (+ ?b ?c))", RuleKind::Simplify).
    RewriteRule(std::string name, const std::string& lhs_text,
                const std::string& rhs_text, RuleKind kind,
                Guard guard = nullptr);

    /// Programmatic rule.
    RewriteRule(std::string name, Rewriter rewriter, RuleKind kind,
                bool root_only = false);

    const std::string& name() const { return name_; }
    RuleKind kind() const { return kind_; }

    /// True if the rule may only fire at the root of the program (the
    /// widening reduction rules, which change the output vector width and
    /// would break the typing of any enclosing operator).
    bool rootOnly() const { return root_only_; }

    /// Attempt to rewrite exactly the given subtree (not its descendants).
    std::optional<ir::ExprPtr> applyToSubtree(const ir::ExprPtr& node) const;

    /// Pre-order indices of all nodes where the rule applies *and* the
    /// resulting whole program stays well typed. At most \p max_matches
    /// are returned (the location network has a fixed-width head).
    std::vector<int> findMatches(const ir::ExprPtr& root,
                                 int max_matches = 64) const;

    /// Rewrite the \p ordinal -th match (0-based, pre-order). Returns the
    /// new root, or nullptr if there are fewer matches.
    ir::ExprPtr applyAt(const ir::ExprPtr& root, int ordinal) const;

  private:
    std::string name_;
    RuleKind kind_;
    bool root_only_ = false;
    ir::ExprPtr lhs_;  ///< Pattern (null for programmatic rules).
    ir::ExprPtr rhs_;  ///< Template (null for programmatic rules).
    Guard guard_;
    Rewriter rewriter_;
};

} // namespace chehab::trs
