/// \file
/// The CHEHAB rule set: 84 rewrite rules spanning vectorization,
/// algebraic simplification, arithmetic transformation, circuit balancing
/// and rotation manipulation (§5.2, Appendix E). The rules were seeded
/// from Halide's TRS with FHE-incompatible rules (comparison, division,
/// modulo) removed, then extended with FHE-specific rules that reduce
/// operation count, rotations, circuit depth and multiplicative depth.
#pragma once

#include <string>
#include <vector>

#include "trs/rule.h"

namespace chehab::trs {

/// Immutable collection of rules with name lookup. Index order is the
/// action numbering used by the RL policy (the END action is appended by
/// the environment, not stored here).
class Ruleset
{
  public:
    explicit Ruleset(std::vector<RewriteRule> rules)
        : rules_(std::move(rules))
    {}

    std::size_t size() const { return rules_.size(); }
    const RewriteRule& operator[](std::size_t i) const { return rules_[i]; }
    const std::vector<RewriteRule>& rules() const { return rules_; }

    /// Index of the rule with the given name, or -1.
    int indexOf(const std::string& name) const;

  private:
    std::vector<RewriteRule> rules_;
};

/// Build the full CHEHAB RL rule set (84 rules).
Ruleset buildChehabRuleset();

} // namespace chehab::trs
