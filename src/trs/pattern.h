/// \file
/// Pattern language of the CHEHAB term rewriting system.
///
/// Patterns are ordinary IR expressions in which variables whose names
/// start with '?' are pattern variables:
///
///   * `?x`   — matches any subtree; repeated occurrences must bind to
///              structurally identical subtrees,
///   * `?p..` — matches only *plain* subtrees (no ciphertext variables),
///              used by plaintext-consolidation rules,
///   * `?k..` — matches only Const leaves (constant folding helpers).
///
/// Literal integers in a pattern (notably 0 and 1, which the ICI
/// tokenizer also keeps literal) match only constants of equal value.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "ir/expr.h"

namespace chehab::trs {

/// Binding of pattern-variable names to matched subtrees.
using Bindings = std::unordered_map<std::string, ir::ExprPtr>;

/// True if \p name denotes a pattern variable ("?...").
bool isPatternVar(const std::string& name);

/// Try to match \p pattern against \p subject, extending \p bindings.
/// Returns false (leaving bindings in an unspecified state) on mismatch.
bool matchPattern(const ir::ExprPtr& pattern, const ir::ExprPtr& subject,
                  Bindings& bindings);

/// Instantiate \p tmpl by substituting bound pattern variables.
/// Throws CompileError if the template references an unbound variable.
ir::ExprPtr substitute(const ir::ExprPtr& tmpl, const Bindings& bindings);

} // namespace chehab::trs
