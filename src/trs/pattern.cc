#include "trs/pattern.h"

#include "support/error.h"

namespace chehab::trs {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;

bool
isPatternVar(const std::string& name)
{
    return !name.empty() && name[0] == '?';
}

namespace {

/// Per-variable admissibility: ?p* requires plain subtrees, ?c* requires
/// constant leaves.
bool
admissible(const std::string& var_name, const ExprPtr& subject)
{
    if (var_name.size() >= 2) {
        if (var_name[1] == 'p') return subject->isPlain();
        if (var_name[1] == 'k') return subject->op() == Op::Const;
    }
    return true;
}

} // namespace

bool
matchPattern(const ExprPtr& pattern, const ExprPtr& subject,
             Bindings& bindings)
{
    if (pattern->op() == Op::Var && isPatternVar(pattern->name())) {
        if (!admissible(pattern->name(), subject)) return false;
        auto it = bindings.find(pattern->name());
        if (it != bindings.end()) return ir::equal(it->second, subject);
        bindings.emplace(pattern->name(), subject);
        return true;
    }
    if (pattern->op() != subject->op()) return false;
    if (pattern->arity() != subject->arity()) return false;
    switch (pattern->op()) {
      case Op::Var:
      case Op::PlainVar:
        if (pattern->name() != subject->name()) return false;
        break;
      case Op::Const:
        if (pattern->value() != subject->value()) return false;
        break;
      case Op::Rotate:
        if (pattern->step() != subject->step()) return false;
        break;
      default:
        break;
    }
    for (std::size_t i = 0; i < pattern->arity(); ++i) {
        if (!matchPattern(pattern->child(i), subject->child(i), bindings)) {
            return false;
        }
    }
    return true;
}

ir::ExprPtr
substitute(const ExprPtr& tmpl, const Bindings& bindings)
{
    if (tmpl->op() == Op::Var && isPatternVar(tmpl->name())) {
        auto it = bindings.find(tmpl->name());
        if (it == bindings.end()) {
            throw CompileError("unbound pattern variable '" + tmpl->name() +
                               "' in rewrite template");
        }
        return it->second;
    }
    if (tmpl->arity() == 0) return tmpl;
    std::vector<ExprPtr> kids;
    kids.reserve(tmpl->arity());
    for (const auto& child : tmpl->children()) {
        kids.push_back(substitute(child, bindings));
    }
    return ir::makeNode(tmpl->op(), std::move(kids), tmpl->name(),
                        tmpl->value(), tmpl->step());
}

} // namespace chehab::trs
