#include "trs/rule.h"

#include "ir/analysis.h"
#include "ir/parser.h"

namespace chehab::trs {

using ir::ExprPtr;

RewriteRule::RewriteRule(std::string name, const std::string& lhs_text,
                         const std::string& rhs_text, RuleKind kind,
                         Guard guard)
    : name_(std::move(name)),
      kind_(kind),
      lhs_(ir::parse(lhs_text)),
      rhs_(ir::parse(rhs_text)),
      guard_(std::move(guard))
{}

RewriteRule::RewriteRule(std::string name, Rewriter rewriter, RuleKind kind,
                         bool root_only)
    : name_(std::move(name)),
      kind_(kind),
      root_only_(root_only),
      rewriter_(std::move(rewriter))
{}

std::optional<ExprPtr>
RewriteRule::applyToSubtree(const ExprPtr& node) const
{
    if (rewriter_) return rewriter_(node);
    Bindings bindings;
    if (!matchPattern(lhs_, node, bindings)) return std::nullopt;
    if (guard_ && !guard_(bindings, node)) return std::nullopt;
    return substitute(rhs_, bindings);
}

std::vector<int>
RewriteRule::findMatches(const ExprPtr& root, int max_matches) const
{
    std::vector<int> matches;
    const int limit = root_only_ ? 1 : root->numNodes();
    for (int index = 0; index < limit; ++index) {
        if (static_cast<int>(matches.size()) >= max_matches) break;
        const ExprPtr node = ir::subtreeAt(root, index);
        auto rewritten = applyToSubtree(node);
        if (!rewritten) continue;
        // The rewrite must leave the whole program well typed; widening
        // rewrites inside an enclosing operator would not. Rewrites apply
        // DAG-style: every structurally identical occurrence changes.
        const ExprPtr candidate =
            index == 0 ? *rewritten
                       : ir::replaceAll(root, node, *rewritten);
        if (ir::wellTyped(candidate)) matches.push_back(index);
    }
    return matches;
}

ir::ExprPtr
RewriteRule::applyAt(const ExprPtr& root, int ordinal) const
{
    const std::vector<int> matches = findMatches(root, ordinal + 1);
    if (ordinal >= static_cast<int>(matches.size())) return nullptr;
    const int index = matches[ordinal];
    const ExprPtr node = ir::subtreeAt(root, index);
    auto rewritten = applyToSubtree(node);
    if (!rewritten) return nullptr;
    return index == 0 ? *rewritten
                      : ir::replaceAll(root, node, *rewritten);
}

} // namespace chehab::trs
