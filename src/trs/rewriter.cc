#include "trs/rewriter.h"

namespace chehab::trs {

using ir::ExprPtr;

std::vector<RuleMatches>
enumerateActions(const Ruleset& ruleset, const ExprPtr& program,
                 int max_locations)
{
    std::vector<RuleMatches> actions;
    for (std::size_t r = 0; r < ruleset.size(); ++r) {
        std::vector<int> locations =
            ruleset[r].findMatches(program, max_locations);
        if (!locations.empty()) {
            actions.push_back({static_cast<int>(r), std::move(locations)});
        }
    }
    return actions;
}

OptimizeResult
greedyOptimize(const Ruleset& ruleset, const ExprPtr& program,
               const ir::CostWeights& weights, const ir::OpCosts& costs,
               int max_steps, int max_locations)
{
    OptimizeResult result;
    result.program = program;
    result.initial_cost = ir::cost(program, weights, costs);

    double current_cost = result.initial_cost;
    for (int step = 0; step < max_steps; ++step) {
        ExprPtr best;
        double best_cost = current_cost;
        int best_rule = -1;
        for (std::size_t r = 0; r < ruleset.size(); ++r) {
            const std::vector<int> locations =
                ruleset[r].findMatches(result.program, max_locations);
            for (std::size_t ordinal = 0; ordinal < locations.size();
                 ++ordinal) {
                ExprPtr candidate =
                    ruleset[r].applyAt(result.program,
                                       static_cast<int>(ordinal));
                if (!candidate) continue;
                const double candidate_cost =
                    ir::cost(candidate, weights, costs);
                if (candidate_cost < best_cost) {
                    best_cost = candidate_cost;
                    best = std::move(candidate);
                    best_rule = static_cast<int>(r);
                }
            }
        }
        if (!best) break; // Local optimum: no strict improvement available.
        result.program = std::move(best);
        current_cost = best_cost;
        ++result.steps;
        result.trace.push_back(ruleset[static_cast<std::size_t>(best_rule)]
                                   .name());
    }
    result.final_cost = current_cost;
    return result;
}

} // namespace chehab::trs
