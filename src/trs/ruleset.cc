#include "trs/ruleset.h"

#include <algorithm>
#include <optional>

#include "ir/analysis.h"
#include "support/error.h"

namespace chehab::trs {

using ir::Expr;
using ir::ExprPtr;
using ir::Op;

namespace {

// ---------------------------------------------------------------------
// Shared helpers for programmatic rules.
// ---------------------------------------------------------------------

/// Flatten a chain of binary \p op nodes into its term list (in-order).
void
flattenChain(const ExprPtr& e, Op op, std::vector<ExprPtr>& terms)
{
    if (e->op() == op) {
        flattenChain(e->child(0), op, terms);
        flattenChain(e->child(1), op, terms);
    } else {
        terms.push_back(e);
    }
}

/// Smallest power of two >= n.
int
ceilPow2(int n)
{
    int p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Build a balanced binary tree of \p op over \p terms.
ExprPtr
buildBalanced(Op op, const std::vector<ExprPtr>& terms, int lo, int hi)
{
    if (hi - lo == 1) return terms[lo];
    const int mid = lo + (hi - lo) / 2;
    return ir::makeNode(op,
                        {buildBalanced(op, terms, lo, mid),
                         buildBalanced(op, terms, mid, hi)},
                        {}, 0, 0);
}

/// Log-step rotate-and-add reduction: returns a vector whose slot
/// i < stride holds the sum over j of V[i + j*stride]. Requires the width
/// of \p v to be stride * 2^k.
ExprPtr
rotateReduce(ExprPtr v, int width, int stride, Op op = Op::VecAdd)
{
    for (int d = width / 2; d >= stride; d /= 2) {
        v = ir::makeNode(op, {v, ir::rotate(v, d)}, {}, 0, 0);
    }
    return v;
}

/// Scalar product reduction (root only): an all-multiply chain with >= 4
/// factors becomes a packed vector plus a log-depth rotate-and-multiply
/// ladder (same multiplicative depth as a balanced tree, one wide
/// VecMul per level instead of a level of scalar multiplies).
std::optional<ExprPtr>
reduceProduct(const ExprPtr& e)
{
    if (e->op() != Op::Mul) return std::nullopt;
    std::vector<ExprPtr> factors;
    flattenChain(e, Op::Mul, factors);
    if (factors.size() < 4) return std::nullopt;
    for (const auto& factor : factors) {
        if (factor->op() == Op::Vec || ir::isVectorOp(factor->op()) ||
            factor->op() == Op::Rotate) {
            return std::nullopt;
        }
    }
    int width = 1;
    while (width < static_cast<int>(factors.size())) width <<= 1;
    while (static_cast<int>(factors.size()) < width) {
        factors.push_back(ir::constant(1));
    }
    return rotateReduce(ir::vec(std::move(factors)), width, 1, Op::VecMul);
}

/// True for leaves that the client can pack for free before encryption
/// (§7.3 input layout transformation).
bool
isPackableLeaf(const ExprPtr& e)
{
    return e->op() == Op::Var || e->op() == Op::PlainVar ||
           e->op() == Op::Const;
}

bool
allChildrenLeaves(const ExprPtr& e)
{
    return std::all_of(e->children().begin(), e->children().end(),
                       [](const ExprPtr& c) { return isPackableLeaf(c); });
}

/// Key for leaf ordering used by the canonical-rotation rule.
std::string
leafKey(const ExprPtr& e)
{
    switch (e->op()) {
      case Op::Var: return "v:" + e->name();
      case Op::PlainVar: return "p:" + e->name();
      default: return "c:" + std::to_string(e->value());
    }
}

// ---------------------------------------------------------------------
// Programmatic rewriters.
// ---------------------------------------------------------------------

/// Constant folding for scalar arithmetic over literal operands.
std::optional<ExprPtr>
constFold(const ExprPtr& e)
{
    if (!ir::isScalarOp(e->op())) return std::nullopt;
    for (const auto& child : e->children()) {
        if (child->op() != Op::Const) return std::nullopt;
    }
    std::int64_t result = 0;
    switch (e->op()) {
      case Op::Add: result = e->child(0)->value() + e->child(1)->value(); break;
      case Op::Sub: result = e->child(0)->value() - e->child(1)->value(); break;
      case Op::Mul: result = e->child(0)->value() * e->child(1)->value(); break;
      case Op::Neg: result = -e->child(0)->value(); break;
      default: return std::nullopt;
    }
    return ir::constant(result);
}

/// Generic non-isomorphic packing (Appendix E): vectorize every child of
/// a Vec with top-level operation \p op, moving non-matching children into
/// the first operand and padding the second with the identity element.
std::optional<ExprPtr>
packBinary(const ExprPtr& e, Op op, Op vec_op, std::int64_t identity)
{
    if (e->op() != Op::Vec) return std::nullopt;
    int matching = 0;
    for (const auto& child : e->children()) {
        if (child->op() == op) ++matching;
    }
    if (matching < 2) return std::nullopt;
    std::vector<ExprPtr> lhs;
    std::vector<ExprPtr> rhs;
    lhs.reserve(e->arity());
    rhs.reserve(e->arity());
    for (const auto& child : e->children()) {
        if (child->op() == op) {
            lhs.push_back(child->child(0));
            rhs.push_back(child->child(1));
        } else {
            lhs.push_back(child);
            rhs.push_back(ir::constant(identity));
        }
    }
    return ir::makeNode(vec_op, {ir::vec(std::move(lhs)),
                                 ir::vec(std::move(rhs))}, {}, 0, 0);
}

/// Packing for unary negation: all-Neg vectors become VecNeg, mixed
/// vectors multiply by a ±1 plaintext mask.
std::optional<ExprPtr>
packNeg(const ExprPtr& e)
{
    if (e->op() != Op::Vec) return std::nullopt;
    int matching = 0;
    for (const auto& child : e->children()) {
        if (child->op() == Op::Neg) ++matching;
    }
    if (matching < 2) return std::nullopt;
    if (matching == static_cast<int>(e->arity())) {
        std::vector<ExprPtr> inner;
        inner.reserve(e->arity());
        for (const auto& child : e->children()) {
            inner.push_back(child->child(0));
        }
        return ir::vecNeg(ir::vec(std::move(inner)));
    }
    std::vector<ExprPtr> stripped;
    std::vector<ExprPtr> mask;
    for (const auto& child : e->children()) {
        if (child->op() == Op::Neg) {
            stripped.push_back(child->child(0));
            mask.push_back(ir::constant(-1));
        } else {
            stripped.push_back(child);
            mask.push_back(ir::constant(1));
        }
    }
    return ir::vecMul(ir::vec(std::move(stripped)), ir::vec(std::move(mask)));
}

/// (<< (<< v s1) s2) => (<< v s1+s2).
std::optional<ExprPtr>
rotateCompose(const ExprPtr& e)
{
    if (e->op() != Op::Rotate || e->child(0)->op() != Op::Rotate) {
        return std::nullopt;
    }
    return ir::rotate(e->child(0)->child(0), e->step() + e->child(0)->step());
}

/// (<< v 0) => v.
std::optional<ExprPtr>
rotateZero(const ExprPtr& e)
{
    if (e->op() != Op::Rotate || e->step() != 0) return std::nullopt;
    return e->child(0);
}

/// (<< (VecOp a b) s) => (VecOp (<< a s) (<< b s)).
std::optional<ExprPtr>
rotateDistribute(const ExprPtr& e, Op vec_op)
{
    if (e->op() != Op::Rotate || e->child(0)->op() != vec_op) {
        return std::nullopt;
    }
    const ExprPtr& inner = e->child(0);
    return ir::makeNode(vec_op,
                        {ir::rotate(inner->child(0), e->step()),
                         ir::rotate(inner->child(1), e->step())},
                        {}, 0, 0);
}

/// (VecOp (<< a s) (<< b s)) => (<< (VecOp a b) s).
std::optional<ExprPtr>
rotateHoist(const ExprPtr& e, Op vec_op)
{
    if (e->op() != vec_op) return std::nullopt;
    const ExprPtr& a = e->child(0);
    const ExprPtr& b = e->child(1);
    if (a->op() != Op::Rotate || b->op() != Op::Rotate ||
        a->step() != b->step()) {
        return std::nullopt;
    }
    return ir::rotate(
        ir::makeNode(vec_op, {a->child(0), b->child(0)}, {}, 0, 0),
        a->step());
}

/// (<< (Vec leaves...) s) => (Vec permuted-leaves...): a rotation of a
/// freshly packed input vector is a free client-side relayout.
std::optional<ExprPtr>
rotateOfVec(const ExprPtr& e)
{
    if (e->op() != Op::Rotate || e->child(0)->op() != Op::Vec) {
        return std::nullopt;
    }
    const ExprPtr& v = e->child(0);
    if (!allChildrenLeaves(v)) return std::nullopt;
    const int n = static_cast<int>(v->arity());
    const int step = ((e->step() % n) + n) % n;
    if (step == 0) return v;
    std::vector<ExprPtr> permuted;
    permuted.reserve(v->arity());
    for (int i = 0; i < n; ++i) permuted.push_back(v->child((i + step) % n));
    return ir::vec(std::move(permuted));
}

/// Rewrite a leaf-packed Vec as a rotation of its lexicographically
/// minimal cyclic order, exposing shareable packings to CSE.
std::optional<ExprPtr>
vecCanonicalRotation(const ExprPtr& e)
{
    if (e->op() != Op::Vec || e->arity() < 2 || !allChildrenLeaves(e)) {
        return std::nullopt;
    }
    const int n = static_cast<int>(e->arity());
    std::vector<std::string> keys;
    keys.reserve(n);
    for (const auto& child : e->children()) keys.push_back(leafKey(child));

    int best = 0;
    for (int r = 1; r < n; ++r) {
        for (int i = 0; i < n; ++i) {
            const std::string& a = keys[(i + r) % n];
            const std::string& b = keys[(i + best) % n];
            if (a != b) {
                if (a < b) best = r;
                break;
            }
        }
    }
    if (best == 0) return std::nullopt;
    std::vector<ExprPtr> canonical;
    canonical.reserve(n);
    for (int i = 0; i < n; ++i) canonical.push_back(e->child((i + best) % n));
    return ir::rotate(ir::vec(std::move(canonical)), -best);
}

/// Scalar reduction (root only): an all-add tree with >= 4 terms becomes
/// a packed vector plus a log-depth rotate-and-add ladder; the result
/// lives in slot 0.
std::optional<ExprPtr>
reduceSum(const ExprPtr& e)
{
    if (e->op() != Op::Add) return std::nullopt;
    std::vector<ExprPtr> terms;
    flattenChain(e, Op::Add, terms);
    if (terms.size() < 4) return std::nullopt;
    for (const auto& term : terms) {
        // Terms must be scalar-typed; a vector operand cannot appear under
        // a scalar Add, so only check they are not themselves vectors.
        if (term->op() == Op::Vec || ir::isVectorOp(term->op()) ||
            term->op() == Op::Rotate) {
            return std::nullopt;
        }
    }
    const int width = ceilPow2(static_cast<int>(terms.size()));
    while (static_cast<int>(terms.size()) < width) {
        terms.push_back(ir::constant(0));
    }
    return rotateReduce(ir::vec(std::move(terms)), width, 1);
}

/// Scalar sum-of-products reduction (root only): Σ aᵢ·bᵢ becomes
/// VecMul of two packed operand vectors plus a rotate-and-add ladder.
std::optional<ExprPtr>
reduceSumOfProducts(const ExprPtr& e)
{
    if (e->op() != Op::Add) return std::nullopt;
    std::vector<ExprPtr> terms;
    flattenChain(e, Op::Add, terms);
    if (terms.size() < 2) return std::nullopt;
    std::vector<ExprPtr> lhs;
    std::vector<ExprPtr> rhs;
    for (const auto& term : terms) {
        if (term->op() != Op::Mul) return std::nullopt;
        lhs.push_back(term->child(0));
        rhs.push_back(term->child(1));
    }
    const int width = ceilPow2(static_cast<int>(terms.size()));
    while (static_cast<int>(lhs.size()) < width) {
        lhs.push_back(ir::constant(0));
        rhs.push_back(ir::constant(1));
    }
    ExprPtr v = ir::vecMul(ir::vec(std::move(lhs)), ir::vec(std::move(rhs)));
    return rotateReduce(std::move(v), width, 1);
}

/// Vector-of-reductions (root only; the Appendix E composite rule):
/// (Vec Σⱼ a₀ⱼ·b₀ⱼ ... Σⱼ a_{w-1}j·b_{w-1}j) packs all products
/// interleaved by output slot and reduces with stride-w rotations, leaving
/// output i in slot i.
std::optional<ExprPtr>
vecReduceSumOfProducts(const ExprPtr& e)
{
    if (e->op() != Op::Vec || e->arity() < 2) return std::nullopt;
    const int w = static_cast<int>(e->arity());
    std::vector<std::vector<ExprPtr>> terms(w);
    int max_terms = 0;
    for (int i = 0; i < w; ++i) {
        flattenChain(e->child(i), Op::Add, terms[i]);
        for (const auto& term : terms[i]) {
            if (term->op() != Op::Mul) return std::nullopt;
        }
        max_terms = std::max(max_terms, static_cast<int>(terms[i].size()));
    }
    if (max_terms < 2) return std::nullopt;
    const int k = ceilPow2(max_terms);
    std::vector<ExprPtr> lhs(static_cast<std::size_t>(k) * w);
    std::vector<ExprPtr> rhs(static_cast<std::size_t>(k) * w);
    for (int i = 0; i < w; ++i) {
        for (int j = 0; j < k; ++j) {
            if (j < static_cast<int>(terms[i].size())) {
                lhs[static_cast<std::size_t>(j) * w + i] =
                    terms[i][j]->child(0);
                rhs[static_cast<std::size_t>(j) * w + i] =
                    terms[i][j]->child(1);
            } else {
                lhs[static_cast<std::size_t>(j) * w + i] = ir::constant(0);
                rhs[static_cast<std::size_t>(j) * w + i] = ir::constant(1);
            }
        }
    }
    ExprPtr v = ir::vecMul(ir::vec(std::move(lhs)), ir::vec(std::move(rhs)));
    return rotateReduce(std::move(v), k * w, w);
}

/// Vector-of-sums (root only): like vecReduceSumOfProducts but with
/// arbitrary scalar terms (no product requirement); packs terms directly.
std::optional<ExprPtr>
vecReduceSum(const ExprPtr& e)
{
    if (e->op() != Op::Vec || e->arity() < 2) return std::nullopt;
    const int w = static_cast<int>(e->arity());
    std::vector<std::vector<ExprPtr>> terms(w);
    int max_terms = 0;
    for (int i = 0; i < w; ++i) {
        flattenChain(e->child(i), Op::Add, terms[i]);
        max_terms = std::max(max_terms, static_cast<int>(terms[i].size()));
    }
    if (max_terms < 2) return std::nullopt;
    const int k = ceilPow2(max_terms);
    std::vector<ExprPtr> slots(static_cast<std::size_t>(k) * w);
    for (int i = 0; i < w; ++i) {
        for (int j = 0; j < k; ++j) {
            slots[static_cast<std::size_t>(j) * w + i] =
                j < static_cast<int>(terms[i].size()) ? terms[i][j]
                                                      : ir::constant(0);
        }
    }
    return rotateReduce(ir::vec(std::move(slots)), k * w, w);
}

/// Rebalance a chain of \p op into a minimal-depth tree; fires only when
/// the depth strictly improves.
std::optional<ExprPtr>
balanceChain(const ExprPtr& e, Op op)
{
    if (e->op() != op) return std::nullopt;
    std::vector<ExprPtr> terms;
    flattenChain(e, op, terms);
    if (terms.size() < 3) return std::nullopt;
    ExprPtr balanced = buildBalanced(op, terms, 0,
                                     static_cast<int>(terms.size()));
    if (balanced->height() >= e->height()) return std::nullopt;
    return balanced;
}

/// (VecOp (Vec a...) (Vec b...)) => (Vec (op a b)...): devectorization,
/// the inverse of the packing rules. Occasionally needed to escape a poor
/// earlier packing decision.
std::optional<ExprPtr>
devectorize(const ExprPtr& e, Op vec_op, Op scalar_op)
{
    if (e->op() != vec_op) return std::nullopt;
    const ExprPtr& a = e->child(0);
    const ExprPtr& b = e->child(1);
    if (a->op() != Op::Vec || b->op() != Op::Vec || a->arity() != b->arity()) {
        return std::nullopt;
    }
    std::vector<ExprPtr> slots;
    slots.reserve(a->arity());
    for (std::size_t i = 0; i < a->arity(); ++i) {
        slots.push_back(
            ir::makeNode(scalar_op, {a->child(i), b->child(i)}, {}, 0, 0));
    }
    return ir::vec(std::move(slots));
}

/// (VecMul v (Vec 1 1 ... 1)) => v, and the symmetric case.
std::optional<ExprPtr>
vecMulIdentity(const ExprPtr& e)
{
    if (e->op() != Op::VecMul) return std::nullopt;
    auto all_ones = [](const ExprPtr& v) {
        if (v->op() != Op::Vec) return false;
        return std::all_of(v->children().begin(), v->children().end(),
                           [](const ExprPtr& c) {
                               return c->op() == Op::Const && c->value() == 1;
                           });
    };
    if (all_ones(e->child(1))) return e->child(0);
    if (all_ones(e->child(0))) return e->child(1);
    return std::nullopt;
}

/// (VecAdd v (Vec 0 0 ... 0)) => v, and the symmetric case.
std::optional<ExprPtr>
vecAddIdentity(const ExprPtr& e)
{
    if (e->op() != Op::VecAdd) return std::nullopt;
    auto all_zeros = [](const ExprPtr& v) {
        if (v->op() != Op::Vec) return false;
        return std::all_of(v->children().begin(), v->children().end(),
                           [](const ExprPtr& c) {
                               return c->op() == Op::Const && c->value() == 0;
                           });
    };
    if (all_zeros(e->child(1))) return e->child(0);
    if (all_zeros(e->child(0))) return e->child(1);
    return std::nullopt;
}

/// Guard: the bound subtree must contain a ciphertext (used to stop the
/// plaintext-consolidation rules from spinning on all-plain expressions).
bool
bindingNotPlain(const Bindings& bindings, const std::string& var)
{
    auto it = bindings.find(var);
    return it != bindings.end() && !it->second->isPlain();
}

/// Generate the isomorphic vectorization patterns for a binary scalar op
/// at a fixed width, e.g. width 2 addition:
///   (Vec (+ ?a0 ?b0) (+ ?a1 ?b1))
///     => (VecAdd (Vec ?a0 ?a1) (Vec ?b0 ?b1))
RewriteRule
makeIsoVectorizeRule(const std::string& op_name, const std::string& op_tok,
                     const std::string& vec_tok, int width)
{
    std::string lhs = "(Vec";
    std::string lhs_pack = "(Vec";
    std::string rhs_pack = "(Vec";
    for (int i = 0; i < width; ++i) {
        const std::string ai = " ?a" + std::to_string(i);
        const std::string bi = " ?b" + std::to_string(i);
        lhs += " (" + op_tok + ai + bi + ")";
        lhs_pack += ai;
        rhs_pack += bi;
    }
    lhs += ")";
    lhs_pack += ")";
    rhs_pack += ")";
    const std::string rhs = "(" + vec_tok + " " + lhs_pack + " " +
                            rhs_pack + ")";
    return {op_name + "-vectorize-" + std::to_string(width), lhs, rhs,
            RuleKind::Vectorize};
}

/// Isomorphic vectorization for unary negation at a fixed width.
RewriteRule
makeNegVectorizeRule(int width)
{
    std::string lhs = "(Vec";
    std::string pack = "(Vec";
    for (int i = 0; i < width; ++i) {
        lhs += " (- ?a" + std::to_string(i) + ")";
        pack += " ?a" + std::to_string(i);
    }
    lhs += ")";
    pack += ")";
    return {"neg-vectorize-" + std::to_string(width), lhs,
            "(VecNeg " + pack + ")", RuleKind::Vectorize};
}

} // namespace

int
Ruleset::indexOf(const std::string& name) const
{
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (rules_[i].name() == name) return static_cast<int>(i);
    }
    return -1;
}

Ruleset
buildChehabRuleset()
{
    std::vector<RewriteRule> rules;
    rules.reserve(90);

    // --- Scalar arithmetic transformations (enable later simplification).
    rules.emplace_back("add-comm", "(+ ?a ?b)", "(+ ?b ?a)",
                       RuleKind::Transform);
    rules.emplace_back("mul-comm", "(* ?a ?b)", "(* ?b ?a)",
                       RuleKind::Transform);
    rules.emplace_back("add-assoc-lr", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))",
                       RuleKind::Transform);
    rules.emplace_back("add-assoc-rl", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)",
                       RuleKind::Transform);
    rules.emplace_back("mul-assoc-lr", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))",
                       RuleKind::Transform);
    rules.emplace_back("mul-assoc-rl", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)",
                       RuleKind::Transform);
    rules.emplace_back("distribute-l", "(* ?a (+ ?b ?c))",
                       "(+ (* ?a ?b) (* ?a ?c))", RuleKind::Transform);
    rules.emplace_back("distribute-r", "(* (+ ?a ?b) ?c)",
                       "(+ (* ?a ?c) (* ?b ?c))", RuleKind::Transform);
    rules.emplace_back("sub-to-addneg", "(- ?a ?b)", "(+ ?a (- ?b))",
                       RuleKind::Transform);
    rules.emplace_back("addneg-to-sub", "(+ ?a (- ?b))", "(- ?a ?b)",
                       RuleKind::Transform);
    rules.emplace_back("neg-mul-l", "(* (- ?a) ?b)", "(- (* ?a ?b))",
                       RuleKind::Transform);
    rules.emplace_back("neg-mul-r", "(* ?a (- ?b))", "(- (* ?a ?b))",
                       RuleKind::Transform);
    rules.emplace_back("neg-distribute-add", "(- (+ ?a ?b))",
                       "(+ (- ?a) (- ?b))", RuleKind::Transform);
    rules.emplace_back("neg-collect-add", "(+ (- ?a) (- ?b))",
                       "(- (+ ?a ?b))", RuleKind::Transform);

    // --- Scalar factorization / simplification.
    rules.emplace_back("comm-factor-ll", "(+ (* ?a ?b) (* ?a ?c))",
                       "(* ?a (+ ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("comm-factor-rr", "(+ (* ?b ?a) (* ?c ?a))",
                       "(* (+ ?b ?c) ?a)", RuleKind::Simplify);
    rules.emplace_back("comm-factor-lr", "(+ (* ?a ?b) (* ?c ?a))",
                       "(* ?a (+ ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("comm-factor-rl", "(+ (* ?b ?a) (* ?a ?c))",
                       "(* ?a (+ ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("sub-factor", "(- (* ?a ?b) (* ?a ?c))",
                       "(* ?a (- ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("add-identity-r", "(+ ?a 0)", "?a",
                       RuleKind::Simplify);
    rules.emplace_back("add-identity-l", "(+ 0 ?a)", "?a",
                       RuleKind::Simplify);
    rules.emplace_back("sub-zero", "(- ?a 0)", "?a", RuleKind::Simplify);
    rules.emplace_back("sub-from-zero", "(- 0 ?a)", "(- ?a)",
                       RuleKind::Simplify);
    rules.emplace_back("mul-identity-r", "(* ?a 1)", "?a",
                       RuleKind::Simplify);
    rules.emplace_back("mul-identity-l", "(* 1 ?a)", "?a",
                       RuleKind::Simplify);
    rules.emplace_back("mul-zero-r", "(* ?a 0)", "0", RuleKind::Simplify);
    rules.emplace_back("mul-zero-l", "(* 0 ?a)", "0", RuleKind::Simplify);
    rules.emplace_back("sub-self", "(- ?a ?a)", "0", RuleKind::Simplify);
    rules.emplace_back("neg-neg", "(- (- ?a))", "?a", RuleKind::Simplify);
    rules.emplace_back("add-self-to-mul2", "(+ ?a ?a)", "(* 2 ?a)",
                       RuleKind::Simplify);
    rules.emplace_back(
        "pt-consolidate-mul", "(* ?pa (* ?pb ?x))", "(* (* ?pa ?pb) ?x)",
        RuleKind::Simplify,
        [](const Bindings& b, const ir::ExprPtr&) {
            return bindingNotPlain(b, "?x");
        });
    rules.emplace_back(
        "pt-consolidate-add", "(+ ?pa (+ ?pb ?x))", "(+ (+ ?pa ?pb) ?x)",
        RuleKind::Simplify,
        [](const Bindings& b, const ir::ExprPtr&) {
            return bindingNotPlain(b, "?x");
        });
    rules.emplace_back("const-fold", constFold, RuleKind::Simplify);

    // --- Vector-level transformations and simplifications.
    rules.emplace_back("vecadd-comm", "(VecAdd ?a ?b)", "(VecAdd ?b ?a)",
                       RuleKind::Transform);
    rules.emplace_back("vecmul-comm", "(VecMul ?a ?b)", "(VecMul ?b ?a)",
                       RuleKind::Transform);
    rules.emplace_back("vecadd-assoc-lr", "(VecAdd (VecAdd ?a ?b) ?c)",
                       "(VecAdd ?a (VecAdd ?b ?c))", RuleKind::Transform);
    rules.emplace_back("vecadd-assoc-rl", "(VecAdd ?a (VecAdd ?b ?c))",
                       "(VecAdd (VecAdd ?a ?b) ?c)", RuleKind::Transform);
    rules.emplace_back("vecmul-assoc-lr", "(VecMul (VecMul ?a ?b) ?c)",
                       "(VecMul ?a (VecMul ?b ?c))", RuleKind::Transform);
    rules.emplace_back("vecmul-assoc-rl", "(VecMul ?a (VecMul ?b ?c))",
                       "(VecMul (VecMul ?a ?b) ?c)", RuleKind::Transform);
    rules.emplace_back("vec-distribute", "(VecMul ?a (VecAdd ?b ?c))",
                       "(VecAdd (VecMul ?a ?b) (VecMul ?a ?c))",
                       RuleKind::Transform);
    rules.emplace_back("vec-factor-ll", "(VecAdd (VecMul ?a ?b) (VecMul ?a ?c))",
                       "(VecMul ?a (VecAdd ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("vec-factor-rr", "(VecAdd (VecMul ?b ?a) (VecMul ?c ?a))",
                       "(VecMul (VecAdd ?b ?c) ?a)", RuleKind::Simplify);
    rules.emplace_back("vec-factor-lr", "(VecAdd (VecMul ?a ?b) (VecMul ?c ?a))",
                       "(VecMul ?a (VecAdd ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("vec-factor-rl", "(VecAdd (VecMul ?b ?a) (VecMul ?a ?c))",
                       "(VecMul ?a (VecAdd ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("vec-sub-factor",
                       "(VecSub (VecMul ?a ?b) (VecMul ?a ?c))",
                       "(VecMul ?a (VecSub ?b ?c))", RuleKind::Simplify);
    rules.emplace_back("vecneg-neg", "(VecNeg (VecNeg ?a))", "?a",
                       RuleKind::Simplify);
    rules.emplace_back("vec-sub-to-addneg", "(VecSub ?a ?b)",
                       "(VecAdd ?a (VecNeg ?b))", RuleKind::Transform);
    rules.emplace_back("vec-addneg-to-sub", "(VecAdd ?a (VecNeg ?b))",
                       "(VecSub ?a ?b)", RuleKind::Transform);
    rules.emplace_back("vecmul-identity", vecMulIdentity, RuleKind::Simplify);
    rules.emplace_back("vecadd-identity", vecAddIdentity, RuleKind::Simplify);

    // --- Isomorphic vectorization patterns (widths 2..4).
    for (int w = 2; w <= 4; ++w) {
        rules.push_back(makeIsoVectorizeRule("add", "+", "VecAdd", w));
    }
    for (int w = 2; w <= 4; ++w) {
        rules.push_back(makeIsoVectorizeRule("mul", "*", "VecMul", w));
    }
    for (int w = 2; w <= 4; ++w) {
        rules.push_back(makeIsoVectorizeRule("sub", "-", "VecSub", w));
    }
    rules.push_back(makeNegVectorizeRule(2));
    rules.push_back(makeNegVectorizeRule(3));

    // --- Non-isomorphic packing (identity padding).
    rules.emplace_back(
        "pack-add",
        [](const ExprPtr& e) { return packBinary(e, Op::Add, Op::VecAdd, 0); },
        RuleKind::Vectorize);
    rules.emplace_back(
        "pack-sub",
        [](const ExprPtr& e) { return packBinary(e, Op::Sub, Op::VecSub, 0); },
        RuleKind::Vectorize);
    rules.emplace_back(
        "pack-mul",
        [](const ExprPtr& e) { return packBinary(e, Op::Mul, Op::VecMul, 1); },
        RuleKind::Vectorize);
    rules.emplace_back("pack-neg", packNeg, RuleKind::Vectorize);

    // --- Rotation manipulation.
    rules.emplace_back("rotate-compose", rotateCompose, RuleKind::Rotation);
    rules.emplace_back("rotate-zero", rotateZero, RuleKind::Rotation);
    rules.emplace_back(
        "rotate-distribute-add",
        [](const ExprPtr& e) { return rotateDistribute(e, Op::VecAdd); },
        RuleKind::Rotation);
    rules.emplace_back(
        "rotate-hoist-add",
        [](const ExprPtr& e) { return rotateHoist(e, Op::VecAdd); },
        RuleKind::Rotation);
    rules.emplace_back(
        "rotate-distribute-mul",
        [](const ExprPtr& e) { return rotateDistribute(e, Op::VecMul); },
        RuleKind::Rotation);
    rules.emplace_back(
        "rotate-hoist-mul",
        [](const ExprPtr& e) { return rotateHoist(e, Op::VecMul); },
        RuleKind::Rotation);
    rules.emplace_back("rotate-of-vec", rotateOfVec, RuleKind::Rotation);
    rules.emplace_back("vec-canonical-rotation", vecCanonicalRotation,
                       RuleKind::Rotation);

    // --- Rotation-based reductions (root only: they widen the output).
    rules.emplace_back("reduce-sum", reduceSum, RuleKind::Rotation,
                       /*root_only=*/true);
    rules.emplace_back("reduce-product", reduceProduct, RuleKind::Rotation,
                       /*root_only=*/true);
    rules.emplace_back("reduce-sum-of-products", reduceSumOfProducts,
                       RuleKind::Rotation, /*root_only=*/true);
    rules.emplace_back("vec-reduce-sum", vecReduceSum, RuleKind::Rotation,
                       /*root_only=*/true);
    rules.emplace_back("vec-reduce-sum-of-products", vecReduceSumOfProducts,
                       RuleKind::Rotation, /*root_only=*/true);

    // --- Circuit balancing (reduces depth / multiplicative depth).
    rules.emplace_back(
        "balance-add",
        [](const ExprPtr& e) { return balanceChain(e, Op::Add); },
        RuleKind::Balance);
    rules.emplace_back(
        "balance-mul",
        [](const ExprPtr& e) { return balanceChain(e, Op::Mul); },
        RuleKind::Balance);
    rules.emplace_back(
        "balance-vecadd",
        [](const ExprPtr& e) { return balanceChain(e, Op::VecAdd); },
        RuleKind::Balance);
    rules.emplace_back(
        "balance-vecmul",
        [](const ExprPtr& e) { return balanceChain(e, Op::VecMul); },
        RuleKind::Balance);

    // --- Devectorization (escape hatch).
    rules.emplace_back(
        "devectorize-add",
        [](const ExprPtr& e) { return devectorize(e, Op::VecAdd, Op::Add); },
        RuleKind::Transform);
    rules.emplace_back(
        "devectorize-mul",
        [](const ExprPtr& e) { return devectorize(e, Op::VecMul, Op::Mul); },
        RuleKind::Transform);

    return Ruleset(std::move(rules));
}

} // namespace chehab::trs
