/// \file
/// Error-reporting helpers shared across the compiler.
///
/// Following the gem5 fatal()/panic() split: CompileError is a user-facing
/// condition (bad DSL program, unparsable IR); internal invariant violations
/// use CHEHAB_ASSERT which aborts with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace chehab {

/// Thrown for conditions that are the *user's* fault: malformed IR text,
/// invalid DSL programs, out-of-range parameters.
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/// Internal invariant check; prints location and aborts. Used for
/// "should never happen regardless of input" conditions.
#define CHEHAB_ASSERT(cond, msg)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::fprintf(stderr, "CHEHAB internal error at %s:%d: %s\n",     \
                         __FILE__, __LINE__, msg);                           \
            std::abort();                                                    \
        }                                                                    \
    } while (0)

} // namespace chehab
