/// \file
/// Request-lifecycle tracing + latency histograms: the telemetry layer
/// every scheduling subsystem (dispatch, packing, execution) reports
/// through.
///
/// Two primitives, both compiled in unconditionally and gated at run
/// time by one atomic flag (a disabled recorder costs one relaxed load
/// per call site):
///
///   - LatencyHistogram — a fixed-layout log-bucketed histogram of
///     seconds: 4 buckets per octave from 1 us to ~67 s plus underflow
///     and overflow buckets. The layout is identical for every
///     instance, so histograms merge by bucket-wise addition (shard
///     merging, cross-process aggregation). Percentiles are
///     nearest-rank over the bucket counts: the returned value is the
///     geometric midpoint of the bucket holding the rank, so it always
///     lands in the same bucket as the exact sorted-reference
///     percentile (the guarantee the tests pin down). Exact min/max/
///     sum/count ride alongside the buckets.
///
///   - TraceRecorder — a mutex-sharded recorder of lifecycle spans and
///     instant events plus one LatencyHistogram per Phase. Threads hash
///     onto kShards independent shards (each its own mutex + buffers),
///     so concurrent workers never contend on one lock and the whole
///     recorder is TSan-clean. Spans carry a static name, a track id
///     (worker index, or the client/flusher pseudo-tracks), monotonic
///     start/end nanoseconds against the recorder's epoch, an optional
///     request id for cross-track correlation, and up to three numeric
///     key/value args (predicted vs. measured seconds, lane counts...).
///     Span buffers are capped per shard; overflow increments a dropped
///     counter instead of growing without bound.
///
/// Exporters: writeChromeTrace() emits Chrome trace-event JSON
/// (chrome://tracing / Perfetto loadable — "X" complete events nested
/// by enclosure, one named track per worker thread, "i" instants for
/// point events); snapshot() returns the merged histograms for
/// ServiceStats / CSV / JSON reporting.
///
/// Determinism contract: telemetry only reads clocks and appends to
/// its own buffers — enabling it never changes scheduling decisions or
/// outputs (the service test asserts bit-identical outputs with
/// tracing on vs. off).
///
/// Thread-safety: every member function may be called concurrently
/// from any thread. Span/instant names must be string literals (or
/// otherwise outlive the recorder): events store the pointer, not a
/// copy — that keeps the record path allocation-free.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

namespace chehab::telemetry {

/// Lifecycle phases with a latency histogram each. Kept in lockstep
/// with phaseName().
enum class Phase : int {
    Enqueue = 0, ///< submit()/submitRun() admission work (client side).
    QueueWait,   ///< Pool enqueue -> task start on a worker.
    Compile,     ///< Owner compile wall time.
    Execute,     ///< Owner execution wall time (whole row: setup +
                 ///< evaluate + decode).
    Setup,       ///< Galois keygen + packing + encoding + encryption.
    Evaluate,    ///< Server-side homomorphic evaluation.
    Decode,      ///< Decryption + decoding + per-lane scatter.
    WindowWait,  ///< Coalescer arrival -> group flush dispatch.
};
inline constexpr int kPhaseCount = 8;

/// Stable snake_case phase name ("queue_wait", "window_wait", ...).
const char* phaseName(Phase phase);

/// Fixed-layout log-bucketed latency histogram (seconds). Not
/// internally synchronized — the TraceRecorder shards it; standalone
/// uses must synchronize externally.
class LatencyHistogram
{
  public:
    /// Lower bound of the first regular bucket; everything below lands
    /// in the underflow bucket 0.
    static constexpr double kMinSeconds = 1e-6;
    /// Buckets per power of two (bucket width ratio 2^(1/4) ~ 19%).
    static constexpr int kSubBuckets = 4;
    /// Octaves covered by regular buckets: 1 us * 2^26 ~ 67 s; slower
    /// samples land in the overflow bucket.
    static constexpr int kOctaves = 26;
    /// Underflow + regular + overflow.
    static constexpr int kBucketCount = kOctaves * kSubBuckets + 2;

    /// Bucket holding \p seconds: 0 = underflow (including negatives),
    /// kBucketCount - 1 = overflow. Monotone in seconds.
    static int bucketIndex(double seconds);
    /// Inclusive lower bound of \p index (0.0 for the underflow
    /// bucket).
    static double bucketLowerBound(int index);
    /// Exclusive upper bound of \p index (+inf for the overflow
    /// bucket).
    static double bucketUpperBound(int index);

    void record(double seconds);
    /// Bucket-wise addition; min/max/sum/count fold in too. Layouts
    /// are identical by construction, so any two histograms merge.
    void merge(const LatencyHistogram& other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return max_; }

    /// Nearest-rank percentile (\p p in [0, 100]): the geometric
    /// midpoint of the bucket containing the rank-ceil(p/100 * count)
    /// sample — guaranteed to share a bucket with the exact sorted
    /// reference. 0.0 on an empty histogram.
    double percentile(double p) const;

    const std::array<std::uint64_t, kBucketCount>& buckets() const
    {
        return buckets_;
    }

  private:
    std::array<std::uint64_t, kBucketCount> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = 0.0;
};

/// One recorded span (end_ns > start_ns) or instant event
/// (end_ns == start_ns). \c name points at a string literal.
struct TraceEvent
{
    const char* name = nullptr;
    std::uint64_t request_id = 0; ///< 0 = not tied to one request.
    int tid = 0;                  ///< Track: worker index or pseudo-tid.
    std::int64_t start_ns = 0;    ///< Against the recorder's epoch.
    std::int64_t end_ns = 0;
    int narg = 0;
    std::array<const char*, 3> arg_keys{};
    std::array<double, 3> arg_vals{};

    bool isInstant() const { return end_ns == start_ns; }
};

/// Merged histograms + counters, embedded in ServiceStats::telemetry.
struct TelemetrySnapshot
{
    bool enabled = false;
    std::uint64_t events = 0;  ///< Spans + instants currently buffered.
    std::uint64_t dropped = 0; ///< Events lost to the per-shard cap.
    std::array<LatencyHistogram, kPhaseCount> hist;

    const LatencyHistogram& phase(Phase p) const
    {
        return hist[static_cast<std::size_t>(p)];
    }
};

class TraceRecorder
{
  public:
    /// Track ids: workers use their pool index (0-based); these
    /// pseudo-tracks keep non-worker threads distinguishable in the
    /// exported trace.
    static constexpr int kFlusherTid = 900;
    static constexpr int kClientTidBase = 1000;

    /// \p max_events_per_shard bounds each shard's span buffer; events
    /// past the cap are counted in dropped instead of stored.
    explicit TraceRecorder(bool enabled = false,
                           std::size_t max_events_per_shard = 1u << 16);

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /// Chrome-trace track group ("pid") this recorder's events export
    /// under: each service shard sets its own group, so a merged
    /// multi-shard trace shows one collapsible track group per shard
    /// (shard N exports as pid N + 1; the default group 1 keeps
    /// single-service traces byte-compatible with the pre-sharding
    /// export).
    void setTrackGroup(int group)
    {
        track_group_.store(group, std::memory_order_relaxed);
    }
    int trackGroup() const
    {
        return track_group_.load(std::memory_order_relaxed);
    }

    /// This recorder's epoch (nowNs() == 0 instant). Recorders are
    /// constructed at different times, so a merged export must shift
    /// each recorder's timestamps onto one shared epoch — see
    /// writeChromeTraceMerged.
    std::chrono::steady_clock::time_point epoch() const { return epoch_; }
    /// The one gate every call site checks first; a disabled recorder
    /// reduces every record call to this load.
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Monotonic nanoseconds since this recorder's construction.
    std::int64_t nowNs() const;

    /// Stable pseudo-track id for the calling (non-worker) thread, in
    /// [kClientTidBase, kClientTidBase + 64).
    static int clientTid();

    /// Record \p seconds into \p phase's histogram.
    void observe(Phase phase, double seconds);

    using Args = std::initializer_list<std::pair<const char*, double>>;

    /// Record a completed span. \p name must be a string literal; at
    /// most 3 args are kept.
    void
    span(const char* name, int tid, std::int64_t start_ns,
         std::int64_t end_ns, std::uint64_t request_id = 0, Args args = {})
    {
        span(name, tid, start_ns, end_ns, request_id, args.begin(),
             static_cast<int>(args.size()));
    }

    /// Pointer-range form of span() for callers that assemble args
    /// dynamically (ScopedSpan).
    void span(const char* name, int tid, std::int64_t start_ns,
              std::int64_t end_ns, std::uint64_t request_id,
              const std::pair<const char*, double>* args, int narg);

    /// Record a point event at now.
    void instant(const char* name, int tid, std::uint64_t request_id = 0,
                 Args args = {});

    /// Merged histograms + event counters across all shards.
    TelemetrySnapshot snapshot() const;

    /// Every buffered event, merged across shards and sorted by
    /// (start_ns, tid).
    std::vector<TraceEvent> events() const;

    /// Emit the buffered events as Chrome trace-event JSON (loads in
    /// chrome://tracing and Perfetto): "X" complete events in
    /// microseconds, "i" instants, thread_name metadata per track.
    void writeChromeTrace(std::ostream& out) const;

  private:
    static constexpr int kShards = 16;

    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
        std::array<LatencyHistogram, kPhaseCount> hist;
        std::uint64_t dropped = 0;
    };

    Shard& shardForThisThread();

    std::atomic<bool> enabled_;
    /// Export-time track group (see setTrackGroup); atomic so a late
    /// setter never races a concurrent exporter.
    std::atomic<int> track_group_{1};
    const std::size_t max_events_per_shard_;
    std::chrono::steady_clock::time_point epoch_;
    std::array<Shard, kShards> shards_;
};

/// Emit the buffered events of several recorders as one Chrome
/// trace-event JSON document: every recorder's events appear under its
/// own track group (pid = trackGroup(), with a "shard N" process_name
/// label), timestamps are aligned onto the earliest recorder's epoch,
/// and each (group, tid) track keeps its thread_name metadata. The
/// sharded service exports its per-shard recorders through this — one
/// collapsible track group per shard in chrome://tracing / Perfetto.
/// Null entries are skipped.
void writeChromeTraceMerged(std::ostream& out,
                            const std::vector<const TraceRecorder*>& recorders);

/// RAII span: captures start at construction, records at destruction
/// (when the recorder is enabled). Args may be attached mid-flight.
class ScopedSpan
{
  public:
    ScopedSpan(TraceRecorder& recorder, const char* name, int tid,
               std::uint64_t request_id = 0)
        : recorder_(recorder.enabled() ? &recorder : nullptr), name_(name),
          tid_(tid), request_id_(request_id),
          start_ns_(recorder_ ? recorder.nowNs() : 0)
    {}

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attach one numeric arg (first 3 kept).
    void
    arg(const char* key, double value)
    {
        if (!recorder_ || narg_ >= 3) return;
        keys_[static_cast<std::size_t>(narg_)] = key;
        vals_[static_cast<std::size_t>(narg_)] = value;
        ++narg_;
    }

    ~ScopedSpan()
    {
        if (!recorder_) return;
        std::array<std::pair<const char*, double>, 3> pairs;
        for (int i = 0; i < narg_; ++i) {
            pairs[static_cast<std::size_t>(i)] = {
                keys_[static_cast<std::size_t>(i)],
                vals_[static_cast<std::size_t>(i)]};
        }
        recorder_->span(name_, tid_, start_ns_, recorder_->nowNs(),
                        request_id_, pairs.data(), narg_);
    }

  private:
    TraceRecorder* recorder_; ///< Null when recording was disabled.
    const char* name_;
    int tid_;
    std::uint64_t request_id_;
    std::int64_t start_ns_;
    int narg_ = 0;
    std::array<const char*, 3> keys_{};
    std::array<double, 3> vals_{};
};

} // namespace chehab::telemetry
