/// \file
/// Fixed-size worker pool with cost-priority dispatch.
///
/// Tasks carry a numeric priority; the pool always runs the highest-
/// priority queued task next, with FIFO order between equal priorities.
/// The compile service runs one two-level queue on this pool: compile
/// tasks and run tasks are both ranked by the load model's *predicted
/// seconds* (service/load_model.h — measured EWMA profiles when warm,
/// the static cost estimate scaled into seconds when cold), i.e.
/// longest-processing-time-first dispatch in one comparable unit — the
/// classic makespan heuristic for heterogeneous job batches (cf. the
/// timer-augmented DSMC load-balancing literature in PAPERS.md: once
/// per-task cost is uneven, measured-runtime ordering is what keeps
/// workers busy).
///
/// The pool also keeps aggregate timing counters (tasks completed,
/// busy seconds) so callers can report worker utilization alongside
/// the model's prediction accuracy.
///
/// Telemetry: when constructed with a TraceRecorder, the pool records a
/// queue-wait histogram sample per task (enqueue -> dequeue) and, for
/// tasks submitted with a TaskTag, a "dispatch" span on the worker's
/// track carrying queue-wait plus predicted-vs-measured seconds — the
/// span every service-level compile/execute span nests inside.
///
/// Thread-safety: all public member functions may be called from any
/// thread. Tasks must not call wait() (they may submit new tasks).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/telemetry.h"

namespace chehab {

/// Telemetry identity of a task submitted to the ThreadPool. \c name
/// is the span name recorded on the worker's track (the compile
/// service passes "dispatch"; task bodies nest their own
/// compile/execute spans inside it) and must be a string literal; a
/// null name means the task gets queue-wait accounting but no span.
/// (Namespace-scope rather than nested so it can be a default
/// argument of ThreadPool::submit.)
struct TaskTag
{
    const char* name = nullptr;
    std::uint64_t request_id = 0;
    double predicted_seconds = 0.0; ///< Load-model prediction.
};

class ThreadPool
{
  public:
    using TaskTag = chehab::TaskTag;

    /// Spawns \p num_threads workers (clamped to >= 1). The optional
    /// \p recorder (not owned; must outlive the pool) receives
    /// queue-wait samples and dispatch spans when enabled.
    explicit ThreadPool(int num_threads,
                        telemetry::TraceRecorder* recorder = nullptr)
        : recorder_(recorder)
    {
        if (num_threads < 1) num_threads = 1;
        workers_.reserve(static_cast<std::size_t>(num_threads));
        for (int i = 0; i < num_threads; ++i) {
            workers_.emplace_back([this, i] { workerLoop(i); });
        }
    }

    /// Waits for queued tasks to finish, then joins the workers.
    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        work_available_.notify_all();
        for (std::thread& worker : workers_) worker.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue \p task; higher \p priority runs earlier. The task
    /// receives the index of the worker executing it. \p tag names the
    /// task for telemetry (queue-wait + dispatch span).
    void
    submit(std::function<void(int)> task, double priority = 0.0,
           TaskTag tag = TaskTag())
    {
        Item item;
        item.priority = priority;
        item.fn = std::move(task);
        item.tag = tag;
        if (recorder_ && recorder_->enabled()) {
            item.enqueue_ns = recorder_->nowNs();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            item.seq = next_seq_++;
            queue_.push_back(std::move(item));
            std::push_heap(queue_.begin(), queue_.end(), ItemOrder{});
            ++pending_;
        }
        work_available_.notify_one();
    }

    /// Block until every task submitted so far has completed.
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return pending_ == 0; });
    }

    int size() const { return static_cast<int>(workers_.size()); }

    /// Aggregate execution counters (monotonic snapshot).
    struct Stats
    {
        std::uint64_t tasks_run = 0; ///< Tasks completed.
        double busy_seconds = 0.0;   ///< Summed task wall time.
    };

    Stats
    stats() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    struct Item
    {
        double priority = 0.0;
        std::uint64_t seq = 0; ///< FIFO tiebreak between equal priorities.
        std::function<void(int)> fn;
        TaskTag tag;
        /// Recorder timestamp at submit; 0 when telemetry was disabled
        /// at enqueue time (no queue-wait sample then).
        std::int64_t enqueue_ns = 0;
    };

    struct ItemOrder
    {
        // priority_queue pops the *greatest*; an item is "less" (pops
        // later) when its priority is lower or it arrived later.
        bool
        operator()(const Item& a, const Item& b) const
        {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq;
        }
    };

    void
    workerLoop(int worker_index)
    {
        for (;;) {
            Item item;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_available_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty()) return; // stopping_ && drained.
                std::pop_heap(queue_.begin(), queue_.end(), ItemOrder{});
                item = std::move(queue_.back());
                queue_.pop_back();
            }
            // Telemetry is sampled only when it was enabled at both
            // enqueue and dequeue — a flag flip mid-flight skips the
            // sample rather than recording a bogus wait.
            const bool traced = recorder_ && recorder_->enabled() &&
                                item.enqueue_ns > 0;
            double queue_wait_seconds = 0.0;
            std::int64_t start_ns = 0;
            if (traced) {
                start_ns = recorder_->nowNs();
                queue_wait_seconds =
                    static_cast<double>(start_ns - item.enqueue_ns) / 1e9;
                recorder_->observe(telemetry::Phase::QueueWait,
                                   queue_wait_seconds);
            }
            const auto started = std::chrono::steady_clock::now();
            item.fn(worker_index);
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count();
            if (traced && item.tag.name) {
                recorder_->span(item.tag.name, worker_index, start_ns,
                                recorder_->nowNs(), item.tag.request_id,
                                {{"qwait_s", queue_wait_seconds},
                                 {"pred_s", item.tag.predicted_seconds},
                                 {"meas_s", seconds}});
            }
            {
                std::unique_lock<std::mutex> lock(mutex_);
                ++stats_.tasks_run;
                stats_.busy_seconds += seconds;
                if (--pending_ == 0) idle_.notify_all();
            }
        }
    }

    mutable std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::vector<Item> queue_; ///< Max-heap ordered by ItemOrder.
    std::uint64_t next_seq_ = 0;
    int pending_ = 0; ///< Queued + currently executing.
    Stats stats_;
    bool stopping_ = false;
    telemetry::TraceRecorder* recorder_ = nullptr; ///< Not owned.
    std::vector<std::thread> workers_;
};

} // namespace chehab
