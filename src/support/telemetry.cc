#include "support/telemetry.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <string>
#include <thread>

namespace chehab::telemetry {

const char*
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::Enqueue: return "enqueue";
    case Phase::QueueWait: return "queue_wait";
    case Phase::Compile: return "compile";
    case Phase::Execute: return "execute";
    case Phase::Setup: return "setup";
    case Phase::Evaluate: return "evaluate";
    case Phase::Decode: return "decode";
    case Phase::WindowWait: return "window_wait";
    }
    return "unknown";
}

int
LatencyHistogram::bucketIndex(double seconds)
{
    if (!(seconds >= kMinSeconds)) return 0; // Underflow, negatives, NaN.
    const double octaves = std::log2(seconds / kMinSeconds) * kSubBuckets;
    // Overflow check before the int cast: casting an out-of-range (or
    // infinite) double to int is undefined behaviour.
    if (octaves >= static_cast<double>(kOctaves * kSubBuckets)) {
        return kBucketCount - 1;
    }
    int index = std::clamp(1 + static_cast<int>(std::floor(octaves)), 1,
                           kBucketCount - 2);
    // log2 rounding can land exactly-on-boundary samples one bucket
    // off; nudge so the index always agrees with the bound functions
    // (bucketLowerBound(i) inclusive, bucketUpperBound(i) exclusive).
    if (seconds >= bucketUpperBound(index)) {
        ++index;
    } else if (seconds < bucketLowerBound(index)) {
        --index;
    }
    return std::clamp(index, 1, kBucketCount - 1);
}

double
LatencyHistogram::bucketLowerBound(int index)
{
    if (index <= 0) return 0.0;
    return kMinSeconds *
           std::exp2(static_cast<double>(index - 1) / kSubBuckets);
}

double
LatencyHistogram::bucketUpperBound(int index)
{
    if (index >= kBucketCount - 1) {
        return std::numeric_limits<double>::infinity();
    }
    return kMinSeconds * std::exp2(static_cast<double>(index) / kSubBuckets);
}

void
LatencyHistogram::record(double seconds)
{
    ++buckets_[static_cast<std::size_t>(bucketIndex(seconds))];
    ++count_;
    sum_ += seconds;
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (int i = 0; i < kBucketCount; ++i) {
        buckets_[static_cast<std::size_t>(i)] +=
            other.buckets_[static_cast<std::size_t>(i)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest rank: the k-th smallest sample, k = ceil(p/100 * n),
    // clamped to [1, n] so p = 0 degenerates to the minimum.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBucketCount; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen < rank) continue;
        if (i == 0) return kMinSeconds / 2.0;
        if (i == kBucketCount - 1) return bucketLowerBound(i);
        // Geometric midpoint: stays inside the half-open bucket, so
        // bucketIndex(percentile(p)) == bucketIndex(exact percentile).
        return std::sqrt(bucketLowerBound(i) * bucketUpperBound(i));
    }
    return max_; // Unreachable: counts_ sums to count_.
}

TraceRecorder::TraceRecorder(bool enabled, std::size_t max_events_per_shard)
    : enabled_(enabled), max_events_per_shard_(max_events_per_shard),
      epoch_(std::chrono::steady_clock::now())
{}

std::int64_t
TraceRecorder::nowNs() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

int
TraceRecorder::clientTid()
{
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return kClientTidBase + static_cast<int>(h % 64);
}

TraceRecorder::Shard&
TraceRecorder::shardForThisThread()
{
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
}

void
TraceRecorder::observe(Phase phase, double seconds)
{
    if (!enabled()) return;
    Shard& shard = shardForThisThread();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.hist[static_cast<std::size_t>(phase)].record(seconds);
}

void
TraceRecorder::span(const char* name, int tid, std::int64_t start_ns,
                    std::int64_t end_ns, std::uint64_t request_id,
                    const std::pair<const char*, double>* args, int narg)
{
    if (!enabled()) return;
    TraceEvent event;
    event.name = name;
    event.request_id = request_id;
    event.tid = tid;
    event.start_ns = start_ns;
    event.end_ns = std::max(end_ns, start_ns);
    for (int i = 0; i < narg && event.narg < 3; ++i) {
        event.arg_keys[static_cast<std::size_t>(event.narg)] = args[i].first;
        event.arg_vals[static_cast<std::size_t>(event.narg)] = args[i].second;
        ++event.narg;
    }
    Shard& shard = shardForThisThread();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.events.size() >= max_events_per_shard_) {
        ++shard.dropped;
        return;
    }
    shard.events.push_back(event);
}

void
TraceRecorder::instant(const char* name, int tid, std::uint64_t request_id,
                       Args args)
{
    if (!enabled()) return;
    const std::int64_t now = nowNs();
    span(name, tid, now, now, request_id, args);
}

TelemetrySnapshot
TraceRecorder::snapshot() const
{
    TelemetrySnapshot snap;
    snap.enabled = enabled();
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        snap.events += shard.events.size();
        snap.dropped += shard.dropped;
        for (int p = 0; p < kPhaseCount; ++p) {
            snap.hist[static_cast<std::size_t>(p)].merge(
                shard.hist[static_cast<std::size_t>(p)]);
        }
    }
    return snap;
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::vector<TraceEvent> all;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        all.insert(all.end(), shard.events.begin(), shard.events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.start_ns != b.start_ns) {
                      return a.start_ns < b.start_ns;
                  }
                  // Longer spans first so enclosing spans precede their
                  // children at equal starts.
                  if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
                  return a.tid < b.tid;
              });
    return all;
}

namespace {

/// Human name for a track id in the exported trace.
std::string
trackName(int tid)
{
    if (tid >= TraceRecorder::kClientTidBase) {
        return "client " +
               std::to_string(tid - TraceRecorder::kClientTidBase);
    }
    if (tid >= TraceRecorder::kFlusherTid) return "flusher";
    return "worker " + std::to_string(tid);
}

void
writeArgs(std::ostream& out, const TraceEvent& event)
{
    out << "\"args\":{";
    bool first = true;
    if (event.request_id != 0) {
        out << "\"rid\":" << event.request_id;
        first = false;
    }
    for (int i = 0; i < event.narg; ++i) {
        if (!first) out << ",";
        out << "\"" << event.arg_keys[static_cast<std::size_t>(i)]
            << "\":" << event.arg_vals[static_cast<std::size_t>(i)];
        first = false;
    }
    out << "}";
}

} // namespace

void
TraceRecorder::writeChromeTrace(std::ostream& out) const
{
    writeChromeTraceMerged(out, {this});
}

void
writeChromeTraceMerged(std::ostream& out,
                       const std::vector<const TraceRecorder*>& recorders)
{
    // Every recorder measures nanoseconds against its own construction
    // instant; align all of them onto the earliest epoch so spans from
    // different shards keep their true relative timing in the viewer.
    std::chrono::steady_clock::time_point min_epoch{};
    bool have_epoch = false;
    for (const TraceRecorder* recorder : recorders) {
        if (!recorder) continue;
        if (!have_epoch || recorder->epoch() < min_epoch) {
            min_epoch = recorder->epoch();
            have_epoch = true;
        }
    }

    // Full precision: timestamp rounding must not reorder or un-nest
    // spans in the viewer.
    out << std::setprecision(15);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto micros = [](std::int64_t ns) {
        return static_cast<double>(ns) / 1e3;
    };
    for (const TraceRecorder* recorder : recorders) {
        if (!recorder) continue;
        const int pid = recorder->trackGroup();
        const std::int64_t offset_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                recorder->epoch() - min_epoch)
                .count();
        const std::vector<TraceEvent> all = recorder->events();
        // Track-group label: one collapsible "shard N" group per
        // recorder (pid = shard id + 1).
        if (!first) out << ",";
        first = false;
        out << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":\"shard "
            << pid - 1 << "\"}}";
        // One thread_name metadata record per distinct track, so
        // Perfetto labels worker/flusher/client rows instead of bare
        // tids.
        std::vector<int> tids;
        for (const TraceEvent& event : all) tids.push_back(event.tid);
        std::sort(tids.begin(), tids.end());
        tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
        for (int tid : tids) {
            out << ",{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                << trackName(tid) << "\"}}";
        }
        for (const TraceEvent& event : all) {
            out << ",{\"pid\":" << pid << ",\"tid\":" << event.tid
                << ",\"name\":\"" << event.name
                << "\",\"ts\":" << micros(event.start_ns + offset_ns);
            if (event.isInstant()) {
                out << ",\"ph\":\"i\",\"s\":\"t\",";
            } else {
                out << ",\"ph\":\"X\",\"dur\":"
                    << micros(event.end_ns - event.start_ns) << ",";
            }
            writeArgs(out, event);
            out << "}";
        }
    }
    out << "]}\n";
}

} // namespace chehab::telemetry
