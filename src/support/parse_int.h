/// \file
/// Checked string-to-number parsing for CLI flags and IR literals.
///
/// std::atoi silently returns 0 for garbage ("--workers=abc" becomes 0
/// workers) and has undefined behavior on overflow; strtoll/strtod
/// saturate out-of-range input unless errno is checked. Every numeric
/// flag or literal parser should reject both with a diagnosable
/// failure instead, via the helpers here: parse succeeds only when the
/// *entire* string is one in-range number.
#pragma once

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace chehab {

/// Parse \p text as a base-10 int into \p out. Returns false — leaving
/// \p out untouched — when \p text is null, empty, contains trailing
/// garbage ("12x"), or does not fit in int. Leading whitespace and a
/// sign are accepted, mirroring strtol.
inline bool
parseInt(const char* text, int& out)
{
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') return false;    // No digits / junk.
    if (errno == ERANGE) return false;                // Overflowed long.
    if (value < INT_MIN || value > INT_MAX) return false;
    out = static_cast<int>(value);
    return true;
}

/// Parse \p text as a base-10 int64 into \p out. Same contract as
/// parseInt: false — with \p out untouched — on null/empty input,
/// trailing garbage, or a value outside [INT64_MIN, INT64_MAX]
/// (strtoll saturates on ERANGE; callers like the IR parser must see
/// an error, not a silently clamped literal).
inline bool
parseInt64(const char* text, std::int64_t& out)
{
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0') return false;    // No digits / junk.
    if (errno == ERANGE) return false;                // Out of range.
    out = static_cast<std::int64_t>(value);
    return true;
}

/// Parse \p text as a double into \p out. Same reject-garbage contract
/// as parseInt: false — with \p out untouched — on null/empty input,
/// trailing garbage ("1.5x"), overflow/underflow (ERANGE), or a
/// non-finite result ("inf"/"nan" make no sense as flag values).
inline bool
parseDouble(const char* text, double& out)
{
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') return false;    // No digits / junk.
    if (errno == ERANGE) return false;                // Over/underflow.
    if (!std::isfinite(value)) return false;
    out = value;
    return true;
}

} // namespace chehab
