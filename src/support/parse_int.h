/// \file
/// Checked string-to-integer parsing for CLI flags.
///
/// std::atoi silently returns 0 for garbage ("--workers=abc" becomes 0
/// workers) and has undefined behavior on overflow; every numeric flag
/// parser should reject both with a diagnosable failure instead.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace chehab {

/// Parse \p text as a base-10 int into \p out. Returns false — leaving
/// \p out untouched — when \p text is null, empty, contains trailing
/// garbage ("12x"), or does not fit in int. Leading whitespace and a
/// sign are accepted, mirroring strtol.
inline bool
parseInt(const char* text, int& out)
{
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') return false;    // No digits / junk.
    if (errno == ERANGE) return false;                // Overflowed long.
    if (value < INT_MIN || value > INT_MAX) return false;
    out = static_cast<int>(value);
    return true;
}

} // namespace chehab
