/// \file
/// Little byte-buffer reader/writer for the on-disk persistence
/// formats (compiler/serialize.{h,cc}, service/persist.{h,cc}).
///
/// Fixed-width little-endian integers via memcpy (no aliasing UB, no
/// host-endianness surprises on the platforms we target), doubles as
/// their IEEE-754 bit pattern, strings as u32 length + raw bytes. The
/// reader throws std::runtime_error on any overrun, so truncated files
/// surface as one catchable error instead of garbage values — the
/// persistence layer converts that into a "corrupt entry skipped"
/// counter, never a crash.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace chehab {

/// Append-only byte-buffer writer.
class ByteWriter
{
  public:
    void
    u8(std::uint8_t value)
    {
        buffer_.push_back(static_cast<char>(value));
    }

    void
    u32(std::uint32_t value)
    {
        appendLe(value);
    }

    void
    u64(std::uint64_t value)
    {
        appendLe(value);
    }

    void
    i32(std::int32_t value)
    {
        appendLe(static_cast<std::uint32_t>(value));
    }

    void
    i64(std::int64_t value)
    {
        appendLe(static_cast<std::uint64_t>(value));
    }

    void
    f64(double value)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        appendLe(bits);
    }

    void
    str(const std::string& value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        buffer_.append(value);
    }

    const std::string& bytes() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    template <typename T>
    void
    appendLe(T value)
    {
        char raw[sizeof(T)];
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            raw[i] = static_cast<char>((value >> (8 * i)) & 0xff);
        }
        buffer_.append(raw, sizeof(T));
    }

    std::string buffer_;
};

/// Sequential reader over a byte buffer; throws std::runtime_error on
/// any read past the end.
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        return readLe<std::uint32_t>();
    }

    std::uint64_t
    u64()
    {
        return readLe<std::uint64_t>();
    }

    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(readLe<std::uint32_t>());
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(readLe<std::uint64_t>());
    }

    double
    f64()
    {
        const std::uint64_t bits = readLe<std::uint64_t>();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string
    str()
    {
        const std::uint32_t size = u32();
        need(size);
        std::string value(bytes_.substr(pos_, size));
        pos_ += size;
        return value;
    }

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    void
    need(std::size_t count)
    {
        if (bytes_.size() - pos_ < count) {
            throw std::runtime_error("truncated byte stream: need " +
                                     std::to_string(count) + " bytes at " +
                                     std::to_string(pos_) + " of " +
                                     std::to_string(bytes_.size()));
        }
    }

    template <typename T>
    T
    readLe()
    {
        need(sizeof(T));
        T value = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            value |= static_cast<T>(
                         static_cast<std::uint8_t>(bytes_[pos_ + i]))
                     << (8 * i);
        }
        pos_ += sizeof(T);
        return value;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the persistence layer's per-entry checksum.
/// Not cryptographic; it detects the accidental corruption (truncation,
/// bit rot, torn writes) the crash-safety contract is about.
inline std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace chehab
