/// \file
/// Minimal CSV writer used by the benchmark harnesses to mirror the paper
/// artifact's results/*.csv outputs.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace chehab {

/// Streams rows of heterogeneous cells into a CSV file.
class CsvWriter
{
  public:
    /// Opens \p path for writing and emits the \p header row.
    CsvWriter(const std::string& path, const std::vector<std::string>& header)
        : out_(path)
    {
        writeRowImpl(header);
    }

    /// True if the output file opened successfully.
    bool ok() const { return static_cast<bool>(out_); }

    /// Write one row; cells are converted with operator<<.
    template <typename... Cells>
    void
    writeRow(const Cells&... cells)
    {
        std::vector<std::string> row;
        (row.push_back(toCell(cells)), ...);
        writeRowImpl(row);
    }

  private:
    template <typename T>
    static std::string
    toCell(const T& value)
    {
        std::ostringstream oss;
        oss << value;
        return oss.str();
    }

    void
    writeRowImpl(const std::vector<std::string>& row)
    {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) out_ << ',';
            out_ << row[i];
        }
        out_ << '\n';
    }

    std::ofstream out_;
};

} // namespace chehab
