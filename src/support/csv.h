/// \file
/// Minimal CSV reader/writer used by the benchmark harnesses and the
/// chehabd service driver to mirror the paper artifact's results/*.csv
/// outputs.
///
/// This header is the single escaping/formatting path for CSV in the
/// repo: every emitter goes through CsvWriter (RFC-4180 quoting) and
/// every consumer through splitCsvLine, so a cell written with a comma,
/// quote or newline in it round-trips.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace chehab {

/// Quote \p cell per RFC 4180 when it contains a comma, quote, CR or
/// newline; internal quotes double. Plain cells pass through unchanged.
inline std::string
csvEscape(const std::string& cell)
{
    if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/// Split one CSV line into cells, honouring RFC-4180 quoting (the
/// inverse of CsvWriter's escaping). Embedded newlines are not
/// supported by the line-oriented readers in this repo, so a quoted
/// newline arrives as whatever std::getline handed the caller.
inline std::vector<std::string>
splitCsvLine(const std::string& line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"' && cell.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

/// Streams rows of heterogeneous cells into a CSV file.
class CsvWriter
{
  public:
    /// Opens \p path for writing and emits the \p header row.
    CsvWriter(const std::string& path, const std::vector<std::string>& header)
        : out_(path)
    {
        writeRowImpl(header);
    }

    /// True if the output file opened successfully.
    bool ok() const { return static_cast<bool>(out_); }

    /// Write one row; cells are converted with operator<< and escaped.
    template <typename... Cells>
    void
    writeRow(const Cells&... cells)
    {
        std::vector<std::string> row;
        (row.push_back(toCell(cells)), ...);
        writeRowImpl(row);
    }

  private:
    template <typename T>
    static std::string
    toCell(const T& value)
    {
        std::ostringstream oss;
        oss << value;
        return oss.str();
    }

    void
    writeRowImpl(const std::vector<std::string>& row)
    {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) out_ << ',';
            out_ << csvEscape(row[i]);
        }
        out_ << '\n';
    }

    std::ofstream out_;
};

} // namespace chehab
