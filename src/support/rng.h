/// \file
/// Deterministic pseudo-random number generation utilities.
///
/// All stochastic components (dataset synthesis, PPO sampling, SealLite key
/// generation) take an explicit Rng so experiments are reproducible from a
/// single seed, mirroring the seeded Stable-Baselines3 setup in the paper.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace chehab {

/// xoshiro256** generator seeded via splitmix64.
///
/// Chosen over std::mt19937_64 for speed and a trivially copyable state,
/// which lets environments snapshot/restore RNG state cheaply.
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /// Re-initialize the state from a 64-bit seed (splitmix64 expansion).
    void
    reseed(std::uint64_t seed)
    {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /// Next raw 64-bit value.
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Requires bound > 0.
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-ish reduction; the bias is
        // negligible for our bounds (all << 2^32).
        const __uint128_t product =
            static_cast<__uint128_t>(next()) * static_cast<__uint128_t>(bound);
        return static_cast<std::uint64_t>(product >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t
    uniformRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        uniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Standard normal via Box-Muller.
    double
    normal()
    {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u = 0.0;
        double v = 0.0;
        double s = 0.0;
        do {
            u = 2.0 * uniformReal() - 1.0;
            v = 2.0 * uniformReal() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * factor;
        has_spare_ = true;
        return u * factor;
    }

    /// Bernoulli(p).
    bool
    chance(double p)
    {
        return uniformReal() < p;
    }

    /// Pick a uniformly random element index for a container of size n.
    std::size_t
    pickIndex(std::size_t n)
    {
        return static_cast<std::size_t>(uniformInt(n));
    }

    /// Sample an index from an (unnormalized, non-negative) weight vector.
    std::size_t
    pickWeighted(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights) total += w;
        double r = uniformReal() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r <= 0.0) return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace chehab
