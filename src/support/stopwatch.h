/// \file
/// Monotonic wall-clock stopwatch used for compile-time measurements
/// (Fig. 6) and training-throughput measurements (Fig. 10).
#pragma once

#include <chrono>

namespace chehab {

/// Simple RAII-free stopwatch over std::chrono::steady_clock.
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /// Restart timing from now.
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /// Elapsed seconds since construction or last reset().
    double
    elapsedSeconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /// Elapsed milliseconds since construction or last reset().
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace chehab
