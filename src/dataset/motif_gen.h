/// \file
/// Motif-based program synthesizer — the stand-in for the paper's
/// LLM-guided dataset generation (§6, Appendix F).
///
/// The paper prompts Gemini 2.5 Flash with the IR grammar, the rewrite
/// rules and worked real-world kernels, and asks for structurally diverse,
/// *optimizable* expressions. We cannot ship an LLM, so this generator
/// reproduces the distribution the prompt enforces: programs are drawn
/// from a weighted mixture of real-computation motifs — dot products,
/// squared differences, stencil windows, boolean-gadget reductions,
/// factorizable sums, Horner polynomial evaluation, shared
/// subexpressions — with randomized shapes, variable pools and noise
/// edits, subject to the prompt's constraints (depth 4-20, no literal 0,
/// structural uniqueness after ICI canonicalization).
#pragma once

#include "ir/expr.h"
#include "support/rng.h"

namespace chehab::dataset {

/// Knobs controlling the motif mixture.
struct MotifGenConfig
{
    int max_width = 8;      ///< Vec width of multi-output motifs.
    int max_terms = 8;      ///< Reduction length (dot products etc.).
    double mutation_rate = 0.25; ///< Chance of a structural noise edit.
};

/// Generates one program per call from the motif mixture.
class MotifSynthesizer
{
  public:
    explicit MotifSynthesizer(std::uint64_t seed, MotifGenConfig config = {})
        : rng_(seed), config_(config)
    {}

    ir::ExprPtr generate();

  private:
    /// \name Motifs (all return well-typed programs)
    /// @{
    ir::ExprPtr dotProduct();          ///< Σ aᵢ·bᵢ.
    ir::ExprPtr squaredDifference();   ///< Vec of (aᵢ-bᵢ)².
    ir::ExprPtr l2Distance();          ///< Σ (aᵢ-bᵢ)².
    ir::ExprPtr elementwiseKernel();   ///< Vec of isomorphic slot exprs.
    ir::ExprPtr stencilWindow();       ///< Vec of sliding-window sums.
    ir::ExprPtr booleanReduction();    ///< Σ XOR/OR gadgets over bits.
    ir::ExprPtr factorizableSum();     ///< a·b + a·c (+ ...) shapes.
    ir::ExprPtr hornerPolynomial();    ///< c₀ + x(c₁ + x(c₂ + ...)).
    ir::ExprPtr sharedSubexpression(); ///< Same subcircuit used twice.
    ir::ExprPtr linearCombination();   ///< Σ wᵢ·xᵢ with plaintext wᵢ.
    /// @}

    ir::ExprPtr freshVar(const char* base, int index);
    ir::ExprPtr mutate(ir::ExprPtr program);

    Rng rng_;
    MotifGenConfig config_;
    int var_salt_ = 0;
};

} // namespace chehab::dataset
