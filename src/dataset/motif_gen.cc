#include "dataset/motif_gen.h"

#include <string>
#include <vector>

namespace chehab::dataset {

using ir::ExprPtr;

namespace {

/// Left-leaning sum of the given terms (the TRS balancing/reduction rules
/// get to reshape it).
ExprPtr
sumOf(const std::vector<ExprPtr>& terms)
{
    ExprPtr acc = terms[0];
    for (std::size_t i = 1; i < terms.size(); ++i) {
        acc = ir::add(acc, terms[i]);
    }
    return acc;
}

} // namespace

ExprPtr
MotifSynthesizer::freshVar(const char* base, int index)
{
    return ir::var(std::string(base) + std::to_string(var_salt_) + "_" +
                   std::to_string(index));
}

ExprPtr
MotifSynthesizer::dotProduct()
{
    const int n = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_terms - 1)));
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
        terms.push_back(ir::mul(freshVar("a", i), freshVar("b", i)));
    }
    return sumOf(terms);
}

ExprPtr
MotifSynthesizer::squaredDifference()
{
    const int w = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_width - 1)));
    std::vector<ExprPtr> slots;
    for (int i = 0; i < w; ++i) {
        const ExprPtr diff = ir::sub(freshVar("a", i), freshVar("b", i));
        slots.push_back(ir::mul(diff, diff));
    }
    return ir::vec(std::move(slots));
}

ExprPtr
MotifSynthesizer::l2Distance()
{
    const int n = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_terms - 1)));
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
        const ExprPtr diff = ir::sub(freshVar("a", i), freshVar("b", i));
        terms.push_back(ir::mul(diff, diff));
    }
    return sumOf(terms);
}

ExprPtr
MotifSynthesizer::elementwiseKernel()
{
    const int w = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_width - 1)));
    const int shape = static_cast<int>(rng_.uniformInt(4));
    std::vector<ExprPtr> slots;
    for (int i = 0; i < w; ++i) {
        const ExprPtr a = freshVar("a", i);
        const ExprPtr b = freshVar("b", i);
        switch (shape) {
          case 0: slots.push_back(ir::add(a, b)); break;
          case 1: slots.push_back(ir::mul(a, b)); break;
          case 2:
            slots.push_back(ir::add(ir::mul(a, b), freshVar("c", i)));
            break;
          default:
            slots.push_back(ir::mul(ir::add(a, b), ir::sub(a, b)));
            break;
        }
    }
    return ir::vec(std::move(slots));
}

ExprPtr
MotifSynthesizer::stencilWindow()
{
    // 1-D window sums over a line of pixels: output i = Σ_k p[i+k]·w_k,
    // the Box Blur / Gx / Gy shape with plaintext taps.
    const int w = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_width - 1)));
    const int taps = 2 + static_cast<int>(rng_.uniformInt(2));
    const bool weighted = rng_.chance(0.5);
    std::vector<ExprPtr> pixels;
    for (int i = 0; i < w + taps; ++i) pixels.push_back(freshVar("p", i));
    std::vector<ExprPtr> slots;
    for (int i = 0; i < w; ++i) {
        std::vector<ExprPtr> terms;
        for (int k = 0; k < taps; ++k) {
            ExprPtr term = pixels[static_cast<std::size_t>(i + k)];
            if (weighted) {
                const std::int64_t tap =
                    static_cast<std::int64_t>(rng_.uniformRange(-2, 3));
                if (tap != 1) term = ir::mul(ir::constant(tap == 0 ? 2 : tap),
                                             term);
            }
            terms.push_back(std::move(term));
        }
        slots.push_back(sumOf(terms));
    }
    return ir::vec(std::move(slots));
}

ExprPtr
MotifSynthesizer::booleanReduction()
{
    // Union cardinality / Hamming distance shape over bit inputs:
    // Σ gadget(aᵢ, bᵢ) with XOR = a+b-2ab or OR = a+b-ab.
    const int n = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_terms - 1)));
    const bool use_xor = rng_.chance(0.5);
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
        const ExprPtr a = freshVar("a", i);
        const ExprPtr b = freshVar("b", i);
        const ExprPtr ab = ir::mul(a, b);
        terms.push_back(
            use_xor
                ? ir::sub(ir::add(a, b), ir::mul(ir::constant(2), ab))
                : ir::sub(ir::add(a, b), ab));
    }
    return sumOf(terms);
}

ExprPtr
MotifSynthesizer::factorizableSum()
{
    // a·b + a·c (+ a·d ...): the comm-factor fodder the prompt's rewrite
    // rule examples bias toward.
    const int n = 2 + static_cast<int>(rng_.uniformInt(3));
    const ExprPtr shared = rng_.chance(0.3)
                               ? ir::mul(freshVar("s", 0), freshVar("s", 1))
                               : freshVar("s", 0);
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
        terms.push_back(rng_.chance(0.5)
                            ? ir::mul(shared, freshVar("t", i))
                            : ir::mul(freshVar("t", i), shared));
    }
    return sumOf(terms);
}

ExprPtr
MotifSynthesizer::hornerPolynomial()
{
    const int degree = 2 + static_cast<int>(rng_.uniformInt(3));
    const ExprPtr x = freshVar("x", 0);
    ExprPtr acc = freshVar("c", degree);
    for (int i = degree - 1; i >= 0; --i) {
        acc = ir::add(freshVar("c", i), ir::mul(x, acc));
    }
    return acc;
}

ExprPtr
MotifSynthesizer::sharedSubexpression()
{
    const ExprPtr shared =
        ir::mul(ir::add(freshVar("u", 0), freshVar("u", 1)), freshVar("u", 2));
    const ExprPtr left = ir::mul(shared, freshVar("v", 0));
    const ExprPtr right = ir::mul(shared, freshVar("v", 1));
    return rng_.chance(0.5) ? ir::add(left, right) : ir::sub(left, right);
}

ExprPtr
MotifSynthesizer::linearCombination()
{
    const int n = 2 + static_cast<int>(rng_.uniformInt(
                          static_cast<std::uint64_t>(config_.max_terms - 1)));
    std::vector<ExprPtr> terms;
    for (int i = 0; i < n; ++i) {
        terms.push_back(ir::mul(
            ir::plainVar("w" + std::to_string(var_salt_) + "_" +
                         std::to_string(i)),
            freshVar("x", i)));
    }
    return sumOf(terms);
}

ExprPtr
MotifSynthesizer::mutate(ExprPtr program)
{
    // Structural noise: wrap a random output slot (or the root) in a small
    // extra computation so the corpus is not purely canonical motifs.
    if (!rng_.chance(config_.mutation_rate)) return program;
    const ExprPtr extra = freshVar("m", 0);
    if (program->op() == ir::Op::Vec) {
        std::vector<ExprPtr> slots = program->children();
        const std::size_t i = rng_.pickIndex(slots.size());
        slots[i] = rng_.chance(0.5) ? ir::add(slots[i], extra)
                                    : ir::mul(slots[i], extra);
        return ir::vec(std::move(slots));
    }
    return rng_.chance(0.5) ? ir::add(program, extra)
                            : ir::mul(program, extra);
}

ExprPtr
MotifSynthesizer::generate()
{
    ++var_salt_;
    ExprPtr program;
    switch (rng_.uniformInt(10)) {
      case 0: program = dotProduct(); break;
      case 1: program = squaredDifference(); break;
      case 2: program = l2Distance(); break;
      case 3: program = elementwiseKernel(); break;
      case 4: program = stencilWindow(); break;
      case 5: program = booleanReduction(); break;
      case 6: program = factorizableSum(); break;
      case 7: program = hornerPolynomial(); break;
      case 8: program = sharedSubexpression(); break;
      default: program = linearCombination(); break;
    }
    return mutate(std::move(program));
}

} // namespace chehab::dataset
