/// \file
/// Uniform random IR generator (Appendix H.2) — the baseline corpus for
/// the LLM-vs-random training-data ablation (Fig. 8) and the BPE training
/// corpus (Fig. 10). Samples expression trees with a uniform mixture of
/// operators, balanced across (depth, vector size) combinations.
#pragma once

#include "ir/expr.h"
#include "support/rng.h"

namespace chehab::dataset {

/// Configuration of the random generator.
struct RandomGenConfig
{
    int min_depth = 1;
    int max_depth = 8;      ///< Paper sweeps 1-15.
    int min_width = 1;
    int max_width = 8;      ///< Paper sweeps 1-32.
    int num_variables = 8;  ///< Distinct input variables to draw from.
    double leaf_probability = 0.3;
    double const_probability = 0.15;
    double plain_probability = 0.1;
};

/// Recursive uniform sampler over scalar expressions packed into a Vec.
class RandomProgramGenerator
{
  public:
    explicit RandomProgramGenerator(std::uint64_t seed,
                                    RandomGenConfig config = {})
        : rng_(seed), config_(config)
    {}

    /// One random well-typed program.
    ir::ExprPtr generate();

    /// A program at a specific (depth, width) cell of the sweep.
    ir::ExprPtr generateAt(int depth, int width);

  private:
    ir::ExprPtr scalar(int depth);
    ir::ExprPtr leaf();

    Rng rng_;
    RandomGenConfig config_;
};

} // namespace chehab::dataset
