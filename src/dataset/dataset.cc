#include "dataset/dataset.h"

#include <fstream>
#include <unordered_set>

#include "ir/analysis.h"
#include "ir/parser.h"
#include "tokenizer/ici.h"

namespace chehab::dataset {

std::vector<ir::ExprPtr>
buildDataset(const Generator& generate, int target_size,
             const std::vector<ir::ExprPtr>& excluded_benchmarks,
             int max_attempts)
{
    std::unordered_set<std::string> excluded;
    for (const auto& benchmark : excluded_benchmarks) {
        excluded.insert(tokenizer::canonicalForm(benchmark));
    }

    std::vector<ir::ExprPtr> dataset;
    std::unordered_set<std::string> seen;
    for (int attempt = 0;
         attempt < max_attempts &&
         static_cast<int>(dataset.size()) < target_size;
         ++attempt) {
        ir::ExprPtr candidate = generate();
        if (!candidate || !ir::wellTyped(candidate)) continue;
        std::string canonical = tokenizer::canonicalForm(candidate);
        if (excluded.count(canonical)) continue;
        if (!seen.insert(std::move(canonical)).second) continue;
        dataset.push_back(std::move(candidate));
    }
    return dataset;
}

void
saveDataset(const std::vector<ir::ExprPtr>& programs,
            const std::string& path)
{
    std::ofstream out(path);
    for (const auto& program : programs) {
        out << program->toString() << '\n';
    }
}

std::vector<ir::ExprPtr>
loadDataset(const std::string& path)
{
    std::vector<ir::ExprPtr> programs;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (!ir::isValid(line)) continue;
        programs.push_back(ir::parse(line));
    }
    return programs;
}

} // namespace chehab::dataset
