#include "dataset/random_gen.h"

namespace chehab::dataset {

using ir::ExprPtr;

ExprPtr
RandomProgramGenerator::leaf()
{
    if (rng_.chance(config_.const_probability)) {
        static const std::int64_t pool[] = {0, 1, 2, 3, 5, 7};
        return ir::constant(pool[rng_.uniformInt(6)]);
    }
    if (rng_.chance(config_.plain_probability)) {
        return ir::plainVar(
            "w" + std::to_string(rng_.uniformInt(
                      static_cast<std::uint64_t>(config_.num_variables))));
    }
    return ir::var(
        "x" + std::to_string(rng_.uniformInt(
                  static_cast<std::uint64_t>(config_.num_variables))));
}

ExprPtr
RandomProgramGenerator::scalar(int depth)
{
    if (depth <= 0 || rng_.chance(config_.leaf_probability)) return leaf();
    switch (rng_.uniformInt(4)) {
      case 0: return ir::add(scalar(depth - 1), scalar(depth - 1));
      case 1: return ir::sub(scalar(depth - 1), scalar(depth - 1));
      case 2: return ir::mul(scalar(depth - 1), scalar(depth - 1));
      default: return ir::neg(scalar(depth - 1));
    }
}

ExprPtr
RandomProgramGenerator::generateAt(int depth, int width)
{
    if (width <= 1) return scalar(depth);
    std::vector<ExprPtr> slots;
    slots.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) slots.push_back(scalar(depth));
    return ir::vec(std::move(slots));
}

ExprPtr
RandomProgramGenerator::generate()
{
    const int depth = static_cast<int>(
        rng_.uniformRange(config_.min_depth, config_.max_depth));
    const int width = static_cast<int>(
        rng_.uniformRange(config_.min_width, config_.max_width));
    return generateAt(depth, width);
}

} // namespace chehab::dataset
