/// \file
/// Dataset post-processing pipeline (§6): parse/validate, ICI-canonical
/// dedup, benchmark exclusion, plus text-file persistence matching the
/// artifact's one-expression-per-line dataset format.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace chehab::dataset {

/// Generator callback: produce one candidate program.
using Generator = std::function<ir::ExprPtr()>;

/// Build a dataset of \p target_size unique programs from \p generate,
/// dropping ICI-canonical duplicates and any program whose canonical form
/// matches one of \p excluded_benchmarks. Gives up after
/// \p max_attempts candidates (returns what it has).
std::vector<ir::ExprPtr> buildDataset(
    const Generator& generate, int target_size,
    const std::vector<ir::ExprPtr>& excluded_benchmarks = {},
    int max_attempts = 1 << 20);

/// Write one expression per line.
void saveDataset(const std::vector<ir::ExprPtr>& programs,
                 const std::string& path);

/// Read a one-expression-per-line file; silently skips unparsable lines
/// (the paper's validation filter).
std::vector<ir::ExprPtr> loadDataset(const std::string& path);

} // namespace chehab::dataset
