/// \file
/// 64-bit modular arithmetic primitives for the SealLite RLWE backend:
/// mulmod via 128-bit intermediates, exponentiation, inverses, NTT-friendly
/// prime generation and primitive-root search.
#pragma once

#include <cstdint>
#include <vector>

namespace chehab::fhe {

/// (a * b) mod m with a,b < m < 2^63.
inline std::uint64_t
mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    return static_cast<std::uint64_t>(
        static_cast<__uint128_t>(a) * b % m);
}

/// (a + b) mod m with a,b < m.
inline std::uint64_t
addMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    const std::uint64_t s = a + b;
    return s >= m ? s - m : s;
}

/// (a - b) mod m with a,b < m.
inline std::uint64_t
subMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    return a >= b ? a - b : a + m - b;
}

/// a^e mod m.
std::uint64_t powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

/// Multiplicative inverse mod prime m (Fermat).
std::uint64_t invMod(std::uint64_t a, std::uint64_t m);

/// Miller-Rabin primality (deterministic bases for 64-bit).
bool isPrime(std::uint64_t n);

/// Find \p count distinct primes of roughly \p bits bits with
/// p ≡ 1 (mod modulus_step); used for NTT-friendly coefficient-modulus
/// chains (step = 2n).
std::vector<std::uint64_t> findNttPrimes(int bits, int count,
                                         std::uint64_t modulus_step);

/// A primitive 2n-th root of unity mod prime p (requires 2n | p-1).
std::uint64_t findPrimitiveRoot(std::uint64_t two_n, std::uint64_t p);

} // namespace chehab::fhe
