/// \file
/// 64-bit modular arithmetic primitives for the SealLite RLWE backend:
/// mulmod via 128-bit intermediates, Shoup and Barrett division-free
/// multiplication for the NTT hot path, exponentiation, inverses,
/// NTT-friendly prime generation and primitive-root search (both
/// memoized — every NttTables construction used to re-run them).
#pragma once

#include <cstdint>
#include <vector>

namespace chehab::fhe {

/// (a * b) mod m with a,b < m < 2^63. Compiles to a 128-by-64 hardware
/// division; use mulModShoup / Barrett on hot paths.
inline std::uint64_t
mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    return static_cast<std::uint64_t>(
        static_cast<__uint128_t>(a) * b % m);
}

/// (a + b) mod m with a,b < m.
inline std::uint64_t
addMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    const std::uint64_t s = a + b;
    return s >= m ? s - m : s;
}

/// (a - b) mod m with a,b < m.
inline std::uint64_t
subMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    return a >= b ? a - b : a + m - b;
}

/// High 64 bits of the 128-bit product a * b.
inline std::uint64_t
mulHi64(std::uint64_t a, std::uint64_t b)
{
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * b) >> 64);
}

/// \name Shoup multiplication
/// For a multiplicand w < p that is known ahead of time (twiddle
/// factors, cached NTT forms), precompute w' = floor(w * 2^64 / p).
/// Then for ANY 64-bit x, q = mulhi(x, w') satisfies
/// q in {floor(xw/p) - 1, floor(xw/p)}, so r = x*w - q*p (computed mod
/// 2^64) lies in [0, 2p): one mulhi, two muls, at most one conditional
/// subtract — no division. Requires 2p <= 2^64; the lazy NTT needs
/// 4p < 2^64 for its butterfly sums, so tables assert p < 2^62.
/// @{

/// Shoup companion floor(w * 2^64 / p); requires w < p.
inline std::uint64_t
shoupPrecompute(std::uint64_t w, std::uint64_t p)
{
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(w) << 64) / p);
}

/// (x * w) mod p up to one multiple of p: result in [0, 2p). Valid for
/// any x (including lazily accumulated values >= p) with w < p < 2^63.
inline std::uint64_t
mulModShoupLazy(std::uint64_t x, std::uint64_t w, std::uint64_t w_shoup,
                std::uint64_t p)
{
    const std::uint64_t q = mulHi64(x, w_shoup);
    return x * w - q * p;
}

/// (x * w) mod p, fully reduced to [0, p). Same domain as the lazy
/// variant; one extra conditional subtract.
inline std::uint64_t
mulModShoup(std::uint64_t x, std::uint64_t w, std::uint64_t w_shoup,
            std::uint64_t p)
{
    std::uint64_t r = mulModShoupLazy(x, w, w_shoup, p);
    if (r >= p) r -= p;
    return r;
}
/// @}

/// Barrett reduction mod a fixed p for operands that are NOT known ahead
/// of time (pointwise products of two variable NTT slots). Precomputes
/// ratio = floor(2^64 / p); reduce() then costs one mulhi, one mul and
/// one conditional subtract. Requires p < 2^63.
struct Barrett
{
    std::uint64_t modulus = 0;
    std::uint64_t ratio = 0; ///< floor(2^64 / modulus).

    Barrett() = default;
    explicit Barrett(std::uint64_t p)
        : modulus(p),
          ratio(static_cast<std::uint64_t>(
              (static_cast<__uint128_t>(1) << 64) / p))
    {}

    /// v mod p for any 64-bit v. With q = mulhi(v, ratio) we have
    /// q >= floor(v/p) - 1 (ratio > 2^64/p - 1 and v/2^64 < 1), so
    /// r = v - q*p < 2p: one conditional subtract fully reduces.
    std::uint64_t
    reduce(std::uint64_t v) const
    {
        const std::uint64_t q = mulHi64(v, ratio);
        std::uint64_t r = v - q * modulus;
        if (r >= modulus) r -= modulus;
        return r;
    }

    /// (a * b) mod p. The product must fit in 64 bits, i.e. a,b < p
    /// with p < 2^32 (the SealLite prime chains are ~30-bit).
    std::uint64_t
    mulMod(std::uint64_t a, std::uint64_t b) const
    {
        return reduce(a * b);
    }
};

/// a^e mod m.
std::uint64_t powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

/// Multiplicative inverse mod prime m (Fermat).
std::uint64_t invMod(std::uint64_t a, std::uint64_t m);

/// Miller-Rabin primality (deterministic bases for 64-bit).
bool isPrime(std::uint64_t n);

/// Find \p count distinct primes of roughly \p bits bits with
/// p ≡ 1 (mod modulus_step); used for NTT-friendly coefficient-modulus
/// chains (step = 2n). Memoized per (bits, count, step).
std::vector<std::uint64_t> findNttPrimes(int bits, int count,
                                         std::uint64_t modulus_step);

/// A primitive 2n-th root of unity mod prime p (requires 2n | p-1).
/// Memoized per (2n, p).
std::uint64_t findPrimitiveRoot(std::uint64_t two_n, std::uint64_t p);

/// \name Memoization observability
/// Total UNCACHED searches performed since process start; a repeated
/// lookup with the same arguments must not increment these (the
/// shared-NttTables satellite test pins this).
/// @{
std::uint64_t primitiveRootSearches();
std::uint64_t nttPrimeSearches();
/// @}

} // namespace chehab::fhe
