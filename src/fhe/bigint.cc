#include "fhe/bigint.h"

#include <algorithm>

#include "support/error.h"

namespace chehab::fhe {

BigInt::BigInt(std::uint64_t value)
{
    if (value != 0) limbs_.push_back(value);
}

void
BigInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

bool
BigInt::isZero() const
{
    return limbs_.empty();
}

int
BigInt::bitLength() const
{
    if (limbs_.empty()) return 0;
    const std::uint64_t top = limbs_.back();
    const int top_bits = 64 - __builtin_clzll(top);
    return static_cast<int>(limbs_.size() - 1) * 64 + top_bits;
}

int
BigInt::compare(const BigInt& other) const
{
    if (limbs_.size() != other.limbs_.size()) {
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    }
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i]) {
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
        }
    }
    return 0;
}

BigInt
BigInt::add(const BigInt& other) const
{
    BigInt result;
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    result.limbs_.resize(n, 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned __int128 sum = carry;
        if (i < limbs_.size()) sum += limbs_[i];
        if (i < other.limbs_.size()) sum += other.limbs_[i];
        result.limbs_[i] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
    }
    if (carry) result.limbs_.push_back(static_cast<std::uint64_t>(carry));
    return result;
}

BigInt
BigInt::subtract(const BigInt& other) const
{
    CHEHAB_ASSERT(compare(other) >= 0, "BigInt subtract underflow");
    BigInt result;
    result.limbs_.resize(limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t rhs =
            i < other.limbs_.size() ? other.limbs_[i] : 0;
        unsigned __int128 lhs = limbs_[i];
        unsigned __int128 sub =
            static_cast<unsigned __int128>(rhs) +
            static_cast<unsigned __int128>(borrow);
        if (lhs >= sub) {
            result.limbs_[i] = static_cast<std::uint64_t>(lhs - sub);
            borrow = 0;
        } else {
            result.limbs_[i] = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(1) << 64) + lhs - sub);
            borrow = 1;
        }
    }
    result.trim();
    return result;
}

BigInt
BigInt::multiplySmall(std::uint64_t factor) const
{
    if (factor == 0 || isZero()) return BigInt();
    BigInt result;
    result.limbs_.resize(limbs_.size(), 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const unsigned __int128 product =
            static_cast<unsigned __int128>(limbs_[i]) * factor + carry;
        result.limbs_[i] = static_cast<std::uint64_t>(product);
        carry = product >> 64;
    }
    if (carry) result.limbs_.push_back(static_cast<std::uint64_t>(carry));
    return result;
}

BigInt
BigInt::multiply(const BigInt& other) const
{
    if (isZero() || other.isZero()) return BigInt();
    BigInt result;
    result.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        unsigned __int128 carry = 0;
        for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
            const unsigned __int128 cur =
                static_cast<unsigned __int128>(limbs_[i]) *
                    other.limbs_[j] +
                result.limbs_[i + j] + carry;
            result.limbs_[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
        std::size_t k = i + other.limbs_.size();
        while (carry) {
            const unsigned __int128 cur = result.limbs_[k] + carry;
            result.limbs_[k] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
            ++k;
        }
    }
    result.trim();
    return result;
}

BigInt
BigInt::divmodSmall(std::uint64_t divisor, std::uint64_t& remainder) const
{
    CHEHAB_ASSERT(divisor != 0, "division by zero");
    BigInt quotient;
    quotient.limbs_.resize(limbs_.size(), 0);
    unsigned __int128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        const unsigned __int128 cur = (rem << 64) | limbs_[i];
        quotient.limbs_[i] = static_cast<std::uint64_t>(cur / divisor);
        rem = cur % divisor;
    }
    quotient.trim();
    remainder = static_cast<std::uint64_t>(rem);
    return quotient;
}

BigInt
BigInt::reduceBySubtraction(const BigInt& modulus) const
{
    BigInt value = *this;
    while (value.compare(modulus) >= 0) {
        value = value.subtract(modulus);
    }
    return value;
}

std::string
BigInt::toString() const
{
    if (isZero()) return "0";
    BigInt value = *this;
    std::string digits;
    while (!value.isZero()) {
        std::uint64_t rem = 0;
        value = value.divmodSmall(10, rem);
        digits.push_back(static_cast<char>('0' + rem));
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

} // namespace chehab::fhe
