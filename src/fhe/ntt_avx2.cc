/// \file
/// AVX2 NTT butterfly kernels — the only translation unit compiled with
/// -mavx2 (see CMakeLists.txt). When CHEHAB_AVX2=OFF this file compiles
/// to the scalar-build stubs at the bottom, so the link interface is
/// identical in both configurations and fhe/ntt.cc can dispatch on a
/// plain runtime flag.
///
/// AVX2 has no 64x64 multiply, so the Shoup identity is assembled from
/// 32-bit half products (_mm256_mul_epu32): mullo64 from three halves,
/// mulhi64 from four plus a carry fold. Unsigned 64-bit compares flip
/// the sign bit and use the signed compare. The arithmetic is the
/// scalar Harvey lazy-reduction schedule verbatim — two's-complement
/// wraparound and the conditional subtracts match lane for lane, which
/// is what makes the outputs bit-identical to the scalar path
/// (machine-checked by test_fhe_ntt_simd). Wide stages run two
/// butterfly vectors per iteration for ILP; the t < 4 tail stages,
/// where butterfly legs share a vector, deinterleave with cross-lane
/// permutes (t == 2) and 64-bit unpacks (t == 1) instead of dropping to
/// scalar; the forward path's [0, p) normalize is fused into its last
/// stage rather than taking a separate sweep.
#include "fhe/ntt_simd.h"

#include "support/error.h"

#if defined(CHEHAB_HAVE_AVX2)

#include <immintrin.h>

namespace chehab::fhe::simd {

namespace {

/// Lanes of a where a < bound keep their value; lanes with a >= bound
/// get bound subtracted. Requires bound < 2^63 (true for p and 2p with
/// p < 2^62): then a - bound wraps negative exactly when a < bound, so
/// the difference's own sign bit drives blendv_pd and the
/// compare/mask/andnot sequence collapses to two instructions.
inline __m256i
csub4(__m256i a, __m256i bound)
{
    const __m256i d = _mm256_sub_epi64(a, bound);
    return _mm256_castpd_si256(
        _mm256_blendv_pd(_mm256_castsi256_pd(d), _mm256_castsi256_pd(a),
                         _mm256_castsi256_pd(d)));
}

/// Odd 32-bit halves moved into the even slots, where _mm256_mul_epu32
/// reads its operands. A shuffle (port 5) instead of a 64-bit shift
/// keeps the shift/multiply ports free — shoupLazy4 below is
/// throughput-bound on exactly those ports.
inline __m256i
hi32(__m256i a)
{
    return _mm256_shuffle_epi32(a, 0xF5);
}

/// A twiddle vector paired with its Shoup companion. Two registers on
/// purpose: pre-splitting the high halves here (four registers per
/// twiddle set) starves the unrolled butterfly loops of ymm registers.
/// The splits happen inside shoupLazy4 on the shuffle port instead,
/// which the multiply-heavy Shoup chain leaves mostly idle.
struct ShoupVec
{
    __m256i w;
    __m256i ws;
};

inline ShoupVec
shoupVec(__m256i w, __m256i ws)
{
    return ShoupVec{w, ws};
}

/// Broadcast the twiddle at idx and its Shoup companion into all lanes.
inline ShoupVec
bcast(const std::uint64_t* w, const std::uint64_t* ws, std::size_t idx)
{
    return shoupVec(
        _mm256_set1_epi64x(static_cast<long long>(w[idx])),
        _mm256_set1_epi64x(static_cast<long long>(ws[idx])));
}

/// mulModShoupLazy per lane: x * w - mulhi(x, w') * p, result < 2p for
/// any 64-bit x. The exact high half uses the three-shift mid1/mid2
/// chain (mid1 = lh + (ll >> 32) cannot wrap, so the column carries
/// fold in exactly); the low half of x*w - q*p differences the two
/// cross sums before a single shift, which is exact because only the
/// low 32 bits of the cross difference survive the shift mod 2^64.
inline __m256i
shoupLazy4(__m256i x, const ShoupVec& t, __m256i p, __m256i p_hi)
{
    const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
    const __m256i x_hi = hi32(x);
    const __m256i ws_hi = hi32(t.ws);
    const __m256i w_hi = hi32(t.w);
    const __m256i ll = _mm256_mul_epu32(x, t.ws);
    const __m256i lh = _mm256_mul_epu32(x, ws_hi);
    const __m256i hl = _mm256_mul_epu32(x_hi, t.ws);
    const __m256i hh = _mm256_mul_epu32(x_hi, ws_hi);
    const __m256i mid1 = _mm256_add_epi64(lh, _mm256_srli_epi64(ll, 32));
    const __m256i mid2 =
        _mm256_add_epi64(hl, _mm256_and_si256(mid1, mask32));
    const __m256i q = _mm256_add_epi64(
        hh, _mm256_add_epi64(_mm256_srli_epi64(mid1, 32),
                             _mm256_srli_epi64(mid2, 32)));
    const __m256i q_hi = hi32(q);
    const __m256i lo_diff = _mm256_sub_epi64(_mm256_mul_epu32(x, t.w),
                                             _mm256_mul_epu32(q, p));
    const __m256i cross_diff = _mm256_sub_epi64(
        _mm256_add_epi64(_mm256_mul_epu32(x_hi, t.w),
                         _mm256_mul_epu32(x, w_hi)),
        _mm256_add_epi64(_mm256_mul_epu32(q_hi, p),
                         _mm256_mul_epu32(q, p_hi)));
    return _mm256_add_epi64(lo_diff, _mm256_slli_epi64(cross_diff, 32));
}

} // namespace

bool
avx2CompiledIn()
{
    return true;
}

void
forwardAvx2(std::uint64_t* values, int n, std::uint64_t p,
            const std::uint64_t* root_powers,
            const std::uint64_t* root_powers_shoup)
{
    CHEHAB_ASSERT(n >= 8 && (n & (n - 1)) == 0,
                  "AVX2 forward needs n >= 8");
    // The [0, 4p) headroom argument (and the sign-flip compares against
    // 2p) both need 4p < 2^64.
    CHEHAB_ASSERT(p < (1ULL << 62), "AVX2 path needs p < 2^62");
    const std::uint64_t two_p = 2 * p;
    const __m256i vp = _mm256_set1_epi64x(static_cast<long long>(p));
    const __m256i vtwo_p =
        _mm256_set1_epi64x(static_cast<long long>(two_p));
    const __m256i vp_hi = hi32(vp);

    std::size_t t = static_cast<std::size_t>(n) >> 1;
    std::size_t m = 1;
    // One Cooley-Tukey stage per pass, two independent butterfly
    // vectors per iteration: the Shoup chain is long and iterations
    // carry no dependency, so pairing them keeps the multiply ports
    // fed. (A radix-4 fused variant was measured slower here: three
    // live twiddle sets exhaust the sixteen ymm registers.)
    while (t >= 8) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupVec sv =
                bcast(root_powers, root_powers_shoup, m + i);
            for (std::size_t j = j1; j < j1 + t; j += 8) {
                __m256i u0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                __m256i u1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                const __m256i x0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + t));
                const __m256i x1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + t + 4));
                u0 = csub4(u0, vtwo_p);
                u1 = csub4(u1, vtwo_p);
                const __m256i v0 = shoupLazy4(x0, sv, vp, vp_hi);
                const __m256i v1 = shoupLazy4(x1, sv, vp, vp_hi);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    _mm256_add_epi64(u0, v0));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    _mm256_add_epi64(u1, v1));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + t),
                    _mm256_add_epi64(u0, _mm256_sub_epi64(vtwo_p, v0)));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + t + 4),
                    _mm256_add_epi64(u1, _mm256_sub_epi64(vtwo_p, v1)));
            }
        }
        m <<= 1;
        t >>= 1;
    }
    if (t == 4) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j = 8 * i;
            const ShoupVec sv =
                bcast(root_powers, root_powers_shoup, m + i);
            __m256i u = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(values + j));
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(values + j + 4));
            u = csub4(u, vtwo_p);
            const __m256i v = shoupLazy4(x, sv, vp, vp_hi);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(values + j),
                _mm256_add_epi64(u, v));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(values + j + 4),
                _mm256_add_epi64(u, _mm256_sub_epi64(vtwo_p, v)));
        }
        m <<= 1;
        t >>= 1;
    }
    {
            // Two groups of 4 per iteration (m = n/4 >= 2 is even).
            // Butterfly legs sit in opposite 128-bit halves, so one
            // cross-lane permute per operand lines them up and the same
            // permute puts the results back.
            for (std::size_t i = 0; i < m; i += 2) {
                const std::size_t j = 4 * i;
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                const __m256i vb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                __m256i u = _mm256_permute2x128_si256(va, vb, 0x20);
                const __m256i x = _mm256_permute2x128_si256(va, vb, 0x31);
                // [w_i, w_i, w_{i+1}, w_{i+1}] from the two twiddles.
                const __m256i vw = _mm256_permute4x64_epi64(
                    _mm256_castsi128_si256(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(root_powers + m +
                                                         i))),
                    0x50);
                const __m256i vws = _mm256_permute4x64_epi64(
                    _mm256_castsi128_si256(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(
                            root_powers_shoup + m + i))),
                    0x50);
                u = csub4(u, vtwo_p);
                const __m256i v = shoupLazy4(x, shoupVec(vw, vws), vp, vp_hi);
                const __m256i lo = _mm256_add_epi64(u, v);
                const __m256i hi =
                    _mm256_add_epi64(u, _mm256_sub_epi64(vtwo_p, v));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    _mm256_permute2x128_si256(lo, hi, 0x20));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    _mm256_permute2x128_si256(lo, hi, 0x31));
            }
        }
        m <<= 1;
        {
            // t == 1 is the last stage (m = n/2 >= 4): adjacent
            // u/x pairs deinterleave with 64-bit unpacks, and the
            // normalize back to [0, p) fuses in here — same two
            // conditional subtracts the scalar path applies in its
            // standalone pass, so outputs stay bit-identical.
            for (std::size_t i = 0; i < m; i += 4) {
                const std::size_t j = 2 * i;
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                const __m256i vb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                // u = [u_i, u_{i+2}, u_{i+1}, u_{i+3}]; twiddles are
                // permuted to match and the unpacks at the end restore
                // element order.
                __m256i u = _mm256_unpacklo_epi64(va, vb);
                const __m256i x = _mm256_unpackhi_epi64(va, vb);
                const __m256i vw = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        root_powers + m + i)),
                    0xD8);
                const __m256i vws = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        root_powers_shoup + m + i)),
                    0xD8);
                u = csub4(u, vtwo_p);
                const __m256i v = shoupLazy4(x, shoupVec(vw, vws), vp, vp_hi);
                __m256i lo = _mm256_add_epi64(u, v);
                __m256i hi =
                    _mm256_add_epi64(u, _mm256_sub_epi64(vtwo_p, v));
                lo = csub4(csub4(lo, vtwo_p), vp);
                hi = csub4(csub4(hi, vtwo_p), vp);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    _mm256_unpacklo_epi64(lo, hi));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    _mm256_unpackhi_epi64(lo, hi));
            }
        }
}

void
inverseAvx2(std::uint64_t* values, int n, std::uint64_t p,
            const std::uint64_t* inv_root_powers,
            const std::uint64_t* inv_root_powers_shoup,
            std::uint64_t inv_n, std::uint64_t inv_n_shoup,
            std::uint64_t inv_n_w, std::uint64_t inv_n_w_shoup)
{
    CHEHAB_ASSERT(n >= 8 && (n & (n - 1)) == 0,
                  "AVX2 inverse needs n >= 8");
    CHEHAB_ASSERT(p < (1ULL << 62), "AVX2 path needs p < 2^62");
    const std::uint64_t two_p = 2 * p;
    const __m256i vp = _mm256_set1_epi64x(static_cast<long long>(p));
    const __m256i vtwo_p =
        _mm256_set1_epi64x(static_cast<long long>(two_p));
    const __m256i vp_hi = hi32(vp);

    std::size_t m = static_cast<std::size_t>(n) >> 1;
    std::size_t t = 1;
    {
            // First stage (m = n/2 >= 4): u/x pairs are adjacent, same
            // unpack/permute data movement as the forward path's last
            // stage, Gentleman-Sande arithmetic.
            for (std::size_t i = 0; i < m; i += 4) {
                const std::size_t j = 2 * i;
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                const __m256i vb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                const __m256i u = _mm256_unpacklo_epi64(va, vb);
                const __m256i v = _mm256_unpackhi_epi64(va, vb);
                const __m256i vw = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        inv_root_powers + m + i)),
                    0xD8);
                const __m256i vws = _mm256_permute4x64_epi64(
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        inv_root_powers_shoup + m + i)),
                    0xD8);
                const __m256i s = csub4(_mm256_add_epi64(u, v), vtwo_p);
                const __m256i diff = _mm256_add_epi64(
                    _mm256_sub_epi64(u, v), vtwo_p);
                const __m256i d = shoupLazy4(diff, shoupVec(vw, vws), vp, vp_hi);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    _mm256_unpacklo_epi64(s, d));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    _mm256_unpackhi_epi64(s, d));
            }
    }
    m >>= 1;
    {
            for (std::size_t i = 0; i < m; i += 2) {
                const std::size_t j = 4 * i;
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                const __m256i vb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                const __m256i u = _mm256_permute2x128_si256(va, vb, 0x20);
                const __m256i v = _mm256_permute2x128_si256(va, vb, 0x31);
                const __m256i vw = _mm256_permute4x64_epi64(
                    _mm256_castsi128_si256(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(inv_root_powers +
                                                         m + i))),
                    0x50);
                const __m256i vws = _mm256_permute4x64_epi64(
                    _mm256_castsi128_si256(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(
                            inv_root_powers_shoup + m + i))),
                    0x50);
                const __m256i s = csub4(_mm256_add_epi64(u, v), vtwo_p);
                const __m256i diff = _mm256_add_epi64(
                    _mm256_sub_epi64(u, v), vtwo_p);
                const __m256i d = shoupLazy4(diff, shoupVec(vw, vws), vp, vp_hi);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    _mm256_permute2x128_si256(s, d, 0x20));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    _mm256_permute2x128_si256(s, d, 0x31));
            }
    }
    m >>= 1;
    t = 4;
    // One Gentleman-Sande stage per pass, paired independent
    // butterflies as in the forward path.
    while (m >= 2) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupVec sv =
                bcast(inv_root_powers, inv_root_powers_shoup, m + i);
            if (t == 4) {
                const __m256i u = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j1));
                const __m256i v = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j1 + 4));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j1),
                    csub4(_mm256_add_epi64(u, v), vtwo_p));
                const __m256i diff = _mm256_add_epi64(
                    _mm256_sub_epi64(u, v), vtwo_p);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j1 + 4),
                    shoupLazy4(diff, sv, vp, vp_hi));
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; j += 8) {
                const __m256i u0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j));
                const __m256i u1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + 4));
                const __m256i v0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + t));
                const __m256i v1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(values + j + t + 4));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j),
                    csub4(_mm256_add_epi64(u0, v0), vtwo_p));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + 4),
                    csub4(_mm256_add_epi64(u1, v1), vtwo_p));
                const __m256i d0 = _mm256_add_epi64(
                    _mm256_sub_epi64(u0, v0), vtwo_p);
                const __m256i d1 = _mm256_add_epi64(
                    _mm256_sub_epi64(u1, v1), vtwo_p);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + t),
                    shoupLazy4(d0, sv, vp, vp_hi));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(values + j + t + 4),
                    shoupLazy4(d1, sv, vp, vp_hi));
            }
        }
        m >>= 1;
        t <<= 1;
    }
    t = static_cast<std::size_t>(n) >> 1;
    // Final stage (m == 1, t == n/2 >= 4) fused with the n^-1 scaling,
    // fully reduced outputs — same fusion as the scalar path.
    const __m256i vin = _mm256_set1_epi64x(static_cast<long long>(inv_n));
    const __m256i vins =
        _mm256_set1_epi64x(static_cast<long long>(inv_n_shoup));
    const __m256i vinw =
        _mm256_set1_epi64x(static_cast<long long>(inv_n_w));
    const __m256i vinws =
        _mm256_set1_epi64x(static_cast<long long>(inv_n_w_shoup));
    for (std::size_t j = 0; j < t; j += 4) {
        const __m256i u = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + j));
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(values + j + t));
        const __m256i even =
            csub4(shoupLazy4(_mm256_add_epi64(u, v), shoupVec(vin, vins), vp, vp_hi), vp);
        const __m256i odd = csub4(
            shoupLazy4(
                _mm256_add_epi64(_mm256_sub_epi64(u, v), vtwo_p),
                shoupVec(vinw, vinws), vp, vp_hi),
            vp);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + j), even);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(values + j + t),
                            odd);
    }
}

} // namespace chehab::fhe::simd

#else // !CHEHAB_HAVE_AVX2

namespace chehab::fhe::simd {

bool
avx2CompiledIn()
{
    return false;
}

void
forwardAvx2(std::uint64_t*, int, std::uint64_t, const std::uint64_t*,
            const std::uint64_t*)
{
    CHEHAB_ASSERT(false, "AVX2 kernels not compiled in");
}

void
inverseAvx2(std::uint64_t*, int, std::uint64_t, const std::uint64_t*,
            const std::uint64_t*, std::uint64_t, std::uint64_t,
            std::uint64_t, std::uint64_t)
{
    CHEHAB_ASSERT(false, "AVX2 kernels not compiled in");
}

} // namespace chehab::fhe::simd

#endif // CHEHAB_HAVE_AVX2
