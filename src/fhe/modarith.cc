#include "fhe/modarith.h"

#include <atomic>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "support/error.h"

namespace chehab::fhe {

std::uint64_t
powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m)
{
    std::uint64_t result = 1 % m;
    a %= m;
    while (e > 0) {
        if (e & 1) result = mulMod(result, a, m);
        a = mulMod(a, a, m);
        e >>= 1;
    }
    return result;
}

std::uint64_t
invMod(std::uint64_t a, std::uint64_t m)
{
    return powMod(a, m - 2, m);
}

bool
isPrime(std::uint64_t n)
{
    if (n < 2) return false;
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                            19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0) return n == p;
    }
    std::uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for 64-bit integers.
    for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                            19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (a % n == 0) continue;
        std::uint64_t x = powMod(a, d, n);
        if (x == 1 || x == n - 1) continue;
        bool composite = true;
        for (int i = 1; i < r; ++i) {
            x = mulMod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

namespace {

// Both searches are pure functions of their arguments, so a process-wide
// memo is safe to share between every SealLite / NttTables construction
// (runtime-pool replicas used to redo identical Miller-Rabin walks and
// generator probes on every cold start).
std::mutex&
memoMutex()
{
    static std::mutex mutex;
    return mutex;
}

using PrimesKey = std::tuple<int, int, std::uint64_t>;

std::map<PrimesKey, std::vector<std::uint64_t>>&
primesMemo()
{
    static std::map<PrimesKey, std::vector<std::uint64_t>> memo;
    return memo;
}

std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>&
rootMemo()
{
    static std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        memo;
    return memo;
}

std::atomic<std::uint64_t> prime_searches{0};
std::atomic<std::uint64_t> root_searches{0};

} // namespace

std::vector<std::uint64_t>
findNttPrimes(int bits, int count, std::uint64_t modulus_step)
{
    const PrimesKey key{bits, count, modulus_step};
    std::unique_lock<std::mutex> lock(memoMutex());
    auto it = primesMemo().find(key);
    if (it != primesMemo().end()) return it->second;

    prime_searches.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint64_t> primes;
    // Walk downward from 2^bits in steps that preserve ≡ 1 (mod step).
    std::uint64_t candidate =
        ((1ULL << bits) / modulus_step) * modulus_step + 1;
    while (static_cast<int>(primes.size()) < count && candidate > modulus_step) {
        if (isPrime(candidate)) primes.push_back(candidate);
        candidate -= modulus_step;
    }
    CHEHAB_ASSERT(static_cast<int>(primes.size()) == count,
                  "not enough NTT primes at this bit width");
    primesMemo().emplace(key, primes);
    return primes;
}

std::uint64_t
findPrimitiveRoot(std::uint64_t two_n, std::uint64_t p)
{
    CHEHAB_ASSERT((p - 1) % two_n == 0, "2n must divide p-1");
    const std::pair<std::uint64_t, std::uint64_t> key{two_n, p};
    std::unique_lock<std::mutex> lock(memoMutex());
    auto it = rootMemo().find(key);
    if (it != rootMemo().end()) return it->second;

    root_searches.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t cofactor = (p - 1) / two_n;
    for (std::uint64_t g = 2; g < p; ++g) {
        const std::uint64_t candidate = powMod(g, cofactor, p);
        // Primitive iff candidate^(2n/2) = -1.
        if (powMod(candidate, two_n / 2, p) == p - 1) {
            rootMemo().emplace(key, candidate);
            return candidate;
        }
    }
    CHEHAB_ASSERT(false, "no primitive root found");
    return 0;
}

std::uint64_t
primitiveRootSearches()
{
    return root_searches.load(std::memory_order_relaxed);
}

std::uint64_t
nttPrimeSearches()
{
    return prime_searches.load(std::memory_order_relaxed);
}

} // namespace chehab::fhe
