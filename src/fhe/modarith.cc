#include "fhe/modarith.h"

#include "support/error.h"

namespace chehab::fhe {

std::uint64_t
powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m)
{
    std::uint64_t result = 1 % m;
    a %= m;
    while (e > 0) {
        if (e & 1) result = mulMod(result, a, m);
        a = mulMod(a, a, m);
        e >>= 1;
    }
    return result;
}

std::uint64_t
invMod(std::uint64_t a, std::uint64_t m)
{
    return powMod(a, m - 2, m);
}

bool
isPrime(std::uint64_t n)
{
    if (n < 2) return false;
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                            19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0) return n == p;
    }
    std::uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for 64-bit integers.
    for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                            19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (a % n == 0) continue;
        std::uint64_t x = powMod(a, d, n);
        if (x == 1 || x == n - 1) continue;
        bool composite = true;
        for (int i = 1; i < r; ++i) {
            x = mulMod(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

std::vector<std::uint64_t>
findNttPrimes(int bits, int count, std::uint64_t modulus_step)
{
    std::vector<std::uint64_t> primes;
    // Walk downward from 2^bits in steps that preserve ≡ 1 (mod step).
    std::uint64_t candidate =
        ((1ULL << bits) / modulus_step) * modulus_step + 1;
    while (static_cast<int>(primes.size()) < count && candidate > modulus_step) {
        if (isPrime(candidate)) primes.push_back(candidate);
        candidate -= modulus_step;
    }
    CHEHAB_ASSERT(static_cast<int>(primes.size()) == count,
                  "not enough NTT primes at this bit width");
    return primes;
}

std::uint64_t
findPrimitiveRoot(std::uint64_t two_n, std::uint64_t p)
{
    CHEHAB_ASSERT((p - 1) % two_n == 0, "2n must divide p-1");
    const std::uint64_t cofactor = (p - 1) / two_n;
    for (std::uint64_t g = 2; g < p; ++g) {
        const std::uint64_t candidate = powMod(g, cofactor, p);
        // Primitive iff candidate^(2n/2) = -1.
        if (powMod(candidate, two_n / 2, p) == p - 1) return candidate;
    }
    CHEHAB_ASSERT(false, "no primitive root found");
    return 0;
}

} // namespace chehab::fhe
