/// \file
/// SealLite: a from-scratch RLWE homomorphic encryption backend standing
/// in for Microsoft SEAL (§4.4, §7.4).
///
/// It implements the exact integer BGV formulation of the
/// Brakerski-Gentry-Vaikuntanathan family in full-RNS form: an RNS
/// coefficient modulus q = Π qᵢ of NTT-friendly primes, ternary secrets,
/// symmetric RLWE encryption (c₀ = −a·s + t·e + m, c₁ = a), ciphertext
/// add/sub/negate, plaintext add/multiply, ciphertext multiply with
/// RNS-basis relinearization, Galois-automorphism slot rotations with key
/// switching, CRT batching over the plaintext modulus t, and SEAL-style
/// invariant-noise-budget measurement.
///
/// Substitution note (documented in DESIGN.md): the paper evaluates on
/// BFV; we implement its sibling exact scheme BGV because BGV's multiply
/// is computable entirely in 64-bit RNS arithmetic (BFV's t/q scaled
/// multiply needs multi-precision polynomial arithmetic on the hot path).
/// Both schemes expose the same operation set (SEAL ships both), have the
/// same batching/rotation semantics, and the same noise-consumption shape
/// the evaluation measures: multiplications consume budget multiplicatively,
/// additions additively, rotations a key-switch constant.
///
/// SECURITY: parameters default to toy sizes for test speed; nothing here
/// is hardened (no constant-time code, reduced n). Do not reuse for real
/// deployments.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fhe/bigint.h"
#include "fhe/ntt.h"
#include "support/rng.h"

namespace chehab::fhe {

/// Encryption parameters.
struct SealLiteParams
{
    int n = 1024;                     ///< Polynomial modulus degree.
    int prime_bits = 30;              ///< Bits per RNS prime.
    int prime_count = 6;              ///< q = product of this many primes.
    std::uint64_t plain_modulus = 65537; ///< t, prime, t ≡ 1 (mod 2n).
    std::uint64_t seed = 0x5ea11e;    ///< Key/encryption randomness seed.
    int error_stddev_x10 = 32;        ///< σ = 3.2 (x10 to stay integral).
    int decomp_bits = 15;             ///< Key-switch digit width 2^w within
                                      ///  each RNS residue (noise/size
                                      ///  trade-off, as in SEAL).
};

/// Polynomial in RNS form: prime-major layout, `prime_count * n` words.
struct RnsPoly
{
    std::vector<std::uint64_t> data;
    int k = 0; ///< Number of primes.
    int n = 0;

    std::uint64_t* component(int i) { return data.data() + static_cast<std::size_t>(i) * n; }
    const std::uint64_t* component(int i) const
    {
        return data.data() + static_cast<std::size_t>(i) * n;
    }
};

/// Plaintext polynomial mod t (coefficient form).
struct Plaintext
{
    std::vector<std::uint64_t> coeffs;
};

/// Degree-1 RLWE ciphertext.
struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
};

/// Context + key material + evaluator in one object (SealLite is small
/// enough that SEAL's context/keygen/encryptor/evaluator split would be
/// ceremony; the method names mirror SEAL's).
class SealLite
{
  public:
    explicit SealLite(SealLiteParams params = {});

    const SealLiteParams& params() const { return params_; }

    /// Usable SIMD slots (one batching row = n/2).
    int slots() const { return params_.n / 2; }

    /// log2 of the coefficient modulus (total budget headroom).
    int coeffModulusBits() const { return q_.bitLength(); }

    /// \name Batching
    /// @{
    /// Encode up to slots() integers (mod t) into a plaintext.
    Plaintext encode(const std::vector<std::int64_t>& values) const;
    /// Decode all slots() row-0 slot values.
    std::vector<std::int64_t> decode(const Plaintext& plain) const;
    /// @}

    /// \name Lane-sliced batching (slot coalescing)
    /// The service's batch planner packs several logical requests into
    /// one ciphertext row by giving each a contiguous region ("lane")
    /// of \p lane_stride slots. These helpers encode/decode at lane
    /// granularity; the stride must be positive and
    /// lanes.size() * lane_stride must fit in the row.
    /// @{
    /// Encode one region per lane: lane l's values land at slot offset
    /// l * lane_stride (each lane vector must be at most lane_stride
    /// wide; shorter vectors are zero-padded to the stride). Slots past
    /// the last lane stay zero.
    Plaintext encodeLanes(const std::vector<std::vector<std::int64_t>>& lanes,
                          int lane_stride) const;
    /// Decode the first \p width slots of each of \p num_lanes lanes,
    /// starting at lane index \p first_lane (the cross-kernel composite
    /// places a member's lanes at an arbitrary lane-aligned offset of
    /// the shared row, not necessarily at lane 0).
    std::vector<std::vector<std::int64_t>>
    decodeLanes(const Plaintext& plain, int lane_stride, int width,
                int num_lanes, int first_lane = 0) const;
    /// Decrypt, then decodeLanes.
    std::vector<std::vector<std::int64_t>>
    decryptLanes(const Ciphertext& ct, int lane_stride, int width,
                 int num_lanes, int first_lane = 0) const;
    /// @}

    /// \name Encryption
    /// @{
    Ciphertext encrypt(const Plaintext& plain);
    Plaintext decryptPlain(const Ciphertext& ct) const;
    std::vector<std::int64_t> decrypt(const Ciphertext& ct) const;
    /// @}

    /// \name Homomorphic evaluation
    /// @{
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;
    Ciphertext addPlain(const Ciphertext& a, const Plaintext& plain) const;
    Ciphertext mulPlain(const Ciphertext& a, const Plaintext& plain) const;
    /// Ciphertext-ciphertext multiply with relinearization.
    Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
    /// Cyclic left rotation of the batching row by \p step slots
    /// (negative = right). Requires the matching Galois key.
    Ciphertext rotate(const Ciphertext& a, int step) const;
    /// @}

    /// Re-seed the encryption/error randomness stream. Key material
    /// (secret, relinearization and Galois keys) is unaffected: the
    /// secret and relin keys are fixed at construction, and Galois keys
    /// derive their randomness from (params seed, step) alone. The
    /// service's runtime pool reseeds per request so a pooled, reused
    /// scheme produces bit-identical noise accounting regardless of
    /// which requests ran on it before.
    void reseedRandomness(std::uint64_t seed) { rng_.reseed(seed); }

    /// \name Rotation (Galois) keys — App. B's χ set feeds this.
    /// @{
    /// Generate keys for \p steps (already-present steps are skipped).
    /// Each key's randomness is derived deterministically from the
    /// params seed and the step, so the key for a given step is
    /// bit-identical no matter when or in what order it is generated —
    /// pooled runtimes can accumulate keys across requests without
    /// becoming history-dependent.
    void makeGaloisKeys(const std::vector<int>& steps);
    bool hasGaloisKey(int step) const;
    int numGaloisKeys() const { return static_cast<int>(galois_keys_.size()); }
    /// @}

    /// \name Noise measurement (App. H.1)
    /// @{
    /// Remaining invariant noise budget in bits (<= 0 means decryption
    /// is no longer guaranteed).
    int noiseBudgetBits(const Ciphertext& ct) const;
    /// Budget of a fresh encryption under these parameters.
    int freshNoiseBudget();
    /// @}

  private:
    struct KeySwitchKey
    {
        // One (b, a) pair per (RNS prime, base-2^w digit) combination:
        // entry i*digits+d encrypts T_i * B^d * target.
        std::vector<RnsPoly> b;
        std::vector<RnsPoly> a;
    };

    RnsPoly zeroPoly() const;
    RnsPoly uniformPoly();
    /// Small (ternary / gaussian) polynomial lifted to RNS.
    RnsPoly liftSmall(const std::vector<int>& coeffs) const;
    std::vector<int> sampleTernary();
    std::vector<int> sampleError();

    void addInPlace(RnsPoly& a, const RnsPoly& b) const;
    void subInPlace(RnsPoly& a, const RnsPoly& b) const;
    void negateInPlace(RnsPoly& a) const;
    /// Negacyclic product via per-prime NTT.
    RnsPoly mulPoly(const RnsPoly& a, const RnsPoly& b) const;
    /// Apply x -> x^galois_element to every RNS component.
    RnsPoly applyAutomorphism(const RnsPoly& a,
                              std::uint64_t galois_element) const;

    /// Lift a plaintext (mod t) into RNS form.
    RnsPoly liftPlain(const Plaintext& plain) const;

    /// Key-switch digit count per RNS prime.
    int digitsPerPrime() const;

    /// Build a key-switching key for target polynomial \p target (s², or
    /// an automorphism image of s).
    KeySwitchKey makeKeySwitchKey(const RnsPoly& target);
    /// Key-switch \p poly (a component that currently multiplies the key
    /// target) onto (delta_c0, delta_c1).
    void keySwitch(const RnsPoly& poly, const KeySwitchKey& key,
                   RnsPoly& delta_c0, RnsPoly& delta_c1) const;

    /// Galois element for a left rotation by \p step.
    std::uint64_t galoisElement(int step) const;

    /// CRT-recompose coefficient \p index of \p poly.
    BigInt recomposeCoeff(const RnsPoly& poly, int index) const;

    SealLiteParams params_;
    std::vector<std::uint64_t> primes_;
    std::vector<NttTables> ntt_;
    BigInt q_;
    std::vector<BigInt> q_hat_;                ///< q / q_i.
    std::vector<std::uint64_t> q_hat_inv_;     ///< (q/q_i)^-1 mod q_i.
    std::vector<std::uint64_t> zeta_powers_;   ///< 2n-th root powers mod t.
    std::vector<int> slot_exponents_;          ///< e_j = 3^j mod 2n (row 0).
    std::uint64_t inv_n_mod_t_ = 0;

    std::vector<int> secret_;                  ///< Ternary secret key.
    RnsPoly secret_rns_;
    KeySwitchKey relin_key_;
    std::unordered_map<int, KeySwitchKey> galois_keys_;
    std::unordered_map<int, std::uint64_t> galois_elements_;
    Rng rng_;
    int fresh_budget_ = -1;
};

} // namespace chehab::fhe
