/// \file
/// SealLite: a from-scratch RLWE homomorphic encryption backend standing
/// in for Microsoft SEAL (§4.4, §7.4).
///
/// It implements the exact integer BGV formulation of the
/// Brakerski-Gentry-Vaikuntanathan family in full-RNS form: an RNS
/// coefficient modulus q = Π qᵢ of NTT-friendly primes, ternary secrets,
/// symmetric RLWE encryption (c₀ = −a·s + t·e + m, c₁ = a), ciphertext
/// add/sub/negate, plaintext add/multiply, ciphertext multiply with
/// RNS-basis relinearization, Galois-automorphism slot rotations with key
/// switching, CRT batching over the plaintext modulus t, SEAL-style
/// invariant-noise-budget measurement, and BGV modulus switching
/// (modSwitchTo: drop trailing RNS primes mid-circuit once the noise
/// demand fits the smaller chain — the runtime support behind the
/// compiler's mod-switch pass).
///
/// Modulus switching (exactness contract): dropping the last prime q_l
/// rescales every component by q_l^{-1} using a correction δ with
/// δ ≡ c (mod q_l) and δ ≡ 0 (mod t), which multiplies the encoded
/// plaintext by q_l^{-1} mod t; the implementation immediately undoes
/// that by folding the centered scalar φ ≡ q_l (mod t) into the same
/// per-coefficient multiply, so ciphertexts never carry a correction
/// factor and decoded outputs are bit-identical with or without drops
/// (while noise bounds hold — the compiler pass gates drops on a
/// deterministic noise simulation with margin).
///
/// Substitution note (documented in DESIGN.md): the paper evaluates on
/// BFV; we implement its sibling exact scheme BGV because BGV's multiply
/// is computable entirely in 64-bit RNS arithmetic (BFV's t/q scaled
/// multiply needs multi-precision polynomial arithmetic on the hot path).
/// Both schemes expose the same operation set (SEAL ships both), have the
/// same batching/rotation semantics, and the same noise-consumption shape
/// the evaluation measures: multiplications consume budget multiplicatively,
/// additions additively, rotations a key-switch constant.
///
/// SECURITY: parameters default to toy sizes for test speed; nothing here
/// is hardened (no constant-time code, reduced n). Do not reuse for real
/// deployments.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fhe/bigint.h"
#include "fhe/ntt.h"
#include "fhe/poly_arena.h"
#include "support/rng.h"

namespace chehab::fhe {

/// Encryption parameters.
struct SealLiteParams
{
    int n = 1024;                     ///< Polynomial modulus degree.
    int prime_bits = 30;              ///< Bits per RNS prime.
    int prime_count = 6;              ///< q = product of this many primes.
    std::uint64_t plain_modulus = 65537; ///< t, prime, t ≡ 1 (mod 2n).
    std::uint64_t seed = 0x5ea11e;    ///< Key/encryption randomness seed.
    int error_stddev_x10 = 32;        ///< σ = 3.2 (x10 to stay integral).
    int decomp_bits = 15;             ///< Key-switch digit width 2^w within
                                      ///  each RNS residue (noise/size
                                      ///  trade-off, as in SEAL).
};

/// Polynomial in RNS form: prime-major layout, `k * n` words. k is the
/// poly's *level* — the number of leading chain primes it still carries
/// (modulus switching truncates trailing components).
struct RnsPoly
{
    std::vector<std::uint64_t> data;
    int k = 0; ///< Number of primes (current level).
    int n = 0;

    std::uint64_t* component(int i) { return data.data() + static_cast<std::size_t>(i) * n; }
    const std::uint64_t* component(int i) const
    {
        return data.data() + static_cast<std::size_t>(i) * n;
    }
};

/// A polynomial cached in per-prime NTT (evaluation) form with a Shoup
/// companion per slot: multiplying a variable coefficient-form operand
/// against a cached form costs one forward + pointwise Shoup multiplies
/// + one inverse (key-switch keys, the secret, and repeated plaintext
/// constants all qualify). Always built at the full level; a level-k
/// consumer reads the first k components (RNS primes are independent).
struct NttForm
{
    std::vector<std::uint64_t> values; ///< Prime-major, k * n words.
    std::vector<std::uint64_t> shoup;  ///< Shoup companions, same layout.
    int k = 0;
    int n = 0;

    const std::uint64_t* component(int i) const
    {
        return values.data() + static_cast<std::size_t>(i) * n;
    }
    const std::uint64_t* shoupComponent(int i) const
    {
        return shoup.data() + static_cast<std::size_t>(i) * n;
    }
};

/// Plaintext polynomial mod t (coefficient form).
struct Plaintext
{
    std::vector<std::uint64_t> coeffs;
};

/// Degree-1 RLWE ciphertext.
struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
};

/// Context + key material + evaluator in one object (SealLite is small
/// enough that SEAL's context/keygen/encryptor/evaluator split would be
/// ceremony; the method names mirror SEAL's).
class SealLite
{
  public:
    explicit SealLite(SealLiteParams params = {});

    const SealLiteParams& params() const { return params_; }

    /// Usable SIMD slots (one batching row = n/2).
    int slots() const { return params_.n / 2; }

    /// log2 of the full coefficient modulus (total budget headroom).
    int coeffModulusBits() const { return coeffModulusBitsAt(levels()); }

    /// \name Modulus chain levels
    /// @{
    /// Number of primes in the full chain.
    int levels() const { return static_cast<int>(primes_.size()); }
    /// log2 of the coefficient modulus at \p level primes (1..levels()).
    int coeffModulusBitsAt(int level) const;
    /// The chain primes, in order (index < level participates).
    const std::vector<std::uint64_t>& primeChain() const { return primes_; }
    /// Current level of a ciphertext.
    int level(const Ciphertext& ct) const { return ct.c0.k; }
    /// Switch \p ct down to \p level primes (1 <= level <= current),
    /// dropping trailing chain primes one at a time. Exact: the decoded
    /// plaintext is unchanged (see the header notes); noise shrinks by
    /// roughly prime_bits and grows by ~log2(t) per drop, and the
    /// budget is thereafter measured against the smaller modulus.
    void modSwitchTo(Ciphertext& ct, int level) const;
    /// @}

    /// \name Batching
    /// @{
    /// Encode up to slots() integers (mod t) into a plaintext.
    Plaintext encode(const std::vector<std::int64_t>& values) const;
    /// Decode all slots() row-0 slot values.
    std::vector<std::int64_t> decode(const Plaintext& plain) const;
    /// @}

    /// \name Lane-sliced batching (slot coalescing)
    /// The service's batch planner packs several logical requests into
    /// one ciphertext row by giving each a contiguous region ("lane")
    /// of \p lane_stride slots. These helpers encode/decode at lane
    /// granularity; the stride must be positive and
    /// lanes.size() * lane_stride must fit in the row.
    /// @{
    /// Encode one region per lane: lane l's values land at slot offset
    /// l * lane_stride (each lane vector must be at most lane_stride
    /// wide; shorter vectors are zero-padded to the stride). Slots past
    /// the last lane stay zero.
    Plaintext encodeLanes(const std::vector<std::vector<std::int64_t>>& lanes,
                          int lane_stride) const;
    /// Decode the first \p width slots of each of \p num_lanes lanes,
    /// starting at lane index \p first_lane (the cross-kernel composite
    /// places a member's lanes at an arbitrary lane-aligned offset of
    /// the shared row, not necessarily at lane 0).
    std::vector<std::vector<std::int64_t>>
    decodeLanes(const Plaintext& plain, int lane_stride, int width,
                int num_lanes, int first_lane = 0) const;
    /// Decrypt, then decodeLanes.
    std::vector<std::vector<std::int64_t>>
    decryptLanes(const Ciphertext& ct, int lane_stride, int width,
                 int num_lanes, int first_lane = 0) const;
    /// @}

    /// \name Encryption
    /// @{
    Ciphertext encrypt(const Plaintext& plain);
    Plaintext decryptPlain(const Ciphertext& ct) const;
    std::vector<std::int64_t> decrypt(const Ciphertext& ct) const;
    /// @}

    /// \name Homomorphic evaluation
    /// Binary ciphertext operations require both operands at the same
    /// level (the runtime's drop points switch every live ciphertext in
    /// lockstep, so this holds by construction).
    /// @{
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;
    Ciphertext addPlain(const Ciphertext& a, const Plaintext& plain) const;
    Ciphertext mulPlain(const Ciphertext& a, const Plaintext& plain) const;
    /// Ciphertext-ciphertext multiply with relinearization.
    Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
    /// Cyclic left rotation of the batching row by \p step slots
    /// (negative = right). Requires the matching Galois key.
    Ciphertext rotate(const Ciphertext& a, int step) const;
    /// @}

    /// \name Destructive (in-place) evaluation forms
    /// Bit-identical results to the copying forms above, mutating \p a
    /// instead of copying both component polys. The runtime's in-place
    /// evaluator consumes a register's last use through these; the
    /// copying forms themselves are implemented as clone() + in-place,
    /// so every evaluator allocation flows through the arena either
    /// way.
    /// @{
    void addInPlace(Ciphertext& a, const Ciphertext& b) const;
    void subInPlace(Ciphertext& a, const Ciphertext& b) const;
    void negateInPlace(Ciphertext& a) const;
    void addPlainInPlace(Ciphertext& a, const Plaintext& plain) const;
    void mulPlainInPlace(Ciphertext& a, const Plaintext& plain) const;
    /// Arena-backed deep copy of a ciphertext.
    Ciphertext clone(const Ciphertext& a) const;
    /// Return a dead ciphertext's / poly's buffers to the arena for
    /// reuse by later ops (steady-state evaluation reaches zero fresh
    /// allocations once every op's dead values are recycled).
    void recycle(Ciphertext&& ct) const;
    void recycle(RnsPoly&& poly) const;
    /// @}

    /// \name Arena observability and control
    /// @{
    PolyArena::Stats arenaStats() const { return arena_.stats(); }
    /// Disabled = every acquire is a fresh heap allocation (the
    /// arena-on-vs-off differential tests run both ways).
    void setArenaEnabled(bool enabled) { arena_.setEnabled(enabled); }
    /// @}

    /// Re-seed the encryption/error randomness stream. Key material
    /// (secret, relinearization and Galois keys) is unaffected: the
    /// secret and relin keys are fixed at construction, and Galois keys
    /// derive their randomness from (params seed, step) alone. The
    /// service's runtime pool reseeds per request so a pooled, reused
    /// scheme produces bit-identical noise accounting regardless of
    /// which requests ran on it before.
    void reseedRandomness(std::uint64_t seed) { rng_.reseed(seed); }

    /// \name Rotation (Galois) keys — App. B's χ set feeds this.
    /// @{
    /// Generate keys for \p steps (already-present steps are skipped).
    /// Each key's randomness is derived deterministically from the
    /// params seed and the step, so the key for a given step is
    /// bit-identical no matter when or in what order it is generated —
    /// pooled runtimes can accumulate keys across requests without
    /// becoming history-dependent.
    void makeGaloisKeys(const std::vector<int>& steps);
    bool hasGaloisKey(int step) const;
    int numGaloisKeys() const { return static_cast<int>(galois_keys_.size()); }
    /// @}

    /// \name Noise measurement (App. H.1)
    /// @{
    /// Remaining invariant noise budget in bits, measured against the
    /// ciphertext's *current* coefficient modulus (<= 0 means
    /// decryption is no longer guaranteed).
    int noiseBudgetBits(const Ciphertext& ct) const;
    /// Budget of a fresh encryption under these parameters.
    int freshNoiseBudget();
    /// @}

  private:
    struct KeySwitchKey
    {
        // One (b, a) pair per (RNS prime, base-2^w digit) combination:
        // entry i*digits+d encrypts T_i * B^d * target. Stored in NTT
        // form (with Shoup companions) — key switching only ever
        // multiplies them against freshly decomposed digit polynomials.
        std::vector<NttForm> b;
        std::vector<NttForm> a;
    };

    /// Per-level CRT recomposition tables (level = index + 1 primes).
    struct LevelTables
    {
        BigInt q;
        BigInt half_q;
        std::uint64_t q_mod_t = 0;
        std::vector<BigInt> q_hat;            ///< q / q_i.
        std::vector<std::uint64_t> q_hat_inv; ///< (q/q_i)^-1 mod q_i.
    };

    RnsPoly zeroPoly(int k = 0) const; ///< k = 0 means full level.
    RnsPoly uniformPoly();
    /// Small (ternary / gaussian) polynomial lifted to RNS.
    RnsPoly liftSmall(const std::vector<int>& coeffs) const;
    std::vector<int> sampleTernary();
    std::vector<int> sampleError();

    void addInPlace(RnsPoly& a, const RnsPoly& b) const;
    void subInPlace(RnsPoly& a, const RnsPoly& b) const;
    void negateInPlace(RnsPoly& a) const;
    /// Arena-backed deep copy of one poly.
    RnsPoly clonePoly(const RnsPoly& a) const;
    /// Negacyclic product via per-prime NTT (operands at equal levels).
    RnsPoly mulPoly(const RnsPoly& a, const RnsPoly& b) const;
    /// Negacyclic product against a cached NTT form: one forward, n
    /// Shoup pointwise multiplies, one inverse per prime. Result at
    /// a's level (the form is full-level).
    RnsPoly mulPolyNtt(const RnsPoly& a, const NttForm& b) const;
    /// mulPolyNtt writing the product back into \p a's own buffer.
    void mulPolyNttInPlace(RnsPoly& a, const NttForm& b) const;
    /// Transform \p a (full level) into cached NTT form.
    NttForm toNttForm(const RnsPoly& a) const;
    /// Apply x -> x^galois_element to every RNS component.
    RnsPoly applyAutomorphism(const RnsPoly& a,
                              std::uint64_t galois_element) const;

    /// Lift a plaintext (mod t) into RNS form at level \p k (0 = full).
    RnsPoly liftPlain(const Plaintext& plain, int k = 0) const;

    /// Cached (lifted + NTT-transformed) form of \p plain for repeated
    /// ciphertext-plaintext multiplies across packed executions.
    std::shared_ptr<const NttForm> plainNttForm(const Plaintext& plain) const;

    /// Drop the last RNS prime of \p poly (the rescale + folded
    /// t-correction described in the header notes).
    void modSwitchPolyDown(RnsPoly& poly) const;

    /// Key-switch digit count per RNS prime.
    int digitsPerPrime() const;

    /// Build a key-switching key for target polynomial \p target (s², or
    /// an automorphism image of s).
    KeySwitchKey makeKeySwitchKey(const RnsPoly& target);
    /// Key-switch \p poly (a component that currently multiplies the key
    /// target) onto (delta_c0, delta_c1). Operates at poly's level: only
    /// the first poly.k primes' digits and key components participate
    /// (valid because the full-level CRT basis T_i reduces to the
    /// level-k basis mod the surviving primes).
    void keySwitch(const RnsPoly& poly, const KeySwitchKey& key,
                   RnsPoly& delta_c0, RnsPoly& delta_c1) const;

    /// Galois element for a left rotation by \p step.
    std::uint64_t galoisElement(int step) const;

    /// CRT-recompose coefficient \p index of \p poly at poly's level.
    BigInt recomposeCoeff(const RnsPoly& poly, int index) const;

    SealLiteParams params_;
    std::vector<std::uint64_t> primes_;
    /// Shared process-wide tables (see acquireNttTables).
    std::vector<std::shared_ptr<const NttTables>> ntt_;
    std::vector<LevelTables> level_tables_;    ///< [k-1] = level-k tables.
    /// Modulus-switch precomputation for dropping prime index l
    /// (level l+1 -> l): q_l^{-1} mod t, and per surviving prime i the
    /// folded factor (q_l^{-1} mod q_i) * (φ mod q_i) with φ the
    /// centered representative of q_l mod t.
    std::vector<std::uint64_t> inv_prime_mod_t_;
    std::vector<std::vector<std::uint64_t>> switch_factor_;
    std::vector<std::uint64_t> zeta_powers_;   ///< 2n-th root powers mod t.
    std::vector<int> slot_exponents_;          ///< e_j = 3^j mod 2n (row 0).
    std::uint64_t inv_n_mod_t_ = 0;

    std::vector<int> secret_;                  ///< Ternary secret key.
    RnsPoly secret_rns_;
    NttForm secret_ntt_;                       ///< Cached NTT form of s.
    KeySwitchKey relin_key_;
    std::unordered_map<int, KeySwitchKey> galois_keys_;
    std::unordered_map<int, std::uint64_t> galois_elements_;
    Rng rng_;
    int fresh_budget_ = -1;

    /// Cache of NTT forms for repeatedly-used plaintext constants
    /// (packed masks are re-multiplied on every run of a cached
    /// program). Keyed by coefficient hash with full-coefficient
    /// verification on hit; cleared wholesale at capacity.
    struct PlainCacheEntry
    {
        std::vector<std::uint64_t> coeffs;
        NttForm form;
    };
    mutable std::mutex plain_cache_mutex_;
    mutable std::unordered_map<std::uint64_t,
                               std::shared_ptr<const PlainCacheEntry>>
        plain_ntt_cache_;

    /// Buffer pool behind every RnsPoly / NTT-scratch allocation this
    /// instance makes (zeroPoly and friends all draw from it). Mutable:
    /// const evaluator methods acquire and release scratch.
    mutable PolyArena arena_;
};

} // namespace chehab::fhe
