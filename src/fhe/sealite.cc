#include "fhe/sealite.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "fhe/modarith.h"
#include "support/error.h"

namespace chehab::fhe {

SealLite::SealLite(SealLiteParams params)
    : params_(params), rng_(params.seed)
{
    const auto n = static_cast<std::uint64_t>(params_.n);
    const std::uint64_t t = params_.plain_modulus;
    CHEHAB_ASSERT((params_.n & (params_.n - 1)) == 0,
                  "n must be a power of two");
    CHEHAB_ASSERT((t - 1) % (2 * n) == 0,
                  "t must be ≡ 1 (mod 2n) for batching");
    // Pointwise NTT products use single-word Barrett multiplies whose
    // 64-bit product bound needs p^2 < 2^64.
    CHEHAB_ASSERT(params_.prime_bits <= 31,
                  "chain primes must stay below 2^32");

    primes_ = findNttPrimes(params_.prime_bits, params_.prime_count, 2 * n);
    ntt_.reserve(primes_.size());
    for (std::uint64_t p : primes_) {
        ntt_.push_back(acquireNttTables(params_.n, p));
    }

    // Per-level CRT recomposition tables: level k uses the first k chain
    // primes (modulus switching walks down the chain one prime at a time).
    level_tables_.resize(primes_.size());
    for (std::size_t lvl = 1; lvl <= primes_.size(); ++lvl) {
        LevelTables& tab = level_tables_[lvl - 1];
        tab.q = BigInt(1);
        for (std::size_t i = 0; i < lvl; ++i) {
            tab.q = tab.q.multiplySmall(primes_[i]);
        }
        std::uint64_t rem = 0;
        tab.half_q = tab.q.divmodSmall(2, rem);
        tab.q.divmodSmall(t, tab.q_mod_t);
        for (std::size_t i = 0; i < lvl; ++i) {
            BigInt q_hat(1);
            for (std::size_t j = 0; j < lvl; ++j) {
                if (j != i) q_hat = q_hat.multiplySmall(primes_[j]);
            }
            // (q/q_i) mod q_i via divmod on the bignum.
            std::uint64_t q_hat_mod_qi = 0;
            q_hat.divmodSmall(primes_[i], q_hat_mod_qi);
            tab.q_hat_inv.push_back(invMod(q_hat_mod_qi, primes_[i]));
            tab.q_hat.push_back(std::move(q_hat));
        }
    }

    // Modulus-switch constants for dropping prime index l (level l+1
    // -> l): q_l^{-1} mod t for the δ construction, and per surviving
    // prime the rescale factor q_l^{-1} folded with the centered scalar
    // φ ≡ q_l (mod t) that restores the plaintext scaling (see header).
    inv_prime_mod_t_.assign(primes_.size(), 0);
    switch_factor_.resize(primes_.size());
    for (std::size_t l = 1; l < primes_.size(); ++l) {
        const std::uint64_t ql = primes_[l];
        const std::uint64_t ql_mod_t = ql % t;
        CHEHAB_ASSERT(ql_mod_t != 0, "chain prime divisible by t");
        inv_prime_mod_t_[l] = invMod(ql_mod_t, t);
        const bool phi_negative = ql_mod_t > t / 2;
        const std::uint64_t phi_abs = phi_negative ? t - ql_mod_t : ql_mod_t;
        auto& factors = switch_factor_[l];
        factors.resize(l);
        for (std::size_t i = 0; i < l; ++i) {
            const std::uint64_t qi = primes_[i];
            const std::uint64_t inv_ql = invMod(ql % qi, qi);
            std::uint64_t phi_mod = phi_abs % qi;
            if (phi_negative && phi_mod != 0) phi_mod = qi - phi_mod;
            factors[i] = mulMod(inv_ql, phi_mod, qi);
        }
    }

    // Batching tables mod t: zeta is a primitive 2n-th root; slot j of
    // row 0 is the evaluation at zeta^(3^j mod 2n).
    const std::uint64_t zeta = findPrimitiveRoot(2 * n, t);
    zeta_powers_.resize(2 * n);
    std::uint64_t power = 1;
    for (std::uint64_t i = 0; i < 2 * n; ++i) {
        zeta_powers_[i] = power;
        power = mulMod(power, zeta, t);
    }
    slot_exponents_.resize(static_cast<std::size_t>(params_.n) / 2);
    std::uint64_t e = 1;
    for (auto& exponent : slot_exponents_) {
        exponent = static_cast<int>(e);
        e = (e * 3) % (2 * n);
    }
    inv_n_mod_t_ = invMod(n % t, t);

    // Key material.
    secret_ = sampleTernary();
    secret_rns_ = liftSmall(secret_);
    secret_ntt_ = toNttForm(secret_rns_);
    relin_key_ = makeKeySwitchKey(mulPoly(secret_rns_, secret_rns_));
}

int
SealLite::coeffModulusBitsAt(int level) const
{
    CHEHAB_ASSERT(level >= 1 && level <= levels(), "bad chain level");
    return level_tables_[static_cast<std::size_t>(level) - 1].q.bitLength();
}

// ---------------------------------------------------------------------
// Sampling and RNS helpers.
// ---------------------------------------------------------------------

RnsPoly
SealLite::zeroPoly(int k) const
{
    // Arena-backed: steady-state evaluation recycles every dead poly,
    // so after a priming pass this is a freelist pop + memset, never a
    // heap allocation (the zero-allocs-per-op contract).
    RnsPoly poly;
    poly.k = k == 0 ? static_cast<int>(primes_.size()) : k;
    poly.n = params_.n;
    poly.data =
        arena_.acquireZeroed(static_cast<std::size_t>(poly.k) * poly.n);
    return poly;
}

RnsPoly
SealLite::clonePoly(const RnsPoly& a) const
{
    RnsPoly out;
    out.k = a.k;
    out.n = a.n;
    out.data = arena_.acquire(a.data.size());
    std::copy(a.data.begin(), a.data.end(), out.data.begin());
    return out;
}

RnsPoly
SealLite::uniformPoly()
{
    RnsPoly poly = zeroPoly();
    for (int i = 0; i < poly.k; ++i) {
        std::uint64_t* c = poly.component(i);
        for (int j = 0; j < poly.n; ++j) c[j] = rng_.uniformInt(primes_[static_cast<std::size_t>(i)]);
    }
    return poly;
}

RnsPoly
SealLite::liftSmall(const std::vector<int>& coeffs) const
{
    RnsPoly poly = zeroPoly();
    for (int i = 0; i < poly.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* c = poly.component(i);
        for (int j = 0; j < poly.n; ++j) {
            const int v = coeffs[static_cast<std::size_t>(j)];
            c[j] = v >= 0 ? static_cast<std::uint64_t>(v)
                          : p - static_cast<std::uint64_t>(-v);
        }
    }
    return poly;
}

std::vector<int>
SealLite::sampleTernary()
{
    std::vector<int> coeffs(static_cast<std::size_t>(params_.n));
    for (auto& c : coeffs) {
        c = static_cast<int>(rng_.uniformInt(3)) - 1;
    }
    return coeffs;
}

std::vector<int>
SealLite::sampleError()
{
    // Rounded gaussian with sigma = error_stddev_x10/10, clipped at 6σ.
    const double sigma = params_.error_stddev_x10 / 10.0;
    std::vector<int> coeffs(static_cast<std::size_t>(params_.n));
    for (auto& c : coeffs) {
        double draw = rng_.normal() * sigma;
        const double bound = 6.0 * sigma;
        if (draw > bound) draw = bound;
        if (draw < -bound) draw = -bound;
        c = static_cast<int>(std::lround(draw));
    }
    return coeffs;
}

void
SealLite::addInPlace(RnsPoly& a, const RnsPoly& b) const
{
    CHEHAB_ASSERT(a.k == b.k, "RNS add across mismatched levels");
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* x = a.component(i);
        const std::uint64_t* y = b.component(i);
        for (int j = 0; j < a.n; ++j) x[j] = addMod(x[j], y[j], p);
    }
}

void
SealLite::subInPlace(RnsPoly& a, const RnsPoly& b) const
{
    CHEHAB_ASSERT(a.k == b.k, "RNS sub across mismatched levels");
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* x = a.component(i);
        const std::uint64_t* y = b.component(i);
        for (int j = 0; j < a.n; ++j) x[j] = subMod(x[j], y[j], p);
    }
}

void
SealLite::negateInPlace(RnsPoly& a) const
{
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* x = a.component(i);
        for (int j = 0; j < a.n; ++j) x[j] = x[j] == 0 ? 0 : p - x[j];
    }
}

RnsPoly
SealLite::mulPoly(const RnsPoly& a, const RnsPoly& b) const
{
    CHEHAB_ASSERT(a.k == b.k, "RNS multiply across mismatched levels");
    RnsPoly result = zeroPoly(a.k);
    std::vector<std::uint64_t> fa =
        arena_.acquire(static_cast<std::size_t>(params_.n));
    std::vector<std::uint64_t> fb =
        arena_.acquire(static_cast<std::size_t>(params_.n));
    for (int i = 0; i < result.k; ++i) {
        const NttTables& tables = *ntt_[static_cast<std::size_t>(i)];
        const Barrett& reducer = tables.reducer();
        const std::uint64_t* x = a.component(i);
        const std::uint64_t* y = b.component(i);
        std::copy(x, x + params_.n, fa.begin());
        std::copy(y, y + params_.n, fb.begin());
        tables.forward(fa.data());
        tables.forward(fb.data());
        for (int j = 0; j < params_.n; ++j) {
            fa[static_cast<std::size_t>(j)] =
                reducer.mulMod(fa[static_cast<std::size_t>(j)],
                               fb[static_cast<std::size_t>(j)]);
        }
        tables.inverse(fa.data());
        std::copy(fa.begin(), fa.end(), result.component(i));
    }
    arena_.release(std::move(fa));
    arena_.release(std::move(fb));
    return result;
}

RnsPoly
SealLite::mulPolyNtt(const RnsPoly& a, const NttForm& b) const
{
    CHEHAB_ASSERT(b.n == a.n && b.k >= a.k,
                  "NTT form shorter than the operand level");
    RnsPoly result = zeroPoly(a.k);
    std::vector<std::uint64_t> fa =
        arena_.acquire(static_cast<std::size_t>(params_.n));
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        const NttTables& tables = *ntt_[static_cast<std::size_t>(i)];
        const std::uint64_t* x = a.component(i);
        std::copy(x, x + params_.n, fa.begin());
        tables.forward(fa.data());
        const std::uint64_t* w = b.component(i);
        const std::uint64_t* ws = b.shoupComponent(i);
        for (int j = 0; j < params_.n; ++j) {
            fa[static_cast<std::size_t>(j)] =
                mulModShoup(fa[static_cast<std::size_t>(j)],
                            w[static_cast<std::size_t>(j)],
                            ws[static_cast<std::size_t>(j)], p);
        }
        tables.inverse(fa.data());
        std::copy(fa.begin(), fa.end(), result.component(i));
    }
    arena_.release(std::move(fa));
    return result;
}

void
SealLite::mulPolyNttInPlace(RnsPoly& a, const NttForm& b) const
{
    CHEHAB_ASSERT(b.n == a.n && b.k >= a.k,
                  "NTT form shorter than the operand level");
    // Transforms run directly on a's components — no scratch at all.
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        const NttTables& tables = *ntt_[static_cast<std::size_t>(i)];
        std::uint64_t* x = a.component(i);
        tables.forward(x);
        const std::uint64_t* w = b.component(i);
        const std::uint64_t* ws = b.shoupComponent(i);
        for (int j = 0; j < params_.n; ++j) {
            x[j] = mulModShoup(x[j], w[static_cast<std::size_t>(j)],
                               ws[static_cast<std::size_t>(j)], p);
        }
        tables.inverse(x);
    }
}

NttForm
SealLite::toNttForm(const RnsPoly& a) const
{
    NttForm form;
    form.k = a.k;
    form.n = a.n;
    form.values = a.data;
    form.shoup.resize(form.values.size());
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* v = form.values.data() +
                           static_cast<std::size_t>(i) * form.n;
        ntt_[static_cast<std::size_t>(i)]->forward(v);
        std::uint64_t* s = form.shoup.data() +
                           static_cast<std::size_t>(i) * form.n;
        for (int j = 0; j < form.n; ++j) {
            s[j] = shoupPrecompute(v[j], p);
        }
    }
    return form;
}

RnsPoly
SealLite::applyAutomorphism(const RnsPoly& a,
                            std::uint64_t galois_element) const
{
    RnsPoly result = zeroPoly(a.k);
    const auto two_n = static_cast<std::uint64_t>(2 * params_.n);
    for (int i = 0; i < a.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        const std::uint64_t* x = a.component(i);
        std::uint64_t* y = result.component(i);
        for (int j = 0; j < params_.n; ++j) {
            const std::uint64_t raw =
                (static_cast<std::uint64_t>(j) * galois_element) % two_n;
            if (raw < static_cast<std::uint64_t>(params_.n)) {
                y[raw] = x[j];
            } else {
                const std::uint64_t idx = raw - params_.n;
                y[idx] = x[j] == 0 ? 0 : p - x[j];
            }
        }
    }
    return result;
}

RnsPoly
SealLite::liftPlain(const Plaintext& plain, int k) const
{
    RnsPoly poly = zeroPoly(k);
    for (int i = 0; i < poly.k; ++i) {
        const std::uint64_t p = primes_[static_cast<std::size_t>(i)];
        std::uint64_t* c = poly.component(i);
        for (int j = 0; j < poly.n; ++j) {
            c[j] = plain.coeffs[static_cast<std::size_t>(j)] % p;
        }
    }
    return poly;
}

std::shared_ptr<const NttForm>
SealLite::plainNttForm(const Plaintext& plain) const
{
    // FNV-1a over the coefficients; the full vector is stored alongside
    // the form and compared on hit, so a hash collision degrades to a
    // rebuild rather than a wrong product.
    std::uint64_t hash = 1469598103934665603ULL;
    for (std::uint64_t v : plain.coeffs) {
        hash ^= v;
        hash *= 1099511628211ULL;
    }
    {
        std::lock_guard<std::mutex> lock(plain_cache_mutex_);
        auto it = plain_ntt_cache_.find(hash);
        if (it != plain_ntt_cache_.end() &&
            it->second->coeffs == plain.coeffs) {
            return {it->second, &it->second->form};
        }
    }
    auto entry = std::make_shared<PlainCacheEntry>();
    entry->coeffs = plain.coeffs;
    entry->form = toNttForm(liftPlain(plain));
    std::lock_guard<std::mutex> lock(plain_cache_mutex_);
    if (plain_ntt_cache_.size() >= 256) plain_ntt_cache_.clear();
    plain_ntt_cache_[hash] = entry;
    return {entry, &entry->form};
}

void
SealLite::modSwitchPolyDown(RnsPoly& poly) const
{
    CHEHAB_ASSERT(poly.k >= 2, "cannot drop the last chain prime");
    const int l = poly.k - 1;
    const std::uint64_t ql = primes_[static_cast<std::size_t>(l)];
    const std::uint64_t t = params_.plain_modulus;
    const std::uint64_t inv_ql_t = inv_prime_mod_t_[static_cast<std::size_t>(l)];
    const auto& factors = switch_factor_[static_cast<std::size_t>(l)];
    const std::uint64_t* last = poly.component(l);
    const auto half_ql = static_cast<std::int64_t>(ql / 2);

    // δ per coefficient: δ ≡ c (mod q_l) and δ ≡ 0 (mod t), built as the
    // centered residue δ0 of c mod q_l plus q_l times the centered lift
    // of -δ0·q_l^{-1} mod t, so |δ| <= q_l(t+1)/2 (fits int64 for the
    // <= 46-bit products the parameter asserts allow). The signed values
    // ride in an arena buffer as two's-complement bit patterns so drops
    // stay allocation-free too.
    std::vector<std::uint64_t> delta_buf =
        arena_.acquire(static_cast<std::size_t>(poly.n));
    std::int64_t* delta =
        reinterpret_cast<std::int64_t*>(delta_buf.data());
    for (int x = 0; x < poly.n; ++x) {
        const auto r = static_cast<std::int64_t>(last[x]);
        const std::int64_t delta0 =
            r > half_ql ? r - static_cast<std::int64_t>(ql) : r;
        const std::uint64_t d0_mod_t =
            delta0 >= 0
                ? static_cast<std::uint64_t>(delta0) % t
                : (t - static_cast<std::uint64_t>(-delta0) % t) % t;
        const std::uint64_t u = mulMod((t - d0_mod_t) % t, inv_ql_t, t);
        const std::int64_t uc =
            u > t / 2 ? static_cast<std::int64_t>(u - t)
                      : static_cast<std::int64_t>(u);
        delta[static_cast<std::size_t>(x)] =
            delta0 + static_cast<std::int64_t>(ql) * uc;
    }

    // Surviving components: c' = (c - δ) * q_l^{-1} * φ mod q_i with the
    // two scalars folded into one precomputed factor.
    for (int i = 0; i < l; ++i) {
        const std::uint64_t qi = primes_[static_cast<std::size_t>(i)];
        const std::uint64_t factor = factors[static_cast<std::size_t>(i)];
        std::uint64_t* c = poly.component(i);
        for (int x = 0; x < poly.n; ++x) {
            const std::int64_t d = delta[static_cast<std::size_t>(x)];
            const std::uint64_t d_mod =
                d >= 0 ? static_cast<std::uint64_t>(d) % qi
                       : (qi - static_cast<std::uint64_t>(-d) % qi) % qi;
            c[x] = mulMod(subMod(c[x], d_mod, qi), factor, qi);
        }
    }
    arena_.release(std::move(delta_buf));
    poly.k = l;
    poly.data.resize(static_cast<std::size_t>(l) * poly.n);
}

void
SealLite::modSwitchTo(Ciphertext& ct, int level) const
{
    CHEHAB_ASSERT(level >= 1 && level <= ct.c0.k,
                  "mod switch target outside the remaining chain");
    while (ct.c0.k > level) {
        modSwitchPolyDown(ct.c0);
        modSwitchPolyDown(ct.c1);
    }
}

// ---------------------------------------------------------------------
// Batching.
// ---------------------------------------------------------------------

Plaintext
SealLite::encode(const std::vector<std::int64_t>& values) const
{
    CHEHAB_ASSERT(static_cast<int>(values.size()) <= slots(),
                  "too many values for the batching row");
    const std::uint64_t t = params_.plain_modulus;
    const auto two_n = static_cast<std::uint64_t>(2 * params_.n);

    // Slot values (row 0 = requested vector, row 1 = zeros).
    std::vector<std::uint64_t> slot_values(slot_exponents_.size(), 0);
    for (std::size_t j = 0; j < values.size(); ++j) {
        const std::int64_t v = values[j] % static_cast<std::int64_t>(t);
        slot_values[j] =
            v >= 0 ? static_cast<std::uint64_t>(v)
                   : t - static_cast<std::uint64_t>(-v);
    }

    // c_k = n^{-1} * sum_j v_j * zeta^{-e_j * k}   (exact inverse CRT,
    // see DESIGN.md; O(n^2) on purpose — simple and obviously correct).
    Plaintext plain;
    plain.coeffs.assign(static_cast<std::size_t>(params_.n), 0);
    for (int k = 0; k < params_.n; ++k) {
        std::uint64_t acc = 0;
        for (std::size_t j = 0; j < slot_exponents_.size(); ++j) {
            if (slot_values[j] == 0) continue;
            const std::uint64_t exponent =
                (two_n -
                 (static_cast<std::uint64_t>(slot_exponents_[j]) * k) %
                     two_n) %
                two_n;
            acc = addMod(acc,
                         mulMod(slot_values[j], zeta_powers_[exponent], t),
                         t);
        }
        plain.coeffs[static_cast<std::size_t>(k)] =
            mulMod(acc, inv_n_mod_t_, t);
    }
    return plain;
}

std::vector<std::int64_t>
SealLite::decode(const Plaintext& plain) const
{
    const std::uint64_t t = params_.plain_modulus;
    const auto two_n = static_cast<std::uint64_t>(2 * params_.n);
    std::vector<std::int64_t> values(slot_exponents_.size(), 0);
    for (std::size_t j = 0; j < slot_exponents_.size(); ++j) {
        std::uint64_t acc = 0;
        for (int k = 0; k < params_.n; ++k) {
            const std::uint64_t coeff =
                plain.coeffs[static_cast<std::size_t>(k)];
            if (coeff == 0) continue;
            const std::uint64_t exponent =
                (static_cast<std::uint64_t>(slot_exponents_[j]) * k) % two_n;
            acc = addMod(acc, mulMod(coeff, zeta_powers_[exponent], t), t);
        }
        values[j] = static_cast<std::int64_t>(acc);
    }
    return values;
}

Plaintext
SealLite::encodeLanes(const std::vector<std::vector<std::int64_t>>& lanes,
                      int lane_stride) const
{
    CHEHAB_ASSERT(lane_stride > 0, "lane stride must be positive");
    CHEHAB_ASSERT(static_cast<int>(lanes.size()) * lane_stride <= slots(),
                  "lanes exceed the batching row");
    std::vector<std::int64_t> row(
        static_cast<std::size_t>(lanes.size()) *
            static_cast<std::size_t>(lane_stride),
        0);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        CHEHAB_ASSERT(static_cast<int>(lanes[l].size()) <= lane_stride,
                      "lane wider than its stride");
        std::copy(lanes[l].begin(), lanes[l].end(),
                  row.begin() + static_cast<std::ptrdiff_t>(
                                    l * static_cast<std::size_t>(lane_stride)));
    }
    return encode(row);
}

std::vector<std::vector<std::int64_t>>
SealLite::decodeLanes(const Plaintext& plain, int lane_stride, int width,
                      int num_lanes, int first_lane) const
{
    CHEHAB_ASSERT(lane_stride > 0 && width >= 0 && width <= lane_stride,
                  "bad lane slice");
    CHEHAB_ASSERT(first_lane >= 0 && num_lanes >= 0 &&
                      (first_lane + num_lanes) * lane_stride <= slots(),
                  "lanes exceed the batching row");
    const std::vector<std::int64_t> row = decode(plain);
    std::vector<std::vector<std::int64_t>> out(
        static_cast<std::size_t>(num_lanes));
    for (int l = 0; l < num_lanes; ++l) {
        const auto base = static_cast<std::size_t>(first_lane + l) *
                          static_cast<std::size_t>(lane_stride);
        out[static_cast<std::size_t>(l)].assign(
            row.begin() + static_cast<std::ptrdiff_t>(base),
            row.begin() + static_cast<std::ptrdiff_t>(
                              base + static_cast<std::size_t>(width)));
    }
    return out;
}

std::vector<std::vector<std::int64_t>>
SealLite::decryptLanes(const Ciphertext& ct, int lane_stride, int width,
                       int num_lanes, int first_lane) const
{
    return decodeLanes(decryptPlain(ct), lane_stride, width, num_lanes,
                       first_lane);
}

// ---------------------------------------------------------------------
// Encryption / decryption.
// ---------------------------------------------------------------------

Ciphertext
SealLite::encrypt(const Plaintext& plain)
{
    Ciphertext ct;
    ct.c1 = uniformPoly();
    // c0 = -(a*s) + t*e + m.
    ct.c0 = mulPolyNtt(ct.c1, secret_ntt_);
    negateInPlace(ct.c0);
    std::vector<int> error = sampleError();
    const auto t = static_cast<int>(params_.plain_modulus);
    for (auto& e : error) e *= t;
    RnsPoly error_rns = liftSmall(error);
    addInPlace(ct.c0, error_rns);
    recycle(std::move(error_rns));
    RnsPoly plain_rns = liftPlain(plain);
    addInPlace(ct.c0, plain_rns);
    recycle(std::move(plain_rns));
    return ct;
}

BigInt
SealLite::recomposeCoeff(const RnsPoly& poly, int index) const
{
    const LevelTables& tab =
        level_tables_[static_cast<std::size_t>(poly.k) - 1];
    BigInt value;
    for (int i = 0; i < poly.k; ++i) {
        const std::uint64_t scaled =
            mulMod(poly.component(i)[index],
                   tab.q_hat_inv[static_cast<std::size_t>(i)],
                   primes_[static_cast<std::size_t>(i)]);
        value = value.add(
            tab.q_hat[static_cast<std::size_t>(i)].multiplySmall(scaled));
    }
    return value.reduceBySubtraction(tab.q);
}

Plaintext
SealLite::decryptPlain(const Ciphertext& ct) const
{
    // v = c0 + c1*s mod q; m = (centered v) mod t. q here is the
    // ciphertext's *current* chain product — decryption works at every
    // level.
    RnsPoly v = mulPolyNtt(ct.c1, secret_ntt_);
    addInPlace(v, ct.c0);

    const std::uint64_t t = params_.plain_modulus;
    const LevelTables& tab =
        level_tables_[static_cast<std::size_t>(v.k) - 1];

    Plaintext plain;
    plain.coeffs.assign(static_cast<std::size_t>(params_.n), 0);
    for (int j = 0; j < params_.n; ++j) {
        const BigInt value = recomposeCoeff(v, j);
        std::uint64_t value_mod_t = 0;
        value.divmodSmall(t, value_mod_t);
        if (value.compare(tab.half_q) > 0) {
            // True integer is value - q (negative lift).
            value_mod_t = subMod(value_mod_t, tab.q_mod_t, t);
        }
        plain.coeffs[static_cast<std::size_t>(j)] = value_mod_t;
    }
    recycle(std::move(v));
    return plain;
}

std::vector<std::int64_t>
SealLite::decrypt(const Ciphertext& ct) const
{
    return decode(decryptPlain(ct));
}

// ---------------------------------------------------------------------
// Evaluator.
// ---------------------------------------------------------------------

Ciphertext
SealLite::clone(const Ciphertext& a) const
{
    Ciphertext out;
    out.c0 = clonePoly(a.c0);
    out.c1 = clonePoly(a.c1);
    return out;
}

void
SealLite::recycle(RnsPoly&& poly) const
{
    arena_.release(std::move(poly.data));
    poly.k = 0;
}

void
SealLite::recycle(Ciphertext&& ct) const
{
    recycle(std::move(ct.c0));
    recycle(std::move(ct.c1));
}

void
SealLite::addInPlace(Ciphertext& a, const Ciphertext& b) const
{
    addInPlace(a.c0, b.c0);
    addInPlace(a.c1, b.c1);
}

void
SealLite::subInPlace(Ciphertext& a, const Ciphertext& b) const
{
    subInPlace(a.c0, b.c0);
    subInPlace(a.c1, b.c1);
}

void
SealLite::negateInPlace(Ciphertext& a) const
{
    negateInPlace(a.c0);
    negateInPlace(a.c1);
}

void
SealLite::addPlainInPlace(Ciphertext& a, const Plaintext& plain) const
{
    RnsPoly lifted = liftPlain(plain, a.c0.k);
    addInPlace(a.c0, lifted);
    recycle(std::move(lifted));
}

void
SealLite::mulPlainInPlace(Ciphertext& a, const Plaintext& plain) const
{
    const std::shared_ptr<const NttForm> form = plainNttForm(plain);
    mulPolyNttInPlace(a.c0, *form);
    mulPolyNttInPlace(a.c1, *form);
}

Ciphertext
SealLite::add(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext out = clone(a);
    addInPlace(out, b);
    return out;
}

Ciphertext
SealLite::sub(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext out = clone(a);
    subInPlace(out, b);
    return out;
}

Ciphertext
SealLite::negate(const Ciphertext& a) const
{
    Ciphertext out = clone(a);
    negateInPlace(out);
    return out;
}

Ciphertext
SealLite::addPlain(const Ciphertext& a, const Plaintext& plain) const
{
    Ciphertext out = clone(a);
    addPlainInPlace(out, plain);
    return out;
}

Ciphertext
SealLite::mulPlain(const Ciphertext& a, const Plaintext& plain) const
{
    // Packed executions re-multiply the same masks on every run of a
    // cached program; the cached NTT form turns each mulPlain into one
    // forward + pointwise Shoup + one inverse per component.
    const std::shared_ptr<const NttForm> form = plainNttForm(plain);
    Ciphertext out;
    out.c0 = mulPolyNtt(a.c0, *form);
    out.c1 = mulPolyNtt(a.c1, *form);
    return out;
}

int
SealLite::digitsPerPrime() const
{
    return (params_.prime_bits + params_.decomp_bits - 1) /
           params_.decomp_bits;
}

SealLite::KeySwitchKey
SealLite::makeKeySwitchKey(const RnsPoly& target)
{
    KeySwitchKey key;
    const int k = static_cast<int>(primes_.size());
    const int digits = digitsPerPrime();
    const auto t = static_cast<int>(params_.plain_modulus);
    for (int i = 0; i < k; ++i) {
        const std::uint64_t p_i = primes_[static_cast<std::size_t>(i)];
        for (int d = 0; d < digits; ++d) {
            RnsPoly a_id = uniformPoly();
            RnsPoly b_id = mulPolyNtt(a_id, secret_ntt_);
            negateInPlace(b_id);
            std::vector<int> error = sampleError();
            for (auto& e : error) e *= t;
            addInPlace(b_id, liftSmall(error));
            // + T_i * B^d * target: the CRT basis vector T_i is 1 mod q_i
            // and 0 mod q_j, so in RNS this touches component i alone.
            const std::uint64_t base_power = powMod(
                1ULL << params_.decomp_bits,
                static_cast<std::uint64_t>(d), p_i);
            std::uint64_t* dst = b_id.component(i);
            const std::uint64_t* src = target.component(i);
            for (int j = 0; j < params_.n; ++j) {
                dst[j] = addMod(dst[j], mulMod(src[j], base_power, p_i),
                                p_i);
            }
            key.a.push_back(toNttForm(a_id));
            key.b.push_back(toNttForm(b_id));
        }
    }
    return key;
}

void
SealLite::keySwitch(const RnsPoly& poly, const KeySwitchKey& key,
                    RnsPoly& delta_c0, RnsPoly& delta_c1) const
{
    // Operates at poly's level: residues i >= poly.k no longer exist,
    // and for the surviving primes the first poly.k components of the
    // full-level key entries are exactly the level-poly.k key (the CRT
    // basis T_i reduces correctly mod every surviving prime).
    const int k = poly.k;
    const int digits = digitsPerPrime();
    const std::uint64_t mask = (1ULL << params_.decomp_bits) - 1;
    const int n = params_.n;
    std::vector<std::uint64_t> digit =
        arena_.acquire(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> transformed =
        arena_.acquire(static_cast<std::size_t>(n));
    // NTT-domain accumulators: pointwise products are summed (fully
    // reduced) across every (prime, digit) pair, and each prime pays for
    // ONE inverse transform per output component at the end — the
    // inverse NTT is exactly linear mod p, so this is bit-identical to
    // the seed's inverse-per-digit path while doing k inverses instead
    // of k * digits * k.
    std::vector<std::uint64_t> acc0 =
        arena_.acquireZeroed(static_cast<std::size_t>(k) * n);
    std::vector<std::uint64_t> acc1 =
        arena_.acquireZeroed(static_cast<std::size_t>(k) * n);
    bool any_digit = false;
    for (int i = 0; i < k; ++i) {
        const std::uint64_t* residues = poly.component(i);
        for (int d = 0; d < digits; ++d) {
            // Base-2^w digit of the i-th residue polynomial; digit values
            // are < 2^w < every prime, so the RNS lift is a plain copy
            // shared across components.
            const int shift = d * params_.decomp_bits;
            std::uint64_t* dg = digit.data();
            bool nonzero = false;
            for (int x = 0; x < n; ++x) {
                const std::uint64_t v = (residues[x] >> shift) & mask;
                dg[x] = v;
                nonzero = nonzero || v != 0;
            }
            if (!nonzero) continue;
            any_digit = true;
            const std::size_t idx =
                static_cast<std::size_t>(i) * digits + d;
            const NttForm& key_b = key.b[idx];
            const NttForm& key_a = key.a[idx];
            // One forward transform of the digit per prime serves both
            // key components (the seed path re-transformed it for each).
            for (int j = 0; j < k; ++j) {
                const std::uint64_t p = primes_[static_cast<std::size_t>(j)];
                const NttTables& tables = *ntt_[static_cast<std::size_t>(j)];
                std::copy(digit.begin(), digit.end(), transformed.begin());
                tables.forward(transformed.data());
                const std::uint64_t* tx = transformed.data();
                const std::uint64_t* bw = key_b.component(j);
                const std::uint64_t* bs = key_b.shoupComponent(j);
                const std::uint64_t* aw = key_a.component(j);
                const std::uint64_t* as = key_a.shoupComponent(j);
                std::uint64_t* a0 =
                    acc0.data() + static_cast<std::size_t>(j) * n;
                std::uint64_t* a1 =
                    acc1.data() + static_cast<std::size_t>(j) * n;
                for (int x = 0; x < n; ++x) {
                    a0[x] = addMod(
                        a0[x], mulModShoup(tx[x], bw[x], bs[x], p), p);
                    a1[x] = addMod(
                        a1[x], mulModShoup(tx[x], aw[x], as[x], p), p);
                }
            }
        }
    }
    if (any_digit) {
        for (int j = 0; j < k; ++j) {
            const std::uint64_t p = primes_[static_cast<std::size_t>(j)];
            const NttTables& tables = *ntt_[static_cast<std::size_t>(j)];
            std::uint64_t* a0 =
                acc0.data() + static_cast<std::size_t>(j) * n;
            std::uint64_t* a1 =
                acc1.data() + static_cast<std::size_t>(j) * n;
            tables.inverse(a0);
            tables.inverse(a1);
            std::uint64_t* dst0 = delta_c0.component(j);
            std::uint64_t* dst1 = delta_c1.component(j);
            for (int x = 0; x < n; ++x) {
                dst0[x] = addMod(dst0[x], a0[x], p);
                dst1[x] = addMod(dst1[x], a1[x], p);
            }
        }
    }
    arena_.release(std::move(digit));
    arena_.release(std::move(transformed));
    arena_.release(std::move(acc0));
    arena_.release(std::move(acc1));
}

Ciphertext
SealLite::multiply(const Ciphertext& a, const Ciphertext& b) const
{
    // Tensor product (degree 2), then relinearize with the RNS key.
    RnsPoly e0 = mulPoly(a.c0, b.c0);
    RnsPoly e1 = mulPoly(a.c0, b.c1);
    RnsPoly cross = mulPoly(a.c1, b.c0);
    addInPlace(e1, cross);
    recycle(std::move(cross));
    RnsPoly e2 = mulPoly(a.c1, b.c1);

    Ciphertext out;
    out.c0 = std::move(e0);
    out.c1 = std::move(e1);
    keySwitch(e2, relin_key_, out.c0, out.c1);
    recycle(std::move(e2));
    return out;
}

std::uint64_t
SealLite::galoisElement(int step) const
{
    const int half = params_.n / 2;
    const int normalized = ((step % half) + half) % half;
    return powMod(3, static_cast<std::uint64_t>(normalized),
                  static_cast<std::uint64_t>(2 * params_.n));
}

void
SealLite::makeGaloisKeys(const std::vector<int>& steps)
{
    for (int step : steps) {
        const int half = params_.n / 2;
        const int normalized = ((step % half) + half) % half;
        if (normalized == 0 || galois_keys_.count(normalized)) continue;
        const std::uint64_t g = galoisElement(normalized);
        galois_elements_[normalized] = g;
        // Key randomness is a pure function of (params seed, step): park
        // the main stream, generate from a step-derived seed, restore.
        // This keeps a key for step s bit-identical across schemes and
        // generation orders (see the header contract).
        const Rng saved = rng_;
        rng_.reseed(params_.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     static_cast<std::uint64_t>(normalized + 1)));
        galois_keys_.emplace(normalized,
                             makeKeySwitchKey(applyAutomorphism(
                                 secret_rns_, g)));
        rng_ = saved;
    }
}

bool
SealLite::hasGaloisKey(int step) const
{
    const int half = params_.n / 2;
    const int normalized = ((step % half) + half) % half;
    return normalized == 0 || galois_keys_.count(normalized) > 0;
}

Ciphertext
SealLite::rotate(const Ciphertext& a, int step) const
{
    const int half = params_.n / 2;
    const int normalized = ((step % half) + half) % half;
    if (normalized == 0) return clone(a);
    auto key_it = galois_keys_.find(normalized);
    CHEHAB_ASSERT(key_it != galois_keys_.end(),
                  "missing Galois key for rotation step");
    const std::uint64_t g = galois_elements_.at(normalized);

    Ciphertext out;
    out.c0 = applyAutomorphism(a.c0, g);
    out.c1 = zeroPoly(a.c0.k);
    RnsPoly rotated_c1 = applyAutomorphism(a.c1, g);
    keySwitch(rotated_c1, key_it->second, out.c0, out.c1);
    recycle(std::move(rotated_c1));
    return out;
}

// ---------------------------------------------------------------------
// Noise measurement.
// ---------------------------------------------------------------------

int
SealLite::noiseBudgetBits(const Ciphertext& ct) const
{
    RnsPoly v = mulPolyNtt(ct.c1, secret_ntt_);
    addInPlace(v, ct.c0);
    const LevelTables& tab =
        level_tables_[static_cast<std::size_t>(v.k) - 1];

    BigInt max_magnitude;
    for (int j = 0; j < params_.n; ++j) {
        const BigInt value = recomposeCoeff(v, j);
        const BigInt complement = tab.q.subtract(value);
        const BigInt magnitude =
            value.compare(complement) <= 0 ? value : complement;
        if (magnitude.compare(max_magnitude) > 0) max_magnitude = magnitude;
    }
    recycle(std::move(v));
    const int budget = (tab.q.bitLength() - 1) - max_magnitude.bitLength();
    return budget;
}

int
SealLite::freshNoiseBudget()
{
    if (fresh_budget_ < 0) {
        Plaintext zero;
        zero.coeffs.assign(static_cast<std::size_t>(params_.n), 0);
        fresh_budget_ = noiseBudgetBits(encrypt(zero));
    }
    return fresh_budget_;
}

} // namespace chehab::fhe
