/// \file
/// Internal interface between the NTT dispatch points (fhe/ntt.cc) and
/// the AVX2 butterfly kernels (fhe/ntt_avx2.cc). Not installed; nothing
/// outside fhe/ should include this — callers go through
/// NttTables::forward/inverse, which dispatch at runtime.
///
/// The kernels are whole-transform entry points (not per-stage hooks):
/// each runs the same Cooley-Tukey / Gentleman-Sande stage schedule as
/// the scalar path, vectorizing the inner j-loop 4-wide (two vectors
/// per iteration on wide stages); the t < 4 tail stages stay vectorized
/// by shuffling butterfly legs into separate vectors. Every lane
/// computes exactly the scalar lazy-reduction arithmetic (same
/// conditional subtracts, same mod-2^64 wraparound), so outputs are
/// bit-identical to the scalar path by construction — the
/// test_fhe_ntt_simd differential suite machine-checks this.
#pragma once

#include <cstdint>

namespace chehab::fhe::simd {

/// True when the library was built with the AVX2 kernel TU
/// (CHEHAB_AVX2=ON). Constant per binary.
bool avx2CompiledIn();

/// Full forward negacyclic NTT, AVX2 lanes, Harvey lazy reduction,
/// output fully reduced to [0, p). Preconditions: n >= 8 (power of
/// two), p < 2^62, AVX2 compiled in AND supported by this CPU.
/// Table layout matches NttTables (bit-reversed psi powers + Shoup
/// companions, indexed m + i per stage).
void forwardAvx2(std::uint64_t* values, int n, std::uint64_t p,
                 const std::uint64_t* root_powers,
                 const std::uint64_t* root_powers_shoup);

/// Full inverse negacyclic NTT, AVX2 lanes, the n^-1 scaling fused into
/// the final stage exactly as the scalar path fuses it. Same
/// preconditions as forwardAvx2.
void inverseAvx2(std::uint64_t* values, int n, std::uint64_t p,
                 const std::uint64_t* inv_root_powers,
                 const std::uint64_t* inv_root_powers_shoup,
                 std::uint64_t inv_n, std::uint64_t inv_n_shoup,
                 std::uint64_t inv_n_w, std::uint64_t inv_n_w_shoup);

} // namespace chehab::fhe::simd
