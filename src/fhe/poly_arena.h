/// \file
/// Pooled buffer arena backing RnsPoly and NTT scratch allocations.
///
/// Every SealLite evaluator op used to heap-allocate its result and
/// scratch vectors; at n = 4096 with a 6-prime chain that is several
/// hundred KiB of malloc traffic per multiply. PolyArena replaces that
/// with a capacity-matched freelist: acquire() hands back a previously
/// released vector whose capacity already fits (a plain resize, no
/// allocation), minting a fresh buffer only when the freelist has
/// nothing large enough. After one priming pass over a program, every
/// steady-state acquire is a reuse — the zero-allocations-per-op
/// contract bench_ntt's allocs/op column and the arena tests pin.
///
/// Counters (allocs / reuses / bytes) feed ServiceStats and chehabd's
/// --stats-json. The arena can be disabled (setEnabled(false)), which
/// turns every acquire into a fresh heap allocation and every release
/// into a free — the arena-on-vs-off differential tests run both ways.
///
/// Thread-safety: all methods are mutex-guarded. A SealLite instance is
/// externally synchronized (the runtime pool leases exclusively), but
/// pool-level stats aggregation reads arenas of leased runtimes
/// concurrently, so the lock is load-bearing (TSan job covers it).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace chehab::fhe {

class PolyArena
{
  public:
    struct Stats
    {
        std::uint64_t allocs = 0; ///< Fresh buffers minted.
        std::uint64_t reuses = 0; ///< Acquires served from the freelist.
        std::uint64_t bytes = 0;  ///< Bytes backing minted buffers.
    };

    /// A buffer of exactly \p words elements, unspecified contents
    /// (callers either overwrite fully or use acquireZeroed).
    std::vector<std::uint64_t> acquire(std::size_t words);

    /// acquire(), then zero-fill.
    std::vector<std::uint64_t> acquireZeroed(std::size_t words);

    /// Return a dead buffer to the freelist (dropped when disabled or
    /// when the freelist is at capacity).
    void release(std::vector<std::uint64_t>&& buffer);

    /// Drop every pooled buffer (counters are kept — they are
    /// monotonic observability, not occupancy).
    void reset();

    Stats stats() const;

    /// Disabled arenas always mint and never pool — the differential
    /// tests compare this against the pooled mode bit for bit.
    void setEnabled(bool enabled);
    bool enabled() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::vector<std::uint64_t>> free_;
    Stats stats_;
    bool enabled_ = true;
};

} // namespace chehab::fhe
