#include "fhe/ntt.h"

#include "fhe/modarith.h"
#include "support/error.h"

namespace chehab::fhe {

namespace {

/// Reverse the low \p bits bits of \p value.
std::uint32_t
reverseBits(std::uint32_t value, int bits)
{
    std::uint32_t result = 0;
    for (int i = 0; i < bits; ++i) {
        result = (result << 1) | ((value >> i) & 1);
    }
    return result;
}

} // namespace

NttTables::NttTables(int n, std::uint64_t p) : n_(n), p_(p)
{
    CHEHAB_ASSERT((n & (n - 1)) == 0, "n must be a power of two");
    CHEHAB_ASSERT((p - 1) % (2 * static_cast<std::uint64_t>(n)) == 0,
                  "p must be NTT-friendly");
    int log_n = 0;
    while ((1 << log_n) < n) ++log_n;

    const std::uint64_t psi =
        findPrimitiveRoot(2 * static_cast<std::uint64_t>(n), p);
    const std::uint64_t psi_inv = invMod(psi, p);

    root_powers_.resize(static_cast<std::size_t>(n));
    inv_root_powers_.resize(static_cast<std::size_t>(n));
    std::uint64_t power = 1;
    std::uint64_t inv_power = 1;
    std::vector<std::uint64_t> natural(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> inv_natural(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        natural[static_cast<std::size_t>(i)] = power;
        inv_natural[static_cast<std::size_t>(i)] = inv_power;
        power = mulMod(power, psi, p);
        inv_power = mulMod(inv_power, psi_inv, p);
    }
    for (int i = 0; i < n; ++i) {
        const std::uint32_t rev =
            reverseBits(static_cast<std::uint32_t>(i), log_n);
        root_powers_[static_cast<std::size_t>(i)] = natural[rev];
        inv_root_powers_[static_cast<std::size_t>(i)] = inv_natural[rev];
    }
    inv_n_ = invMod(static_cast<std::uint64_t>(n), p);
}

void
NttTables::forward(std::uint64_t* values) const
{
    // Cooley-Tukey, Harvey-style loop structure (SEAL's layout).
    std::size_t t = static_cast<std::size_t>(n_) >> 1;
    for (std::size_t m = 1; m < static_cast<std::size_t>(n_); m <<= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = root_powers_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                const std::uint64_t u = values[j];
                const std::uint64_t v = mulMod(values[j + t], w, p_);
                values[j] = addMod(u, v, p_);
                values[j + t] = subMod(u, v, p_);
            }
        }
        t >>= 1;
    }
}

void
NttTables::inverse(std::uint64_t* values) const
{
    // Gentleman-Sande.
    std::size_t t = 1;
    for (std::size_t m = static_cast<std::size_t>(n_) >> 1; m >= 1; m >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = inv_root_powers_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                const std::uint64_t u = values[j];
                const std::uint64_t v = values[j + t];
                values[j] = addMod(u, v, p_);
                values[j + t] = mulMod(subMod(u, v, p_), w, p_);
            }
        }
        t <<= 1;
    }
    for (int i = 0; i < n_; ++i) {
        values[i] = mulMod(values[i], inv_n_, p_);
    }
}

} // namespace chehab::fhe
