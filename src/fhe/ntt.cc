#include "fhe/ntt.h"

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "fhe/ntt_simd.h"
#include "support/error.h"

namespace chehab::fhe {

namespace {

/// Reverse the low \p bits bits of \p value.
std::uint32_t
reverseBits(std::uint32_t value, int bits)
{
    std::uint32_t result = 0;
    for (int i = 0; i < bits; ++i) {
        result = (result << 1) | ((value >> i) & 1);
    }
    return result;
}

bool
cpuHasAvx2()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

/// -1 = unset (resolve to simdSupported()), else 0/1.
std::atomic<int> simd_enabled_override{-1};

} // namespace

bool
simdCompiledIn()
{
    return simd::avx2CompiledIn();
}

bool
simdSupported()
{
    static const bool supported = simdCompiledIn() && cpuHasAvx2();
    return supported;
}

void
setSimdEnabled(bool enabled)
{
    // Clamp to supported: forcing SIMD on a scalar build or non-AVX2
    // CPU must stay a no-op rather than dispatch into stubs.
    simd_enabled_override.store(enabled && simdSupported() ? 1 : 0,
                                std::memory_order_relaxed);
}

bool
simdEnabled()
{
    const int v = simd_enabled_override.load(std::memory_order_relaxed);
    return v < 0 ? simdSupported() : v != 0;
}

NttTables::NttTables(int n, std::uint64_t p)
    : n_(n), p_(p), barrett_(p)
{
    CHEHAB_ASSERT((n & (n - 1)) == 0, "n must be a power of two");
    CHEHAB_ASSERT((p - 1) % (2 * static_cast<std::uint64_t>(n)) == 0,
                  "p must be NTT-friendly");
    // The lazy butterflies keep values in [0, 4p) between stages.
    CHEHAB_ASSERT(p < (1ULL << 62), "lazy reduction needs 4p < 2^64");
    int log_n = 0;
    while ((1 << log_n) < n) ++log_n;

    const std::uint64_t psi =
        findPrimitiveRoot(2 * static_cast<std::uint64_t>(n), p);
    const std::uint64_t psi_inv = invMod(psi, p);

    root_powers_.resize(static_cast<std::size_t>(n));
    inv_root_powers_.resize(static_cast<std::size_t>(n));
    std::uint64_t power = 1;
    std::uint64_t inv_power = 1;
    std::vector<std::uint64_t> natural(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> inv_natural(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        natural[static_cast<std::size_t>(i)] = power;
        inv_natural[static_cast<std::size_t>(i)] = inv_power;
        power = mulMod(power, psi, p);
        inv_power = mulMod(inv_power, psi_inv, p);
    }
    for (int i = 0; i < n; ++i) {
        const std::uint32_t rev =
            reverseBits(static_cast<std::uint32_t>(i), log_n);
        root_powers_[static_cast<std::size_t>(i)] = natural[rev];
        inv_root_powers_[static_cast<std::size_t>(i)] = inv_natural[rev];
    }
    inv_n_ = invMod(static_cast<std::uint64_t>(n), p);

    root_powers_shoup_.resize(static_cast<std::size_t>(n));
    inv_root_powers_shoup_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        root_powers_shoup_[static_cast<std::size_t>(i)] =
            shoupPrecompute(root_powers_[static_cast<std::size_t>(i)], p);
        inv_root_powers_shoup_[static_cast<std::size_t>(i)] =
            shoupPrecompute(inv_root_powers_[static_cast<std::size_t>(i)],
                            p);
    }
    inv_n_shoup_ = shoupPrecompute(inv_n_, p);
    if (n > 1) {
        inv_n_w_ = mulMod(inv_n_, inv_root_powers_[1], p);
        inv_n_w_shoup_ = shoupPrecompute(inv_n_w_, p);
    }
}

void
NttTables::forward(std::uint64_t* values) const
{
    if (n_ >= 8 && simdEnabled()) {
        simd::forwardAvx2(values, n_, p_, root_powers_.data(),
                          root_powers_shoup_.data());
        return;
    }
    forwardScalar(values);
}

void
NttTables::inverse(std::uint64_t* values) const
{
    if (n_ >= 8 && simdEnabled()) {
        simd::inverseAvx2(values, n_, p_, inv_root_powers_.data(),
                          inv_root_powers_shoup_.data(), inv_n_,
                          inv_n_shoup_, inv_n_w_, inv_n_w_shoup_);
        return;
    }
    inverseScalar(values);
}

void
NttTables::forwardScalar(std::uint64_t* values) const
{
    if (n_ <= 1) return;
    const std::uint64_t p = p_;
    const std::uint64_t two_p = 2 * p;
    // Cooley-Tukey with Harvey lazy reduction: stage inputs are < 4p,
    // the u leg is conditionally reduced to [0, 2p), and the Shoup
    // multiply of the v leg lands in [0, 2p) for any 64-bit input, so
    // both outputs stay < 4p.
    std::size_t t = static_cast<std::size_t>(n_) >> 1;
    for (std::size_t m = 1; m < static_cast<std::size_t>(n_); m <<= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = root_powers_[m + i];
            const std::uint64_t w_shoup = root_powers_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                std::uint64_t u = values[j];
                if (u >= two_p) u -= two_p;
                const std::uint64_t v =
                    mulModShoupLazy(values[j + t], w, w_shoup, p);
                values[j] = u + v;
                values[j + t] = u + two_p - v;
            }
        }
        t >>= 1;
    }
    // Single normalize pass back to [0, p).
    for (int i = 0; i < n_; ++i) {
        std::uint64_t x = values[i];
        if (x >= two_p) x -= two_p;
        if (x >= p) x -= p;
        values[i] = x;
    }
}

void
NttTables::inverseScalar(std::uint64_t* values) const
{
    if (n_ <= 1) return;
    const std::uint64_t p = p_;
    const std::uint64_t two_p = 2 * p;
    // Gentleman-Sande with lazy reduction: legs stay in [0, 2p)
    // (u + v conditionally reduced, u - v + 2p pushed through the Shoup
    // multiply).
    std::size_t t = 1;
    for (std::size_t m = static_cast<std::size_t>(n_) >> 1; m > 1;
         m >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = inv_root_powers_[m + i];
            const std::uint64_t w_shoup = inv_root_powers_shoup_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                const std::uint64_t u = values[j];
                const std::uint64_t v = values[j + t];
                std::uint64_t s = u + v;
                if (s >= two_p) s -= two_p;
                values[j] = s;
                values[j + t] =
                    mulModShoupLazy(u - v + two_p, w, w_shoup, p);
            }
        }
        t <<= 1;
    }
    // Final stage (m == 1) fused with the n^-1 scaling: the even leg
    // multiplies by inv_n, the odd leg by inv_n * w in one Shoup
    // multiply each, already fully reduced — no separate scaling pass.
    for (std::size_t j = 0; j < t; ++j) {
        const std::uint64_t u = values[j];
        const std::uint64_t v = values[j + t];
        values[j] = mulModShoup(u + v, inv_n_, inv_n_shoup_, p);
        values[j + t] =
            mulModShoup(u - v + two_p, inv_n_w_, inv_n_w_shoup_, p);
    }
}

void
NttTables::forwardBaseline(std::uint64_t* values) const
{
    // Cooley-Tukey, Harvey-style loop structure (SEAL's layout), one
    // 128-by-64 division per butterfly — the seed hot path.
    std::size_t t = static_cast<std::size_t>(n_) >> 1;
    for (std::size_t m = 1; m < static_cast<std::size_t>(n_); m <<= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = root_powers_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                const std::uint64_t u = values[j];
                const std::uint64_t v = mulMod(values[j + t], w, p_);
                values[j] = addMod(u, v, p_);
                values[j + t] = subMod(u, v, p_);
            }
        }
        t >>= 1;
    }
}

void
NttTables::inverseBaseline(std::uint64_t* values) const
{
    // Gentleman-Sande.
    std::size_t t = 1;
    for (std::size_t m = static_cast<std::size_t>(n_) >> 1; m >= 1; m >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const std::size_t j2 = j1 + t;
            const std::uint64_t w = inv_root_powers_[m + i];
            for (std::size_t j = j1; j < j2; ++j) {
                const std::uint64_t u = values[j];
                const std::uint64_t v = values[j + t];
                values[j] = addMod(u, v, p_);
                values[j + t] = mulMod(subMod(u, v, p_), w, p_);
            }
        }
        t <<= 1;
    }
    for (int i = 0; i < n_; ++i) {
        values[i] = mulMod(values[i], inv_n_, p_);
    }
}

namespace {

std::mutex&
tableCacheMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::pair<int, std::uint64_t>,
         std::shared_ptr<const NttTables>>&
tableCache()
{
    static std::map<std::pair<int, std::uint64_t>,
                    std::shared_ptr<const NttTables>>
        cache;
    return cache;
}

NttTableCacheStats table_cache_stats;

} // namespace

std::shared_ptr<const NttTables>
acquireNttTables(int n, std::uint64_t p)
{
    const std::pair<int, std::uint64_t> key{n, p};
    std::unique_lock<std::mutex> lock(tableCacheMutex());
    auto it = tableCache().find(key);
    if (it != tableCache().end()) {
        ++table_cache_stats.hits;
        return it->second;
    }
    ++table_cache_stats.misses;
    auto tables = std::make_shared<const NttTables>(n, p);
    tableCache().emplace(key, tables);
    return tables;
}

NttTableCacheStats
nttTableCacheStats()
{
    std::unique_lock<std::mutex> lock(tableCacheMutex());
    return table_cache_stats;
}

} // namespace chehab::fhe
