/// \file
/// Negacyclic Number-Theoretic Transform over a 64-bit NTT-friendly prime
/// (p ≡ 1 mod 2n). Used for fast polynomial multiplication in
/// Z_p[x]/(x^n + 1). The forward transform leaves values in scrambled
/// (bit-reversed) order; the inverse consumes that order, so the pair is
/// only used around pointwise products, as in SEAL.
///
/// The hot path uses Harvey-style lazy reduction with Shoup-precomputed
/// twiddles (one mulhi + two muls per butterfly, no division):
/// intermediate values live in [0, 4p) between stages — each butterfly
/// conditionally reduces its u input to [0, 2p) and the Shoup multiply
/// accepts any 64-bit operand — and a single normalize pass at the end
/// brings everything back to [0, p). The final Gentleman-Sande stage of
/// the inverse is fused with the n^-1 scaling, so the inverse ends fully
/// reduced with no extra pass. Requires 4p < 2^64 (asserted).
///
/// The seed's division-per-butterfly path is preserved as
/// forwardBaseline / inverseBaseline for the old-vs-new microbench
/// (bench_ntt) and the equivalence property tests; both paths produce
/// bit-identical outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fhe/modarith.h"

namespace chehab::fhe {

/// Precomputed tables for one (n, p) pair.
class NttTables
{
  public:
    NttTables() = default;
    /// \p n must be a power of two with 2n | p-1, and p < 2^62.
    NttTables(int n, std::uint64_t p);

    int n() const { return n_; }
    std::uint64_t modulus() const { return p_; }

    /// In-place forward negacyclic NTT (natural -> scrambled order).
    /// Harvey lazy reduction; output fully reduced to [0, p).
    /// Dispatch point: routes to the AVX2 4-wide kernels when they are
    /// compiled in, supported by this CPU, enabled (setSimdEnabled) and
    /// n >= 8; otherwise runs forwardScalar. Both paths are
    /// bit-identical by construction.
    void forward(std::uint64_t* values) const;

    /// In-place inverse negacyclic NTT (scrambled -> natural order).
    /// Harvey lazy reduction with the n^-1 scaling fused into the last
    /// stage; output fully reduced to [0, p). Dispatch point like
    /// forward().
    void inverse(std::uint64_t* values) const;

    /// \name Scalar Harvey/Shoup path
    /// The PR 7 scalar hot path, callable directly so benches and the
    /// SIMD differential suite can pin scalar-vs-vector bit-identity
    /// without toggling the process-wide dispatch flag.
    /// @{
    void forwardScalar(std::uint64_t* values) const;
    void inverseScalar(std::uint64_t* values) const;
    /// @}

    /// \name Seed reference path (mulMod per butterfly)
    /// Kept for bench_ntt's old-vs-new columns and the equivalence
    /// tests; bit-identical outputs to forward()/inverse().
    /// @{
    void forwardBaseline(std::uint64_t* values) const;
    void inverseBaseline(std::uint64_t* values) const;
    /// @}

    /// Barrett reducer for this prime (for pointwise products between
    /// two variable transforms, where Shoup precomputation does not
    /// apply).
    const Barrett& reducer() const { return barrett_; }

  private:
    int n_ = 0;
    std::uint64_t p_ = 0;
    Barrett barrett_;
    std::vector<std::uint64_t> root_powers_;     ///< psi powers, bit-rev.
    std::vector<std::uint64_t> root_powers_shoup_;
    std::vector<std::uint64_t> inv_root_powers_; ///< psi^-1 powers, bit-rev.
    std::vector<std::uint64_t> inv_root_powers_shoup_;
    /// n^-1 mod p and its Shoup companion, memoized at construction
    /// (one invMod + one shoupPrecompute per table-cache entry — no
    /// transform branch recomputes them per call; pinned by
    /// test_fhe_ntt_simd's InvNMemoizedInTableCache).
    std::uint64_t inv_n_ = 0;
    std::uint64_t inv_n_shoup_ = 0;
    std::uint64_t inv_n_w_ = 0; ///< inv_n * inv_root_powers_[1]: the
                                ///  fused last-stage odd-leg twiddle.
    std::uint64_t inv_n_w_shoup_ = 0;

  public:
    /// Memoized n^-1 mod p (for tests asserting the memoization
    /// contract; transforms read the private fields directly).
    std::uint64_t invN() const { return inv_n_; }
};

/// \name SIMD dispatch control (process-wide)
/// The AVX2 kernels live in their own -mavx2 translation unit; whether
/// forward()/inverse() route to them is decided per call from three
/// gates: compiled in (CHEHAB_AVX2 build option), supported (cpuid),
/// and enabled (this switch; defaults to supported). chehabd's --simd
/// flag and the differential tests drive setSimdEnabled; it clamps to
/// simdSupported() so forcing SIMD on a scalar build stays a no-op.
/// @{
bool simdCompiledIn();
bool simdSupported();
void setSimdEnabled(bool enabled);
bool simdEnabled();
/// @}

/// Process-wide content-addressed NttTables cache keyed by (n, p).
/// RuntimePool replicas and every SealLite instance with the same
/// parameters share one immutable table set instead of rebuilding
/// identical twiddle vectors per construction. Entries live for the
/// remainder of the process (tables are a few n-sized vectors; see the
/// README "Raw speed" notes on lifetime).
std::shared_ptr<const NttTables> acquireNttTables(int n, std::uint64_t p);

/// Cumulative acquireNttTables hit/miss counters (observability for the
/// shared-table satellite test).
struct NttTableCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};
NttTableCacheStats nttTableCacheStats();

} // namespace chehab::fhe
