/// \file
/// Negacyclic Number-Theoretic Transform over a 64-bit NTT-friendly prime
/// (p ≡ 1 mod 2n). Used for fast polynomial multiplication in
/// Z_p[x]/(x^n + 1). The forward transform leaves values in scrambled
/// (bit-reversed) order; the inverse consumes that order, so the pair is
/// only used around pointwise products, as in SEAL.
#pragma once

#include <cstdint>
#include <vector>

namespace chehab::fhe {

/// Precomputed tables for one (n, p) pair.
class NttTables
{
  public:
    NttTables() = default;
    /// \p n must be a power of two with 2n | p-1.
    NttTables(int n, std::uint64_t p);

    int n() const { return n_; }
    std::uint64_t modulus() const { return p_; }

    /// In-place forward negacyclic NTT (natural -> scrambled order).
    void forward(std::uint64_t* values) const;

    /// In-place inverse negacyclic NTT (scrambled -> natural order).
    void inverse(std::uint64_t* values) const;

  private:
    int n_ = 0;
    std::uint64_t p_ = 0;
    std::vector<std::uint64_t> root_powers_;     ///< psi powers, bit-rev.
    std::vector<std::uint64_t> inv_root_powers_; ///< psi^-1 powers, bit-rev.
    std::uint64_t inv_n_ = 0;
};

} // namespace chehab::fhe
