#include "fhe/poly_arena.h"

#include <algorithm>
#include <utility>

namespace chehab::fhe {

namespace {

/// Freelist cap: SealLite's deepest op (relinearizing multiply) keeps
/// well under this many scratch/result buffers dead at once, and a cap
/// bounds worst-case residency when callers release more than they
/// re-acquire (e.g. a one-off wide program).
constexpr std::size_t kMaxPooledBuffers = 64;

} // namespace

std::vector<std::uint64_t>
PolyArena::acquire(std::size_t words)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (enabled_) {
            // Best fit, most-recent on ties: steady-state traffic cycles
            // a handful of distinct sizes, and taking the *smallest*
            // buffer that fits stops a small acquire from stealing a
            // large buffer and forcing the next large acquire to mint —
            // one priming pass then reaches zero fresh allocations.
            std::size_t best = free_.size();
            for (std::size_t i = free_.size(); i > 0; --i) {
                const std::vector<std::uint64_t>& candidate = free_[i - 1];
                if (candidate.capacity() < words) continue;
                if (best == free_.size() ||
                    candidate.capacity() < free_[best].capacity()) {
                    best = i - 1;
                }
            }
            if (best != free_.size()) {
                std::vector<std::uint64_t> buffer = std::move(free_[best]);
                free_.erase(free_.begin() +
                            static_cast<std::ptrdiff_t>(best));
                ++stats_.reuses;
                buffer.resize(words);
                return buffer;
            }
        }
        ++stats_.allocs;
        stats_.bytes += words * sizeof(std::uint64_t);
    }
    // Mint outside the lock: the allocation is the slow part.
    return std::vector<std::uint64_t>(words);
}

std::vector<std::uint64_t>
PolyArena::acquireZeroed(std::size_t words)
{
    std::vector<std::uint64_t> buffer = acquire(words);
    std::fill(buffer.begin(), buffer.end(), 0);
    return buffer;
}

void
PolyArena::release(std::vector<std::uint64_t>&& buffer)
{
    if (buffer.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_ || free_.size() >= kMaxPooledBuffers) return;
    free_.push_back(std::move(buffer));
}

void
PolyArena::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    free_.clear();
}

PolyArena::Stats
PolyArena::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
PolyArena::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = enabled;
    if (!enabled) free_.clear();
}

bool
PolyArena::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

} // namespace chehab::fhe
