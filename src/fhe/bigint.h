/// \file
/// Minimal arbitrary-precision unsigned integer used only on the cold
/// paths of the SealLite backend: CRT recomposition for decryption-time
/// noise measurement. All hot-loop arithmetic stays in 64-bit RNS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chehab::fhe {

/// Little-endian limb vector; no sign (callers track centering).
class BigInt
{
  public:
    BigInt() = default;
    explicit BigInt(std::uint64_t value);

    bool isZero() const;
    int bitLength() const;

    /// Comparison: -1, 0, +1.
    int compare(const BigInt& other) const;

    BigInt add(const BigInt& other) const;
    /// Requires *this >= other.
    BigInt subtract(const BigInt& other) const;
    BigInt multiplySmall(std::uint64_t factor) const;
    BigInt multiply(const BigInt& other) const;

    /// Division by a single limb: returns quotient, sets \p remainder.
    BigInt divmodSmall(std::uint64_t divisor, std::uint64_t& remainder) const;

    /// this mod m where the value is known to be < bound*m for small
    /// bound: repeated subtraction (used after CRT sums of k terms).
    BigInt reduceBySubtraction(const BigInt& modulus) const;

    /// Decimal rendering (tests/debug).
    std::string toString() const;

    const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  private:
    void trim();
    std::vector<std::uint64_t> limbs_; ///< Empty = zero.
};

} // namespace chehab::fhe
