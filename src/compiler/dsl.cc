#include "compiler/dsl.h"

#include "support/error.h"

namespace chehab::compiler {

using ir::ExprPtr;

namespace {

// One staging slot per thread: concurrent service workers (or tests)
// may each stage a DslProgram without racing, while double-staging on
// one thread stays a hard error.
thread_local DslProgram* g_current_program = nullptr;

/// Elementwise zip of two staged values of matching shapes; scalars
/// broadcast over vectors.
std::vector<ExprPtr>
zip(const std::vector<ExprPtr>& a, const std::vector<ExprPtr>& b,
    ExprPtr (*combine)(ExprPtr, ExprPtr))
{
    if (a.size() == b.size()) {
        std::vector<ExprPtr> out;
        out.reserve(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            out.push_back(combine(a[i], b[i]));
        }
        return out;
    }
    if (a.size() == 1) {
        std::vector<ExprPtr> out;
        out.reserve(b.size());
        for (const auto& e : b) out.push_back(combine(a[0], e));
        return out;
    }
    if (b.size() == 1) {
        std::vector<ExprPtr> out;
        out.reserve(a.size());
        for (const auto& e : a) out.push_back(combine(e, b[0]));
        return out;
    }
    throw CompileError("DSL shape mismatch in elementwise operation");
}

} // namespace

// ---------------------------------------------------------------------
// Ciphertext.
// ---------------------------------------------------------------------

Ciphertext
Ciphertext::input(const std::string& name)
{
    Ciphertext ct;
    ct.elements_.push_back(ir::var(name));
    return ct;
}

Ciphertext
Ciphertext::inputVector(const std::string& name, int size)
{
    CHEHAB_ASSERT(size >= 1, "vector input needs size >= 1");
    Ciphertext ct;
    ct.elements_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
        ct.elements_.push_back(ir::var(name + "_" + std::to_string(i)));
    }
    return ct;
}

Ciphertext
Ciphertext::fromExpr(ir::ExprPtr expr)
{
    Ciphertext ct;
    if (expr) ct.elements_.push_back(std::move(expr));
    return ct;
}

Ciphertext
Ciphertext::operator[](int i) const
{
    CHEHAB_ASSERT(i >= 0 && i < size(), "DSL element index range");
    return fromExpr(elements_[static_cast<std::size_t>(i)]);
}

void
Ciphertext::set_output(const std::string& name) const
{
    (void)name; // Output naming is cosmetic; slot order is the contract.
    DslProgram* program = DslProgram::current();
    CHEHAB_ASSERT(program != nullptr,
                  "set_output() outside a DslProgram scope");
    for (const auto& element : elements_) program->addOutput(element);
}

Ciphertext
operator+(const Ciphertext& a, const Ciphertext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements_, b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::add(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator-(const Ciphertext& a, const Ciphertext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements_, b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::sub(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator*(const Ciphertext& a, const Ciphertext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements_, b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::mul(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator-(const Ciphertext& a)
{
    Ciphertext out;
    out.elements_.reserve(a.elements_.size());
    for (const auto& e : a.elements_) out.elements_.push_back(ir::neg(e));
    return out;
}

Ciphertext
operator<<(const Ciphertext& a, int step)
{
    // Compile-time re-indexing of the unrolled slots (§7.3: layout is
    // transformed before encryption).
    const int n = a.size();
    const int s = ((step % n) + n) % n;
    Ciphertext out;
    out.elements_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        out.elements_.push_back(a.elements_[static_cast<std::size_t>((i + s) % n)]);
    }
    return out;
}

Ciphertext
operator>>(const Ciphertext& a, int step)
{
    return a << -step;
}

// ---------------------------------------------------------------------
// Plaintext.
// ---------------------------------------------------------------------

Plaintext
Plaintext::input(const std::string& name)
{
    Plaintext pt;
    pt.elements_.push_back(ir::plainVar(name));
    return pt;
}

Plaintext
Plaintext::inputVector(const std::string& name, int size)
{
    Plaintext pt;
    pt.elements_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
        pt.elements_.push_back(ir::plainVar(name + "_" + std::to_string(i)));
    }
    return pt;
}

Plaintext::Plaintext(std::int64_t value)
{
    elements_.push_back(ir::constant(value));
}

Ciphertext
operator+(const Ciphertext& a, const Plaintext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements(), b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::add(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator+(const Plaintext& a, const Ciphertext& b)
{
    return b + a;
}

Ciphertext
operator-(const Ciphertext& a, const Plaintext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements(), b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::sub(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator*(const Ciphertext& a, const Plaintext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements(), b.elements_,
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::mul(std::move(x), std::move(y));
                        });
    return out;
}

Ciphertext
operator*(const Plaintext& a, const Ciphertext& b)
{
    Ciphertext out;
    out.elements_ = zip(a.elements_, b.elements(),
                        +[](ExprPtr x, ExprPtr y) {
                            return ir::mul(std::move(x), std::move(y));
                        });
    return out;
}

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

Ciphertext
square(const Ciphertext& a)
{
    return a * a;
}

Ciphertext
reduce_add(const Ciphertext& a)
{
    ExprPtr acc = a.elements_[0];
    for (std::size_t i = 1; i < a.elements_.size(); ++i) {
        acc = ir::add(acc, a.elements_[i]);
    }
    return Ciphertext::fromExpr(std::move(acc));
}

Ciphertext
reduce_mul(const Ciphertext& a)
{
    ExprPtr acc = a.elements_[0];
    for (std::size_t i = 1; i < a.elements_.size(); ++i) {
        acc = ir::mul(acc, a.elements_[i]);
    }
    return Ciphertext::fromExpr(std::move(acc));
}

Ciphertext
add_many(const std::vector<Ciphertext>& values)
{
    CHEHAB_ASSERT(!values.empty(), "add_many needs operands");
    Ciphertext acc = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) acc = acc + values[i];
    return acc;
}

Ciphertext
mul_many(const std::vector<Ciphertext>& values)
{
    CHEHAB_ASSERT(!values.empty(), "mul_many needs operands");
    Ciphertext acc = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) acc = acc * values[i];
    return acc;
}

// ---------------------------------------------------------------------
// DslProgram.
// ---------------------------------------------------------------------

DslProgram::DslProgram()
{
    CHEHAB_ASSERT(g_current_program == nullptr,
                  "nested DslProgram scopes are not supported");
    g_current_program = this;
}

DslProgram::~DslProgram()
{
    g_current_program = nullptr;
}

DslProgram*
DslProgram::current()
{
    return g_current_program;
}

void
DslProgram::addOutput(const ir::ExprPtr& expr)
{
    outputs_.push_back(expr);
}

ir::ExprPtr
DslProgram::build() const
{
    if (outputs_.empty()) throw CompileError("program declared no outputs");
    if (outputs_.size() == 1) return outputs_[0];
    return ir::vec(outputs_);
}

} // namespace chehab::compiler
