/// \file
/// End-to-end compile pipelines (Fig. 3): canonicalize -> optimize
/// (RL TRS, greedy TRS, or none) -> schedule. Produces the optimized IR,
/// the instruction stream, and compile-time statistics for Fig. 6 /
/// Table 6.
///
/// Thread-safety contract (audited for the concurrent compile service):
/// all three entry points are reentrant — they keep no static or global
/// mutable state, take their inputs by const reference, and never mutate
/// them (IR nodes are immutable; Ruleset and RlAgent are only read).
/// Concurrent calls may share the same Ruleset, RlAgent and even the
/// same source ExprPtr. They are also deterministic: a fixed input
/// produces a bit-identical FheProgram on every call, on any thread
/// (compileWithAgent derives its rollout RNG from the agent's fixed
/// seed per call).
#pragma once

#include <string>

#include "compiler/schedule.h"
#include "ir/cost_model.h"
#include "rl/agent.h"
#include "trs/rewriter.h"

namespace chehab::compiler {

/// Compile-time statistics for one kernel.
struct CompileStats
{
    double compile_seconds = 0.0;
    double initial_cost = 0.0;
    double final_cost = 0.0;
    int circuit_depth = 0;
    int mult_depth = 0;
    ir::OpCounts ir_counts;   ///< Over the optimized IR (DAG-unique).
    int rewrite_steps = 0;
};

/// Result of a full compilation.
struct Compiled
{
    ir::ExprPtr optimized;
    FheProgram program;
    CompileStats stats;
};

/// Compile without TRS optimization (the "Initial" column of Table 6).
Compiled compileNoOpt(const ir::ExprPtr& source);

/// Compile with the greedy best-improvement TRS (original CHEHAB).
Compiled compileGreedy(const trs::Ruleset& ruleset,
                       const ir::ExprPtr& source,
                       const ir::CostWeights& weights = {},
                       int max_steps = 75);

/// Compile with the RL-guided TRS (CHEHAB RL).
Compiled compileWithAgent(const rl::RlAgent& agent,
                          const ir::ExprPtr& source);

} // namespace chehab::compiler
