/// \file
/// End-to-end compile pipelines (Fig. 3): canonicalize -> optimize
/// (RL TRS, greedy TRS, or none) -> schedule. Produces the optimized IR,
/// the instruction stream, and compile-time statistics for Fig. 6 /
/// Table 6.
///
/// Since the PassManager refactor the three entry points below are thin
/// configurations of one CompilerDriver (compiler/driver.h): each stage
/// is a named Pass and the stats carry a per-pass timing/cost breakdown
/// instead of one opaque wall-clock blob.
///
/// Thread-safety contract (audited for the concurrent compile service):
/// all three entry points are reentrant — they keep no static or global
/// mutable state, take their inputs by const reference, and never mutate
/// them (IR nodes are immutable; Ruleset and RlAgent are only read).
/// Concurrent calls may share the same Ruleset, RlAgent and even the
/// same source ExprPtr. They are also deterministic: a fixed input
/// produces a bit-identical FheProgram on every call, on any thread
/// (compileWithAgent derives its rollout RNG from the agent's fixed
/// seed per call).
#pragma once

#include <string>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/schedule.h"
#include "ir/cost_model.h"
#include "rl/agent.h"
#include "trs/rewriter.h"

namespace chehab::compiler {

/// Timing and cost delta of one pass in a driver pipeline.
struct PassStats
{
    std::string name;          ///< Registered pass name.
    double seconds = 0.0;      ///< Wall time of this pass alone.
    double cost_before = 0.0;  ///< ir::cost of the IR entering the pass.
    double cost_after = 0.0;   ///< ir::cost of the IR leaving the pass.
    int rewrite_steps = 0;     ///< Rewrites applied by this pass.
};

/// Compile-time statistics for one kernel. Timing is reported per pass
/// (the old single compile_seconds blob is totalSeconds()).
struct CompileStats
{
    std::vector<PassStats> passes; ///< One entry per executed pass.
    double initial_cost = 0.0;
    double final_cost = 0.0;
    int circuit_depth = 0;
    int mult_depth = 0;
    ir::OpCounts ir_counts;   ///< Over the optimized IR (DAG-unique).
    int rewrite_steps = 0;

    /// Total compile wall time: the sum over the per-pass breakdown.
    double
    totalSeconds() const
    {
        double total = 0.0;
        for (const PassStats& pass : passes) total += pass.seconds;
        return total;
    }
};

/// Result of a full compilation.
struct Compiled
{
    ir::ExprPtr optimized;
    FheProgram program;
    /// Rotation-key plan chosen by the "key-select" pass; valid only
    /// when key_planned. Pipelines without the pass leave key selection
    /// to the runtime (FheRuntime::run's key_budget parameter).
    RotationKeyPlan key_plan;
    bool key_planned = false;
    CompileStats stats;
};

/// Compile without TRS optimization (the "Initial" column of Table 6).
Compiled compileNoOpt(const ir::ExprPtr& source);

/// Compile with the greedy best-improvement TRS (original CHEHAB).
Compiled compileGreedy(const trs::Ruleset& ruleset,
                       const ir::ExprPtr& source,
                       const ir::CostWeights& weights = {},
                       int max_steps = 75);

/// Compile with the RL-guided TRS (CHEHAB RL).
Compiled compileWithAgent(const rl::RlAgent& agent,
                          const ir::ExprPtr& source);

} // namespace chehab::compiler
