#include "compiler/keyselect.h"

#include <algorithm>
#include <set>

#include "support/error.h"

namespace chehab::compiler {

std::vector<int>
nafDigits(int value)
{
    std::vector<int> digits;
    const bool negative = value < 0;
    long long v = negative ? -static_cast<long long>(value) : value;
    long long power = 1;
    while (v != 0) {
        if (v & 1) {
            // NAF digit: choose ±1 so the remainder stays even.
            const long long digit = 2 - (v & 3); // v mod 4 == 1 -> +1, == 3 -> -1.
            digits.push_back(static_cast<int>(digit * power));
            v -= digit;
        }
        v >>= 1;
        power <<= 1;
    }
    if (negative) {
        for (int& d : digits) d = -d;
    }
    return digits;
}

RotationKeyPlan
selectRotationKeys(const std::vector<int>& steps, int beta)
{
    CHEHAB_ASSERT(beta >= 1, "key budget must be positive");
    // Working state: which steps are decomposed. std::set for
    // deterministic iteration order.
    std::set<int> kept(steps.begin(), steps.end());
    kept.erase(0);
    std::set<int> decomposed;

    auto key_set = [&]() {
        std::set<int> keys(kept.begin(), kept.end());
        for (int step : decomposed) {
            for (int digit : nafDigits(step)) keys.insert(digit);
        }
        return keys;
    };

    while (static_cast<int>(key_set().size()) > beta && !kept.empty()) {
        // Pick the kept step whose decomposition yields the smallest key
        // count (ties: largest step, which has the widest NAF reuse).
        // Individual moves may not improve immediately — NAF components
        // pay off once several steps share them — so the greedy always
        // takes the best available move and stops only when every step
        // is decomposed or the budget is met.
        int best_step = 0;
        int best_count = 1 << 30;
        const std::vector<int> snapshot(kept.begin(), kept.end());
        for (int candidate : snapshot) {
            decomposed.insert(candidate);
            kept.erase(candidate);
            const int count = static_cast<int>(key_set().size());
            kept.insert(candidate);
            decomposed.erase(candidate);
            if (count < best_count ||
                (count == best_count && candidate > best_step)) {
                best_count = count;
                best_step = candidate;
            }
        }
        kept.erase(best_step);
        decomposed.insert(best_step);
    }

    RotationKeyPlan plan;
    const std::set<int> keys = key_set();
    plan.keys.assign(keys.begin(), keys.end());
    for (int step : steps) {
        if (step == 0) {
            plan.decomposition[step] = {};
        } else if (decomposed.count(step)) {
            plan.decomposition[step] = nafDigits(step);
        } else {
            plan.decomposition[step] = {step};
        }
    }
    return plan;
}

} // namespace chehab::compiler
