#include "compiler/serialize.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/binary_io.h"

namespace chehab::compiler {

namespace {

/// Bound on nesting when rebuilding IR trees: real kernels are a few
/// dozen levels deep; a malformed length field must not be able to
/// recurse the stack away before the byte reader notices truncation.
constexpr int kMaxExprDepth = 4096;

/// Highest valid ir::Op tag (the enum is contiguous from Var).
constexpr std::uint8_t kMaxOpTag = static_cast<std::uint8_t>(ir::Op::VecNeg);

constexpr std::uint8_t kMaxOpcodeTag =
    static_cast<std::uint8_t>(FheOpcode::Rotate);

constexpr std::uint8_t kMaxSlotKindTag =
    static_cast<std::uint8_t>(PackSlot::Kind::PlainExpr);

void
writeExpr(ByteWriter& out, const ir::ExprPtr& expr)
{
    if (expr == nullptr) {
        // Tag 0xff marks "no expression" (nullptr optimized trees or
        // PackSlot::expr on non-PlainExpr slots).
        out.u8(0xff);
        return;
    }
    out.u8(static_cast<std::uint8_t>(expr->op()));
    out.str(expr->name());
    out.i64(expr->value());
    out.i32(expr->step());
    out.u32(static_cast<std::uint32_t>(expr->arity()));
    for (const ir::ExprPtr& child : expr->children()) {
        writeExpr(out, child);
    }
}

ir::ExprPtr
readExpr(ByteReader& in, int depth)
{
    if (depth > kMaxExprDepth) {
        throw std::runtime_error("expression nesting exceeds limit");
    }
    const std::uint8_t tag = in.u8();
    if (tag == 0xff) return nullptr;
    if (tag > kMaxOpTag) {
        throw std::runtime_error("invalid IR op tag " + std::to_string(tag));
    }
    const ir::Op op = static_cast<ir::Op>(tag);
    std::string name = in.str();
    const std::int64_t value = in.i64();
    const int step = in.i32();
    const std::uint32_t arity = in.u32();
    // Every child needs at least its own header bytes; this rejects
    // absurd counts before they turn into a giant allocation.
    if (arity > in.remaining()) {
        throw std::runtime_error("expression arity exceeds stream size");
    }
    std::vector<ir::ExprPtr> children;
    children.reserve(arity);
    for (std::uint32_t i = 0; i < arity; ++i) {
        ir::ExprPtr child = readExpr(in, depth + 1);
        if (child == nullptr) {
            throw std::runtime_error("null child inside expression");
        }
        children.push_back(std::move(child));
    }
    return ir::makeNode(op, std::move(children), std::move(name), value,
                        step);
}

void
writeProgram(ByteWriter& out, const FheProgram& program)
{
    out.u32(static_cast<std::uint32_t>(program.instrs.size()));
    for (const FheInstr& instr : program.instrs) {
        out.u8(static_cast<std::uint8_t>(instr.op));
        out.i32(instr.dst);
        out.i32(instr.a);
        out.i32(instr.b);
        out.i32(instr.step);
        out.u8(instr.replicate ? 1 : 0);
        out.u32(static_cast<std::uint32_t>(instr.slots.size()));
        for (const PackSlot& slot : instr.slots) {
            out.u8(static_cast<std::uint8_t>(slot.kind));
            out.str(slot.name);
            out.i64(slot.value);
            writeExpr(out, slot.expr);
        }
    }
    out.i32(program.num_regs);
    out.i32(program.output_reg);
    out.i32(program.output_width);
    out.u32(static_cast<std::uint32_t>(program.mod_switch.points.size()));
    for (const int point : program.mod_switch.points) out.i32(point);
    out.i32(program.mod_switch.margin_bits);
    out.i32(program.mod_switch.min_level);
}

FheProgram
readProgram(ByteReader& in)
{
    FheProgram program;
    const std::uint32_t num_instrs = in.u32();
    if (num_instrs > in.remaining()) {
        throw std::runtime_error("instruction count exceeds stream size");
    }
    program.instrs.reserve(num_instrs);
    for (std::uint32_t i = 0; i < num_instrs; ++i) {
        FheInstr instr;
        const std::uint8_t op_tag = in.u8();
        if (op_tag > kMaxOpcodeTag) {
            throw std::runtime_error("invalid opcode tag " +
                                     std::to_string(op_tag));
        }
        instr.op = static_cast<FheOpcode>(op_tag);
        instr.dst = in.i32();
        instr.a = in.i32();
        instr.b = in.i32();
        instr.step = in.i32();
        instr.replicate = in.u8() != 0;
        const std::uint32_t num_slots = in.u32();
        if (num_slots > in.remaining()) {
            throw std::runtime_error("slot count exceeds stream size");
        }
        instr.slots.reserve(num_slots);
        for (std::uint32_t s = 0; s < num_slots; ++s) {
            PackSlot slot;
            const std::uint8_t kind_tag = in.u8();
            if (kind_tag > kMaxSlotKindTag) {
                throw std::runtime_error("invalid pack-slot kind " +
                                         std::to_string(kind_tag));
            }
            slot.kind = static_cast<PackSlot::Kind>(kind_tag);
            slot.name = in.str();
            slot.value = in.i64();
            slot.expr = readExpr(in, 0);
            instr.slots.push_back(std::move(slot));
        }
        program.instrs.push_back(std::move(instr));
    }
    program.num_regs = in.i32();
    program.output_reg = in.i32();
    program.output_width = in.i32();
    const std::uint32_t num_points = in.u32();
    if (num_points > in.remaining()) {
        throw std::runtime_error("mod-switch point count exceeds stream size");
    }
    program.mod_switch.points.reserve(num_points);
    for (std::uint32_t i = 0; i < num_points; ++i) {
        program.mod_switch.points.push_back(in.i32());
    }
    program.mod_switch.margin_bits = in.i32();
    program.mod_switch.min_level = in.i32();
    return program;
}

void
writeKeyPlan(ByteWriter& out, const RotationKeyPlan& plan)
{
    out.u32(static_cast<std::uint32_t>(plan.keys.size()));
    for (const int key : plan.keys) out.i32(key);
    // The decomposition map is unordered; write it sorted by key so
    // equal plans always serialize to equal bytes.
    std::vector<int> steps;
    steps.reserve(plan.decomposition.size());
    for (const auto& [step, sequence] : plan.decomposition) {
        steps.push_back(step);
    }
    std::sort(steps.begin(), steps.end());
    out.u32(static_cast<std::uint32_t>(steps.size()));
    for (const int step : steps) {
        const std::vector<int>& sequence = plan.decomposition.at(step);
        out.i32(step);
        out.u32(static_cast<std::uint32_t>(sequence.size()));
        for (const int component : sequence) out.i32(component);
    }
}

RotationKeyPlan
readKeyPlan(ByteReader& in)
{
    RotationKeyPlan plan;
    const std::uint32_t num_keys = in.u32();
    if (num_keys > in.remaining()) {
        throw std::runtime_error("key count exceeds stream size");
    }
    plan.keys.reserve(num_keys);
    for (std::uint32_t i = 0; i < num_keys; ++i) {
        plan.keys.push_back(in.i32());
    }
    const std::uint32_t num_entries = in.u32();
    if (num_entries > in.remaining()) {
        throw std::runtime_error("decomposition count exceeds stream size");
    }
    for (std::uint32_t i = 0; i < num_entries; ++i) {
        const int step = in.i32();
        const std::uint32_t length = in.u32();
        if (length > in.remaining()) {
            throw std::runtime_error("decomposition entry exceeds stream "
                                     "size");
        }
        std::vector<int> sequence;
        sequence.reserve(length);
        for (std::uint32_t c = 0; c < length; ++c) {
            sequence.push_back(in.i32());
        }
        plan.decomposition.emplace(step, std::move(sequence));
    }
    return plan;
}

void
writeStats(ByteWriter& out, const CompileStats& stats)
{
    out.u32(static_cast<std::uint32_t>(stats.passes.size()));
    for (const PassStats& pass : stats.passes) {
        out.str(pass.name);
        out.f64(pass.seconds);
        out.f64(pass.cost_before);
        out.f64(pass.cost_after);
        out.i32(pass.rewrite_steps);
    }
    out.f64(stats.initial_cost);
    out.f64(stats.final_cost);
    out.i32(stats.circuit_depth);
    out.i32(stats.mult_depth);
    out.i32(stats.ir_counts.ct_add);
    out.i32(stats.ir_counts.ct_ct_mul);
    out.i32(stats.ir_counts.ct_pt_mul);
    out.i32(stats.ir_counts.square);
    out.i32(stats.ir_counts.rotation);
    out.i32(stats.ir_counts.plain_ops);
    out.i32(stats.ir_counts.scalar_ops);
    out.i32(stats.ir_counts.vector_ops);
    out.i32(stats.rewrite_steps);
}

CompileStats
readStats(ByteReader& in)
{
    CompileStats stats;
    const std::uint32_t num_passes = in.u32();
    if (num_passes > in.remaining()) {
        throw std::runtime_error("pass count exceeds stream size");
    }
    stats.passes.reserve(num_passes);
    for (std::uint32_t i = 0; i < num_passes; ++i) {
        PassStats pass;
        pass.name = in.str();
        pass.seconds = in.f64();
        pass.cost_before = in.f64();
        pass.cost_after = in.f64();
        pass.rewrite_steps = in.i32();
        stats.passes.push_back(std::move(pass));
    }
    stats.initial_cost = in.f64();
    stats.final_cost = in.f64();
    stats.circuit_depth = in.i32();
    stats.mult_depth = in.i32();
    stats.ir_counts.ct_add = in.i32();
    stats.ir_counts.ct_ct_mul = in.i32();
    stats.ir_counts.ct_pt_mul = in.i32();
    stats.ir_counts.square = in.i32();
    stats.ir_counts.rotation = in.i32();
    stats.ir_counts.plain_ops = in.i32();
    stats.ir_counts.scalar_ops = in.i32();
    stats.ir_counts.vector_ops = in.i32();
    stats.rewrite_steps = in.i32();
    return stats;
}

void
writeContent(ByteWriter& out, const Compiled& compiled)
{
    writeExpr(out, compiled.optimized);
    writeProgram(out, compiled.program);
    writeKeyPlan(out, compiled.key_plan);
    out.u8(compiled.key_planned ? 1 : 0);
}

} // namespace

std::string
serializeCompiledContent(const Compiled& compiled)
{
    ByteWriter out;
    writeContent(out, compiled);
    return out.take();
}

std::string
serializeCompiled(const Compiled& compiled)
{
    ByteWriter out;
    writeContent(out, compiled);
    writeStats(out, compiled.stats);
    return out.take();
}

Compiled
deserializeCompiled(const std::string& bytes)
{
    ByteReader in(bytes);
    Compiled compiled;
    compiled.optimized = readExpr(in, 0);
    compiled.program = readProgram(in);
    compiled.key_plan = readKeyPlan(in);
    compiled.key_planned = in.u8() != 0;
    compiled.stats = readStats(in);
    if (!in.atEnd()) {
        throw std::runtime_error("trailing bytes after compiled artifact");
    }
    return compiled;
}

} // namespace chehab::compiler
