#include "compiler/schedule.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.h"
#include "support/error.h"

namespace chehab::compiler {

using ir::ExprPtr;
using ir::Op;

std::vector<int>
FheProgram::rotationSteps() const
{
    std::vector<int> steps;
    std::unordered_set<int> seen;
    for (const FheInstr& instr : instrs) {
        if (instr.op == FheOpcode::Rotate && seen.insert(instr.step).second) {
            steps.push_back(instr.step);
        }
    }
    std::sort(steps.begin(), steps.end());
    return steps;
}

FheProgram::Counts
FheProgram::counts() const
{
    Counts counts;
    for (const FheInstr& instr : instrs) {
        switch (instr.op) {
          case FheOpcode::PackCipher: ++counts.pack_cipher; break;
          case FheOpcode::PackPlain: ++counts.pack_plain; break;
          case FheOpcode::Add:
          case FheOpcode::Sub:
          case FheOpcode::Negate:
          case FheOpcode::AddPlain:
            ++counts.ct_add;
            break;
          case FheOpcode::Mul: ++counts.ct_ct_mul; break;
          case FheOpcode::MulPlain: ++counts.ct_pt_mul; break;
          case FheOpcode::Rotate: ++counts.rotations; break;
        }
    }
    return counts;
}

std::string
FheProgram::disassemble() const
{
    std::string out;
    auto emitSlots = [&out](const FheInstr& instr) {
        for (const PackSlot& slot : instr.slots) {
            out += ' ';
            switch (slot.kind) {
            case PackSlot::Kind::CtVar: out += "ct:" + slot.name; break;
            case PackSlot::Kind::PtVar: out += "pt:" + slot.name; break;
            case PackSlot::Kind::Const:
                out += std::to_string(slot.value);
                break;
            case PackSlot::Kind::PlainExpr:
                out += slot.expr ? slot.expr->toString() : "<null>";
                break;
            }
        }
        if (instr.replicate) out += " replicate";
    };
    for (const FheInstr& instr : instrs) {
        out += 'r' + std::to_string(instr.dst);
        switch (instr.op) {
        case FheOpcode::PackCipher:
            out += " = PackCipher";
            emitSlots(instr);
            break;
        case FheOpcode::PackPlain:
            out += " = PackPlain";
            emitSlots(instr);
            break;
        case FheOpcode::Add:
            out += " = Add r" + std::to_string(instr.a) + " r" +
                   std::to_string(instr.b);
            break;
        case FheOpcode::Sub:
            out += " = Sub r" + std::to_string(instr.a) + " r" +
                   std::to_string(instr.b);
            break;
        case FheOpcode::Mul:
            out += " = Mul r" + std::to_string(instr.a) + " r" +
                   std::to_string(instr.b);
            break;
        case FheOpcode::AddPlain:
            out += " = AddPlain r" + std::to_string(instr.a) + " r" +
                   std::to_string(instr.b);
            break;
        case FheOpcode::MulPlain:
            out += " = MulPlain r" + std::to_string(instr.a) + " r" +
                   std::to_string(instr.b);
            break;
        case FheOpcode::Negate:
            out += " = Negate r" + std::to_string(instr.a);
            break;
        case FheOpcode::Rotate:
            out += " = Rotate r" + std::to_string(instr.a) + " by " +
                   std::to_string(instr.step);
            break;
        }
        out += '\n';
    }
    out += "regs " + std::to_string(num_regs) + " output r" +
           std::to_string(output_reg) + " width " +
           std::to_string(output_width) + '\n';
    if (!mod_switch.empty()) {
        out += "modswitch points";
        for (int point : mod_switch.points) {
            out += ' ' + std::to_string(point);
        }
        out += " margin " + std::to_string(mod_switch.margin_bits) +
               " min-level " + std::to_string(mod_switch.min_level) + '\n';
    }
    return out;
}

namespace {

bool
isPow2(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/// Lowering context: CSE memo over structural equality plus register
/// allocation.
class Scheduler
{
  public:
    FheProgram
    run(const ExprPtr& root)
    {
        ir::typeOf(root); // Throws CompileError on ill-typed input.
        const Reg out = lower(root);
        program_.output_reg = out.reg;
        program_.output_width = out.width;
        program_.num_regs = next_reg_;
        return std::move(program_);
    }

  private:
    struct Reg
    {
        int reg = -1;
        int width = 1;
        bool replicated = false;
        bool plain = false;
    };

    int
    emit(FheInstr instr)
    {
        instr.dst = next_reg_++;
        program_.instrs.push_back(std::move(instr));
        return next_reg_ - 1;
    }

    Reg
    packPlainExpr(const ExprPtr& e)
    {
        const ir::TypeInfo type = ir::typeOf(e);
        FheInstr instr;
        instr.op = FheOpcode::PackPlain;
        if (e->op() == Op::Vec) {
            for (const auto& child : e->children()) {
                PackSlot slot;
                slot.kind = PackSlot::Kind::PlainExpr;
                slot.expr = child;
                instr.slots.push_back(std::move(slot));
            }
        } else {
            PackSlot slot;
            slot.kind = PackSlot::Kind::PlainExpr;
            slot.expr = e;
            instr.slots.push_back(std::move(slot));
        }
        const int width = type.is_vector ? type.width : 1;
        instr.replicate = isPow2(width);
        const int reg = emit(std::move(instr));
        return {reg, width, isPow2(width), true};
    }

    /// One-hot-style plaintext mask covering slots [begin, end) of a
    /// width-w vector (never replicated: it must zero the rest of row).
    Reg
    packMask(int begin, int end, int width)
    {
        FheInstr instr;
        instr.op = FheOpcode::PackPlain;
        instr.replicate = false;
        for (int i = 0; i < width; ++i) {
            PackSlot slot;
            slot.kind = PackSlot::Kind::Const;
            slot.value = (i >= begin && i < end) ? 1 : 0;
            instr.slots.push_back(std::move(slot));
        }
        const int reg = emit(std::move(instr));
        return {reg, width, false, true};
    }

    Reg
    lowerLeafPack(const ExprPtr& vec_node)
    {
        FheInstr instr;
        instr.op = FheOpcode::PackCipher;
        for (const auto& child : vec_node->children()) {
            PackSlot slot;
            switch (child->op()) {
              case Op::Var:
                slot.kind = PackSlot::Kind::CtVar;
                slot.name = child->name();
                break;
              case Op::PlainVar:
                slot.kind = PackSlot::Kind::PtVar;
                slot.name = child->name();
                break;
              case Op::Const:
                slot.kind = PackSlot::Kind::Const;
                slot.value = child->value();
                break;
              default:
                slot.kind = PackSlot::Kind::PlainExpr;
                slot.expr = child;
                break;
            }
            instr.slots.push_back(std::move(slot));
        }
        const int width = static_cast<int>(vec_node->arity());
        instr.replicate = isPow2(width);
        const int reg = emit(std::move(instr));
        return {reg, width, isPow2(width), false};
    }

    /// Pack a Vec with computed ciphertext children: load the static
    /// slots, then mask/rotate/add each computed scalar into place.
    Reg
    lowerComputedPack(const ExprPtr& vec_node)
    {
        const int width = static_cast<int>(vec_node->arity());
        // Base pack: static slots, zeros where computation lands.
        FheInstr base;
        base.op = FheOpcode::PackCipher;
        base.replicate = false;
        std::vector<int> computed_positions;
        for (int i = 0; i < width; ++i) {
            const ExprPtr& child = vec_node->child(static_cast<std::size_t>(i));
            PackSlot slot;
            if (child->op() == Op::Var) {
                slot.kind = PackSlot::Kind::CtVar;
                slot.name = child->name();
            } else if (child->op() == Op::PlainVar) {
                slot.kind = PackSlot::Kind::PtVar;
                slot.name = child->name();
            } else if (child->isPlain()) {
                slot.kind = PackSlot::Kind::PlainExpr;
                slot.expr = child;
            } else {
                slot.kind = PackSlot::Kind::Const;
                slot.value = 0;
                computed_positions.push_back(i);
            }
            base.slots.push_back(std::move(slot));
        }
        Reg acc{emit(std::move(base)), width, false, false};

        const Reg slot0_mask = packMask(0, 1, width);
        for (int position : computed_positions) {
            const Reg value = lower(
                vec_node->child(static_cast<std::size_t>(position)));
            // Isolate slot 0 of the computed scalar, move it into place,
            // and accumulate.
            FheInstr mask;
            mask.op = FheOpcode::MulPlain;
            mask.a = value.reg;
            mask.b = slot0_mask.reg;
            int masked = emit(std::move(mask));
            if (position != 0) {
                FheInstr rot;
                rot.op = FheOpcode::Rotate;
                rot.a = masked;
                rot.step = -position; // Right rotation: slot0 -> slot pos.
                masked = emit(std::move(rot));
            }
            FheInstr sum;
            sum.op = FheOpcode::Add;
            sum.a = acc.reg;
            sum.b = masked;
            acc.reg = emit(std::move(sum));
        }
        return acc;
    }

    Reg
    lowerRotate(const ExprPtr& e)
    {
        const Reg src = lower(e->child(0));
        const int w = src.width;
        const int s = ((e->step() % w) + w) % w;
        if (s == 0) return src;
        if (src.replicated) {
            FheInstr rot;
            rot.op = FheOpcode::Rotate;
            rot.a = src.reg;
            rot.step = s;
            const int reg = emit(std::move(rot));
            return {reg, w, true, src.plain};
        }
        // Two-rotation wraparound emulation for non-replicable widths.
        FheInstr lo_rot;
        lo_rot.op = FheOpcode::Rotate;
        lo_rot.a = src.reg;
        lo_rot.step = s;
        const int lo = emit(std::move(lo_rot));
        const Reg lo_mask = packMask(0, w - s, w);
        FheInstr lo_masked;
        lo_masked.op = FheOpcode::MulPlain;
        lo_masked.a = lo;
        lo_masked.b = lo_mask.reg;
        const int lo_done = emit(std::move(lo_masked));

        FheInstr hi_rot;
        hi_rot.op = FheOpcode::Rotate;
        hi_rot.a = src.reg;
        hi_rot.step = s - w;
        const int hi = emit(std::move(hi_rot));
        const Reg hi_mask = packMask(w - s, w, w);
        FheInstr hi_masked;
        hi_masked.op = FheOpcode::MulPlain;
        hi_masked.a = hi;
        hi_masked.b = hi_mask.reg;
        const int hi_done = emit(std::move(hi_masked));

        FheInstr sum;
        sum.op = FheOpcode::Add;
        sum.a = lo_done;
        sum.b = hi_done;
        const int reg = emit(std::move(sum));
        return {reg, w, false, false};
    }

    Reg
    lowerBinary(const ExprPtr& e, FheOpcode ct_op, FheOpcode plain_op,
                bool commutative, bool negate_plain)
    {
        const ExprPtr& lhs = e->child(0);
        const ExprPtr& rhs = e->child(1);
        const bool lhs_plain = lhs->isPlain();
        const bool rhs_plain = rhs->isPlain();

        // Prefer the ct (op) plain form when one side is plaintext.
        if (rhs_plain && !lhs_plain) {
            const Reg a = lower(lhs);
            const Reg b = negate_plain
                              ? packPlainExpr(negatedPlain(rhs))
                              : packPlainExpr(rhs);
            FheInstr instr;
            instr.op = plain_op;
            instr.a = a.reg;
            instr.b = b.reg;
            const int reg = emit(std::move(instr));
            return {reg, a.width, a.replicated && b.replicated, false};
        }
        if (lhs_plain && !rhs_plain && commutative) {
            const Reg a = lower(rhs);
            const Reg b = packPlainExpr(lhs);
            FheInstr instr;
            instr.op = plain_op;
            instr.a = a.reg;
            instr.b = b.reg;
            const int reg = emit(std::move(instr));
            return {reg, a.width, a.replicated && b.replicated, false};
        }
        if (lhs_plain && !rhs_plain && !commutative) {
            // plain - ct  =>  -(ct) + plain.
            const Reg a = lower(rhs);
            FheInstr neg;
            neg.op = FheOpcode::Negate;
            neg.a = a.reg;
            const int negated = emit(std::move(neg));
            const Reg b = packPlainExpr(lhs);
            FheInstr instr;
            instr.op = FheOpcode::AddPlain;
            instr.a = negated;
            instr.b = b.reg;
            const int reg = emit(std::move(instr));
            return {reg, a.width, a.replicated && b.replicated, false};
        }

        const Reg a = lower(lhs);
        const Reg b = lower(rhs);
        FheInstr instr;
        instr.op = ct_op;
        instr.a = a.reg;
        instr.b = b.reg;
        const int reg = emit(std::move(instr));
        return {reg, std::max(a.width, b.width),
                a.replicated && b.replicated, false};
    }

    /// Elementwise negation of a plain operand (for ct - plain lowered
    /// to AddPlain).
    static ExprPtr
    negatedPlain(const ExprPtr& e)
    {
        if (e->op() == Op::Vec) {
            std::vector<ExprPtr> kids;
            kids.reserve(e->arity());
            for (const auto& child : e->children()) {
                kids.push_back(ir::neg(child));
            }
            return ir::vec(std::move(kids));
        }
        return ir::neg(e);
    }

    Reg
    lowerImpl(const ExprPtr& e)
    {
        if (e->isPlain()) return packPlainExpr(e);
        switch (e->op()) {
          case Op::Var: {
            FheInstr instr;
            instr.op = FheOpcode::PackCipher;
            PackSlot slot;
            slot.kind = PackSlot::Kind::CtVar;
            slot.name = e->name();
            instr.slots.push_back(std::move(slot));
            instr.replicate = true;
            const int reg = emit(std::move(instr));
            return {reg, 1, true, false};
          }
          case Op::Vec: {
            const bool computed = std::any_of(
                e->children().begin(), e->children().end(),
                [](const ExprPtr& c) {
                    return !c->isPlain() && c->op() != Op::Var;
                });
            return computed ? lowerComputedPack(e) : lowerLeafPack(e);
          }
          case Op::Add:
          case Op::VecAdd:
            return lowerBinary(e, FheOpcode::Add, FheOpcode::AddPlain,
                               /*commutative=*/true, /*negate_plain=*/false);
          case Op::Sub:
          case Op::VecSub:
            return lowerBinary(e, FheOpcode::Sub, FheOpcode::AddPlain,
                               /*commutative=*/false, /*negate_plain=*/true);
          case Op::Mul:
          case Op::VecMul:
            return lowerBinary(e, FheOpcode::Mul, FheOpcode::MulPlain,
                               /*commutative=*/true, /*negate_plain=*/false);
          case Op::Neg:
          case Op::VecNeg: {
            const Reg a = lower(e->child(0));
            FheInstr instr;
            instr.op = FheOpcode::Negate;
            instr.a = a.reg;
            const int reg = emit(std::move(instr));
            return {reg, a.width, a.replicated, false};
          }
          case Op::Rotate:
            return lowerRotate(e);
          default:
            CHEHAB_ASSERT(false, "unhandled op in scheduler");
            return {};
        }
    }

    Reg
    lower(const ExprPtr& e)
    {
        auto& bucket = memo_[e->hash()];
        for (const auto& [expr, reg] : bucket) {
            if (ir::equal(expr, e)) return reg;
        }
        const Reg reg = lowerImpl(e);
        bucket.emplace_back(e, reg);
        return reg;
    }

    FheProgram program_;
    int next_reg_ = 0;
    std::unordered_map<std::size_t, std::vector<std::pair<ExprPtr, Reg>>>
        memo_;
};

} // namespace

FheProgram
schedule(const ExprPtr& optimized)
{
    return Scheduler().run(optimized);
}

} // namespace chehab::compiler
