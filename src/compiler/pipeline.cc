#include "compiler/pipeline.h"

#include "compiler/passes.h"
#include "support/stopwatch.h"

namespace chehab::compiler {

namespace {

Compiled
finish(ir::ExprPtr optimized, double compile_seconds, double initial_cost,
       int rewrite_steps)
{
    Compiled compiled;
    compiled.optimized = std::move(optimized);
    compiled.program = schedule(compiled.optimized);
    compiled.stats.compile_seconds = compile_seconds;
    compiled.stats.initial_cost = initial_cost;
    compiled.stats.final_cost = ir::cost(compiled.optimized);
    compiled.stats.circuit_depth = ir::circuitDepth(compiled.optimized);
    compiled.stats.mult_depth = ir::multiplicativeDepth(compiled.optimized);
    compiled.stats.ir_counts = ir::countOps(compiled.optimized);
    compiled.stats.rewrite_steps = rewrite_steps;
    return compiled;
}

} // namespace

Compiled
compileNoOpt(const ir::ExprPtr& source)
{
    Stopwatch watch;
    ir::ExprPtr canonical = canonicalize(source);
    const double initial = ir::cost(canonical);
    return finish(std::move(canonical), watch.elapsedSeconds(), initial, 0);
}

Compiled
compileGreedy(const trs::Ruleset& ruleset, const ir::ExprPtr& source,
              const ir::CostWeights& weights, int max_steps)
{
    Stopwatch watch;
    const ir::ExprPtr canonical = canonicalize(source);
    trs::OptimizeResult result =
        trs::greedyOptimize(ruleset, canonical, weights, {}, max_steps);
    return finish(std::move(result.program), watch.elapsedSeconds(),
                  result.initial_cost, result.steps);
}

Compiled
compileWithAgent(const rl::RlAgent& agent, const ir::ExprPtr& source)
{
    Stopwatch watch;
    const ir::ExprPtr canonical = canonicalize(source);
    rl::AgentResult result = agent.optimize(canonical);
    return finish(std::move(result.program), watch.elapsedSeconds(),
                  result.initial_cost, result.steps);
}

} // namespace chehab::compiler
