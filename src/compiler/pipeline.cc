#include "compiler/pipeline.h"

#include "compiler/driver.h"

namespace chehab::compiler {

Compiled
compileNoOpt(const ir::ExprPtr& source)
{
    return CompilerDriver().compile(source, DriverConfig::noOpt());
}

Compiled
compileGreedy(const trs::Ruleset& ruleset, const ir::ExprPtr& source,
              const ir::CostWeights& weights, int max_steps)
{
    return CompilerDriver(&ruleset).compile(
        source, DriverConfig::greedy(weights, max_steps));
}

Compiled
compileWithAgent(const rl::RlAgent& agent, const ir::ExprPtr& source)
{
    return CompilerDriver(&agent.ruleset(), &agent)
        .compile(source, DriverConfig::rl());
}

} // namespace chehab::compiler
