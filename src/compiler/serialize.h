/// \file
/// Binary (de)serialization of compiled artifacts, for the service's
/// on-disk persistence tier (service/persist.{h,cc}).
///
/// A Compiled splits into two sections:
///
///   - **Content** — the deterministic artifact: the optimized IR, the
///     scheduled FheProgram (including the mod-switch plan) and the
///     rotation-key plan. Content bytes are a pure function of the
///     (source fingerprint, pipeline fingerprint) cache key, so the
///     determinism contract extends across processes: deserializing a
///     stored artifact yields a tree/program bit-identical to a fresh
///     compile of the same key (serializeCompiledContent is the
///     byte-exact comparison key the differential tests check).
///   - **Stats** — the CompileStats measured when the artifact was
///     first built (per-pass wall seconds, cost trajectory). Timings
///     are machine- and run-dependent, so they live outside the
///     content section and never participate in bit-identity checks.
///
/// The IR tree is serialized structurally (op, name, value, step,
/// children) and rebuilt through ir::makeNode, so every derived field
/// (hashes, node counts, plainness) is recomputed by the same code a
/// fresh parse would use — ir::fingerprint(deserialized) ==
/// ir::fingerprint(original) by construction. The unordered
/// RotationKeyPlan::decomposition map is written sorted by key so equal
/// plans always produce equal bytes.
///
/// deserializeCompiled throws std::runtime_error on malformed input
/// (truncation, bad op tags, absurd counts); callers treat that as a
/// corrupt entry, not a crash. Framing, versioning and checksums are
/// the persistence layer's job — these functions handle only the
/// payload encoding.
#pragma once

#include <string>

#include "compiler/pipeline.h"

namespace chehab::compiler {

/// Serialize the full artifact (content section + stats section).
std::string serializeCompiled(const Compiled& compiled);

/// Serialize only the deterministic content section (optimized IR,
/// program, key plan) — the byte string the bit-identity contract is
/// stated over.
std::string serializeCompiledContent(const Compiled& compiled);

/// Rebuild a Compiled from serializeCompiled's output. Throws
/// std::runtime_error on malformed bytes.
Compiled deserializeCompiled(const std::string& bytes);

} // namespace chehab::compiler
