/// \file
/// Deterministic noise-bits model behind the mod-switch pass.
///
/// The pass itself (driver.cc) only marks structurally plausible drop
/// points — after ciphertext multiplies with further work remaining —
/// because passes run before encryption parameters exist. At execution
/// time the runtime replays the instruction stream through this integer
/// model (an upper bound on log2 of the phase magnitude |t·e + m|) and
/// takes a marked drop only when every live ciphertext AND every
/// ciphertext the remaining suffix will produce stays at least
/// margin_bits below the post-drop modulus. The model depends only on
/// (program, key plan, scheme parameters, fresh budget) — never on
/// input values or worker count — so the drop decisions, and therefore
/// the decoded outputs, are bit-for-bit reproducible at any concurrency.
#pragma once

#include <vector>

#include "compiler/keyselect.h"
#include "compiler/schedule.h"
#include "fhe/sealite.h"

namespace chehab::compiler::modswitch {

/// ceil(log2(x)) for x >= 1.
int ceilLog2(std::uint64_t x);

/// Static scheme facts the recurrences need.
struct NoiseParams
{
    int n_bits = 0;           ///< ceil(log2 n): convolution growth.
    int t_bits = 0;           ///< ceil(log2 t): plaintext scale.
    int decomp_bits = 0;      ///< Key-switch digit width w.
    int digits_per_prime = 0;
    int fresh_bits = 0;       ///< Phase bits of a fresh encryption.
    /// level_bits[k-1] = bits of the chain product at level k.
    std::vector<int> level_bits;
    /// prime_bits[i] = bits of chain prime i.
    std::vector<int> prime_bits;
};

/// Extract NoiseParams from a scheme. \p fresh_noise_budget is the
/// scheme's measured fresh budget (SealLite::freshNoiseBudget()); the
/// fresh phase estimate is derived from it so the model's anchor matches
/// the implementation rather than an analytic constant.
NoiseParams noiseParamsFor(const fhe::SealLite& scheme,
                           int fresh_noise_budget);

/// Phase-magnitude estimate per register (bits; -1 = not a ciphertext),
/// plus the current chain level (shared by every live ciphertext — the
/// runtime drops all of them in lockstep).
struct NoiseState
{
    std::vector<int> bits;
    int level = 0;
};

/// State before the first instruction: every PackCipher destination in
/// the whole stream is seeded at fresh_bits (the runtime encrypts all
/// inputs client-side before evaluation, so a drop taken mid-stream
/// switches not-yet-consumed inputs too — including later composite
/// members').
NoiseState initialState(const FheProgram& program, const NoiseParams& np);

/// Noise floor (bits) a key-switch adds at \p level: digit magnitude
/// 2^w times t·(6σ) key error, convolved over n, summed over
/// digits_per_prime * level decomposition terms.
int ksFloorBits(const NoiseParams& np, int level);

/// Advance the estimate across one instruction. Pack* are no-ops (seeded
/// by initialState); Rotate accounts one key-switch per decomposed
/// component of \p plan.
void applyInstr(NoiseState& state, const FheInstr& instr,
                const NoiseParams& np, const RotationKeyPlan& plan);

/// Account one modulus drop: estimates shrink by the dropped prime's
/// bits but not below the rescale floor ~n·t/2, then grow by the
/// centered t-correction scalar (<= t/2) the switch folds in.
void applyDrop(NoiseState& state, const NoiseParams& np);

/// Ceiling (bits) an estimate must stay under at \p level for a
/// \p margin_bits safety margin against the decryption bound q/2.
int limitBits(const NoiseParams& np, int level, int margin_bits);

/// Would dropping one prime immediately before instruction \p next keep
/// every live ciphertext and the entire remaining suffix within
/// \p margin_bits of headroom (and the level at or above
/// \p min_level)? Pure: copies the state, never mutates inputs.
bool canDropBefore(const FheProgram& program, int next,
                   const NoiseState& state, const NoiseParams& np,
                   const RotationKeyPlan& plan, int margin_bits,
                   int min_level);

} // namespace chehab::compiler::modswitch
