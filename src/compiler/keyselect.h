/// \file
/// Rotation (Galois) key selection via non-adjacent-form decomposition
/// (Appendix B). Given the set χ of rotation steps a program uses and a
/// key budget β (default 2·log2 n), selects which steps keep dedicated
/// keys and which are decomposed into NAF components, so that at most β
/// keys are generated while decomposed rotations execute as short
/// sequences of component rotations.
#pragma once

#include <unordered_map>
#include <vector>

namespace chehab::compiler {

/// Signed power-of-two digits of the non-adjacent form of \p value,
/// e.g. 3 -> {-1, 4}; 5 -> {1, 4}; 12 -> {-4, 16}.
std::vector<int> nafDigits(int value);

/// Result of the key-selection pass.
struct RotationKeyPlan
{
    /// Steps to generate keys for (χ_f ∪ Γ_tot of App. B).
    std::vector<int> keys;
    /// Per original step, the key-step sequence that realizes it (one
    /// entry, itself, when not decomposed).
    std::unordered_map<int, std::vector<int>> decomposition;

    int numKeys() const { return static_cast<int>(keys.size()); }
};

/// Select rotation keys for \p steps with budget \p beta. Greedy: while
/// over budget, decompose the step whose NAF components give the largest
/// net reduction in the key count.
RotationKeyPlan selectRotationKeys(const std::vector<int>& steps, int beta);

} // namespace chehab::compiler
