/// \file
/// C++ code generation (§4.4): renders a scheduled FheProgram as a
/// self-contained C++ translation unit targeting the Microsoft SEAL BFV
/// API (Evaluator::add / multiply / rotate_rows / ...), mirroring what the
/// CHEHAB artifact emits. The string is a deliverable, not something this
/// repo compiles (SEAL is the substituted dependency).
#pragma once

#include <string>

#include "compiler/schedule.h"

namespace chehab::compiler {

/// Generate SEAL-style C++ for \p program; \p kernel_name becomes the
/// emitted function name.
std::string generateSealCpp(const FheProgram& program,
                            const std::string& kernel_name);

} // namespace chehab::compiler
