/// \file
/// Classic compiler passes (§4.3): constant folding and identity
/// simplification applied before/after the TRS optimizer. Common
/// subexpression elimination is performed structurally by the scheduler
/// (structurally identical subtrees share one virtual register), and dead
/// code cannot exist in a pure expression tree by construction.
#pragma once

#include "ir/expr.h"

namespace chehab::compiler {

/// Bottom-up constant folding: any all-constant scalar arithmetic
/// subtree collapses to its literal value.
ir::ExprPtr constantFold(const ir::ExprPtr& e);

/// Cheap identity cleanup: x+0, x*1, x*0, x-0, double negation — applied
/// bottom-up to a fixpoint per node.
ir::ExprPtr simplifyIdentities(const ir::ExprPtr& e);

/// The standard pre-optimization pipeline: fold then simplify.
ir::ExprPtr canonicalize(const ir::ExprPtr& e);

} // namespace chehab::compiler
