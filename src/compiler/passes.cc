#include "compiler/passes.h"

namespace chehab::compiler {

using ir::ExprPtr;
using ir::Op;

namespace {

ExprPtr
rebuild(const ExprPtr& e, ExprPtr (*transform)(const ExprPtr&))
{
    if (e->arity() == 0) return e;
    std::vector<ExprPtr> kids;
    kids.reserve(e->arity());
    bool changed = false;
    for (const auto& child : e->children()) {
        ExprPtr mapped = transform(child);
        changed = changed || mapped.get() != child.get();
        kids.push_back(std::move(mapped));
    }
    if (!changed) return e;
    return ir::makeNode(e->op(), std::move(kids), e->name(), e->value(),
                        e->step());
}

bool
isConst(const ExprPtr& e, std::int64_t value)
{
    return e->op() == Op::Const && e->value() == value;
}

} // namespace

ExprPtr
constantFold(const ExprPtr& e)
{
    const ExprPtr folded = rebuild(e, &constantFold);
    if (!ir::isScalarOp(folded->op())) return folded;
    for (const auto& child : folded->children()) {
        if (child->op() != Op::Const) return folded;
    }
    switch (folded->op()) {
      case Op::Add:
        return ir::constant(folded->child(0)->value() +
                            folded->child(1)->value());
      case Op::Sub:
        return ir::constant(folded->child(0)->value() -
                            folded->child(1)->value());
      case Op::Mul:
        return ir::constant(folded->child(0)->value() *
                            folded->child(1)->value());
      case Op::Neg:
        return ir::constant(-folded->child(0)->value());
      default:
        return folded;
    }
}

ExprPtr
simplifyIdentities(const ExprPtr& e)
{
    const ExprPtr s = rebuild(e, &simplifyIdentities);
    switch (s->op()) {
      case Op::Add:
        if (isConst(s->child(1), 0)) return s->child(0);
        if (isConst(s->child(0), 0)) return s->child(1);
        break;
      case Op::Sub:
        if (isConst(s->child(1), 0)) return s->child(0);
        break;
      case Op::Mul:
        if (isConst(s->child(1), 1)) return s->child(0);
        if (isConst(s->child(0), 1)) return s->child(1);
        if (isConst(s->child(0), 0) || isConst(s->child(1), 0)) {
            return ir::constant(0);
        }
        break;
      case Op::Neg:
        if (s->child(0)->op() == Op::Neg) return s->child(0)->child(0);
        break;
      default:
        break;
    }
    return s;
}

ExprPtr
canonicalize(const ExprPtr& e)
{
    return simplifyIdentities(constantFold(e));
}

} // namespace chehab::compiler
