#include "compiler/runtime.h"

#include <algorithm>
#include <unordered_set>

#include "compiler/modswitch.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::compiler {

FheRuntime::FheRuntime(fhe::SealLiteParams params)
    : scheme_(params),
      plain_eval_(static_cast<std::int64_t>(params.plain_modulus))
{}

std::vector<std::int64_t>
FheRuntime::packBase(const FheInstr& instr, const ir::Env& env) const
{
    const int width = static_cast<int>(instr.slots.size());
    if (width > scheme_.slots()) {
        throw CompileError(
            "pack wider than the batching row (" + std::to_string(width) +
            " > " + std::to_string(scheme_.slots()) +
            "); raise the polynomial modulus degree");
    }
    std::vector<std::int64_t> base(static_cast<std::size_t>(width), 0);
    for (int i = 0; i < width; ++i) {
        const PackSlot& slot = instr.slots[static_cast<std::size_t>(i)];
        switch (slot.kind) {
          case PackSlot::Kind::CtVar:
          case PackSlot::Kind::PtVar: {
            auto it = env.find(slot.name);
            if (it == env.end()) {
                throw CompileError("unbound input '" + slot.name + "'");
            }
            base[static_cast<std::size_t>(i)] = it->second;
            break;
          }
          case PackSlot::Kind::Const:
            base[static_cast<std::size_t>(i)] = slot.value;
            break;
          case PackSlot::Kind::PlainExpr: {
            const ir::Value v = plain_eval_.evaluate(slot.expr, env);
            base[static_cast<std::size_t>(i)] = v.scalar();
            break;
          }
        }
    }
    return base;
}

std::vector<std::int64_t>
FheRuntime::packValues(const FheInstr& instr, const ir::Env& env) const
{
    std::vector<std::int64_t> base = packBase(instr, env);
    if (!instr.replicate) return base;
    // Replicate period-w across the whole row so a single ciphertext
    // rotation realizes the width-w cyclic rotation.
    const int width = static_cast<int>(base.size());
    std::vector<std::int64_t> replicated(
        static_cast<std::size_t>(scheme_.slots()));
    for (int i = 0; i < scheme_.slots(); ++i) {
        replicated[static_cast<std::size_t>(i)] =
            base[static_cast<std::size_t>(i % width)];
    }
    return replicated;
}

std::vector<std::int64_t>
FheRuntime::packLaneRegion(const FheInstr& instr, const ir::Env& env,
                           int lane_stride) const
{
    std::vector<std::int64_t> base = packBase(instr, env);
    const int width = static_cast<int>(base.size());
    if (width > lane_stride) {
        throw CompileError("pack wider than the lane stride (" +
                           std::to_string(width) + " > " +
                           std::to_string(lane_stride) + ")");
    }
    std::vector<std::int64_t> region(static_cast<std::size_t>(lane_stride),
                                     0);
    if (instr.replicate) {
        // Period-w replication *within the lane's region*: the stride
        // is a power-of-two multiple of the (power-of-two) pack width,
        // so a whole-row rotation still realizes the width-w cyclic
        // rotation inside every lane.
        for (int i = 0; i < lane_stride; ++i) {
            region[static_cast<std::size_t>(i)] =
                base[static_cast<std::size_t>(i % width)];
        }
    } else {
        std::copy(base.begin(), base.end(), region.begin());
    }
    return region;
}

RotationKeyPlan
effectiveKeyPlanFor(const std::vector<int>& steps, int key_budget)
{
    // Rotation-key selection (App. B): under a budget, rotations execute
    // as NAF-component sequences.
    if (key_budget > 0) return selectRotationKeys(steps, key_budget);
    RotationKeyPlan plan;
    plan.keys = steps;
    for (int s : steps) plan.decomposition[s] = {s};
    return plan;
}

RotationKeyPlan
effectiveKeyPlan(const FheProgram& program, int key_budget)
{
    return effectiveKeyPlanFor(program.rotationSteps(), key_budget);
}

RunResult
FheRuntime::run(const FheProgram& program, const ir::Env& env,
                int key_budget)
{
    return run(program, env, effectiveKeyPlan(program, key_budget));
}

void
FheRuntime::recycleCiphertexts(
    std::unordered_map<int, fhe::Ciphertext>& cts)
{
    for (auto& entry : cts) {
        scheme_.recycle(std::move(entry.second));
        ++recycled_cts_;
    }
    cts.clear();
}

double
FheRuntime::evaluateServer(
    const FheProgram& program, const RotationKeyPlan& plan,
    std::unordered_map<int, fhe::Ciphertext>& cts,
    const std::unordered_map<int, fhe::Plaintext>& plains,
    const std::vector<int>& protected_regs, int fresh_noise_budget,
    int* mod_switch_drops) const
{
    const ModSwitchPlan& ms = program.mod_switch;
    const bool gated = !ms.empty();
    modswitch::NoiseParams np;
    modswitch::NoiseState noise;
    std::size_t next_point = 0;
    if (gated) {
        np = modswitch::noiseParamsFor(scheme_, fresh_noise_budget);
        noise = modswitch::initialState(program, np);
    }

    // Last-use liveness over the linear instruction stream: a ciphertext
    // register whose final reader is instruction idx can be consumed
    // destructively there (AddPlain/MulPlain's b names a plaintext
    // register, so only a counts as a ciphertext read).
    std::unordered_map<int, std::size_t> last_use;
    if (in_place_enabled_) {
        for (std::size_t idx = 0; idx < program.instrs.size(); ++idx) {
            const FheInstr& instr = program.instrs[idx];
            switch (instr.op) {
              case FheOpcode::Add:
              case FheOpcode::Sub:
              case FheOpcode::Mul:
                last_use[instr.a] = idx;
                last_use[instr.b] = idx;
                break;
              case FheOpcode::AddPlain:
              case FheOpcode::MulPlain:
              case FheOpcode::Negate:
              case FheOpcode::Rotate:
                last_use[instr.a] = idx;
                break;
              case FheOpcode::PackCipher:
              case FheOpcode::PackPlain:
                break;
            }
        }
    }
    const std::unordered_set<int> protected_set(protected_regs.begin(),
                                                protected_regs.end());
    auto dies = [&](int reg, std::size_t idx) {
        if (!in_place_enabled_ || protected_set.count(reg)) return false;
        auto it = last_use.find(reg);
        return it != last_use.end() && it->second == idx;
    };
    auto consume = [&](int reg) {
        auto node = cts.extract(reg);
        ++inplace_consumed_;
        return std::move(node.mapped());
    };
    auto discard = [&](int reg) {
        auto node = cts.extract(reg);
        scheme_.recycle(std::move(node.mapped()));
        ++recycled_cts_;
    };

    Stopwatch watch;
    for (std::size_t idx = 0; idx < program.instrs.size(); ++idx) {
        const FheInstr& instr = program.instrs[idx];
        if (gated) {
            while (next_point < ms.points.size() &&
                   ms.points[next_point] < static_cast<int>(idx)) {
                ++next_point;
            }
            if (next_point < ms.points.size() &&
                ms.points[next_point] == static_cast<int>(idx)) {
                // Multi-prime drops are possible when the noise demand
                // collapsed far below the chain (each iteration re-runs
                // the full suffix simulation one level lower).
                while (modswitch::canDropBefore(
                    program, static_cast<int>(idx), noise, np, plan,
                    ms.margin_bits, ms.min_level)) {
                    const int new_level = noise.level - 1;
                    for (auto& [reg, ct] : cts) {
                        scheme_.modSwitchTo(ct, new_level);
                    }
                    modswitch::applyDrop(noise, np);
                    if (mod_switch_drops) ++*mod_switch_drops;
                }
                ++next_point;
            }
        }
        switch (instr.op) {
          case FheOpcode::PackCipher:
          case FheOpcode::PackPlain:
            break;
          case FheOpcode::Add: {
            const bool a_dies = dies(instr.a, idx);
            const bool b_dies = dies(instr.b, idx) && instr.b != instr.a;
            if (a_dies) {
                fhe::Ciphertext value = consume(instr.a);
                scheme_.addInPlace(
                    value, instr.b == instr.a ? value : cts.at(instr.b));
                if (b_dies) discard(instr.b);
                cts.emplace(instr.dst, std::move(value));
            } else if (b_dies) {
                // Add is commutative: consume b instead.
                fhe::Ciphertext value = consume(instr.b);
                scheme_.addInPlace(value, cts.at(instr.a));
                cts.emplace(instr.dst, std::move(value));
            } else {
                ++inplace_copies_;
                cts.emplace(instr.dst,
                            scheme_.add(cts.at(instr.a), cts.at(instr.b)));
            }
            break;
          }
          case FheOpcode::Sub: {
            const bool a_dies = dies(instr.a, idx);
            const bool b_dies = dies(instr.b, idx) && instr.b != instr.a;
            if (a_dies) {
                fhe::Ciphertext value = consume(instr.a);
                scheme_.subInPlace(
                    value, instr.b == instr.a ? value : cts.at(instr.b));
                if (b_dies) discard(instr.b);
                cts.emplace(instr.dst, std::move(value));
            } else {
                ++inplace_copies_;
                cts.emplace(instr.dst,
                            scheme_.sub(cts.at(instr.a), cts.at(instr.b)));
                if (b_dies) discard(instr.b);
            }
            break;
          }
          case FheOpcode::Mul: {
            // multiply() builds its result from the tensor product — no
            // copy to elide — but dying operands still recycle.
            fhe::Ciphertext value =
                scheme_.multiply(cts.at(instr.a), cts.at(instr.b));
            if (dies(instr.b, idx) && instr.b != instr.a) {
                discard(instr.b);
            }
            if (dies(instr.a, idx)) discard(instr.a);
            cts.emplace(instr.dst, std::move(value));
            break;
          }
          case FheOpcode::AddPlain:
            if (dies(instr.a, idx)) {
                fhe::Ciphertext value = consume(instr.a);
                scheme_.addPlainInPlace(value, plains.at(instr.b));
                cts.emplace(instr.dst, std::move(value));
            } else {
                ++inplace_copies_;
                cts.emplace(instr.dst, scheme_.addPlain(cts.at(instr.a),
                                                        plains.at(instr.b)));
            }
            break;
          case FheOpcode::MulPlain:
            if (dies(instr.a, idx)) {
                fhe::Ciphertext value = consume(instr.a);
                scheme_.mulPlainInPlace(value, plains.at(instr.b));
                cts.emplace(instr.dst, std::move(value));
            } else {
                ++inplace_copies_;
                cts.emplace(instr.dst, scheme_.mulPlain(cts.at(instr.a),
                                                        plains.at(instr.b)));
            }
            break;
          case FheOpcode::Negate:
            if (dies(instr.a, idx)) {
                fhe::Ciphertext value = consume(instr.a);
                scheme_.negateInPlace(value);
                cts.emplace(instr.dst, std::move(value));
            } else {
                ++inplace_copies_;
                cts.emplace(instr.dst, scheme_.negate(cts.at(instr.a)));
            }
            break;
          case FheOpcode::Rotate: {
            fhe::Ciphertext value;
            if (dies(instr.a, idx)) {
                value = consume(instr.a);
            } else {
                ++inplace_copies_;
                value = scheme_.clone(cts.at(instr.a));
            }
            for (int component : plan.decomposition.at(instr.step)) {
                fhe::Ciphertext next = scheme_.rotate(value, component);
                scheme_.recycle(std::move(value));
                ++recycled_cts_;
                value = std::move(next);
            }
            cts.emplace(instr.dst, std::move(value));
            break;
          }
        }
        if (gated) modswitch::applyInstr(noise, instr, np, plan);
    }
    return watch.elapsedSeconds();
}

RunResult
FheRuntime::run(const FheProgram& program, const ir::Env& env,
                const RotationKeyPlan& plan)
{
    const Stopwatch setup_watch;
    RunResult result;
    result.counts = program.counts();
    result.fresh_noise_budget = scheme_.freshNoiseBudget();

    scheme_.makeGaloisKeys(plan.keys);
    result.rotation_keys = static_cast<int>(plan.keys.size());

    // Client-side phase: pack, encode, encrypt.
    std::unordered_map<int, fhe::Ciphertext> cts;
    std::unordered_map<int, fhe::Plaintext> plains;
    for (const FheInstr& instr : program.instrs) {
        if (instr.op == FheOpcode::PackCipher) {
            cts.emplace(instr.dst,
                        scheme_.encrypt(scheme_.encode(
                            packValues(instr, env))));
        } else if (instr.op == FheOpcode::PackPlain) {
            plains.emplace(instr.dst,
                           scheme_.encode(packValues(instr, env)));
        }
    }

    result.setup_seconds = setup_watch.elapsedSeconds();
    result.exec_seconds =
        evaluateServer(program, plan, cts, plains, {program.output_reg},
                       result.fresh_noise_budget, &result.mod_switch_drops);
    const Stopwatch decode_watch;

    // Degenerate all-plaintext programs produce a plaintext output
    // register: nothing homomorphic ever ran.
    if (!cts.count(program.output_reg)) {
        const std::vector<std::int64_t> values =
            scheme_.decode(plains.at(program.output_reg));
        result.final_noise_budget = result.fresh_noise_budget;
        result.output.assign(
            values.begin(),
            values.begin() + std::min<std::size_t>(
                                 values.size(),
                                 static_cast<std::size_t>(
                                     program.output_width)));
        result.decode_seconds = decode_watch.elapsedSeconds();
        recycleCiphertexts(cts);
        return result;
    }

    const fhe::Ciphertext& out = cts.at(program.output_reg);
    result.final_noise_budget = scheme_.noiseBudgetBits(out);
    result.consumed_noise =
        result.fresh_noise_budget - result.final_noise_budget;

    const std::vector<std::int64_t> decrypted = scheme_.decrypt(out);
    result.output.assign(
        decrypted.begin(),
        decrypted.begin() + std::min<std::size_t>(
                                decrypted.size(),
                                static_cast<std::size_t>(
                                    program.output_width)));
    result.decode_seconds = decode_watch.elapsedSeconds();
    recycleCiphertexts(cts);
    return result;
}

PackedRunResult
FheRuntime::runPacked(const FheProgram& program,
                      const std::vector<const ir::Env*>& lanes,
                      const RotationKeyPlan& plan, int lane_stride)
{
    const int num_lanes = static_cast<int>(lanes.size());
    if (lane_stride <= 0 || num_lanes <= 0 ||
        scheme_.slots() % lane_stride != 0 ||
        num_lanes * lane_stride > scheme_.slots()) {
        throw CompileError(
            "lane layout exceeds the batching row (" +
            std::to_string(num_lanes) + " x " +
            std::to_string(lane_stride) + " > " +
            std::to_string(scheme_.slots()) + ")");
    }
    if (program.output_width > lane_stride) {
        throw CompileError("output wider than the lane stride");
    }
    // Pad the row to full capacity with phantom copies of lane 0: a
    // partially-used row would leave a zero zone whose content after
    // rotations is not covered by the planner's per-region safety
    // invariants, whereas a fully-laned row is (every region behaves
    // like a real lane, and lane 0's wraparound neighbour is one).
    const int num_regions = scheme_.slots() / lane_stride;

    const Stopwatch setup_watch;
    PackedRunResult packed;
    RunResult& result = packed.shared;
    result.counts = program.counts();
    result.fresh_noise_budget = scheme_.freshNoiseBudget();

    scheme_.makeGaloisKeys(plan.keys);
    result.rotation_keys = static_cast<int>(plan.keys.size());

    // Client-side phase: pack every lane's region, encode the shared
    // row once per instruction, encrypt once per PackCipher.
    std::unordered_map<int, fhe::Ciphertext> cts;
    std::unordered_map<int, fhe::Plaintext> plains;
    std::vector<std::vector<std::int64_t>> regions(
        static_cast<std::size_t>(num_regions));
    for (const FheInstr& instr : program.instrs) {
        if (instr.op != FheOpcode::PackCipher &&
            instr.op != FheOpcode::PackPlain) {
            continue;
        }
        for (int l = 0; l < num_regions; ++l) {
            const ir::Env& env =
                *lanes[static_cast<std::size_t>(l < num_lanes ? l : 0)];
            regions[static_cast<std::size_t>(l)] =
                packLaneRegion(instr, env, lane_stride);
        }
        fhe::Plaintext plain = scheme_.encodeLanes(regions, lane_stride);
        if (instr.op == FheOpcode::PackCipher) {
            cts.emplace(instr.dst, scheme_.encrypt(plain));
        } else {
            plains.emplace(instr.dst, std::move(plain));
        }
    }

    result.setup_seconds = setup_watch.elapsedSeconds();
    result.exec_seconds =
        evaluateServer(program, plan, cts, plains, {program.output_reg},
                       result.fresh_noise_budget, &result.mod_switch_drops);
    const Stopwatch decode_watch;

    if (!cts.count(program.output_reg)) {
        // All-plaintext program: mirror run()'s degenerate path.
        result.final_noise_budget = result.fresh_noise_budget;
        packed.lane_outputs =
            scheme_.decodeLanes(plains.at(program.output_reg), lane_stride,
                                program.output_width, num_lanes);
        result.decode_seconds = decode_watch.elapsedSeconds();
        recycleCiphertexts(cts);
        return packed;
    }

    const fhe::Ciphertext& out = cts.at(program.output_reg);
    result.final_noise_budget = scheme_.noiseBudgetBits(out);
    result.consumed_noise =
        result.fresh_noise_budget - result.final_noise_budget;
    packed.lane_outputs = scheme_.decryptLanes(
        out, lane_stride, program.output_width, num_lanes);
    result.decode_seconds = decode_watch.elapsedSeconds();
    recycleCiphertexts(cts);
    return packed;
}

CompositeRunResult
FheRuntime::runComposite(
    const CompositeProgram& composite,
    const std::vector<std::vector<const ir::Env*>>& member_lanes)
{
    const FheProgram& program = composite.program;
    const int stride = composite.lane_stride;
    if (stride <= 0 || scheme_.slots() % stride != 0) {
        throw CompileError("composite lane stride does not tile the row");
    }
    const int num_regions = scheme_.slots() / stride;
    if (composite.members.empty() ||
        member_lanes.size() != composite.members.size()) {
        throw CompileError("composite member/lane-set mismatch");
    }
    for (std::size_t m = 0; m < composite.members.size(); ++m) {
        const CompositeMember& member = composite.members[m];
        if (member.lane_count <= 0 || member.lane_base < 0 ||
            member.lane_base + member.lane_count > num_regions) {
            throw CompileError(
                "composite lane layout exceeds the batching row");
        }
        if (static_cast<int>(member_lanes[m].size()) != member.lane_count) {
            throw CompileError("composite member lane-count mismatch");
        }
        if (member.output_width > stride) {
            throw CompileError("output wider than the lane stride");
        }
    }

    const Stopwatch setup_watch;
    CompositeRunResult composite_result;
    RunResult& result = composite_result.shared;
    result.counts = program.counts();
    result.fresh_noise_budget = scheme_.freshNoiseBudget();

    scheme_.makeGaloisKeys(composite.plan.keys);
    result.rotation_keys = static_cast<int>(composite.plan.keys.size());

    // Client-side phase: every pack instruction belongs to exactly one
    // member slice; its regions carry that member's request lanes at
    // the member's composite-lane block and phantom copies of the
    // member's first lane everywhere else, so each member's rows are
    // fully laned (the shape its lane-safety certificate assumes).
    std::unordered_map<int, fhe::Ciphertext> cts;
    std::unordered_map<int, fhe::Plaintext> plains;
    std::vector<std::vector<std::int64_t>> regions(
        static_cast<std::size_t>(num_regions));
    for (std::size_t m = 0; m < composite.members.size(); ++m) {
        const CompositeMember& member = composite.members[m];
        const std::vector<const ir::Env*>& lanes = member_lanes[m];
        for (int i = member.instr_begin; i < member.instr_end; ++i) {
            const FheInstr& instr =
                program.instrs[static_cast<std::size_t>(i)];
            if (instr.op != FheOpcode::PackCipher &&
                instr.op != FheOpcode::PackPlain) {
                continue;
            }
            for (int r = 0; r < num_regions; ++r) {
                const int lane = r - member.lane_base;
                const ir::Env& env =
                    (lane >= 0 && lane < member.lane_count)
                        ? *lanes[static_cast<std::size_t>(lane)]
                        : *lanes.front();
                regions[static_cast<std::size_t>(r)] =
                    packLaneRegion(instr, env, stride);
            }
            fhe::Plaintext plain = scheme_.encodeLanes(regions, stride);
            if (instr.op == FheOpcode::PackCipher) {
                cts.emplace(instr.dst, scheme_.encrypt(plain));
            } else {
                plains.emplace(instr.dst, std::move(plain));
            }
        }
    }

    // Every member's output register must survive to the readout below.
    std::vector<int> protected_regs;
    protected_regs.reserve(composite.members.size());
    for (const CompositeMember& member : composite.members) {
        protected_regs.push_back(member.output_reg);
    }

    result.setup_seconds = setup_watch.elapsedSeconds();
    result.exec_seconds =
        evaluateServer(program, composite.plan, cts, plains, protected_regs,
                       result.fresh_noise_budget, &result.mod_switch_drops);
    const Stopwatch decode_watch;

    // Per-member readout: each member's output lives in its own
    // (renamed) register, so noise accounting is per member; the shared
    // result reports the minimum so the caller's exhausted-budget
    // fallback stays conservative.
    result.final_noise_budget = result.fresh_noise_budget;
    for (const CompositeMember& member : composite.members) {
        if (cts.count(member.output_reg)) {
            const fhe::Ciphertext& out = cts.at(member.output_reg);
            const int budget = scheme_.noiseBudgetBits(out);
            composite_result.member_final_budgets.push_back(budget);
            result.final_noise_budget =
                std::min(result.final_noise_budget, budget);
            composite_result.member_outputs.push_back(scheme_.decryptLanes(
                out, stride, member.output_width, member.lane_count,
                member.lane_base));
        } else {
            // All-plaintext member: nothing homomorphic ran for it.
            composite_result.member_final_budgets.push_back(
                result.fresh_noise_budget);
            composite_result.member_outputs.push_back(scheme_.decodeLanes(
                plains.at(member.output_reg), stride, member.output_width,
                member.lane_count, member.lane_base));
        }
    }
    result.consumed_noise =
        result.fresh_noise_budget - result.final_noise_budget;
    result.decode_seconds = decode_watch.elapsedSeconds();
    recycleCiphertexts(cts);
    return composite_result;
}

OpLatencies
FheRuntime::calibrate(int reps)
{
    OpLatencies lat;
    scheme_.makeGaloisKeys({1});
    const fhe::Plaintext plain = scheme_.encode({1, 2, 3, 4});
    const fhe::Ciphertext ct = scheme_.encrypt(plain);

    auto median_time = [&](auto&& fn) {
        std::vector<double> times;
        for (int i = 0; i < reps; ++i) {
            Stopwatch watch;
            fn();
            times.push_back(watch.elapsedSeconds());
        }
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };

    lat.ct_add = median_time([&] { (void)scheme_.add(ct, ct); });
    lat.ct_ct_mul = median_time([&] { (void)scheme_.multiply(ct, ct); });
    lat.ct_pt_mul = median_time([&] { (void)scheme_.mulPlain(ct, plain); });
    lat.rotation = median_time([&] { (void)scheme_.rotate(ct, 1); });
    return lat;
}

double
FheRuntime::estimate(const FheProgram& program,
                     const OpLatencies& lat) const
{
    const FheProgram::Counts counts = program.counts();
    return counts.ct_add * lat.ct_add + counts.ct_ct_mul * lat.ct_ct_mul +
           counts.ct_pt_mul * lat.ct_pt_mul +
           counts.rotations * lat.rotation;
}

} // namespace chehab::compiler
