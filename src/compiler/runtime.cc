#include "compiler/runtime.h"

#include <algorithm>

#include "support/error.h"
#include "support/stopwatch.h"

namespace chehab::compiler {

FheRuntime::FheRuntime(fhe::SealLiteParams params)
    : scheme_(params),
      plain_eval_(static_cast<std::int64_t>(params.plain_modulus))
{}

std::vector<std::int64_t>
FheRuntime::packValues(const FheInstr& instr, const ir::Env& env) const
{
    const int width = static_cast<int>(instr.slots.size());
    if (width > scheme_.slots()) {
        throw CompileError(
            "pack wider than the batching row (" + std::to_string(width) +
            " > " + std::to_string(scheme_.slots()) +
            "); raise the polynomial modulus degree");
    }
    std::vector<std::int64_t> base(static_cast<std::size_t>(width), 0);
    for (int i = 0; i < width; ++i) {
        const PackSlot& slot = instr.slots[static_cast<std::size_t>(i)];
        switch (slot.kind) {
          case PackSlot::Kind::CtVar:
          case PackSlot::Kind::PtVar: {
            auto it = env.find(slot.name);
            if (it == env.end()) {
                throw CompileError("unbound input '" + slot.name + "'");
            }
            base[static_cast<std::size_t>(i)] = it->second;
            break;
          }
          case PackSlot::Kind::Const:
            base[static_cast<std::size_t>(i)] = slot.value;
            break;
          case PackSlot::Kind::PlainExpr: {
            const ir::Value v = plain_eval_.evaluate(slot.expr, env);
            base[static_cast<std::size_t>(i)] = v.scalar();
            break;
          }
        }
    }
    if (!instr.replicate) return base;
    // Replicate period-w across the whole row so a single ciphertext
    // rotation realizes the width-w cyclic rotation.
    std::vector<std::int64_t> replicated(
        static_cast<std::size_t>(scheme_.slots()));
    for (int i = 0; i < scheme_.slots(); ++i) {
        replicated[static_cast<std::size_t>(i)] =
            base[static_cast<std::size_t>(i % width)];
    }
    return replicated;
}

RunResult
FheRuntime::run(const FheProgram& program, const ir::Env& env,
                int key_budget)
{
    // Rotation-key selection (App. B): under a budget, rotations execute
    // as NAF-component sequences.
    const std::vector<int> steps = program.rotationSteps();
    RotationKeyPlan plan;
    if (key_budget > 0) {
        plan = selectRotationKeys(steps, key_budget);
    } else {
        plan.keys = steps;
        for (int s : steps) plan.decomposition[s] = {s};
    }
    return run(program, env, plan);
}

RunResult
FheRuntime::run(const FheProgram& program, const ir::Env& env,
                const RotationKeyPlan& plan)
{
    RunResult result;
    result.counts = program.counts();
    result.fresh_noise_budget = scheme_.freshNoiseBudget();

    scheme_.makeGaloisKeys(plan.keys);
    result.rotation_keys = static_cast<int>(plan.keys.size());

    // Client-side phase: pack, encode, encrypt.
    std::unordered_map<int, fhe::Ciphertext> cts;
    std::unordered_map<int, fhe::Plaintext> plains;
    for (const FheInstr& instr : program.instrs) {
        if (instr.op == FheOpcode::PackCipher) {
            cts.emplace(instr.dst,
                        scheme_.encrypt(scheme_.encode(
                            packValues(instr, env))));
        } else if (instr.op == FheOpcode::PackPlain) {
            plains.emplace(instr.dst,
                           scheme_.encode(packValues(instr, env)));
        }
    }

    // Server-side phase (timed).
    Stopwatch watch;
    for (const FheInstr& instr : program.instrs) {
        switch (instr.op) {
          case FheOpcode::PackCipher:
          case FheOpcode::PackPlain:
            break;
          case FheOpcode::Add:
            cts.emplace(instr.dst,
                        scheme_.add(cts.at(instr.a), cts.at(instr.b)));
            break;
          case FheOpcode::Sub:
            cts.emplace(instr.dst,
                        scheme_.sub(cts.at(instr.a), cts.at(instr.b)));
            break;
          case FheOpcode::Mul:
            cts.emplace(instr.dst,
                        scheme_.multiply(cts.at(instr.a), cts.at(instr.b)));
            break;
          case FheOpcode::AddPlain:
            cts.emplace(instr.dst, scheme_.addPlain(cts.at(instr.a),
                                                    plains.at(instr.b)));
            break;
          case FheOpcode::MulPlain:
            cts.emplace(instr.dst, scheme_.mulPlain(cts.at(instr.a),
                                                    plains.at(instr.b)));
            break;
          case FheOpcode::Negate:
            cts.emplace(instr.dst, scheme_.negate(cts.at(instr.a)));
            break;
          case FheOpcode::Rotate: {
            fhe::Ciphertext value = cts.at(instr.a);
            for (int component : plan.decomposition.at(instr.step)) {
                value = scheme_.rotate(value, component);
            }
            cts.emplace(instr.dst, std::move(value));
            break;
          }
        }
    }
    result.exec_seconds = watch.elapsedSeconds();

    // Degenerate all-plaintext programs produce a plaintext output
    // register: nothing homomorphic ever ran.
    if (!cts.count(program.output_reg)) {
        const std::vector<std::int64_t> values =
            scheme_.decode(plains.at(program.output_reg));
        result.final_noise_budget = result.fresh_noise_budget;
        result.output.assign(
            values.begin(),
            values.begin() + std::min<std::size_t>(
                                 values.size(),
                                 static_cast<std::size_t>(
                                     program.output_width)));
        return result;
    }

    const fhe::Ciphertext& out = cts.at(program.output_reg);
    result.final_noise_budget = scheme_.noiseBudgetBits(out);
    result.consumed_noise =
        result.fresh_noise_budget - result.final_noise_budget;

    const std::vector<std::int64_t> decrypted = scheme_.decrypt(out);
    result.output.assign(
        decrypted.begin(),
        decrypted.begin() + std::min<std::size_t>(
                                decrypted.size(),
                                static_cast<std::size_t>(
                                    program.output_width)));
    return result;
}

OpLatencies
FheRuntime::calibrate(int reps)
{
    OpLatencies lat;
    scheme_.makeGaloisKeys({1});
    const fhe::Plaintext plain = scheme_.encode({1, 2, 3, 4});
    const fhe::Ciphertext ct = scheme_.encrypt(plain);

    auto median_time = [&](auto&& fn) {
        std::vector<double> times;
        for (int i = 0; i < reps; ++i) {
            Stopwatch watch;
            fn();
            times.push_back(watch.elapsedSeconds());
        }
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };

    lat.ct_add = median_time([&] { (void)scheme_.add(ct, ct); });
    lat.ct_ct_mul = median_time([&] { (void)scheme_.multiply(ct, ct); });
    lat.ct_pt_mul = median_time([&] { (void)scheme_.mulPlain(ct, plain); });
    lat.rotation = median_time([&] { (void)scheme_.rotate(ct, 1); });
    return lat;
}

double
FheRuntime::estimate(const FheProgram& program,
                     const OpLatencies& lat) const
{
    const FheProgram::Counts counts = program.counts();
    return counts.ct_add * lat.ct_add + counts.ct_ct_mul * lat.ct_ct_mul +
           counts.ct_pt_mul * lat.ct_pt_mul +
           counts.rotations * lat.rotation;
}

} // namespace chehab::compiler
