/// \file
/// Execution of scheduled FHE programs on the SealLite backend, plus the
/// calibrated latency estimator used when a circuit is too large to run
/// end-to-end on a toy machine.
#pragma once

#include <unordered_map>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/schedule.h"
#include "fhe/sealite.h"
#include "ir/evaluator.h"

namespace chehab::compiler {

/// Outcome of executing one program.
struct RunResult
{
    std::vector<std::int64_t> output; ///< First output_width slots.
    double exec_seconds = 0.0;        ///< Server-side evaluation only.
    /// Wall time of everything before the server-side evaluation:
    /// Galois key generation, packing, encoding and encryption. This is
    /// the fixed per-row cost that slot batching amortizes across
    /// lanes; the service's load model reads it to price row sharing
    /// (see service/load_model.h).
    double setup_seconds = 0.0;
    /// Wall time of everything after the server-side evaluation:
    /// decryption, decoding and the per-lane output scatter. Completes
    /// the setup/evaluate/decode phase split that the telemetry layer
    /// (support/telemetry.h) exports per request.
    double decode_seconds = 0.0;
    int fresh_noise_budget = 0;
    int final_noise_budget = 0;       ///< <= 0 means budget exhausted.
    int consumed_noise = 0;           ///< CN of Table 6.
    FheProgram::Counts counts;
    int rotation_keys = 0;            ///< Keys generated (after App. B).
    /// Modulus drops the mod-switch gate actually took during the
    /// server phase (0 when the pass did not run or no point passed the
    /// noise simulation). Deterministic per (program, plan, params).
    int mod_switch_drops = 0;
};

/// Outcome of executing one lane-packed program: the shared row's
/// noise/latency accounting plus each lane's output slice. The noise
/// fields describe the *shared* ciphertext — every lane's data rode the
/// same row, so per-lane noise is by construction the row's noise.
struct PackedRunResult
{
    RunResult shared; ///< output left empty; per-lane slices below.
    std::vector<std::vector<std::int64_t>> lane_outputs;
};

/// One member of a cross-kernel composite: a contiguous slice of the
/// composite instruction stream (one whole source program, registers
/// renamed to a disjoint range) that owns a contiguous block of
/// composite lanes. The member's real request lanes occupy composite
/// lane indices [lane_base, lane_base + lane_count); every other
/// region of the member's *own* ciphertexts is phantom-padded with a
/// copy of its first lane, so each member's rows are fully laned and
/// the per-member lane-safety certification carries over unchanged.
struct CompositeMember
{
    int instr_begin = 0; ///< First instruction of this member's slice.
    int instr_end = 0;   ///< One past the last instruction.
    int lane_base = 0;   ///< First composite lane this member owns.
    int lane_count = 0;  ///< Request lanes this member carries.
    int output_reg = -1; ///< Renamed output register.
    int output_width = 1;
};

/// A cross-kernel composite program: the concatenation of several
/// members' scheduled instruction streams over one shared register
/// space, executed as a single stream on one runtime with a merged
/// rotation-key plan. Members never share registers (renaming keeps
/// their ciphertexts disjoint), so the composite shares the runtime
/// lease, Galois keygen and dispatch across kernels while each
/// member's values stay exactly its own.
struct CompositeProgram
{
    FheProgram program; ///< Concatenated, renamed instruction stream.
    std::vector<CompositeMember> members;
    RotationKeyPlan plan; ///< Merged (union) key plan, sorted keys.
    int lane_stride = 0;  ///< Common power-of-two stride of all lanes.
};

/// Outcome of executing one composite: shared accounting (the reported
/// final budget is the minimum over the members' output ciphertexts)
/// plus, per member, its own final noise budget and its lanes' output
/// slices.
struct CompositeRunResult
{
    RunResult shared; ///< output left empty; per-member slices below.
    /// Final noise budget of each member's output ciphertext (<= 0
    /// means that member's outputs are not trustworthy and its lanes
    /// must fall back to solo execution).
    std::vector<int> member_final_budgets;
    /// member_outputs[m][l] = member m's lane l output slice.
    std::vector<std::vector<std::vector<std::int64_t>>> member_outputs;
};

/// Counters for the destructive (in-place) evaluator.
struct InPlaceStats
{
    /// Operands destructively consumed at their last use (no copy).
    std::uint64_t consumed = 0;
    /// Clone fallbacks taken because the operand stayed live.
    std::uint64_t copies = 0;
    /// Dead ciphertexts returned to the scheme's arena.
    std::uint64_t recycled = 0;
};

/// Per-operation latencies measured on the backend (seconds).
struct OpLatencies
{
    double ct_add = 0.0;
    double ct_ct_mul = 0.0;
    double ct_pt_mul = 0.0;
    double rotation = 0.0;
};

/// The rotation-key plan run() uses for \p key_budget: the App. B NAF
/// selection when the budget is positive, otherwise one dedicated key
/// per distinct step. Exposed so the service's batch planner can
/// analyze the exact decomposed rotation sequence a run will execute.
RotationKeyPlan effectiveKeyPlan(const FheProgram& program, int key_budget);

/// Same, over an explicit step set (the cross-kernel composer feeds the
/// union of its members' rotation steps through this).
RotationKeyPlan effectiveKeyPlanFor(const std::vector<int>& steps,
                                    int key_budget);

/// Runs FheProgram instruction streams against one SealLite instance.
class FheRuntime
{
  public:
    explicit FheRuntime(fhe::SealLiteParams params = {});

    /// Execute \p program with inputs from \p env. When
    /// \p key_budget > 0, rotation keys are selected with the App. B NAF
    /// pass under that budget and decomposed rotations run as sequences;
    /// otherwise one key per distinct step is generated.
    RunResult run(const FheProgram& program, const ir::Env& env,
                  int key_budget = 0);

    /// Execute \p program under a precomputed rotation-key plan (e.g.
    /// the compiler's key-select pass output). The plan must cover every
    /// rotation step the program uses.
    RunResult run(const FheProgram& program, const ir::Env& env,
                  const RotationKeyPlan& plan);

    /// Execute \p program once with one input environment per lane,
    /// each lane packed into its own \p lane_stride-slot region of the
    /// shared ciphertext row, and extract every lane's first
    /// output_width slots. The caller (the service's batch planner) is
    /// responsible for having proven the program lane-safe at this
    /// stride; this function only validates capacity. Replicated packs
    /// replicate within each lane's region, non-replicated packs load
    /// at the region base with the remainder of the region zeroed, and
    /// plaintext masks repeat per region so every lane sees the same
    /// mask the solo program would.
    PackedRunResult runPacked(const FheProgram& program,
                              const std::vector<const ir::Env*>& lanes,
                              const RotationKeyPlan& plan,
                              int lane_stride);

    /// Execute a cross-kernel composite (see CompositeProgram) once:
    /// the whole concatenated stream runs on this runtime under the
    /// merged key plan, member m's pack instructions load
    /// \p member_lanes[m]'s environments into its composite-lane block
    /// (phantom-padding every other region of the member's ciphertexts
    /// with its first lane), and each member's output register is
    /// decrypted into per-lane slices. \p member_lanes[m].size() must
    /// equal members[m].lane_count. The caller (the service's batch
    /// planner) is responsible for having certified every member
    /// lane-safe at the composite stride; this function only validates
    /// the lane layout.
    CompositeRunResult runComposite(
        const CompositeProgram& composite,
        const std::vector<std::vector<const ir::Env*>>& member_lanes);

    /// Microbenchmark the four op classes (median of \p reps).
    OpLatencies calibrate(int reps = 3);

    /// Estimated runtime of \p program from calibrated op latencies
    /// (for circuits too big to execute end-to-end).
    double estimate(const FheProgram& program, const OpLatencies& lat) const;

    fhe::SealLite& scheme() { return scheme_; }
    int slots() const { return scheme_.slots(); }

    /// \name Destructive evaluation control and observability
    /// The server-side evaluator consumes a register's last use
    /// destructively (last-use liveness over the linear program),
    /// cutting the per-op c0/c1 copies the copying forms pay. Output
    /// registers are protected. Disabled = every op clones (the
    /// in-place-vs-copying differential tests run both ways; results
    /// are bit-identical either way).
    /// @{
    void setInPlaceEnabled(bool enabled) { in_place_enabled_ = enabled; }
    bool inPlaceEnabled() const { return in_place_enabled_; }
    InPlaceStats inPlaceStats() const
    {
        return {inplace_consumed_, inplace_copies_, recycled_cts_};
    }
    /// The backing scheme's arena counters (see fhe::PolyArena).
    fhe::PolyArena::Stats arenaStats() const { return scheme_.arenaStats(); }
    /// @}

  private:
    /// The instruction's base pack pattern (width = slots.size()),
    /// before any replication.
    std::vector<std::int64_t> packBase(const FheInstr& instr,
                                       const ir::Env& env) const;
    std::vector<std::int64_t> packValues(const FheInstr& instr,
                                         const ir::Env& env) const;
    /// Lane l's region (length \p lane_stride) for \p instr.
    std::vector<std::int64_t> packLaneRegion(const FheInstr& instr,
                                             const ir::Env& env,
                                             int lane_stride) const;
    /// Hand every ciphertext still alive after readout back to the
    /// scheme's arena. Without this the map's destructor frees the
    /// arena-born buffers and the next run on this runtime mints
    /// replacements, so steady state never reaches zero allocations.
    void recycleCiphertexts(std::unordered_map<int, fhe::Ciphertext>& cts);
    /// The timed server-side phase shared by run(), runPacked() and
    /// runComposite(). When the program carries a mod-switch plan, each
    /// marked point runs the deterministic noise gate
    /// (compiler/modswitch.h) against \p fresh_noise_budget and, on
    /// success, switches EVERY live ciphertext down one level in
    /// lockstep (so binary ops always see equal levels — in a composite
    /// this includes other members' ciphertexts, which is sound because
    /// switching is exact per ciphertext). Drops taken are added to
    /// \p mod_switch_drops. Registers in \p protected_regs (the
    /// caller's output registers) are never consumed destructively;
    /// everything else is consumed at its last use and dead values are
    /// recycled eagerly (which also shrinks the mod-switch lockstep
    /// loop — sound, since switching is per-ciphertext independent and
    /// dead values are never read again).
    double evaluateServer(
        const FheProgram& program, const RotationKeyPlan& plan,
        std::unordered_map<int, fhe::Ciphertext>& cts,
        const std::unordered_map<int, fhe::Plaintext>& plains,
        const std::vector<int>& protected_regs, int fresh_noise_budget,
        int* mod_switch_drops) const;

    fhe::SealLite scheme_;
    ir::Evaluator plain_eval_;
    bool in_place_enabled_ = true;
    mutable std::uint64_t inplace_consumed_ = 0;
    mutable std::uint64_t inplace_copies_ = 0;
    mutable std::uint64_t recycled_cts_ = 0;
};

} // namespace chehab::compiler
