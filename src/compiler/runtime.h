/// \file
/// Execution of scheduled FHE programs on the SealLite backend, plus the
/// calibrated latency estimator used when a circuit is too large to run
/// end-to-end on a toy machine.
#pragma once

#include <unordered_map>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/schedule.h"
#include "fhe/sealite.h"
#include "ir/evaluator.h"

namespace chehab::compiler {

/// Outcome of executing one program.
struct RunResult
{
    std::vector<std::int64_t> output; ///< First output_width slots.
    double exec_seconds = 0.0;        ///< Server-side evaluation only.
    int fresh_noise_budget = 0;
    int final_noise_budget = 0;       ///< <= 0 means budget exhausted.
    int consumed_noise = 0;           ///< CN of Table 6.
    FheProgram::Counts counts;
    int rotation_keys = 0;            ///< Keys generated (after App. B).
};

/// Per-operation latencies measured on the backend (seconds).
struct OpLatencies
{
    double ct_add = 0.0;
    double ct_ct_mul = 0.0;
    double ct_pt_mul = 0.0;
    double rotation = 0.0;
};

/// Runs FheProgram instruction streams against one SealLite instance.
class FheRuntime
{
  public:
    explicit FheRuntime(fhe::SealLiteParams params = {});

    /// Execute \p program with inputs from \p env. When
    /// \p key_budget > 0, rotation keys are selected with the App. B NAF
    /// pass under that budget and decomposed rotations run as sequences;
    /// otherwise one key per distinct step is generated.
    RunResult run(const FheProgram& program, const ir::Env& env,
                  int key_budget = 0);

    /// Execute \p program under a precomputed rotation-key plan (e.g.
    /// the compiler's key-select pass output). The plan must cover every
    /// rotation step the program uses.
    RunResult run(const FheProgram& program, const ir::Env& env,
                  const RotationKeyPlan& plan);

    /// Microbenchmark the four op classes (median of \p reps).
    OpLatencies calibrate(int reps = 3);

    /// Estimated runtime of \p program from calibrated op latencies
    /// (for circuits too big to execute end-to-end).
    double estimate(const FheProgram& program, const OpLatencies& lat) const;

    fhe::SealLite& scheme() { return scheme_; }
    int slots() const { return scheme_.slots(); }

  private:
    std::vector<std::int64_t> packValues(const FheInstr& instr,
                                         const ir::Env& env) const;

    fhe::SealLite scheme_;
    ir::Evaluator plain_eval_;
};

} // namespace chehab::compiler
