/// \file
/// The CHEHAB embedded DSL (§4.1, Appendix C): Ciphertext / Plaintext
/// value types with overloaded C++ operators that stage an IR expression
/// graph, plus the helper functions of Table 3 (square, reduce_add,
/// add_many, ...). A DslProgram collects declared outputs; build()
/// lowers everything to the compiler IR (fully unrolled, as FHE has no
/// loops or branches).
///
/// Vector-typed inputs are unrolled into per-slot scalar variables at
/// staging time; DSL-level rotations on them are therefore compile-time
/// re-indexings, and runtime rotations are introduced only by the
/// optimizer/scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace chehab::compiler {

class DslProgram;
class Plaintext;

/// Staged ciphertext value: either one scalar expression or an unrolled
/// vector of scalar expressions.
class Ciphertext
{
  public:
    Ciphertext() = default;

    /// Declare a scalar ciphertext input named \p name.
    static Ciphertext input(const std::string& name);
    /// Declare a vector ciphertext input of \p size slots
    /// (unrolled into name_0 ... name_{size-1}).
    static Ciphertext inputVector(const std::string& name, int size);
    /// Wrap an existing IR expression (scalar).
    static Ciphertext fromExpr(ir::ExprPtr expr);

    bool isVector() const { return elements_.size() != 1; }
    int size() const { return static_cast<int>(elements_.size()); }
    const std::vector<ir::ExprPtr>& elements() const { return elements_; }

    /// Scalar element accessor.
    Ciphertext operator[](int i) const;

    /// Mark this value as a program output (registers with the current
    /// DslProgram).
    void set_output(const std::string& name = "out") const;

  private:
    friend class Plaintext;
    friend Ciphertext operator+(const Ciphertext&, const Ciphertext&);
    friend Ciphertext operator-(const Ciphertext&, const Ciphertext&);
    friend Ciphertext operator*(const Ciphertext&, const Ciphertext&);
    friend Ciphertext operator-(const Ciphertext&);
    friend Ciphertext operator<<(const Ciphertext&, int);
    friend Ciphertext operator>>(const Ciphertext&, int);
    friend Ciphertext square(const Ciphertext&);
    friend Ciphertext reduce_add(const Ciphertext&);
    friend Ciphertext reduce_mul(const Ciphertext&);
    friend Ciphertext operator+(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator-(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator*(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator*(const Plaintext&, const Ciphertext&);

    std::vector<ir::ExprPtr> elements_;
};

/// Staged plaintext value (scalar or unrolled vector), mirroring
/// Ciphertext.
class Plaintext
{
  public:
    Plaintext() = default;
    /// Scalar plaintext input.
    static Plaintext input(const std::string& name);
    /// Vector plaintext input.
    static Plaintext inputVector(const std::string& name, int size);
    /// Literal constant.
    Plaintext(std::int64_t value); // NOLINT: implicit by design (Table 3).

    int size() const { return static_cast<int>(elements_.size()); }
    const std::vector<ir::ExprPtr>& elements() const { return elements_; }

  private:
    friend Ciphertext operator+(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator+(const Plaintext&, const Ciphertext&);
    friend Ciphertext operator-(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator*(const Ciphertext&, const Plaintext&);
    friend Ciphertext operator*(const Plaintext&, const Ciphertext&);

    std::vector<ir::ExprPtr> elements_;
};

/// \name Overloaded operators (Table 3)
/// @{
Ciphertext operator+(const Ciphertext& a, const Ciphertext& b);
Ciphertext operator-(const Ciphertext& a, const Ciphertext& b);
Ciphertext operator*(const Ciphertext& a, const Ciphertext& b);
Ciphertext operator-(const Ciphertext& a);
Ciphertext operator<<(const Ciphertext& a, int step); ///< Compile-time.
Ciphertext operator>>(const Ciphertext& a, int step);
Ciphertext operator+(const Ciphertext& a, const Plaintext& b);
Ciphertext operator+(const Plaintext& a, const Ciphertext& b);
Ciphertext operator-(const Ciphertext& a, const Plaintext& b);
Ciphertext operator*(const Ciphertext& a, const Plaintext& b);
Ciphertext operator*(const Plaintext& a, const Ciphertext& b);
/// @}

/// \name Helper functions (Appendix C)
/// @{
Ciphertext square(const Ciphertext& a);
Ciphertext reduce_add(const Ciphertext& a); ///< Scalar sum of all slots.
Ciphertext reduce_mul(const Ciphertext& a);
Ciphertext add_many(const std::vector<Ciphertext>& values);
Ciphertext mul_many(const std::vector<Ciphertext>& values);
/// @}

/// Collects outputs during staging; exactly one may be live at a time
/// *per thread* (the staging slot is thread_local, so independent
/// threads can stage programs concurrently).
class DslProgram
{
  public:
    DslProgram();
    ~DslProgram();
    DslProgram(const DslProgram&) = delete;
    DslProgram& operator=(const DslProgram&) = delete;

    /// The staged IR: a single scalar root, or a Vec of all output slots.
    ir::ExprPtr build() const;

    void addOutput(const ir::ExprPtr& expr);
    static DslProgram* current();

  private:
    std::vector<ir::ExprPtr> outputs_;
};

} // namespace chehab::compiler
