/// \file
/// Instruction scheduling: lowers an optimized IR expression into a
/// linear FHE instruction stream over virtual ciphertext registers.
///
/// This is where the "rotations and maskings we omit showing" of §2 are
/// materialized:
///  - structurally identical subtrees are computed once (CSE),
///  - leaf packs become client-side packing loads (§7.3) and are
///    *replicated* across the ciphertext row when their width is a power
///    of two, so one ciphertext rotation implements the width-w cyclic
///    rotation the IR semantics require,
///  - rotations of non-replicable (non-power-of-two width) vectors lower
///    to the two-rotation + two-mask + add sequence,
///  - packing computed scalars into a vector lowers to mask-multiply,
///    rotate, add per slot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace chehab::compiler {

/// Virtual-register FHE opcode (maps 1:1 onto SEAL/SealLite calls).
enum class FheOpcode : std::uint8_t {
    PackCipher, ///< Client packs+encrypts input slots -> dst.
    PackPlain,  ///< Client packs a plaintext operand -> dst.
    Add,        ///< dst = a + b (ct, ct).
    Sub,        ///< dst = a - b.
    Mul,        ///< dst = a * b (ct-ct, relinearized).
    AddPlain,   ///< dst = a + plain(b).
    MulPlain,   ///< dst = a * plain(b).
    Negate,     ///< dst = -a.
    Rotate,     ///< dst = a << step (ciphertext rotation).
};

/// One packed slot of an input/mask vector.
struct PackSlot
{
    enum class Kind : std::uint8_t {
        CtVar,     ///< Ciphertext input variable.
        PtVar,     ///< Plaintext input variable.
        Const,     ///< Literal constant.
        PlainExpr, ///< Plaintext expression computed before encoding.
    } kind = Kind::Const;
    std::string name;       ///< For CtVar/PtVar.
    std::int64_t value = 0; ///< For Const.
    ir::ExprPtr expr;       ///< For PlainExpr.
};

/// One scheduled instruction.
struct FheInstr
{
    FheOpcode op = FheOpcode::Add;
    int dst = -1;
    int a = -1;
    int b = -1;
    int step = 0;                 ///< Rotate.
    std::vector<PackSlot> slots;  ///< PackCipher/PackPlain contents.
    bool replicate = false;       ///< Replicate the pack across the row.
};

/// Candidate modulus-switch drop points chosen by the mod-switch pass.
/// The pass runs before parameters are known, so it only marks *where*
/// a drop is structurally profitable (after a ciphertext multiply with
/// further work remaining); the runtime decides per execution — via a
/// deterministic noise simulation against the actual chain — whether
/// each point actually drops. Empty plan = pass not run = no drops.
struct ModSwitchPlan
{
    std::vector<int> points; ///< Instruction indices; drop happens *before*
                             ///  executing the instruction at each index.
    int margin_bits = 12;    ///< Safety margin the noise gate must keep.
    int min_level = 2;       ///< Never drop below this many chain primes.

    bool empty() const { return points.empty(); }
};

/// A scheduled program.
struct FheProgram
{
    std::vector<FheInstr> instrs;
    int num_regs = 0;
    int output_reg = -1;
    int output_width = 1;
    ModSwitchPlan mod_switch;

    /// Distinct ciphertext rotation steps (the χ set of App. B).
    std::vector<int> rotationSteps() const;

    /// Canonical textual disassembly of the instruction stream: one
    /// line per instruction plus the register/output footer. Two
    /// programs disassemble identically iff their instruction streams
    /// are identical, so this doubles as the byte-exact comparison key
    /// the compile service's determinism guarantee is stated over.
    std::string disassemble() const;

    /// Tallies per opcode, for Table 6 and the latency estimator.
    struct Counts
    {
        int pack_cipher = 0;
        int pack_plain = 0;
        int ct_add = 0;      ///< Add/Sub/Negate.
        int ct_ct_mul = 0;
        int ct_pt_mul = 0;
        int rotations = 0;
    };
    Counts counts() const;
};

/// Lower \p optimized into an instruction stream. Throws CompileError on
/// IR that does not type check.
FheProgram schedule(const ir::ExprPtr& optimized);

} // namespace chehab::compiler
