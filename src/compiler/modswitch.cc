#include "compiler/modswitch.h"

#include <algorithm>

#include "support/error.h"

namespace chehab::compiler::modswitch {

int
ceilLog2(std::uint64_t x)
{
    int bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

NoiseParams
noiseParamsFor(const fhe::SealLite& scheme, int fresh_noise_budget)
{
    const fhe::SealLiteParams& params = scheme.params();
    NoiseParams np;
    np.n_bits = ceilLog2(static_cast<std::uint64_t>(params.n));
    np.t_bits = ceilLog2(params.plain_modulus);
    np.decomp_bits = params.decomp_bits;
    np.digits_per_prime = (params.prime_bits + params.decomp_bits - 1) /
                          params.decomp_bits;
    for (int lvl = 1; lvl <= scheme.levels(); ++lvl) {
        np.level_bits.push_back(scheme.coeffModulusBitsAt(lvl));
    }
    for (std::uint64_t p : scheme.primeChain()) {
        np.prime_bits.push_back(ceilLog2(p));
    }
    // budget = (qbits - 1) - phase_bits, so invert it (+1 slack for the
    // measurement's own rounding) to anchor the fresh estimate on what
    // the scheme actually produced.
    np.fresh_bits = np.level_bits.back() - 1 - fresh_noise_budget + 1;
    return np;
}

NoiseState
initialState(const FheProgram& program, const NoiseParams& np)
{
    NoiseState state;
    state.bits.assign(static_cast<std::size_t>(program.num_regs), -1);
    state.level = static_cast<int>(np.level_bits.size());
    for (const FheInstr& instr : program.instrs) {
        if (instr.op == FheOpcode::PackCipher && instr.dst >= 0 &&
            instr.dst < program.num_regs) {
            state.bits[static_cast<std::size_t>(instr.dst)] = np.fresh_bits;
        }
    }
    return state;
}

int
ksFloorBits(const NoiseParams& np, int level)
{
    // Key-switch delta: sum over digits_per_prime*level terms of
    // digit (< 2^w) * key error (t * 6σ, σ=3.2 => ~2^5 per coefficient)
    // convolved negacyclically over n coefficients.
    const int sigma_bits = 5;
    const int terms = std::max(1, np.digits_per_prime * level);
    return np.decomp_bits + np.t_bits + sigma_bits + np.n_bits +
           ceilLog2(static_cast<std::uint64_t>(terms)) + 1;
}

namespace {

int
rotateComponents(const RotationKeyPlan& plan, int step)
{
    auto it = plan.decomposition.find(step);
    if (it == plan.decomposition.end()) return 1;
    return std::max<std::size_t>(1, it->second.size());
}

} // namespace

void
applyInstr(NoiseState& state, const FheInstr& instr, const NoiseParams& np,
           const RotationKeyPlan& plan)
{
    auto estimate = [&state](int reg) -> int {
        if (reg < 0 || reg >= static_cast<int>(state.bits.size())) return -1;
        return state.bits[static_cast<std::size_t>(reg)];
    };
    auto set = [&state](int reg, int value) {
        if (reg >= 0 && reg < static_cast<int>(state.bits.size())) {
            state.bits[static_cast<std::size_t>(reg)] = value;
        }
    };

    switch (instr.op) {
      case FheOpcode::PackCipher:
      case FheOpcode::PackPlain:
        // Seeded by initialState; re-seeding here would undo a drop's
        // effect on not-yet-consumed inputs.
        break;
      case FheOpcode::Add:
      case FheOpcode::Sub: {
        const int a = estimate(instr.a);
        const int b = estimate(instr.b);
        if (a < 0 || b < 0) break;
        set(instr.dst, std::max(a, b) + 1);
        break;
      }
      case FheOpcode::Negate: {
        const int a = estimate(instr.a);
        if (a < 0) break;
        set(instr.dst, a);
        break;
      }
      case FheOpcode::AddPlain: {
        const int a = estimate(instr.a);
        if (a < 0) break;
        set(instr.dst, std::max(a, np.t_bits) + 1);
        break;
      }
      case FheOpcode::MulPlain: {
        const int a = estimate(instr.a);
        if (a < 0) break;
        // Negacyclic convolution with a plaintext polynomial whose
        // coefficients are centered below t/2.
        set(instr.dst, a + np.t_bits + np.n_bits);
        break;
      }
      case FheOpcode::Mul: {
        const int a = estimate(instr.a);
        const int b = estimate(instr.b);
        if (a < 0 || b < 0) break;
        // Phase product convolved over n (+2 cross-term slack), then
        // the relinearization key-switch floor.
        int est = a + b + np.n_bits + 2;
        est = std::max(est, ksFloorBits(np, state.level)) + 1;
        set(instr.dst, est);
        break;
      }
      case FheOpcode::Rotate: {
        int est = estimate(instr.a);
        if (est < 0) break;
        // The automorphism permutes coefficients (no growth); each
        // decomposed component pays one key-switch.
        const int components = rotateComponents(plan, instr.step);
        for (int c = 0; c < components; ++c) {
            est = std::max(est, ksFloorBits(np, state.level)) + 1;
        }
        set(instr.dst, est);
        break;
      }
    }
}

void
applyDrop(NoiseState& state, const NoiseParams& np)
{
    CHEHAB_ASSERT(state.level >= 2, "cannot drop below one prime");
    const int dropped =
        np.prime_bits[static_cast<std::size_t>(state.level) - 1];
    // Rescale divides the phase by q_l but adds the rounding term
    // δ0 + δ1·s, bounded by ~(n+1)·t/2 after the division; the folded
    // φ-scalar then multiplies by at most t/2.
    const int switch_floor = np.t_bits - 1 + np.n_bits + 1;
    const int corr_bits = np.t_bits - 1;
    for (int& bits : state.bits) {
        if (bits < 0) continue;
        bits = std::max(bits - dropped, switch_floor) + corr_bits + 1;
    }
    --state.level;
}

int
limitBits(const NoiseParams& np, int level, int margin_bits)
{
    return np.level_bits[static_cast<std::size_t>(level) - 1] - 1 -
           margin_bits;
}

bool
canDropBefore(const FheProgram& program, int next, const NoiseState& state,
              const NoiseParams& np, const RotationKeyPlan& plan,
              int margin_bits, int min_level)
{
    if (state.level <= min_level || state.level <= 1) return false;

    NoiseState trial = state;
    applyDrop(trial, np);
    const int limit = limitBits(np, trial.level, margin_bits);
    for (int bits : trial.bits) {
        if (bits > limit) return false;
    }
    // Simulate the whole remaining suffix at the lower level (assuming
    // no further drops — they only shrink estimates, so this is
    // conservative): every ciphertext it produces must also fit.
    for (std::size_t i = static_cast<std::size_t>(next);
         i < program.instrs.size(); ++i) {
        const FheInstr& instr = program.instrs[i];
        applyInstr(trial, instr, np, plan);
        if (instr.dst >= 0 &&
            instr.dst < static_cast<int>(trial.bits.size()) &&
            trial.bits[static_cast<std::size_t>(instr.dst)] > limit) {
            return false;
        }
    }
    return true;
}

} // namespace chehab::compiler::modswitch
