#include "compiler/driver.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "compiler/passes.h"
#include "ir/analysis.h"
#include "rl/agent.h"
#include "support/error.h"
#include "support/stopwatch.h"
#include "trs/rewriter.h"
#include "trs/ruleset.h"

namespace chehab::compiler {

namespace {

// ---------------------------------------------------------- built-ins

class CanonicalizePass final : public Pass
{
  public:
    std::string name() const override { return "canonicalize"; }

    void
    run(CompileState& state, const PassContext&) const override
    {
        state.expr = canonicalize(state.expr);
        // The cost entering the optimizer; TRS passes refine this with
        // their own (weighted) measurement.
        state.initial_cost = ir::cost(state.expr);
    }
};

class GreedyTrsPass final : public Pass
{
  public:
    std::string name() const override { return "greedy-trs"; }

    void
    run(CompileState& state, const PassContext& ctx) const override
    {
        if (!ctx.ruleset) {
            throw CompileError("greedy-trs pass requires a ruleset");
        }
        trs::OptimizeResult result = trs::greedyOptimize(
            *ctx.ruleset, state.expr, ctx.weights, {}, ctx.max_steps);
        state.expr = std::move(result.program);
        state.initial_cost = result.initial_cost;
        state.rewrite_steps += result.steps;
    }
};

class RlTrsPass final : public Pass
{
  public:
    std::string name() const override { return "rl-trs"; }

    void
    run(CompileState& state, const PassContext& ctx) const override
    {
        if (!ctx.agent) {
            throw CompileError(
                "rl-trs pass requested but no RL agent is configured");
        }
        rl::AgentResult result = ctx.agent->optimize(state.expr);
        state.expr = std::move(result.program);
        state.initial_cost = result.initial_cost;
        state.rewrite_steps += result.steps;
    }
};

class SchedulePass final : public Pass
{
  public:
    std::string name() const override { return "schedule"; }

    void
    run(CompileState& state, const PassContext&) const override
    {
        state.program = schedule(state.expr);
        state.scheduled = true;
    }
};

class KeySelectPass final : public Pass
{
  public:
    std::string name() const override { return "key-select"; }

    void
    run(CompileState& state, const PassContext& ctx) const override
    {
        if (!state.scheduled) {
            throw CompileError(
                "key-select pass requires a scheduled program (place it "
                "after the schedule pass)");
        }
        const std::vector<int> steps = state.program.rotationSteps();
        if (ctx.key_budget > 0) {
            state.key_plan = selectRotationKeys(steps, ctx.key_budget);
        } else {
            state.key_plan = RotationKeyPlan{};
            state.key_plan.keys = steps;
            for (int step : steps) {
                state.key_plan.decomposition[step] = {step};
            }
        }
        state.key_planned = true;
    }
};

class ModSwitchPass final : public Pass
{
  public:
    std::string name() const override { return "mod-switch"; }

    void
    run(CompileState& state, const PassContext& ctx) const override
    {
        if (!state.scheduled) {
            throw CompileError(
                "mod-switch pass requires a scheduled program (place it "
                "after the schedule pass)");
        }
        // Mark a candidate drop point after every ciphertext multiply
        // that still has non-pack work ahead of it: a multiply is where
        // the phase estimate jumps, so the headroom a drop frees pays
        // off across everything downstream. Whether a marked point
        // actually drops is decided per execution by the runtime's
        // noise simulation (see compiler/modswitch.h) — parameters are
        // unknown here.
        ModSwitchPlan plan;
        plan.margin_bits = ctx.mod_switch_margin;
        plan.min_level = 2;
        const auto& instrs = state.program.instrs;
        for (std::size_t i = 0; i < instrs.size(); ++i) {
            if (instrs[i].op != FheOpcode::Mul) continue;
            bool work_remaining = false;
            for (std::size_t j = i + 1; j < instrs.size(); ++j) {
                if (instrs[j].op != FheOpcode::PackCipher &&
                    instrs[j].op != FheOpcode::PackPlain) {
                    work_remaining = true;
                    break;
                }
            }
            if (work_remaining) {
                plan.points.push_back(static_cast<int>(i) + 1);
            }
        }
        state.program.mod_switch = std::move(plan);
    }
};

// ----------------------------------------------------------- registry

using Registry = std::map<std::string, PassFactory>;

std::mutex&
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

Registry&
registry()
{
    static Registry passes = [] {
        Registry built_in;
        built_in["canonicalize"] = [] {
            return std::unique_ptr<Pass>(new CanonicalizePass());
        };
        built_in["greedy-trs"] = [] {
            return std::unique_ptr<Pass>(new GreedyTrsPass());
        };
        built_in["rl-trs"] = [] {
            return std::unique_ptr<Pass>(new RlTrsPass());
        };
        built_in["schedule"] = [] {
            return std::unique_ptr<Pass>(new SchedulePass());
        };
        built_in["key-select"] = [] {
            return std::unique_ptr<Pass>(new KeySelectPass());
        };
        built_in["mod-switch"] = [] {
            return std::unique_ptr<Pass>(new ModSwitchPass());
        };
        return built_in;
    }();
    return passes;
}

} // namespace

void
registerPass(const std::string& name, PassFactory factory)
{
    std::unique_lock<std::mutex> lock(registryMutex());
    registry()[name] = std::move(factory);
}

std::unique_ptr<Pass>
createPass(const std::string& name)
{
    std::unique_lock<std::mutex> lock(registryMutex());
    auto it = registry().find(name);
    if (it == registry().end()) {
        throw CompileError("unknown pass '" + name + "'");
    }
    return it->second();
}

std::vector<std::string>
registeredPassNames()
{
    std::unique_lock<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto& [name, factory] : registry()) names.push_back(name);
    return names;
}

// ------------------------------------------------------- DriverConfig

std::uint64_t
DriverConfig::fingerprint() const
{
    // FNV-1a over the pass-name sequence, then mix in the parameters of
    // each parameter-consuming pass that is actually present.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mixByte = [&h](unsigned char byte) {
        h ^= byte;
        h *= 0x100000001b3ULL;
    };
    auto mixU64 = [&mixByte](std::uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            mixByte(static_cast<unsigned char>(value >> (8 * i)));
        }
    };
    auto bits = [](double value) {
        std::uint64_t out = 0;
        static_assert(sizeof(out) == sizeof(value), "double is 64-bit");
        std::memcpy(&out, &value, sizeof(out));
        return out;
    };
    for (const std::string& pass : passes) {
        for (char c : pass) mixByte(static_cast<unsigned char>(c));
        mixByte(0xffu); // Separator: {"ab","c"} != {"a","bc"}.
    }
    if (hasPass("greedy-trs")) {
        mixU64(bits(weights.w_ops));
        mixU64(bits(weights.w_depth));
        mixU64(bits(weights.w_mult));
        mixU64(static_cast<std::uint64_t>(max_steps));
    }
    if (hasPass("key-select")) {
        mixU64(static_cast<std::uint64_t>(key_budget));
    }
    if (hasPass("mod-switch")) {
        mixU64(static_cast<std::uint64_t>(mod_switch_margin));
    }
    return h;
}

std::string
DriverConfig::describe() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < passes.size(); ++i) {
        if (i > 0) out << " > ";
        out << passes[i];
        if (passes[i] == "greedy-trs") {
            out << "(steps=" << max_steps << ")";
        } else if (passes[i] == "key-select" && key_budget > 0) {
            out << "(budget=" << key_budget << ")";
        } else if (passes[i] == "mod-switch") {
            out << "(margin=" << mod_switch_margin << ")";
        }
    }
    return out.str();
}

bool
DriverConfig::hasPass(const std::string& name) const
{
    return std::find(passes.begin(), passes.end(), name) != passes.end();
}

DriverConfig
DriverConfig::noOpt()
{
    DriverConfig config;
    config.passes = {"canonicalize", "schedule"};
    return config;
}

DriverConfig
DriverConfig::greedy(const ir::CostWeights& weights, int max_steps)
{
    DriverConfig config;
    config.passes = {"canonicalize", "greedy-trs", "schedule"};
    config.weights = weights;
    config.max_steps = max_steps;
    return config;
}

DriverConfig
DriverConfig::rl()
{
    DriverConfig config;
    config.passes = {"canonicalize", "rl-trs", "schedule"};
    return config;
}

// -------------------------------------------------------- PassManager

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

void
PassManager::run(CompileState& state, const PassContext& ctx,
                 std::vector<PassStats>& stats) const
{
    for (const std::unique_ptr<Pass>& pass : passes_) {
        PassStats record;
        record.name = pass->name();
        record.cost_before = ir::cost(state.expr);
        const int steps_before = state.rewrite_steps;
        const Stopwatch watch;
        pass->run(state, ctx);
        record.seconds = watch.elapsedSeconds();
        record.cost_after = ir::cost(state.expr);
        record.rewrite_steps = state.rewrite_steps - steps_before;
        stats.push_back(std::move(record));
    }
}

// ----------------------------------------------------- CompilerDriver

CompilerDriver::CompilerDriver(const trs::Ruleset* ruleset,
                               const rl::RlAgent* agent)
    : ruleset_(ruleset), agent_(agent)
{}

Compiled
CompilerDriver::compile(const ir::ExprPtr& source,
                        const DriverConfig& config) const
{
    if (!source) throw CompileError("null compile source");

    PassManager manager;
    for (const std::string& name : config.passes) {
        manager.addPass(createPass(name));
    }

    PassContext ctx;
    ctx.ruleset = ruleset_;
    ctx.agent = agent_;
    ctx.weights = config.weights;
    ctx.max_steps = config.max_steps;
    ctx.key_budget = config.key_budget;
    ctx.mod_switch_margin = config.mod_switch_margin;

    CompileState state;
    state.expr = source;
    state.initial_cost = ir::cost(source);

    Compiled compiled;
    manager.run(state, ctx, compiled.stats.passes);

    compiled.optimized = std::move(state.expr);
    compiled.program = std::move(state.program);
    compiled.key_plan = std::move(state.key_plan);
    compiled.key_planned = state.key_planned;
    compiled.stats.initial_cost = state.initial_cost;
    compiled.stats.final_cost = ir::cost(compiled.optimized);
    compiled.stats.circuit_depth = ir::circuitDepth(compiled.optimized);
    compiled.stats.mult_depth =
        ir::multiplicativeDepth(compiled.optimized);
    compiled.stats.ir_counts = ir::countOps(compiled.optimized);
    compiled.stats.rewrite_steps = state.rewrite_steps;
    return compiled;
}

} // namespace chehab::compiler
