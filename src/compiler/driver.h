/// \file
/// PassManager + CompilerDriver: the unified compilation architecture.
///
/// Every stage of the Fig. 3 pipeline — canonicalize, greedy-TRS,
/// RL-TRS, schedule, key-select — is a named, instrumented Pass. A
/// DriverConfig names the pass sequence plus its parameters; the
/// CompilerDriver materializes the sequence from the pass registry and
/// runs it through a PassManager, which records per-pass wall time and
/// cost deltas into CompileStats::passes. The legacy entry points
/// (compileNoOpt / compileGreedy / compileWithAgent) are one-line
/// configurations of this driver, and the compile service keys its
/// content-addressed cache on DriverConfig::fingerprint() — a new pass
/// ordering is automatically a new cache identity.
///
/// Thread-safety: a CompilerDriver is immutable after construction and
/// compile() touches no shared mutable state, so one driver may serve
/// any number of threads. Passes must be reentrant and deterministic;
/// all built-in passes are. registerPass() is NOT thread-safe against
/// concurrent compile() calls — register custom passes at startup.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "ir/cost_model.h"
#include "ir/expr.h"

namespace chehab::rl {
class RlAgent;
}
namespace chehab::trs {
class Ruleset;
}

namespace chehab::compiler {

/// Read-only resources and knobs a pass may consume. Owned by the
/// caller; every pointer must outlive the compile() call.
struct PassContext
{
    const trs::Ruleset* ruleset = nullptr; ///< greedy-trs requirement.
    const rl::RlAgent* agent = nullptr;    ///< rl-trs requirement.
    ir::CostWeights weights{};             ///< greedy-trs cost weights.
    int max_steps = 75;                    ///< greedy-trs rewrite budget.
    int key_budget = 0;                    ///< key-select β (0 = one key
                                           ///  per distinct step).
    int mod_switch_margin = 12;            ///< mod-switch noise margin
                                           ///  (bits of headroom the
                                           ///  runtime gate preserves).
};

/// Mutable compilation state threaded through the pass sequence.
struct CompileState
{
    ir::ExprPtr expr;          ///< Current IR (input of the next pass).
    FheProgram program;        ///< Valid once scheduled.
    bool scheduled = false;
    RotationKeyPlan key_plan;  ///< Valid once key_planned.
    bool key_planned = false;
    double initial_cost = 0.0; ///< Cost entering the optimizer (set by
                               ///  canonicalize, refined by TRS passes).
    int rewrite_steps = 0;     ///< Accumulated over all TRS passes.
};

/// One named compilation stage.
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual std::string name() const = 0;
    virtual void run(CompileState& state, const PassContext& ctx) const = 0;
};

/// \name Pass registry
/// The driver looks passes up by name, so alternative stages (new
/// backends, experimental orderings) plug in without touching the
/// driver. Built-ins: "canonicalize", "greedy-trs", "rl-trs",
/// "schedule", "key-select", "mod-switch".
/// @{
using PassFactory = std::function<std::unique_ptr<Pass>()>;

/// Register \p factory under \p name (replaces an existing entry).
void registerPass(const std::string& name, PassFactory factory);

/// Instantiate the pass registered as \p name. Throws CompileError for
/// an unknown name.
std::unique_ptr<Pass> createPass(const std::string& name);

/// Names of all registered passes, sorted.
std::vector<std::string> registeredPassNames();
/// @}

/// A named pass sequence plus the parameters those passes consume: the
/// complete, hashable description of one compilation pipeline.
struct DriverConfig
{
    std::vector<std::string> passes; ///< Run in order.
    ir::CostWeights weights{};       ///< Consumed by greedy-trs.
    int max_steps = 75;              ///< Consumed by greedy-trs.
    int key_budget = 0;              ///< Consumed by key-select.
    int mod_switch_margin = 12;      ///< Consumed by mod-switch.

    /// Content hash of the pipeline: pass names in order, plus — for
    /// each parameter-consuming pass actually present — that pass's
    /// parameters (bit-exact for weights). Two configs with equal
    /// fingerprints request the same compilation, so this is what the
    /// service's cache keys on; parameters of absent passes are
    /// deliberately excluded (a NoOpt pipeline ignores the greedy
    /// budget).
    std::uint64_t fingerprint() const;

    /// Human-readable pipeline description, e.g.
    /// "canonicalize > greedy-trs(steps=75) > schedule".
    std::string describe() const;

    bool hasPass(const std::string& name) const;

    /// \name The three canonical pipelines (Fig. 3 / Table 6)
    /// @{
    static DriverConfig noOpt();
    static DriverConfig greedy(const ir::CostWeights& weights = {},
                               int max_steps = 75);
    static DriverConfig rl();
    /// @}
};

/// Runs a pass sequence over one compile state, timing each pass and
/// recording cost deltas.
class PassManager
{
  public:
    void addPass(std::unique_ptr<Pass> pass);

    /// Run every pass in order over \p state, appending one PassStats
    /// per pass to \p stats.
    void run(CompileState& state, const PassContext& ctx,
             std::vector<PassStats>& stats) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/// The one compilation driver behind every pipeline entry point.
class CompilerDriver
{
  public:
    /// Neither pointer is owned; each must outlive the driver. Pass
    /// nullptr when the corresponding pass family is never requested
    /// (the pass itself fails with CompileError otherwise).
    explicit CompilerDriver(const trs::Ruleset* ruleset = nullptr,
                            const rl::RlAgent* agent = nullptr);

    /// Compile \p source through the pipeline \p config names. Throws
    /// CompileError on unknown passes or pass failures.
    Compiled compile(const ir::ExprPtr& source,
                     const DriverConfig& config) const;

  private:
    const trs::Ruleset* ruleset_;
    const rl::RlAgent* agent_;
};

} // namespace chehab::compiler
