#include "tokenizer/bpe.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace chehab::tokenizer {

namespace {

constexpr const char* kEndOfWord = "</w>";

std::vector<std::string>
splitWords(const std::string& text)
{
    std::vector<std::string> words;
    std::istringstream iss(text);
    std::string word;
    while (iss >> word) words.push_back(word);
    return words;
}

std::vector<std::string>
wordToSymbols(const std::string& word)
{
    std::vector<std::string> symbols;
    symbols.reserve(word.size() + 1);
    for (char c : word) symbols.emplace_back(1, c);
    symbols.emplace_back(kEndOfWord);
    return symbols;
}

std::string
pairKey(const std::string& a, const std::string& b)
{
    return a + '\x01' + b;
}

} // namespace

void
BpeTokenizer::train(const std::vector<std::string>& corpus, int num_merges)
{
    merges_.clear();
    merge_rank_.clear();
    id_of_.clear();

    // Word frequency table; training operates on unique words weighted by
    // count, the standard formulation.
    std::unordered_map<std::string, int> word_freq;
    for (const std::string& text : corpus) {
        for (const std::string& word : splitWords(text)) ++word_freq[word];
    }

    std::vector<std::pair<std::vector<std::string>, int>> words;
    words.reserve(word_freq.size());
    for (const auto& [word, freq] : word_freq) {
        words.emplace_back(wordToSymbols(word), freq);
    }

    int next_id = 3;
    auto register_symbol = [&](const std::string& symbol) {
        if (!id_of_.count(symbol)) id_of_.emplace(symbol, next_id++);
    };
    for (const auto& [symbols, freq] : words) {
        (void)freq;
        for (const auto& symbol : symbols) register_symbol(symbol);
    }

    for (int merge = 0; merge < num_merges; ++merge) {
        // Count adjacent symbol pairs. std::map gives deterministic
        // tie-breaking across runs/platforms.
        std::map<std::pair<std::string, std::string>, long> pair_counts;
        for (const auto& [symbols, freq] : words) {
            for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
                pair_counts[{symbols[i], symbols[i + 1]}] += freq;
            }
        }
        if (pair_counts.empty()) break;
        auto best = pair_counts.begin();
        for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
            if (it->second > best->second) best = it;
        }
        if (best->second < 2) break; // Nothing left worth merging.

        const auto [left, right] = best->first;
        const std::string fused = left + right;
        merges_.emplace_back(left, right);
        merge_rank_.emplace(pairKey(left, right),
                            static_cast<int>(merges_.size()) - 1);
        register_symbol(fused);

        for (auto& [symbols, freq] : words) {
            (void)freq;
            std::vector<std::string> merged;
            merged.reserve(symbols.size());
            for (std::size_t i = 0; i < symbols.size(); ++i) {
                if (i + 1 < symbols.size() && symbols[i] == left &&
                    symbols[i + 1] == right) {
                    merged.push_back(fused);
                    ++i;
                } else {
                    merged.push_back(symbols[i]);
                }
            }
            symbols = std::move(merged);
        }
    }
}

std::vector<std::string>
BpeTokenizer::tokenize(const std::string& text) const
{
    std::vector<std::string> tokens;
    for (const std::string& word : splitWords(text)) {
        std::vector<std::string> symbols = wordToSymbols(word);
        // Repeatedly apply the highest-priority applicable merge — the
        // standard (and deliberately non-trivial-cost) BPE encode loop.
        while (symbols.size() > 1) {
            int best_rank = -1;
            std::size_t best_pos = 0;
            for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
                auto it =
                    merge_rank_.find(pairKey(symbols[i], symbols[i + 1]));
                if (it == merge_rank_.end()) continue;
                if (best_rank < 0 || it->second < best_rank) {
                    best_rank = it->second;
                    best_pos = i;
                }
            }
            if (best_rank < 0) break;
            symbols[best_pos] += symbols[best_pos + 1];
            symbols.erase(symbols.begin() +
                          static_cast<std::ptrdiff_t>(best_pos) + 1);
        }
        for (auto& symbol : symbols) tokens.push_back(std::move(symbol));
    }
    return tokens;
}

std::vector<int>
BpeTokenizer::encode(const ir::ExprPtr& e, int max_len) const
{
    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(max_len));
    ids.push_back(clsId());
    for (const std::string& token : tokenize(e->toString())) {
        if (static_cast<int>(ids.size()) >= max_len) break;
        ids.push_back(idOf(token));
    }
    while (static_cast<int>(ids.size()) < max_len) ids.push_back(padId());
    return ids;
}

int
BpeTokenizer::idOf(const std::string& token) const
{
    auto it = id_of_.find(token);
    return it == id_of_.end() ? unkId() : it->second;
}

} // namespace chehab::tokenizer
