/// \file
/// Byte-Pair Encoding tokenizer (Sennrich et al.), used only by the
/// ICI-vs-BPE ablation (Fig. 10). Trained on raw IR text; unlike ICI it
/// must repeatedly apply merge rules at encode time, which is the
/// throughput gap the ablation measures.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace chehab::tokenizer {

/// Classic word-internal BPE with an end-of-word marker.
class BpeTokenizer
{
  public:
    /// Learn \p num_merges merge rules from whitespace-split \p corpus.
    void train(const std::vector<std::string>& corpus, int num_merges);

    /// Tokenize raw text into subword units by greedily applying the
    /// learned merges per word.
    std::vector<std::string> tokenize(const std::string& text) const;

    /// Encode a program's textual form: CLS + subword ids, padded/truncated
    /// to \p max_len.
    std::vector<int> encode(const ir::ExprPtr& e, int max_len) const;

    int padId() const { return 0; }
    int clsId() const { return 1; }
    int unkId() const { return 2; }

    /// Vocabulary size (for the embedding table).
    int size() const { return static_cast<int>(id_of_.size()) + 3; }

    /// Number of learned merges (test/debug accessor).
    int numMerges() const { return static_cast<int>(merges_.size()); }

  private:
    int idOf(const std::string& token) const;

    /// Merge rules in priority order: (left, right) -> fused symbol.
    std::vector<std::pair<std::string, std::string>> merges_;
    std::unordered_map<std::string, int> merge_rank_;
    std::unordered_map<std::string, int> id_of_;
};

} // namespace chehab::tokenizer
