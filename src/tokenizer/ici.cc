#include "tokenizer/ici.h"

#include <cmath>

#include "support/error.h"

namespace chehab::tokenizer {

using ir::ExprPtr;
using ir::Op;

namespace {

/// Number of distinct variable tokens (v0..v63) and constant classes
/// (c0..c15) in the fixed vocabulary. Programs in the training
/// distribution stay well under these caps.
constexpr int kMaxVars = 64;
constexpr int kMaxConsts = 16;

/// Rotation step bucket token: sign plus power-of-two magnitude class,
/// e.g. step 3 -> "r+4", step -16 -> "r-16".
std::string
stepToken(int step)
{
    if (step == 0) return "r0";
    const char sign = step > 0 ? '+' : '-';
    int magnitude = std::abs(step);
    int bucket = 1;
    while (bucket < magnitude && bucket < 4096) bucket <<= 1;
    return std::string("r") + sign + std::to_string(bucket);
}

/// Single left-to-right tokenization pass with per-program rename maps.
class IciPass
{
  public:
    std::vector<std::string>
    run(const ExprPtr& e)
    {
        tokens_.clear();
        var_ids_.clear();
        const_ids_.clear();
        visit(e);
        return std::move(tokens_);
    }

  private:
    void
    visit(const ExprPtr& e)
    {
        switch (e->op()) {
          case Op::Var:
          case Op::PlainVar: {
            // Plaintext variables get their own namespace prefix so the
            // embedding can distinguish ct and pt inputs.
            const std::string key =
                (e->op() == Op::Var ? "v:" : "p:") + e->name();
            auto [it, inserted] =
                var_ids_.emplace(key, static_cast<int>(var_ids_.size()));
            const int id = std::min(it->second, kMaxVars - 1);
            (void)inserted;
            tokens_.push_back(
                (e->op() == Op::Var ? "v" : "pv") + std::to_string(id));
            return;
          }
          case Op::Const: {
            if (e->value() == 0 || e->value() == 1) {
                tokens_.push_back(std::to_string(e->value()));
                return;
            }
            auto [it, inserted] = const_ids_.emplace(
                e->value(), static_cast<int>(const_ids_.size()));
            (void)inserted;
            tokens_.push_back(
                "c" + std::to_string(std::min(it->second, kMaxConsts - 1)));
            return;
          }
          case Op::Rotate:
            tokens_.push_back("(");
            tokens_.push_back("<<");
            visit(e->child(0));
            tokens_.push_back(stepToken(e->step()));
            tokens_.push_back(")");
            return;
          default: {
            tokens_.push_back("(");
            tokens_.push_back(ir::opName(e->op()));
            for (const auto& child : e->children()) visit(child);
            tokens_.push_back(")");
            return;
          }
        }
    }

    std::vector<std::string> tokens_;
    std::unordered_map<std::string, int> var_ids_;
    std::unordered_map<std::int64_t, int> const_ids_;
};

} // namespace

std::vector<std::string>
iciTokens(const ExprPtr& e)
{
    return IciPass().run(e);
}

std::string
canonicalForm(const ExprPtr& e)
{
    const std::vector<std::string> tokens = iciTokens(e);
    std::string joined;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (i) joined += ' ';
        joined += tokens[i];
    }
    return joined;
}

IciVocab::IciVocab()
{
    int next_id = 3; // 0 PAD, 1 CLS, 2 UNK.
    auto add = [&](const std::string& token) {
        id_of_.emplace(token, next_id++);
    };
    add("(");
    add(")");
    add("+");
    add("-");
    add("*");
    add("<<");
    add("Vec");
    add("VecAdd");
    add("VecSub");
    add("VecMul");
    add("VecNeg");
    add("0");
    add("1");
    add("r0");
    for (int b = 1; b <= 4096; b <<= 1) {
        add("r+" + std::to_string(b));
        add("r-" + std::to_string(b));
    }
    for (int i = 0; i < kMaxVars; ++i) add("v" + std::to_string(i));
    for (int i = 0; i < kMaxVars; ++i) add("pv" + std::to_string(i));
    for (int i = 0; i < kMaxConsts; ++i) add("c" + std::to_string(i));
}

int
IciVocab::idOf(const std::string& token) const
{
    auto it = id_of_.find(token);
    return it == id_of_.end() ? unkId() : it->second;
}

std::vector<int>
IciVocab::encode(const ir::ExprPtr& e, int max_len) const
{
    CHEHAB_ASSERT(max_len >= 2, "encode needs room for CLS");
    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(max_len));
    ids.push_back(clsId());
    for (const std::string& token : iciTokens(e)) {
        if (static_cast<int>(ids.size()) >= max_len) break;
        ids.push_back(idOf(token));
    }
    while (static_cast<int>(ids.size()) < max_len) ids.push_back(padId());
    return ids;
}

} // namespace chehab::tokenizer
