/// \file
/// Identifier and Constant Invariant (ICI) tokenization (§5.1).
///
/// ICI is alpha-renaming plus light canonicalization performed in a single
/// left-to-right pass: the first distinct variable becomes v0, the second
/// v1, ...; numeric constants map to c0, c1, ... by first occurrence of
/// their *value* (so equal constants share a token), with the exception of
/// the literals 0 and 1, which are kept verbatim because they are the
/// additive/multiplicative identities that many rewrite rules branch on.
/// Rotation steps are bucketed by sign and power-of-two magnitude.
///
/// The resulting canonical string doubles as the dataset-deduplication and
/// benchmark-exclusion key (§6).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace chehab::tokenizer {

/// Produce the ICI token sequence for \p e.
std::vector<std::string> iciTokens(const ir::ExprPtr& e);

/// Canonical form: the ICI tokens joined with single spaces. Two programs
/// have equal canonical forms iff they are identical up to identifier
/// names and non-0/1 constant values.
std::string canonicalForm(const ir::ExprPtr& e);

/// Fixed ICI vocabulary mapping tokens to dense ids for the embedding
/// layer. Ids 0 and 1 are reserved for PAD and CLS. Unknown tokens
/// (e.g. v64+ in a pathological program) map to a shared UNK id.
class IciVocab
{
  public:
    IciVocab();

    int padId() const { return 0; }
    int clsId() const { return 1; }
    int unkId() const { return 2; }

    /// Total vocabulary size (for the embedding table).
    int size() const { return static_cast<int>(id_of_.size()) + 3; }

    /// Id of \p token (UNK if unseen).
    int idOf(const std::string& token) const;

    /// Encode a program: CLS followed by token ids, truncated/padded to
    /// \p max_len (PAD on the right).
    std::vector<int> encode(const ir::ExprPtr& e, int max_len) const;

  private:
    std::unordered_map<std::string, int> id_of_;
};

} // namespace chehab::tokenizer
