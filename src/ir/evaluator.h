/// \file
/// Reference slot-semantics evaluator.
///
/// Evaluates an IR expression over Z_t (the BFV plaintext space) given a
/// binding of input variables to integers. Vectors evaluate to slot
/// vectors; rotations cycle slots left. This is the soundness oracle used
/// by the TRS property tests: every rewrite rule must preserve the value of
/// the first `outputWidth(original)` slots for all inputs. Rewrites may
/// legally *widen* a vector (padding/rotation tricks leave junk in the
/// extra slots), so equivalence is prefix equivalence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace chehab::ir {

/// Runtime value: one or more plaintext slots.
struct Value
{
    bool is_vector = false;
    std::vector<std::int64_t> slots; ///< Size 1 for scalars.

    std::int64_t scalar() const { return slots[0]; }
    int width() const { return static_cast<int>(slots.size()); }
};

/// Variable environment: maps both ciphertext and plaintext input names to
/// scalar values.
using Env = std::unordered_map<std::string, std::int64_t>;

/// Evaluator over Z_t. The default modulus 65537 is a prime with
/// t ≡ 1 (mod 2n) for every power-of-two n up to 32768, matching a
/// batching-compatible BFV plaintext modulus.
class Evaluator
{
  public:
    explicit Evaluator(std::int64_t plain_modulus = 65537)
        : modulus_(plain_modulus)
    {}

    /// Evaluate \p e under \p env. Throws CompileError for unbound
    /// variables or shape errors.
    Value evaluate(const ExprPtr& e, const Env& env) const;

    std::int64_t modulus() const { return modulus_; }

  private:
    std::int64_t reduce(std::int64_t x) const
    {
        std::int64_t r = x % modulus_;
        return r < 0 ? r + modulus_ : r;
    }

    std::int64_t modulus_;
};

/// Randomized prefix-equivalence check: draws \p trials random
/// environments and verifies that \p candidate computes the same first
/// `outputWidth(reference)` slots as \p reference. Returns false on any
/// mismatch or evaluation error.
bool equivalentOn(const ExprPtr& reference, const ExprPtr& candidate,
                  int trials, std::uint64_t seed = 42,
                  std::int64_t plain_modulus = 65537);

} // namespace chehab::ir
