/// \file
/// S-expression parser for the CHEHAB IR text format.
///
/// Grammar (matching the printer and the LLM synthesis protocol, App. F):
///
///     expr   := ident | integer
///             | '(' 'pt' ident ')'
///             | '(' op expr+ ')'
///             | '(' '<<' expr integer ')'
///             | '(' '>>' expr integer ')'
///     op     := '+' | '-' | '*' | 'Vec' | 'VecAdd' | 'VecSub'
///             | 'VecMul' | 'VecNeg'
///
/// '-' is unary negation with one operand and subtraction with two.
/// '>>' parses as a left rotation with a negated step.
#pragma once

#include <string>

#include "ir/expr.h"

namespace chehab::ir {

/// Parse one expression from \p text. Throws CompileError on malformed
/// input (unbalanced parens, unknown operators, bad arity).
ExprPtr parse(const std::string& text);

/// Returns true if \p text parses cleanly (used by the dataset
/// post-processing validation step, §6).
bool isValid(const std::string& text);

} // namespace chehab::ir
