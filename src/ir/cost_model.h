/// \file
/// The FHE-aware analytical cost function of §5.3.1:
///
///     Cost(e) = w_ops · C_ops(e) + w_depth · D_circuit(e) + w_mult · D_mult(e)
///
/// C_ops sums per-operation relative latencies calibrated to the BFV
/// scheme: vector additions/subtractions 1, rotations 50, vector
/// multiplications 100, and a deliberately punitive 250 for any scalar
/// ciphertext operation so the policy is incentivized to vectorize.
/// Running real FHE during training would be prohibitively slow; this
/// function is the fast, FHE-aware reward surrogate.
#pragma once

#include "ir/analysis.h"
#include "ir/expr.h"

namespace chehab::ir {

/// Relative latency of each operation class (paper defaults).
struct OpCosts
{
    double vec_add = 1.0;    ///< VecAdd / VecSub / VecNeg.
    double vec_mul = 100.0;  ///< VecMul (ct-ct or ct-pt).
    double rotation = 50.0;  ///< Slot rotation.
    double scalar_op = 250.0;///< Any unvectorized ciphertext op.
    double plain_op = 0.0;   ///< Plaintext-only arithmetic (precomputable).
    /// Charge per *computed* ciphertext slot of a Vec constructor: leaf
    /// packs are free client-side packing (§7.3), but packing a computed
    /// scalar costs a mask + rotation + add at codegen (the "rotations
    /// and maskings we omit showing" of §2).
    double pack_computed = 60.0;
};

/// Weights of the three cost terms. The paper's default — and the
/// configuration Table 1 shows to give the fastest code — is (1, 1, 1).
struct CostWeights
{
    double w_ops = 1.0;
    double w_depth = 1.0;
    double w_mult = 1.0;
};

/// Sum of per-operation costs over the unique subtrees (C_ops).
double operationCost(const ExprPtr& root, const OpCosts& costs = {});

/// Full weighted cost of §5.3.1.
double cost(const ExprPtr& root, const CostWeights& weights = {},
            const OpCosts& costs = {});

} // namespace chehab::ir
