#include "ir/parser.h"

#include <cctype>
#include <cstdlib>

#include "support/error.h"
#include "support/parse_int.h"

namespace chehab::ir {

namespace {

/// Hand-rolled recursive-descent reader over the raw character buffer.
/// The IR vocabulary is tiny, so this is faster and simpler than a
/// generic tokenizer.
class Reader
{
  public:
    explicit Reader(const std::string& text) : text_(text) {}

    ExprPtr
    parseAll()
    {
        ExprPtr e = parseExpr();
        skipSpace();
        if (pos_ != text_.size()) {
            throw CompileError("trailing characters after expression at " +
                               std::to_string(pos_));
        }
        return e;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size()) throw CompileError("unexpected end of input");
        return text_[pos_];
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    std::string
    readToken()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
                c == ')') {
                break;
            }
            ++pos_;
        }
        if (pos_ == start) throw CompileError("expected token");
        return text_.substr(start, pos_ - start);
    }

    static bool
    isInteger(const std::string& tok)
    {
        std::size_t i = (tok[0] == '-' && tok.size() > 1) ? 1 : 0;
        if (i == tok.size()) return false;
        for (; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
                return false;
            }
        }
        return true;
    }

    /// Checked literal conversion: isInteger() already rejected
    /// garbage, so the only way parseInt64 fails is ERANGE — a literal
    /// strtoll would silently saturate to INT64_MIN/MAX.
    static std::int64_t
    toInt64(const std::string& tok)
    {
        std::int64_t value = 0;
        if (!parseInt64(tok.c_str(), value)) {
            throw CompileError("integer literal out of range: '" + tok + "'");
        }
        return value;
    }

    std::int64_t
    parseIntToken()
    {
        const std::string tok = readToken();
        if (!isInteger(tok)) {
            throw CompileError("expected integer, got '" + tok + "'");
        }
        return toInt64(tok);
    }

    ExprPtr
    parseExpr()
    {
        const char c = peek();
        if (c == '(') return parseList();
        if (c == ')') throw CompileError("unexpected ')'");
        const std::string tok = readToken();
        if (isInteger(tok)) return constant(toInt64(tok));
        return var(tok);
    }

    std::vector<ExprPtr>
    parseOperands()
    {
        std::vector<ExprPtr> operands;
        while (peek() != ')') operands.push_back(parseExpr());
        return operands;
    }

    void
    expectClose()
    {
        if (peek() != ')') throw CompileError("expected ')'");
        ++pos_;
    }

    ExprPtr
    parseList()
    {
        ++pos_; // consume '('
        const std::string head = readToken();

        if (head == "pt") {
            const std::string name = readToken();
            expectClose();
            return plainVar(name);
        }
        if (head == "<<" || head == ">>") {
            ExprPtr operand = parseExpr();
            const std::int64_t step = parseIntToken();
            expectClose();
            const int signed_step =
                head == "<<" ? static_cast<int>(step) : -static_cast<int>(step);
            return rotate(std::move(operand), signed_step);
        }

        std::vector<ExprPtr> operands = parseOperands();
        expectClose();

        auto require_arity = [&](std::size_t n) {
            if (operands.size() != n) {
                throw CompileError("operator '" + head + "' expects " +
                                   std::to_string(n) + " operands, got " +
                                   std::to_string(operands.size()));
            }
        };

        if (head == "+") {
            return foldLeft(Op::Add, std::move(operands), 2);
        }
        if (head == "*") {
            return foldLeft(Op::Mul, std::move(operands), 2);
        }
        if (head == "-") {
            if (operands.size() == 1) return neg(std::move(operands[0]));
            require_arity(2);
            return sub(std::move(operands[0]), std::move(operands[1]));
        }
        if (head == "Vec") {
            if (operands.empty()) throw CompileError("empty (Vec)");
            return vec(std::move(operands));
        }
        if (head == "VecAdd") {
            require_arity(2);
            return vecAdd(std::move(operands[0]), std::move(operands[1]));
        }
        if (head == "VecSub") {
            require_arity(2);
            return vecSub(std::move(operands[0]), std::move(operands[1]));
        }
        if (head == "VecMul") {
            require_arity(2);
            return vecMul(std::move(operands[0]), std::move(operands[1]));
        }
        if (head == "VecNeg") {
            require_arity(1);
            return vecNeg(std::move(operands[0]));
        }
        throw CompileError("unknown operator '" + head + "'");
    }

    /// n-ary + / * in the input text folds into left-leaning binary nodes
    /// (the TRS balancing rules may later reshape them).
    ExprPtr
    foldLeft(Op op, std::vector<ExprPtr> operands, std::size_t min_arity)
    {
        if (operands.size() < min_arity) {
            throw CompileError("operator needs at least " +
                               std::to_string(min_arity) + " operands");
        }
        ExprPtr acc = operands[0];
        for (std::size_t i = 1; i < operands.size(); ++i) {
            acc = makeNode(op, {acc, operands[i]}, {}, 0, 0);
        }
        return acc;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

ExprPtr
parse(const std::string& text)
{
    return Reader(text).parseAll();
}

bool
isValid(const std::string& text)
{
    try {
        parse(text);
        return true;
    } catch (const CompileError&) {
        return false;
    }
}

} // namespace chehab::ir
