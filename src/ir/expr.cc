#include "ir/expr.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace chehab::ir {

const char*
opName(Op op)
{
    switch (op) {
      case Op::Var: return "var";
      case Op::PlainVar: return "pvar";
      case Op::Const: return "const";
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Mul: return "*";
      case Op::Neg: return "-";
      case Op::Rotate: return "<<";
      case Op::Vec: return "Vec";
      case Op::VecAdd: return "VecAdd";
      case Op::VecSub: return "VecSub";
      case Op::VecMul: return "VecMul";
      case Op::VecNeg: return "VecNeg";
    }
    return "?";
}

bool
isScalarOp(Op op)
{
    return op == Op::Add || op == Op::Sub || op == Op::Mul || op == Op::Neg;
}

bool
isVectorOp(Op op)
{
    return op == Op::VecAdd || op == Op::VecSub || op == Op::VecMul ||
           op == Op::VecNeg;
}

bool
isComputeOp(Op op)
{
    return isScalarOp(op) || isVectorOp(op) || op == Op::Rotate;
}

namespace {

std::size_t
combineHash(std::size_t seed, std::size_t value)
{
    // boost::hash_combine-style mix.
    return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

} // namespace

ExprPtr
makeNode(Op op, std::vector<ExprPtr> children, std::string name,
         std::int64_t value, int step)
{
    auto node = std::shared_ptr<Expr>(new Expr());
    node->op_ = op;
    node->children_ = std::move(children);
    node->name_ = std::move(name);
    node->value_ = value;
    node->step_ = step;

    std::size_t h = combineHash(0xc0ffee, static_cast<std::size_t>(op));
    h = combineHash(h, std::hash<std::string>()(node->name_));
    h = combineHash(h, std::hash<std::int64_t>()(node->value_));
    h = combineHash(h, std::hash<int>()(node->step_));

    int nodes = 1;
    int height = 1;
    bool plain = op != Op::Var;
    for (const auto& child : node->children_) {
        CHEHAB_ASSERT(child != nullptr, "null child in makeNode");
        h = combineHash(h, child->hash());
        nodes += child->numNodes();
        height = std::max(height, child->height() + 1);
        plain = plain && child->isPlain();
    }
    node->hash_ = h;
    node->numNodes_ = nodes;
    node->height_ = node->children_.empty() ? 1 : height;
    node->isPlain_ = plain;
    return node;
}

ExprPtr
var(std::string name)
{
    return makeNode(Op::Var, {}, std::move(name), 0, 0);
}

ExprPtr
plainVar(std::string name)
{
    return makeNode(Op::PlainVar, {}, std::move(name), 0, 0);
}

ExprPtr
constant(std::int64_t v)
{
    return makeNode(Op::Const, {}, {}, v, 0);
}

ExprPtr
add(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::Add, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
sub(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::Sub, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
mul(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::Mul, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
neg(ExprPtr a)
{
    return makeNode(Op::Neg, {std::move(a)}, {}, 0, 0);
}

ExprPtr
rotate(ExprPtr v, int step)
{
    return makeNode(Op::Rotate, {std::move(v)}, {}, 0, step);
}

ExprPtr
vec(std::vector<ExprPtr> elements)
{
    CHEHAB_ASSERT(!elements.empty(), "Vec needs at least one element");
    return makeNode(Op::Vec, std::move(elements), {}, 0, 0);
}

ExprPtr
vecAdd(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::VecAdd, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
vecSub(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::VecSub, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
vecMul(ExprPtr a, ExprPtr b)
{
    return makeNode(Op::VecMul, {std::move(a), std::move(b)}, {}, 0, 0);
}

ExprPtr
vecNeg(ExprPtr a)
{
    return makeNode(Op::VecNeg, {std::move(a)}, {}, 0, 0);
}

bool
equal(const ExprPtr& a, const ExprPtr& b)
{
    if (a.get() == b.get()) return true;
    if (!a || !b) return false;
    if (a->hash() != b->hash()) return false;
    if (a->op() != b->op() || a->arity() != b->arity()) return false;
    if (a->name() != b->name() || a->value() != b->value() ||
        a->step() != b->step()) {
        return false;
    }
    for (std::size_t i = 0; i < a->arity(); ++i) {
        if (!equal(a->child(i), b->child(i))) return false;
    }
    return true;
}

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Absorb one word into a fingerprint lane with a lane-specific tweak.
std::uint64_t
absorb(std::uint64_t acc, std::uint64_t word, std::uint64_t tweak)
{
    return mix64(acc * 0x9e3779b97f4a7c15ULL + word + tweak);
}

Fingerprint
fingerprintImpl(const ExprPtr& node)
{
    Fingerprint fp;
    fp.hi = absorb(0x243f6a8885a308d3ULL,
                   static_cast<std::uint64_t>(node->op()), 1);
    fp.lo = absorb(0x13198a2e03707344ULL,
                   static_cast<std::uint64_t>(node->op()), 2);
    for (char c : node->name()) {
        fp.hi = absorb(fp.hi, static_cast<unsigned char>(c), 3);
        fp.lo = absorb(fp.lo, static_cast<unsigned char>(c), 5);
    }
    fp.hi = absorb(fp.hi, static_cast<std::uint64_t>(node->value()), 7);
    fp.lo = absorb(fp.lo, static_cast<std::uint64_t>(node->value()), 11);
    fp.hi = absorb(fp.hi, static_cast<std::uint64_t>(node->step()), 13);
    fp.lo = absorb(fp.lo, static_cast<std::uint64_t>(node->step()), 17);
    for (const ExprPtr& child : node->children()) {
        const Fingerprint sub = fingerprintImpl(child);
        fp.hi = absorb(absorb(fp.hi, sub.hi, 19), sub.lo, 23);
        fp.lo = absorb(absorb(fp.lo, sub.lo, 29), sub.hi, 31);
    }
    return fp;
}

} // namespace

Fingerprint
fingerprint(const ExprPtr& root)
{
    if (!root) return {};
    return fingerprintImpl(root);
}

namespace {

/// Recursive worker for replaceAt: `offset` is the pre-order index of
/// `node`; returns the rebuilt node or nullptr if `index` is outside the
/// subtree.
ExprPtr
replaceAtImpl(const ExprPtr& node, int offset, int index,
              const ExprPtr& replacement)
{
    if (index == offset) return replacement;
    int child_offset = offset + 1;
    for (std::size_t i = 0; i < node->arity(); ++i) {
        const ExprPtr& child = node->child(i);
        const int child_end = child_offset + child->numNodes();
        if (index < child_end) {
            ExprPtr rebuilt =
                replaceAtImpl(child, child_offset, index, replacement);
            std::vector<ExprPtr> kids = node->children();
            kids[i] = std::move(rebuilt);
            return makeNode(node->op(), std::move(kids), node->name(),
                            node->value(), node->step());
        }
        child_offset = child_end;
    }
    CHEHAB_ASSERT(false, "replaceAt index out of range");
    return nullptr;
}

} // namespace

ExprPtr
replaceAt(const ExprPtr& root, int index, const ExprPtr& replacement)
{
    CHEHAB_ASSERT(index >= 0 && index < root->numNodes(),
                  "replaceAt index out of range");
    return replaceAtImpl(root, 0, index, replacement);
}

ExprPtr
subtreeAt(const ExprPtr& root, int index)
{
    CHEHAB_ASSERT(index >= 0 && index < root->numNodes(),
                  "subtreeAt index out of range");
    if (index == 0) return root;
    int child_offset = 1;
    for (const auto& child : root->children()) {
        const int child_end = child_offset + child->numNodes();
        if (index < child_end) return subtreeAt(child, index - child_offset);
        child_offset = child_end;
    }
    CHEHAB_ASSERT(false, "subtreeAt index out of range");
    return nullptr;
}

ExprPtr
replaceAll(const ExprPtr& root, const ExprPtr& target,
           const ExprPtr& replacement)
{
    if (equal(root, target)) return replacement;
    // Fast reject: if the target's hash never appears below, reuse.
    if (root->arity() == 0) return root;
    std::vector<ExprPtr> kids;
    kids.reserve(root->arity());
    bool changed = false;
    for (const auto& child : root->children()) {
        ExprPtr mapped = replaceAll(child, target, replacement);
        changed = changed || mapped.get() != child.get();
        kids.push_back(std::move(mapped));
    }
    if (!changed) return root;
    return makeNode(root->op(), std::move(kids), root->name(),
                    root->value(), root->step());
}

namespace {

void
forEachNodeImpl(const ExprPtr& node, int& counter,
                const std::function<void(const ExprPtr&, int)>& fn)
{
    fn(node, counter++);
    for (const auto& child : node->children()) {
        forEachNodeImpl(child, counter, fn);
    }
}

} // namespace

void
forEachNode(const ExprPtr& root,
            const std::function<void(const ExprPtr&, int)>& fn)
{
    int counter = 0;
    forEachNodeImpl(root, counter, fn);
}

namespace {

void
printExpr(const Expr& e, std::ostringstream& out)
{
    switch (e.op()) {
      case Op::Var:
        out << e.name();
        return;
      case Op::PlainVar:
        out << "(pt " << e.name() << ")";
        return;
      case Op::Const:
        out << e.value();
        return;
      case Op::Rotate:
        out << "(<< ";
        printExpr(*e.child(0), out);
        out << ' ' << e.step() << ')';
        return;
      default:
        break;
    }
    out << '(' << opName(e.op());
    for (const auto& child : e.children()) {
        out << ' ';
        printExpr(*child, out);
    }
    out << ')';
}

} // namespace

std::string
Expr::toString() const
{
    std::ostringstream out;
    printExpr(*this, out);
    return out.str();
}

} // namespace chehab::ir
