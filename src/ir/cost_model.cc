#include "ir/cost_model.h"

#include <unordered_map>

namespace chehab::ir {

namespace {

double
nodeCost(const ExprPtr& e, const OpCosts& costs)
{
    if (e->op() == Op::Vec) {
        // Leaf/plain slots are free client-side packing; computed
        // ciphertext slots are materialized with mask/rotate/add.
        double total = 0.0;
        for (const auto& child : e->children()) {
            if (!child->isPlain() && child->op() != Op::Var) {
                total += costs.pack_computed;
            }
        }
        return total;
    }
    if (!isComputeOp(e->op())) return 0.0;
    if (e->isPlain()) return costs.plain_op;
    switch (e->op()) {
      case Op::Rotate:
        return costs.rotation;
      case Op::VecAdd:
      case Op::VecSub:
      case Op::VecNeg:
        return costs.vec_add;
      case Op::VecMul:
        return costs.vec_mul;
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Neg:
        return costs.scalar_op;
      default:
        return 0.0;
    }
}

void
sumUnique(const ExprPtr& e, const OpCosts& costs,
          std::unordered_map<std::size_t, std::vector<ExprPtr>>& seen,
          double& total)
{
    auto& bucket = seen[e->hash()];
    for (const auto& existing : bucket) {
        if (equal(existing, e)) return;
    }
    bucket.push_back(e);
    total += nodeCost(e, costs);
    for (const auto& child : e->children()) {
        sumUnique(child, costs, seen, total);
    }
}

} // namespace

double
operationCost(const ExprPtr& root, const OpCosts& costs)
{
    std::unordered_map<std::size_t, std::vector<ExprPtr>> seen;
    double total = 0.0;
    sumUnique(root, costs, seen, total);
    return total;
}

double
cost(const ExprPtr& root, const CostWeights& weights, const OpCosts& costs)
{
    return weights.w_ops * operationCost(root, costs) +
           weights.w_depth * circuitDepth(root) +
           weights.w_mult * multiplicativeDepth(root);
}

} // namespace chehab::ir
