#include "ir/evaluator.h"

#include <algorithm>

#include "ir/analysis.h"
#include "support/error.h"
#include "support/rng.h"

namespace chehab::ir {

Value
Evaluator::evaluate(const ExprPtr& e, const Env& env) const
{
    switch (e->op()) {
      case Op::Var:
      case Op::PlainVar: {
        auto it = env.find(e->name());
        if (it == env.end()) {
            throw CompileError("unbound variable '" + e->name() + "'");
        }
        return {false, {reduce(it->second)}};
      }
      case Op::Const:
        return {false, {reduce(e->value())}};
      case Op::Add:
      case Op::Sub:
      case Op::Mul: {
        const Value a = evaluate(e->child(0), env);
        const Value b = evaluate(e->child(1), env);
        if (a.is_vector || b.is_vector) {
            throw CompileError("scalar op on vector value");
        }
        std::int64_t r = 0;
        switch (e->op()) {
          case Op::Add: r = a.scalar() + b.scalar(); break;
          case Op::Sub: r = a.scalar() - b.scalar(); break;
          default: r = reduce(a.scalar()) * reduce(b.scalar()); break;
        }
        return {false, {reduce(r)}};
      }
      case Op::Neg: {
        const Value a = evaluate(e->child(0), env);
        if (a.is_vector) throw CompileError("scalar negation of vector");
        return {false, {reduce(-a.scalar())}};
      }
      case Op::Rotate: {
        const Value a = evaluate(e->child(0), env);
        if (!a.is_vector) throw CompileError("rotation of scalar value");
        const int n = a.width();
        const int step = ((e->step() % n) + n) % n;
        Value out{true, std::vector<std::int64_t>(n)};
        for (int i = 0; i < n; ++i) {
            out.slots[i] = a.slots[(i + step) % n];
        }
        return out;
      }
      case Op::Vec: {
        Value out{true, {}};
        out.slots.reserve(e->arity());
        for (const auto& child : e->children()) {
            const Value v = evaluate(child, env);
            if (v.is_vector) throw CompileError("nested vector in Vec");
            out.slots.push_back(v.scalar());
        }
        return out;
      }
      case Op::VecAdd:
      case Op::VecSub:
      case Op::VecMul: {
        const Value a = evaluate(e->child(0), env);
        const Value b = evaluate(e->child(1), env);
        if (!a.is_vector || !b.is_vector || a.width() != b.width()) {
            throw CompileError("vector op shape mismatch");
        }
        Value out{true, std::vector<std::int64_t>(a.width())};
        for (int i = 0; i < a.width(); ++i) {
            std::int64_t r = 0;
            switch (e->op()) {
              case Op::VecAdd: r = a.slots[i] + b.slots[i]; break;
              case Op::VecSub: r = a.slots[i] - b.slots[i]; break;
              default: r = reduce(a.slots[i]) * reduce(b.slots[i]); break;
            }
            out.slots[i] = reduce(r);
        }
        return out;
      }
      case Op::VecNeg: {
        const Value a = evaluate(e->child(0), env);
        if (!a.is_vector) throw CompileError("vector negation of scalar");
        Value out{true, std::vector<std::int64_t>(a.width())};
        for (int i = 0; i < a.width(); ++i) out.slots[i] = reduce(-a.slots[i]);
        return out;
      }
    }
    CHEHAB_ASSERT(false, "unhandled op in evaluate");
    return {};
}

bool
equivalentOn(const ExprPtr& reference, const ExprPtr& candidate, int trials,
             std::uint64_t seed, std::int64_t plain_modulus)
{
    Evaluator eval(plain_modulus);
    Rng rng(seed);

    std::vector<std::string> vars = ciphertextVars(reference);
    for (const auto& name : plaintextVars(reference)) vars.push_back(name);
    // The candidate may reference a subset of the inputs (simplification
    // can drop dead variables) but never new ones; bind the union anyway.
    for (const auto& name : ciphertextVars(candidate)) {
        if (std::find(vars.begin(), vars.end(), name) == vars.end()) {
            vars.push_back(name);
        }
    }
    for (const auto& name : plaintextVars(candidate)) {
        if (std::find(vars.begin(), vars.end(), name) == vars.end()) {
            vars.push_back(name);
        }
    }

    int ref_width = 0;
    try {
        ref_width = outputWidth(reference);
    } catch (const CompileError&) {
        return false;
    }

    for (int t = 0; t < trials; ++t) {
        Env env;
        for (const auto& name : vars) {
            env[name] = static_cast<std::int64_t>(
                rng.uniformInt(static_cast<std::uint64_t>(plain_modulus)));
        }
        try {
            const Value a = eval.evaluate(reference, env);
            const Value b = eval.evaluate(candidate, env);
            if (a.is_vector != b.is_vector && !(a.is_vector || ref_width == 1)) {
                return false;
            }
            if (!a.is_vector && !b.is_vector) {
                if (a.scalar() != b.scalar()) return false;
                continue;
            }
            // Prefix equivalence on the reference's output width.
            if (b.width() < ref_width) return false;
            for (int i = 0; i < ref_width; ++i) {
                const std::int64_t lhs =
                    a.is_vector ? a.slots[i] : a.scalar();
                if (lhs != b.slots[i]) return false;
            }
        } catch (const CompileError&) {
            return false;
        }
    }
    return true;
}

} // namespace chehab::ir
