#include "ir/analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/error.h"

namespace chehab::ir {

namespace {

TypeInfo
typeOfImpl(const ExprPtr& e)
{
    switch (e->op()) {
      case Op::Var:
        return {false, 1, false};
      case Op::PlainVar:
      case Op::Const:
        return {false, 1, true};
      case Op::Add:
      case Op::Sub:
      case Op::Mul: {
        const TypeInfo a = typeOfImpl(e->child(0));
        const TypeInfo b = typeOfImpl(e->child(1));
        if (a.is_vector || b.is_vector) {
            throw CompileError("scalar operator applied to vector operand in " +
                               e->toString());
        }
        return {false, 1, a.is_plain && b.is_plain};
      }
      case Op::Neg: {
        const TypeInfo a = typeOfImpl(e->child(0));
        if (a.is_vector) {
            throw CompileError("scalar negation of vector operand");
        }
        return {false, 1, a.is_plain};
      }
      case Op::Rotate: {
        const TypeInfo a = typeOfImpl(e->child(0));
        if (!a.is_vector) {
            throw CompileError("rotation of a scalar operand");
        }
        return {true, a.width, a.is_plain};
      }
      case Op::Vec: {
        bool plain = true;
        for (const auto& child : e->children()) {
            const TypeInfo t = typeOfImpl(child);
            if (t.is_vector) {
                throw CompileError("nested vector inside Vec constructor");
            }
            plain = plain && t.is_plain;
        }
        return {true, static_cast<int>(e->arity()), plain};
      }
      case Op::VecAdd:
      case Op::VecSub:
      case Op::VecMul: {
        const TypeInfo a = typeOfImpl(e->child(0));
        const TypeInfo b = typeOfImpl(e->child(1));
        if (!a.is_vector || !b.is_vector) {
            throw CompileError("vector operator applied to scalar operand");
        }
        if (a.width != b.width) {
            throw CompileError("vector width mismatch: " +
                               std::to_string(a.width) + " vs " +
                               std::to_string(b.width));
        }
        return {true, a.width, a.is_plain && b.is_plain};
      }
      case Op::VecNeg: {
        const TypeInfo a = typeOfImpl(e->child(0));
        if (!a.is_vector) {
            throw CompileError("vector negation of scalar operand");
        }
        return {true, a.width, a.is_plain};
      }
    }
    CHEHAB_ASSERT(false, "unhandled op in typeOf");
    return {};
}

} // namespace

TypeInfo
typeOf(const ExprPtr& e)
{
    return typeOfImpl(e);
}

bool
wellTyped(const ExprPtr& e)
{
    try {
        typeOf(e);
        return true;
    } catch (const CompileError&) {
        return false;
    }
}

namespace {

/// Classify a single node into the OpCounts buckets.
void
classifyNode(const ExprPtr& e, OpCounts& counts)
{
    const bool vector_form = isVectorOp(e->op()) || e->op() == Op::Rotate;
    switch (e->op()) {
      case Op::Var:
      case Op::PlainVar:
      case Op::Const:
      case Op::Vec:
        return;
      case Op::Rotate:
        if (e->isPlain()) {
            ++counts.plain_ops;
        } else {
            ++counts.rotation;
            ++counts.vector_ops;
        }
        return;
      case Op::Add:
      case Op::Sub:
      case Op::Neg:
      case Op::VecAdd:
      case Op::VecSub:
      case Op::VecNeg:
        if (e->isPlain()) {
            ++counts.plain_ops;
        } else {
            ++counts.ct_add;
            vector_form ? ++counts.vector_ops : ++counts.scalar_ops;
        }
        return;
      case Op::Mul:
      case Op::VecMul: {
        if (e->isPlain()) {
            ++counts.plain_ops;
            return;
        }
        const bool a_plain = e->child(0)->isPlain();
        const bool b_plain = e->child(1)->isPlain();
        if (a_plain || b_plain) {
            ++counts.ct_pt_mul;
        } else if (equal(e->child(0), e->child(1))) {
            ++counts.square;
        } else {
            ++counts.ct_ct_mul;
        }
        vector_form ? ++counts.vector_ops : ++counts.scalar_ops;
        return;
      }
    }
}

/// Collect each distinct subtree once, resolving hash collisions with deep
/// equality.
class UniqueNodeSet
{
  public:
    /// Returns true if \p e was not seen before.
    bool
    insert(const ExprPtr& e)
    {
        auto& bucket = buckets_[e->hash()];
        for (const auto& existing : bucket) {
            if (equal(existing, e)) return false;
        }
        bucket.push_back(e);
        return true;
    }

  private:
    std::unordered_map<std::size_t, std::vector<ExprPtr>> buckets_;
};

void
countOpsUnique(const ExprPtr& e, UniqueNodeSet& seen, OpCounts& counts)
{
    if (!seen.insert(e)) return;
    classifyNode(e, counts);
    for (const auto& child : e->children()) {
        countOpsUnique(child, seen, counts);
    }
}

} // namespace

OpCounts
countOps(const ExprPtr& root, bool dag_unique)
{
    OpCounts counts;
    if (dag_unique) {
        UniqueNodeSet seen;
        countOpsUnique(root, seen, counts);
    } else {
        forEachNode(root, [&](const ExprPtr& e, int) {
            classifyNode(e, counts);
        });
    }
    return counts;
}

namespace {

int
depthImpl(const ExprPtr& e, bool mult_only,
          std::unordered_map<const Expr*, int>& memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end()) return it->second;

    int child_max = 0;
    for (const auto& child : e->children()) {
        child_max = std::max(child_max, depthImpl(child, mult_only, memo));
    }

    int self = 0;
    if (mult_only) {
        const bool is_mul = e->op() == Op::Mul || e->op() == Op::VecMul;
        if (is_mul && !e->isPlain() && !e->child(0)->isPlain() &&
            !e->child(1)->isPlain()) {
            self = 1;
        }
    } else if (isComputeOp(e->op()) && !e->isPlain()) {
        self = 1;
    }

    const int depth = child_max + self;
    memo.emplace(e.get(), depth);
    return depth;
}

} // namespace

int
circuitDepth(const ExprPtr& root)
{
    std::unordered_map<const Expr*, int> memo;
    return depthImpl(root, /*mult_only=*/false, memo);
}

int
multiplicativeDepth(const ExprPtr& root)
{
    std::unordered_map<const Expr*, int> memo;
    return depthImpl(root, /*mult_only=*/true, memo);
}

namespace {

std::vector<std::string>
collectVars(const ExprPtr& root, Op which)
{
    std::vector<std::string> names;
    std::unordered_set<std::string> seen;
    forEachNode(root, [&](const ExprPtr& e, int) {
        if (e->op() == which && seen.insert(e->name()).second) {
            names.push_back(e->name());
        }
    });
    return names;
}

} // namespace

std::vector<std::string>
ciphertextVars(const ExprPtr& root)
{
    return collectVars(root, Op::Var);
}

std::vector<std::string>
plaintextVars(const ExprPtr& root)
{
    return collectVars(root, Op::PlainVar);
}

std::vector<int>
rotationSteps(const ExprPtr& root)
{
    std::vector<int> steps;
    std::unordered_set<int> seen;
    forEachNode(root, [&](const ExprPtr& e, int) {
        if (e->op() == Op::Rotate && seen.insert(e->step()).second) {
            steps.push_back(e->step());
        }
    });
    std::sort(steps.begin(), steps.end());
    return steps;
}

int
outputWidth(const ExprPtr& root)
{
    const TypeInfo t = typeOf(root);
    return t.is_vector ? t.width : 1;
}

} // namespace chehab::ir
