/// \file
/// Static analyses over the CHEHAB IR: typing, circuit depth,
/// multiplicative depth, and operation counting (the ∪ / ∪⊗ / ⊗ / ⟳ / ⊙ /
/// ⊕ / ⊠ metrics of Table 6).
#pragma once

#include <string>
#include <vector>

#include "ir/expr.h"

namespace chehab::ir {

/// Result of type checking a subtree.
struct TypeInfo
{
    bool is_vector = false; ///< Vector-typed (Vec / vector ops / Rotate).
    int width = 1;          ///< Slot count for vectors, 1 for scalars.
    bool is_plain = false;  ///< No ciphertext variable in the subtree.
};

/// Type check \p e. Throws CompileError on arity/shape violations
/// (e.g. VecAdd of scalars, Vec containing a nested vector, width
/// mismatches between vector operands).
TypeInfo typeOf(const ExprPtr& e);

/// True if \p e type checks.
bool wellTyped(const ExprPtr& e);

/// Operation counts over the *unique* subtrees of the expression, i.e.
/// after implicit common-subexpression elimination, which is how the paper
/// reports circuit sizes. A Mul/VecMul is classified by the plain-ness of
/// its operands; squares (both operands structurally identical ciphertexts)
/// are reported separately like SEAL's square().
struct OpCounts
{
    int ct_add = 0;     ///< ⊕: ciphertext additions/subtractions/negations.
    int ct_ct_mul = 0;  ///< ⊗: ciphertext×ciphertext multiplications.
    int ct_pt_mul = 0;  ///< ⊙: ciphertext×plaintext multiplications.
    int square = 0;     ///< ⊠: ciphertext squarings.
    int rotation = 0;   ///< ⟳: slot rotations.
    int plain_ops = 0;  ///< Plaintext-only arithmetic (free at runtime).
    int scalar_ops = 0; ///< Ciphertext ops still in scalar (unvectorized) form.
    int vector_ops = 0; ///< Ciphertext ops in vector form.

    /// All runtime homomorphic operations.
    int total() const
    {
        return ct_add + ct_ct_mul + ct_pt_mul + square + rotation;
    }
};

/// Count operations; see OpCounts. When \p dag_unique is true (default),
/// structurally identical subtrees are counted once.
OpCounts countOps(const ExprPtr& root, bool dag_unique = true);

/// Circuit depth ∪: the maximum number of compute operations (arithmetic
/// or rotation) on any root-to-leaf path. Vec constructors and leaves do
/// not contribute.
int circuitDepth(const ExprPtr& root);

/// Multiplicative depth ∪⊗: maximum number of ciphertext×ciphertext
/// multiplications (incl. squares) on any root-to-leaf path.
int multiplicativeDepth(const ExprPtr& root);

/// Names of all ciphertext variables, in first-occurrence order.
std::vector<std::string> ciphertextVars(const ExprPtr& root);

/// Names of all plaintext variables, in first-occurrence order.
std::vector<std::string> plaintextVars(const ExprPtr& root);

/// All distinct rotation steps used in the program (the set χ fed to the
/// rotation-key selection pass, App. B).
std::vector<int> rotationSteps(const ExprPtr& root);

/// Output width: the slot count of the root if vector-typed, else 1.
int outputWidth(const ExprPtr& root);

} // namespace chehab::ir
