/// \file
/// CHEHAB intermediate representation (IR).
///
/// The IR is an immutable expression tree over the operation set that BFV
/// supports natively (Table 3 of the paper): scalar +, -, *, unary
/// negation, cyclic slot rotations, the vector constructor Vec, and the
/// element-wise vector operations VecAdd / VecSub / VecMul / VecNeg.
///
/// Nodes are reference counted and never mutated after construction, so
/// rewriting produces new trees that share unchanged subtrees with the old
/// ones — exactly the behaviour a term rewriting system wants. Structural
/// hashes are computed at construction, making structural equality, CSE and
/// match deduplication cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace chehab::ir {

/// Operation tag for an IR node.
enum class Op : std::uint8_t {
    Var,      ///< Ciphertext input variable (leaf).
    PlainVar, ///< Plaintext input variable (leaf).
    Const,    ///< Integer constant, implicitly plaintext (leaf).
    Add,      ///< Scalar addition.
    Sub,      ///< Scalar subtraction.
    Mul,      ///< Scalar multiplication.
    Neg,      ///< Scalar negation.
    Rotate,   ///< Cyclic left rotation of a vector by `step` slots.
    Vec,      ///< Vector constructor packing scalar children into slots.
    VecAdd,   ///< Element-wise vector addition.
    VecSub,   ///< Element-wise vector subtraction.
    VecMul,   ///< Element-wise vector multiplication.
    VecNeg,   ///< Element-wise vector negation.
};

/// Human-readable mnemonic used by the printer and tokenizer
/// (e.g. "+", "VecMul", "<<").
const char* opName(Op op);

/// True for Add/Sub/Mul/Neg (scalar compute ops).
bool isScalarOp(Op op);

/// True for VecAdd/VecSub/VecMul/VecNeg.
bool isVectorOp(Op op);

/// True for any op that performs arithmetic at runtime (everything except
/// leaves and the Vec constructor, which is resolved at packing time).
bool isComputeOp(Op op);

class Expr;

/// Shared immutable handle to an expression node.
using ExprPtr = std::shared_ptr<const Expr>;

/// One immutable IR node.
///
/// Invariants: children_ arity matches op (binary ops have 2, unary 1,
/// Rotate 1 plus a step, Vec >= 1, leaves 0); hash_ and numNodes_ are
/// consistent with the subtree. Use the free factory functions below —
/// the constructor is private to enforce the invariants.
class Expr : public std::enable_shared_from_this<Expr>
{
  public:
    Op op() const { return op_; }
    const std::vector<ExprPtr>& children() const { return children_; }
    std::size_t arity() const { return children_.size(); }
    const ExprPtr& child(std::size_t i) const { return children_[i]; }

    /// Variable name; only meaningful for Var/PlainVar.
    const std::string& name() const { return name_; }

    /// Constant value; only meaningful for Const.
    std::int64_t value() const { return value_; }

    /// Rotation step; only meaningful for Rotate. Positive = left.
    int step() const { return step_; }

    /// Structural hash over (op, name, value, step, child hashes).
    std::size_t hash() const { return hash_; }

    /// Number of nodes in this subtree (including this node).
    int numNodes() const { return numNodes_; }

    /// Maximum tree height (leaf = 1).
    int height() const { return height_; }

    /// True if the subtree references no ciphertext variable, i.e. the
    /// whole value is known to the (untrusted) evaluator in plaintext.
    bool isPlain() const { return isPlain_; }

    /// S-expression rendering, e.g. "(+ a (* b 2))".
    std::string toString() const;

    friend ExprPtr makeNode(Op op, std::vector<ExprPtr> children,
                            std::string name, std::int64_t value, int step);

  private:
    Expr() = default;

    Op op_ = Op::Const;
    std::vector<ExprPtr> children_;
    std::string name_;
    std::int64_t value_ = 0;
    int step_ = 0;
    std::size_t hash_ = 0;
    int numNodes_ = 1;
    int height_ = 1;
    bool isPlain_ = true;
};

/// \name Factory functions
/// The only way to create nodes; they compute hashes/metadata eagerly.
/// @{

/// Low-level factory; prefer the typed helpers below.
ExprPtr makeNode(Op op, std::vector<ExprPtr> children, std::string name,
                 std::int64_t value, int step);

ExprPtr var(std::string name);      ///< Ciphertext input.
ExprPtr plainVar(std::string name); ///< Plaintext input.
ExprPtr constant(std::int64_t v);   ///< Integer literal.

ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr neg(ExprPtr a);

/// Cyclic left rotation by \p step slots ("<<" in the DSL). Negative steps
/// rotate right.
ExprPtr rotate(ExprPtr v, int step);

ExprPtr vec(std::vector<ExprPtr> elements);
ExprPtr vecAdd(ExprPtr a, ExprPtr b);
ExprPtr vecSub(ExprPtr a, ExprPtr b);
ExprPtr vecMul(ExprPtr a, ExprPtr b);
ExprPtr vecNeg(ExprPtr a);
/// @}

/// Deep structural equality (hash-accelerated).
bool equal(const ExprPtr& a, const ExprPtr& b);

/// 128-bit content fingerprint of a subtree.
///
/// Unlike Expr::hash() — a fast 64-bit structural hash meant for hash
/// tables, where collisions are handled by a deep-equality check — the
/// fingerprint mixes every node field through two independent 64-bit
/// mixers, so it can stand alone as a content-addressed cache key
/// (service::CompileCache): two programs with equal fingerprints are,
/// for all practical purposes, structurally identical.
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool
    operator==(const Fingerprint& a, const Fingerprint& b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }
    friend bool
    operator!=(const Fingerprint& a, const Fingerprint& b)
    {
        return !(a == b);
    }
};

/// Compute the content fingerprint of \p root. Deterministic across
/// processes and runs (no pointer or ASLR dependence).
Fingerprint fingerprint(const ExprPtr& root);

/// Rebuild \p root with the subtree at pre-order index \p index replaced by
/// \p replacement. Index 0 is the root itself. Shared structure outside the
/// replaced path is reused.
ExprPtr replaceAt(const ExprPtr& root, int index, const ExprPtr& replacement);

/// Fetch the subtree at pre-order index \p index (0 = root).
ExprPtr subtreeAt(const ExprPtr& root, int index);

/// Replace *every* structurally identical occurrence of \p target inside
/// \p root with \p replacement (DAG-style rewriting: the compiler treats
/// identical subtrees as one shared node, so a rewrite applies to the
/// shared node, not a single syntactic occurrence).
ExprPtr replaceAll(const ExprPtr& root, const ExprPtr& target,
                   const ExprPtr& replacement);

/// Pre-order visit of every node; callback receives (node, preorder index).
void forEachNode(const ExprPtr& root,
                 const std::function<void(const ExprPtr&, int)>& fn);

} // namespace chehab::ir
