#include "baselines/coyote_sim.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "compiler/passes.h"
#include "ir/analysis.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace chehab::baselines {

using ir::ExprPtr;
using ir::Op;

namespace {

/// One scalar compute node extracted from the DAG.
struct DagNode
{
    ExprPtr expr;
    Op op = Op::Add;
    int level = 0;
    /// Operand references: either another compute node (id >= 0) or a
    /// leaf/plain expression (id < 0, expr in `leaf`).
    struct Operand
    {
        int node_id = -1;
        ExprPtr leaf;
    };
    std::vector<Operand> operands;
    int pack = -1;
    int lane = -1;
};

/// Collects unique non-plain compute nodes bottom-up.
class DagBuilder
{
  public:
    /// Returns the node id for expr, or -1 if it is a leaf/plain value.
    int
    visit(const ExprPtr& e)
    {
        if (e->isPlain() || e->op() == Op::Var) return -1;
        auto& bucket = memo_[e->hash()];
        for (const auto& [expr, id] : bucket) {
            if (ir::equal(expr, e)) return id;
        }
        CHEHAB_ASSERT(ir::isScalarOp(e->op()),
                      "CoyoteSim expects scalar input circuits");
        DagNode node;
        node.expr = e;
        node.op = e->op();
        int level = 0;
        for (const auto& child : e->children()) {
            DagNode::Operand operand;
            operand.node_id = visit(child);
            if (operand.node_id < 0) {
                operand.leaf = child;
            } else {
                level = std::max(level,
                                 nodes[static_cast<std::size_t>(
                                           operand.node_id)].level + 1);
            }
            node.operands.push_back(std::move(operand));
        }
        node.level = level;
        const int id = static_cast<int>(nodes.size());
        nodes.push_back(std::move(node));
        bucket.emplace_back(e, id);
        return id;
    }

    std::vector<DagNode> nodes;

  private:
    std::unordered_map<std::size_t, std::vector<std::pair<ExprPtr, int>>>
        memo_;
};

/// Build a width-w 0/1 mask vector with ones at the given lanes.
ExprPtr
makeMask(const std::vector<int>& lanes, int width)
{
    std::vector<ExprPtr> slots(static_cast<std::size_t>(width),
                               ir::constant(0));
    for (int lane : lanes) {
        slots[static_cast<std::size_t>(lane)] = ir::constant(1);
    }
    return ir::vec(std::move(slots));
}

Op
vectorOpFor(Op scalar)
{
    switch (scalar) {
      case Op::Add: return Op::VecAdd;
      case Op::Sub: return Op::VecSub;
      case Op::Mul: return Op::VecMul;
      default: return Op::VecNeg;
    }
}

} // namespace

CoyoteResult
coyoteCompile(const ExprPtr& source, const CoyoteConfig& config)
{
    Stopwatch watch;
    CoyoteResult result;

    const ExprPtr canonical = compiler::canonicalize(source);

    // Root slots: the scalar outputs of the program.
    std::vector<ExprPtr> outputs;
    if (canonical->op() == Op::Vec) {
        outputs = canonical->children();
    } else {
        outputs.push_back(canonical);
    }

    DagBuilder dag;
    std::vector<int> output_ids;
    for (const auto& out : outputs) output_ids.push_back(dag.visit(out));

    // Degenerate case: no ciphertext compute at all.
    if (dag.nodes.empty()) {
        result.program = canonical;
        result.compile_seconds = watch.elapsedSeconds();
        return result;
    }

    // ------------------------------------------------------------------
    // Packing: group nodes by (level, op), chunked at max_pack_width.
    // ------------------------------------------------------------------
    std::map<std::pair<int, int>, std::vector<int>> groups;
    for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
        groups[{dag.nodes[i].level, static_cast<int>(dag.nodes[i].op)}]
            .push_back(static_cast<int>(i));
    }
    std::vector<std::vector<int>> packs;
    for (auto& [key, members] : groups) {
        (void)key;
        for (std::size_t begin = 0; begin < members.size();
             begin += static_cast<std::size_t>(config.max_pack_width)) {
            const std::size_t end =
                std::min(begin + static_cast<std::size_t>(
                                     config.max_pack_width),
                         members.size());
            packs.emplace_back(members.begin() +
                                   static_cast<std::ptrdiff_t>(begin),
                               members.begin() +
                                   static_cast<std::ptrdiff_t>(end));
        }
    }
    result.num_packs = static_cast<int>(packs.size());

    // Common vector width: the next power of two covering the widest
    // pack and the output row.
    int width = 1;
    for (const auto& pack : packs) {
        while (width < static_cast<int>(pack.size())) width <<= 1;
    }
    while (width < static_cast<int>(outputs.size())) width <<= 1;

    // ------------------------------------------------------------------
    // Lane assignment "ILP": per pack, search lane permutations that
    // minimize the number of distinct (source pack, shift) alignment
    // classes. The candidate budget is spent across packs; this is the
    // combinatorial phase whose cost grows with circuit size (Fig. 6).
    // ------------------------------------------------------------------
    Rng rng(config.seed);
    auto assign = [&](const std::vector<int>& pack,
                      const std::vector<int>& order) {
        for (std::size_t lane = 0; lane < order.size(); ++lane) {
            dag.nodes[static_cast<std::size_t>(pack[static_cast<std::size_t>(
                          order[lane])])].lane = static_cast<int>(lane);
        }
    };
    auto alignment_cost = [&](const std::vector<int>& pack) {
        // Distinct (source pack, shift) classes over all operand slots.
        std::map<std::pair<int, int>, int> classes;
        for (int node_id : pack) {
            const DagNode& node =
                dag.nodes[static_cast<std::size_t>(node_id)];
            for (const auto& operand : node.operands) {
                if (operand.node_id < 0) continue;
                const DagNode& src =
                    dag.nodes[static_cast<std::size_t>(operand.node_id)];
                if (src.lane < 0) continue; // Not yet assigned.
                ++classes[{src.pack, src.lane - node.lane}];
            }
        }
        int cost = 0;
        for (const auto& [key, count] : classes) {
            (void)count;
            cost += key.second == 0 ? 1 : 3; // Shifts need rot + mask.
        }
        return cost;
    };

    long long budget = config.search_budget;
    for (std::size_t p = 0; p < packs.size(); ++p) {
        auto& pack = packs[p];
        for (int node_id : pack) {
            dag.nodes[static_cast<std::size_t>(node_id)].pack =
                static_cast<int>(p);
        }
        const int lanes = static_cast<int>(pack.size());
        std::vector<int> order(static_cast<std::size_t>(lanes));
        std::iota(order.begin(), order.end(), 0);
        std::vector<int> best_order = order;
        assign(pack, order);
        int best_cost = alignment_cost(pack);
        // Exhaustive permutation search for small packs, randomized
        // search otherwise — both metered against the global budget.
        if (lanes <= 6) {
            std::vector<int> perm = order;
            while (std::next_permutation(perm.begin(), perm.end()) &&
                   budget > 0) {
                --budget;
                ++result.candidates_explored;
                assign(pack, perm);
                const int cost = alignment_cost(pack);
                if (cost < best_cost) {
                    best_cost = cost;
                    best_order = perm;
                }
            }
        } else {
            const long long tries =
                std::min<long long>(budget, 64LL * lanes);
            std::vector<int> perm = order;
            for (long long trial = 0; trial < tries; ++trial) {
                --budget;
                ++result.candidates_explored;
                for (std::size_t i = perm.size(); i > 1; --i) {
                    std::swap(perm[i - 1], perm[rng.pickIndex(i)]);
                }
                assign(pack, perm);
                const int cost = alignment_cost(pack);
                if (cost < best_cost) {
                    best_cost = cost;
                    best_order = perm;
                }
            }
        }
        assign(pack, best_order);
    }

    // ------------------------------------------------------------------
    // Joint refinement ("ILP"): re-search pack lane orders against the
    // *global* alignment cost until the candidate budget is exhausted.
    // The budget grows quadratically with circuit size (branch-and-bound
    // behaviour), which is what makes Coyote compile times climb steeply
    // on larger kernels (Fig. 6) while staying fast on tiny ones.
    // ------------------------------------------------------------------
    auto global_cost = [&]() {
        int cost = 0;
        for (const auto& pack : packs) cost += alignment_cost(pack);
        return cost;
    };
    const long long refinement_budget = std::min<long long>(
        config.search_budget,
        static_cast<long long>(config.refinement_factor) *
            static_cast<long long>(dag.nodes.size()));
    long long refined = 0;
    int best_global = global_cost();
    while (refined < refinement_budget) {
        const std::size_t p = rng.pickIndex(packs.size());
        auto& pack = packs[p];
        if (pack.size() < 2) {
            ++refined;
            continue;
        }
        // Save current lanes, try a random transposition, keep if the
        // global cost does not regress.
        const std::size_t i = rng.pickIndex(pack.size());
        const std::size_t j = rng.pickIndex(pack.size());
        DagNode& a = dag.nodes[static_cast<std::size_t>(pack[i])];
        DagNode& b = dag.nodes[static_cast<std::size_t>(pack[j])];
        std::swap(a.lane, b.lane);
        const int cost = global_cost();
        ++result.candidates_explored;
        ++refined;
        if (cost <= best_global) {
            best_global = cost;
        } else {
            std::swap(a.lane, b.lane); // Revert.
        }
    }

    // ------------------------------------------------------------------
    // Emission: one vector op per pack; operand vectors are assembled
    // from leaf packs plus rotate+mask contributions from earlier packs.
    // ------------------------------------------------------------------
    std::vector<ExprPtr> pack_exprs(packs.size());
    auto operand_vector = [&](const std::vector<int>& pack,
                              std::size_t operand_index) {
        // Leaf slots (identity padding elsewhere so Mul packs stay sane).
        std::vector<ExprPtr> leaf_slots(static_cast<std::size_t>(width),
                                        ir::constant(0));
        bool has_leaves = false;
        std::map<std::pair<int, int>, std::vector<int>> contributions;
        for (int node_id : pack) {
            const DagNode& node =
                dag.nodes[static_cast<std::size_t>(node_id)];
            if (operand_index >= node.operands.size()) continue;
            const auto& operand = node.operands[operand_index];
            if (operand.node_id < 0) {
                leaf_slots[static_cast<std::size_t>(node.lane)] =
                    operand.leaf;
                has_leaves = true;
            } else {
                const DagNode& src =
                    dag.nodes[static_cast<std::size_t>(operand.node_id)];
                contributions[{src.pack, src.lane - node.lane}].push_back(
                    node.lane);
            }
        }

        ExprPtr acc;
        if (has_leaves) acc = ir::vec(leaf_slots);
        for (const auto& [key, lanes] : contributions) {
            const auto& [src_pack, shift] = key;
            ExprPtr value = pack_exprs[static_cast<std::size_t>(src_pack)];
            if (shift != 0) {
                value = ir::rotate(std::move(value), shift);
            }
            // Mask unless this contribution is the sole source of every
            // lane (the perfectly aligned case).
            const bool sole =
                !has_leaves && contributions.size() == 1 &&
                static_cast<int>(lanes.size()) ==
                    static_cast<int>(pack.size());
            if (!sole) {
                value = ir::vecMul(std::move(value),
                                   makeMask(lanes, width));
            }
            acc = acc ? ir::vecAdd(std::move(acc), std::move(value))
                      : std::move(value);
        }
        CHEHAB_ASSERT(acc != nullptr, "empty operand vector");
        return acc;
    };

    for (std::size_t p = 0; p < packs.size(); ++p) {
        const DagNode& first =
            dag.nodes[static_cast<std::size_t>(packs[p][0])];
        if (first.op == Op::Neg) {
            pack_exprs[p] = ir::vecNeg(operand_vector(packs[p], 0));
        } else {
            pack_exprs[p] = ir::makeNode(vectorOpFor(first.op),
                                         {operand_vector(packs[p], 0),
                                          operand_vector(packs[p], 1)},
                                         {}, 0, 0);
        }
    }

    // ------------------------------------------------------------------
    // Output assembly: move each output's (pack, lane) value to its slot.
    // ------------------------------------------------------------------
    std::vector<ExprPtr> out_leaf_slots(static_cast<std::size_t>(width),
                                        ir::constant(0));
    bool out_has_leaves = false;
    std::map<std::pair<int, int>, std::vector<int>> out_contribs;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const int id = output_ids[i];
        if (id < 0) {
            out_leaf_slots[i] = outputs[i];
            out_has_leaves = true;
        } else {
            const DagNode& node = dag.nodes[static_cast<std::size_t>(id)];
            out_contribs[{node.pack, node.lane - static_cast<int>(i)}]
                .push_back(static_cast<int>(i));
        }
    }
    ExprPtr final_expr;
    if (out_has_leaves) final_expr = ir::vec(out_leaf_slots);
    for (const auto& [key, lanes] : out_contribs) {
        const auto& [src_pack, shift] = key;
        ExprPtr value = pack_exprs[static_cast<std::size_t>(src_pack)];
        if (shift != 0) value = ir::rotate(std::move(value), shift);
        const bool sole = !out_has_leaves && out_contribs.size() == 1;
        if (!sole) {
            value = ir::vecMul(std::move(value), makeMask(lanes, width));
        }
        final_expr = final_expr
                         ? ir::vecAdd(std::move(final_expr),
                                      std::move(value))
                         : std::move(value);
    }
    CHEHAB_ASSERT(final_expr != nullptr, "no output produced");

    result.program = std::move(final_expr);
    result.compile_seconds = watch.elapsedSeconds();
    return result;
}

} // namespace chehab::baselines
