/// \file
/// CoyoteSim: a reimplementation of the Coyote vectorizing compiler
/// (Malik et al., ASPLOS 2023) on the CHEHAB IR, used as the comparison
/// baseline throughout the evaluation (Figs. 5-7, Table 6).
///
/// Coyote frames vectorization as combinatorial search: it levelizes the
/// scalar circuit, packs isomorphic operations at each level into wide
/// lanes, and solves a lane-assignment problem (ILP in the original) to
/// minimize the rotations and masks needed to align operands. CoyoteSim
/// reproduces that architecture: per-pack lane-permutation search under a
/// global candidate budget (the "ILP"), then rotation + 0/1-mask
/// materialization for every (source pack, lane shift) class. Its output
/// is ordinary CHEHAB IR, so it flows through the same scheduler,
/// runtime, and metrics as CHEHAB RL — and exhibits Coyote's signature
/// behaviours: correct circuits with many rotations and ct-pt (mask)
/// multiplications, and compile times that grow steeply with circuit
/// size.
#pragma once

#include "ir/cost_model.h"
#include "ir/expr.h"

namespace chehab::baselines {

/// Search configuration.
struct CoyoteConfig
{
    /// Hard cap on lane-assignment candidates the "ILP" may evaluate.
    long long search_budget = 5000000;
    /// The solver evaluates refinement_factor * nodes joint candidates,
    /// each scored with a global O(nodes) alignment cost — so total
    /// search work grows quadratically with circuit size, the
    /// branch-and-bound behaviour Fig. 6 measures. Capped by
    /// search_budget.
    int refinement_factor = 1000;
    /// Maximum lanes per pack (wider groups are chunked).
    int max_pack_width = 32;
    std::uint64_t seed = 20230213;
};

/// Compilation outcome.
struct CoyoteResult
{
    ir::ExprPtr program;      ///< Vectorized IR.
    double compile_seconds = 0.0;
    long long candidates_explored = 0;
    int num_packs = 0;
};

/// Vectorize \p source (a scalar program, optionally a Vec of scalar
/// outputs) Coyote-style.
CoyoteResult coyoteCompile(const ir::ExprPtr& source,
                           const CoyoteConfig& config = {});

} // namespace chehab::baselines
