/// \file
/// Quickstart: write an FHE program in the CHEHAB DSL, optimize it with
/// the term rewriting system, and execute the compiled circuit on the
/// SealLite homomorphic backend.
///
///   $ ./examples/quickstart
#include <cstdio>

#include "compiler/codegen.h"
#include "compiler/dsl.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "trs/ruleset.h"

int
main()
{
    using namespace chehab;

    // 1. Stage a program: an encrypted dot product of two 8-vectors.
    //    Inputs are declared, computed with ordinary C++ operators, and
    //    marked as outputs (§4.1 of the paper).
    compiler::DslProgram program;
    const compiler::Ciphertext a = compiler::Ciphertext::inputVector("a", 8);
    const compiler::Ciphertext b = compiler::Ciphertext::inputVector("b", 8);
    compiler::reduce_add(a * b).set_output();
    const ir::ExprPtr source = program.build();

    std::printf("source IR (%d nodes, cost %.0f):\n  %s\n\n",
                source->numNodes(), ir::cost(source),
                source->toString().c_str());

    // 2. Optimize with the CHEHAB term rewriting system (greedy mode; see
    //    examples/private_ml.cpp for the RL-guided mode).
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const compiler::Compiled compiled =
        compiler::compileGreedy(ruleset, source);
    std::printf("optimized IR (cost %.0f -> %.0f, %d rewrites):\n  %s\n\n",
                compiled.stats.initial_cost, compiled.stats.final_cost,
                compiled.stats.rewrite_steps,
                compiled.optimized->toString().c_str());

    const compiler::FheProgram::Counts counts = compiled.program.counts();
    std::printf("scheduled circuit: %d ct-ct mul, %d ct-pt mul, "
                "%d rotations, %d adds\n\n",
                counts.ct_ct_mul, counts.ct_pt_mul, counts.rotations,
                counts.ct_add);

    // 3. Execute homomorphically.
    compiler::FheRuntime runtime;
    ir::Env inputs;
    for (int i = 0; i < 8; ++i) {
        inputs["a_" + std::to_string(i)] = i + 1; // 1..8
        inputs["b_" + std::to_string(i)] = 10;
    }
    const compiler::RunResult run = runtime.run(compiled.program, inputs);
    std::printf("homomorphic result: %lld (expected 360)\n",
                static_cast<long long>(run.output[0]));
    std::printf("noise budget: %d bits fresh, %d bits left (%d consumed)\n",
                run.fresh_noise_budget, run.final_noise_budget,
                run.consumed_noise);
    std::printf("server-side evaluation took %.1f ms\n\n",
                run.exec_seconds * 1e3);

    // 4. Emit the SEAL-targeting C++ the compiler would ship.
    std::printf("generated SEAL code:\n%s\n",
                compiler::generateSealCpp(compiled.program,
                                          "dot_product_8").c_str());
    return run.output[0] == 360 ? 0 : 1;
}
