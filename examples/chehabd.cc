/// \file
/// chehabd — batch compile-service driver.
///
/// Reads kernel sources (s-expression IR, one kernel per file), runs
/// the whole batch through the concurrent CompileService, and reports
/// per-request statistics as a table, CSV, or JSON.
///
///   $ ./chehabd kernels/dot8.ir kernels/blur.ir
///   $ ./chehabd --suite 8 --workers 4 --repeat 10 --csv stats.csv
///   $ echo "(+ (* a b) c)" | ./chehabd -
///
/// Options:
///   --workers N     worker threads (default 4)
///   --mode M        noopt | greedy (default) | rl
///   --max-steps N   greedy rewrite budget (default 75)
///   --repeat R      submit the batch R times; repeats exercise the
///                   content-addressed cache (default 1)
///   --suite N       add the built-in Porcupine suite at size N
///   --train-steps N PPO budget for --mode rl (default 256)
///   --csv PATH      write per-request stats CSV
///   --json PATH     write per-request stats JSON
///   --dump          print each distinct kernel's instruction stream
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "dataset/dataset.h"
#include "dataset/motif_gen.h"
#include "ir/parser.h"
#include "rl/agent.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

struct Options
{
    int workers = 4;
    service::OptMode mode = service::OptMode::Greedy;
    int max_steps = 75;
    int repeat = 1;
    int suite_n = 0;
    int train_steps = 256;
    std::string csv_path;
    std::string json_path;
    bool dump = false;
    std::vector<std::string> files;
};

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workers N] [--mode noopt|greedy|rl] "
                 "[--max-steps N]\n"
                 "       [--repeat R] [--suite N] [--train-steps N] "
                 "[--csv PATH]\n"
                 "       [--json PATH] [--dump] [kernel-file | -] ...\n",
                 argv0);
}

bool
parseArgs(int argc, char** argv, Options& options)
{
    auto intArg = [&](int& i, int& out) {
        if (i + 1 >= argc) return false;
        out = std::atoi(argv[++i]);
        return true;
    };
    auto strArg = [&](int& i, std::string& out) {
        if (i + 1 >= argc) return false;
        out = argv[++i];
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers") {
            if (!intArg(i, options.workers)) return false;
        } else if (arg == "--mode") {
            std::string mode;
            if (!strArg(i, mode)) return false;
            if (mode == "noopt") {
                options.mode = service::OptMode::NoOpt;
            } else if (mode == "greedy") {
                options.mode = service::OptMode::Greedy;
            } else if (mode == "rl") {
                options.mode = service::OptMode::Rl;
            } else {
                std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
                return false;
            }
        } else if (arg == "--max-steps") {
            if (!intArg(i, options.max_steps)) return false;
        } else if (arg == "--repeat") {
            if (!intArg(i, options.repeat)) return false;
        } else if (arg == "--suite") {
            if (!intArg(i, options.suite_n)) return false;
        } else if (arg == "--train-steps") {
            if (!intArg(i, options.train_steps)) return false;
        } else if (arg == "--csv") {
            if (!strArg(i, options.csv_path)) return false;
        } else if (arg == "--json") {
            if (!strArg(i, options.json_path)) return false;
        } else if (arg == "--dump") {
            options.dump = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            options.files.push_back(arg);
        }
    }
    return true;
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage(argv[0]);
        return 2;
    }
    if (options.files.empty() && options.suite_n == 0) {
        usage(argv[0]);
        std::fprintf(stderr, "\nno kernels given; try --suite 8\n");
        return 2;
    }

    // ---- assemble the batch -------------------------------------------
    std::vector<service::CompileRequest> batch;
    for (const std::string& path : options.files) {
        std::string text;
        if (path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            text = buffer.str();
        } else {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "chehabd: cannot read %s\n",
                             path.c_str());
                return 1;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
        service::CompileRequest request;
        request.name = path == "-" ? "<stdin>" : path;
        try {
            request.source = ir::parse(text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "chehabd: %s: %s\n", request.name.c_str(),
                         e.what());
            return 1;
        }
        request.mode = options.mode;
        request.max_steps = options.max_steps;
        batch.push_back(std::move(request));
    }
    if (options.suite_n > 0) {
        for (benchsuite::Kernel& kernel :
             benchsuite::porcupineSuite(options.suite_n)) {
            service::CompileRequest request;
            request.name = kernel.name;
            request.source = kernel.program;
            request.mode = options.mode;
            request.max_steps = options.max_steps;
            batch.push_back(std::move(request));
        }
    }
    {
        std::vector<service::CompileRequest> repeated;
        repeated.reserve(batch.size() *
                         static_cast<std::size_t>(options.repeat));
        for (int r = 0; r < options.repeat; ++r) {
            for (const service::CompileRequest& request : batch) {
                repeated.push_back(request);
            }
        }
        batch = std::move(repeated);
    }

    // ---- optional RL agent --------------------------------------------
    std::unique_ptr<rl::RlAgent> agent;
    service::ServiceConfig config;
    config.num_workers = options.workers;
    trs::Ruleset ruleset = trs::buildChehabRuleset();
    if (options.mode == service::OptMode::Rl) {
        std::fprintf(stderr,
                     "chehabd: training RL agent (%d PPO steps)...\n",
                     options.train_steps);
        rl::AgentConfig agent_config;
        agent_config.ppo.total_timesteps = options.train_steps;
        agent_config.ppo.steps_per_update = 128;
        agent_config.compile_rollouts = 2;
        agent = std::make_unique<rl::RlAgent>(ruleset, agent_config);
        dataset::MotifSynthesizer synth(1234, {});
        agent->train(dataset::buildDataset(
            [&synth] { return synth.generate(); }, 128, {}));
        config.agent = agent.get();
    }

    // ---- run ----------------------------------------------------------
    service::CompileService compile_service(config);
    const Stopwatch wall;
    std::vector<service::CompileResponse> responses =
        compile_service.compileBatch(std::move(batch));
    const double wall_seconds = wall.elapsedSeconds();

    // ---- report -------------------------------------------------------
    std::printf("%-24s %-7s %-3s %-5s %9s %9s %7s %6s\n", "kernel", "mode",
                "ok", "src", "queue_ms", "comp_ms", "cost", "worker");
    int failures = 0;
    for (const service::CompileResponse& response : responses) {
        if (!response.ok) ++failures;
        const char* provenance = response.cache_hit
                                     ? "hit"
                                     : (response.deduplicated ? "join"
                                                              : "miss");
        std::printf("%-24s %-7s %-3s %-5s %9.2f %9.2f %7.0f %6d\n",
                    response.name.c_str(),
                    service::optModeName(options.mode),
                    response.ok ? "y" : "N", provenance,
                    response.queue_seconds * 1e3,
                    response.compile_seconds * 1e3,
                    response.estimated_cost, response.worker_id);
        if (!response.ok) {
            std::printf("  error: %s\n", response.error.c_str());
        }
    }

    const service::ServiceStats stats = compile_service.stats();
    std::printf("\n%zu requests in %.3f s (%.1f jobs/s) on %d workers: "
                "%llu compiled, %llu cache hits, %llu in-flight joins, "
                "%llu failed\n",
                responses.size(), wall_seconds,
                wall_seconds > 0 ? static_cast<double>(responses.size()) /
                                       wall_seconds
                                 : 0.0,
                compile_service.numWorkers(),
                static_cast<unsigned long long>(stats.compiled),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.inflight_joins),
                static_cast<unsigned long long>(stats.failed));

    if (options.dump) {
        std::map<std::string, const service::CompileResponse*> distinct;
        for (const service::CompileResponse& response : responses) {
            if (response.ok) distinct.emplace(response.name, &response);
        }
        for (const auto& [name, response] : distinct) {
            std::printf("\n-- %s --\n%s", name.c_str(),
                        response->compiled.program.disassemble().c_str());
        }
    }

    if (!options.csv_path.empty()) {
        CsvWriter csv(options.csv_path,
                      {"kernel", "mode", "ok", "cache_hit", "deduplicated",
                       "queue_s", "compile_s", "estimated_cost", "worker",
                       "instrs", "final_cost", "mult_depth", "error"});
        for (const service::CompileResponse& response : responses) {
            csv.writeRow(response.name, service::optModeName(options.mode),
                         response.ok ? 1 : 0, response.cache_hit ? 1 : 0,
                         response.deduplicated ? 1 : 0,
                         response.queue_seconds, response.compile_seconds,
                         response.estimated_cost, response.worker_id,
                         response.compiled.program.instrs.size(),
                         response.compiled.stats.final_cost,
                         response.compiled.stats.mult_depth,
                         response.error);
        }
        std::printf("wrote %s\n", options.csv_path.c_str());
    }

    if (!options.json_path.empty()) {
        std::ofstream json(options.json_path);
        json << "[\n";
        for (std::size_t i = 0; i < responses.size(); ++i) {
            const service::CompileResponse& response = responses[i];
            json << "  {\"kernel\": \"" << jsonEscape(response.name)
                 << "\", \"mode\": \""
                 << service::optModeName(options.mode)
                 << "\", \"ok\": " << (response.ok ? "true" : "false")
                 << ", \"cache_hit\": "
                 << (response.cache_hit ? "true" : "false")
                 << ", \"deduplicated\": "
                 << (response.deduplicated ? "true" : "false")
                 << ", \"queue_s\": " << response.queue_seconds
                 << ", \"compile_s\": " << response.compile_seconds
                 << ", \"estimated_cost\": " << response.estimated_cost
                 << ", \"worker\": " << response.worker_id
                 << ", \"error\": \"" << jsonEscape(response.error)
                 << "\"}" << (i + 1 < responses.size() ? "," : "") << "\n";
        }
        json << "]\n";
        std::printf("wrote %s\n", options.json_path.c_str());
    }

    return failures == 0 ? 0 : 1;
}
