/// \file
/// chehabd — batch compile(-and-run) service driver.
///
/// Reads kernel sources (s-expression IR, one kernel per file), runs
/// the whole batch through the concurrent CompileService, and reports
/// per-request statistics as a table, CSV, or JSON. With --run each
/// kernel is additionally executed on a pooled SealLite runtime with
/// deterministic synthetic inputs, and the report gains the
/// Table-6-style noise/latency columns (exec time, fresh/final noise
/// budget, consumed noise, rotation keys).
///
///   $ ./chehabd kernels/dot8.ir kernels/blur.ir
///   $ ./chehabd --suite 8 --workers 4 --repeat 10 --csv stats.csv
///   $ ./chehabd --suite 8 --run --key-budget 6 --json run.json
///   $ echo "(+ (* a b) c)" | ./chehabd -
///
/// Options:
///   --workers N     worker threads in total (default 4); with
///                   --shards S each shard gets max(1, N/S) workers
///   --shards N      run N independent service shards behind the
///                   ShardRouter (default 1): compile traffic routes by
///                   cache affinity (consistent hashing on the cache
///                   key), run traffic by predicted shard load with an
///                   affinity preference. Outputs are bit-identical at
///                   any shard count; --stats-json gains per-shard and
///                   router counters, --trace-out shows one "shard N"
///                   track group per shard
///   --mode M        noopt | greedy (default) | rl
///   --max-steps N   greedy rewrite budget (default 75)
///   --repeat R      submit the batch R times; repeats exercise the
///                   content-addressed caches (default 1)
///   --suite N       add the built-in Porcupine suite at size N
///   --train-steps N PPO budget for --mode rl (default 256)
///   --cache-cap N   LRU capacity of the kernel/run caches (default
///                   unbounded)
///   --run           execute each kernel on SealLite after compiling
///   --key-budget N  rotation-key budget β for --run (default 0 = one
///                   key per distinct step)
///   --mod-switch 0|1 append the mid-circuit modulus-switching pass to
///                   the pipeline (default 0). With --run the report
///                   gains a `drops` column (modulus drops the noise
///                   gate actually took) and a footer line with the
///                   total drops and the minimum post-switch noise
///                   budget. Decoded outputs are unchanged either way.
///   --poly-n N      SealLite polynomial degree for --run (default 256,
///                   toy-sized for speed; slots = N/2)
///   --batch-lanes N slot-batching lane cap for --run: pack up to N
///                   coalescible requests into one ciphertext row
///                   (default 1 = off, 0 = as many as the row allows)
///   --batch-window-us X  how long a pending run waits for row-mates
///                   before a partial batch flushes (default 500;
///                   fractional values allowed, e.g. 62.5)
///   --adaptive-window N  1 (default) derives each group's flush
///                   deadline from the load model's arrival-rate
///                   estimate (ceiling-bounded by --batch-window-us);
///                   0 keeps the fixed window
///   --cross-kernel  let runs of *different* kernels share a ciphertext
///                   row (program concatenation on disjoint lanes; needs
///                   --batch-lanes != 1)
///   --distinct-inputs    give every --repeat copy its own synthetic
///                   inputs, so repeats become coalescible slot-batch
///                   lanes instead of run-cache hits
///   --csv PATH      write per-request stats CSV
///   --json PATH     write per-request stats JSON
///   --dump          print each distinct kernel's instruction stream
///                   and its per-pass compile-time breakdown
///   --telemetry 0|1 record request-lifecycle spans and per-phase
///                   latency histograms (default: on exactly when
///                   --trace-out or --stats-json is given)
///   --trace-out PATH  write the recorded spans as Chrome trace-event
///                   JSON — load in chrome://tracing or Perfetto to see
///                   each request's enqueue -> dispatch -> compile/
///                   execute span tree per worker track
///   --stats-json PATH write one service-wide snapshot as JSON: config,
///                   throughput, every service counter, and per-phase
///                   latency percentiles (qwait_p50/p99, exec_p50/p99,
///                   window_wait_p99, ...)
///   --cache-dir PATH  on-disk persistence root (service/persist.h):
///                   compiled artifacts are stored content-addressed
///                   and reloaded on cache misses — a second chehabd
///                   run with the same --cache-dir warm-starts instead
///                   of recompiling (persist_hits in the footer and
///                   stats-json). Crash-safe and shareable between
///                   concurrent processes; corrupt/truncated/
///                   version-mismatched entries are skipped and
///                   counted, never trusted
///   --persist-load-model 0|1  with --cache-dir, also snapshot the
///                   load model's measured EWMA profiles at exit and
///                   reload them as scheduling priors at boot
///                   (default 1)
///   --hot-factor X  run traffic abandons its affinity shard when that
///                   shard's predicted load exceeds X times the
///                   least-loaded shard's (default 2.0; needs
///                   --shards > 1)
///   --hot-slack-ms X  absolute slack added to the hot-shard test so
///                   millisecond-scale loads keep cache affinity
///                   (default 10)
///
/// With --run and --batch-lanes > 1 the report gains packed-vs-solo
/// latency columns: `lanes` (how many requests shared the executed
/// row) and `amort_ms` (the shared execution wall time divided by the
/// lane count — the per-request cost packing actually achieved, to
/// compare against the solo `exec_ms`).
///
/// Every report also carries the load model's predicted-vs-measured
/// pair (`pred_ms`/`meas_ms` in the table, `pred_s`/`meas_s` in
/// CSV/JSON): the predicted wall time the scheduler dispatched on
/// against the wall time actually measured (compile time without
/// --run, execution time with it), so the model's cost error is
/// visible per request and summarized in the footer.
///
/// With telemetry on the footer gains a per-phase latency table
/// (enqueue, queue_wait, compile, execute, setup, evaluate, decode,
/// window_wait — count plus p50/p90/p99/max ms), and the CSV/JSON
/// reports gain the per-request window_s/setup_s/decode_s phase
/// columns plus the batch-wide percentile columns. Telemetry only
/// reads clocks — it never changes scheduling decisions or outputs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "dataset/dataset.h"
#include "fhe/ntt.h"
#include "dataset/motif_gen.h"
#include "ir/parser.h"
#include "rl/agent.h"
#include "service/compile_service.h"
#include "service/shard_router.h"
#include "support/csv.h"
#include "support/parse_int.h"
#include "support/stopwatch.h"
#include "support/telemetry.h"

namespace {

using namespace chehab;

struct Options
{
    int workers = 4;
    int shards = 1;
    service::OptMode mode = service::OptMode::Greedy;
    int max_steps = 75;
    int repeat = 1;
    int suite_n = 0;
    int train_steps = 256;
    int cache_cap = 0;
    bool run = false;
    int key_budget = 0;
    int mod_switch = 0;
    /// -1 = auto (use AVX2 NTT kernels when compiled in and the CPU
    /// supports them); 0/1 force the dispatch off/on (forcing on is
    /// clamped to supported — see fhe::setSimdEnabled).
    int simd = -1;
    int poly_n = 256;
    int batch_lanes = 1;
    double batch_window_us = 500.0;
    int adaptive_window = 1;
    bool cross_kernel = false;
    bool distinct_inputs = false;
    std::string csv_path;
    std::string json_path;
    bool dump = false;
    /// -1 = auto: telemetry turns on exactly when an exporter below
    /// wants its output.
    int telemetry = -1;
    std::string trace_path;
    std::string stats_json_path;
    /// Empty = no persistence tier; set = artifacts (and, with
    /// persist_load_model, load-model snapshots) survive restarts.
    std::string cache_dir;
    int persist_load_model = 1;
    double hot_factor = 2.0;
    double hot_slack_ms = 10.0;
    std::vector<std::string> files;
};

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workers N] [--shards N] "
                 "[--mode noopt|greedy|rl] [--max-steps N]\n"
                 "       [--repeat R] [--suite N] [--train-steps N] "
                 "[--cache-cap N]\n"
                 "       [--run] [--key-budget N] [--mod-switch 0|1] "
                 "[--simd 0|1] [--poly-n N] [--batch-lanes N]\n"
                 "       [--batch-window-us N] [--adaptive-window 0|1] "
                 "[--cross-kernel] [--distinct-inputs]\n"
                 "       [--csv PATH] [--json PATH] [--dump] "
                 "[--telemetry 0|1]\n"
                 "       [--trace-out PATH] [--stats-json PATH] "
                 "[--cache-dir PATH]\n"
                 "       [--persist-load-model 0|1] [--hot-factor X] "
                 "[--hot-slack-ms X]\n"
                 "       [kernel-file | -] ...\n",
                 argv0);
}

bool
parseArgs(int argc, char** argv, Options& options)
{
    // Checked parse: "--workers abc" must fail loudly, not silently
    // become 0 workers (std::atoi's behavior).
    auto intArg = [&](int& i, int& out) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "chehabd: %s needs a value\n", argv[i]);
            return false;
        }
        if (!parseInt(argv[i + 1], out)) {
            std::fprintf(stderr,
                         "chehabd: %s expects an integer, got '%s'\n",
                         argv[i], argv[i + 1]);
            return false;
        }
        ++i;
        return true;
    };
    // Same reject-garbage contract for floating-point flags: "62.5" is
    // fine, "abc", "1.5x" and "1e999" all fail loudly.
    auto doubleArg = [&](int& i, double& out) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "chehabd: %s needs a value\n", argv[i]);
            return false;
        }
        if (!parseDouble(argv[i + 1], out)) {
            std::fprintf(stderr,
                         "chehabd: %s expects a number, got '%s'\n",
                         argv[i], argv[i + 1]);
            return false;
        }
        ++i;
        return true;
    };
    auto strArg = [&](int& i, std::string& out) {
        if (i + 1 >= argc) return false;
        out = argv[++i];
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers") {
            if (!intArg(i, options.workers)) return false;
        } else if (arg == "--shards") {
            if (!intArg(i, options.shards)) return false;
        } else if (arg == "--mode") {
            std::string mode;
            if (!strArg(i, mode)) return false;
            if (mode == "noopt") {
                options.mode = service::OptMode::NoOpt;
            } else if (mode == "greedy") {
                options.mode = service::OptMode::Greedy;
            } else if (mode == "rl") {
                options.mode = service::OptMode::Rl;
            } else {
                std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
                return false;
            }
        } else if (arg == "--max-steps") {
            if (!intArg(i, options.max_steps)) return false;
        } else if (arg == "--repeat") {
            if (!intArg(i, options.repeat)) return false;
        } else if (arg == "--suite") {
            if (!intArg(i, options.suite_n)) return false;
        } else if (arg == "--train-steps") {
            if (!intArg(i, options.train_steps)) return false;
        } else if (arg == "--cache-cap") {
            if (!intArg(i, options.cache_cap)) return false;
        } else if (arg == "--run") {
            options.run = true;
        } else if (arg == "--key-budget") {
            if (!intArg(i, options.key_budget)) return false;
        } else if (arg == "--mod-switch") {
            if (!intArg(i, options.mod_switch)) return false;
        } else if (arg == "--simd") {
            if (!intArg(i, options.simd)) return false;
        } else if (arg == "--poly-n") {
            if (!intArg(i, options.poly_n)) return false;
        } else if (arg == "--batch-lanes") {
            if (!intArg(i, options.batch_lanes)) return false;
        } else if (arg == "--batch-window-us") {
            if (!doubleArg(i, options.batch_window_us)) return false;
        } else if (arg == "--adaptive-window") {
            if (!intArg(i, options.adaptive_window)) return false;
        } else if (arg == "--cross-kernel") {
            options.cross_kernel = true;
        } else if (arg == "--distinct-inputs") {
            options.distinct_inputs = true;
        } else if (arg == "--csv") {
            if (!strArg(i, options.csv_path)) return false;
        } else if (arg == "--json") {
            if (!strArg(i, options.json_path)) return false;
        } else if (arg == "--dump") {
            options.dump = true;
        } else if (arg == "--telemetry") {
            if (!intArg(i, options.telemetry)) return false;
        } else if (arg == "--trace-out") {
            if (!strArg(i, options.trace_path)) return false;
        } else if (arg == "--stats-json") {
            if (!strArg(i, options.stats_json_path)) return false;
        } else if (arg == "--cache-dir") {
            if (!strArg(i, options.cache_dir)) return false;
        } else if (arg == "--persist-load-model") {
            if (!intArg(i, options.persist_load_model)) return false;
        } else if (arg == "--hot-factor") {
            if (!doubleArg(i, options.hot_factor)) return false;
        } else if (arg == "--hot-slack-ms") {
            if (!doubleArg(i, options.hot_slack_ms)) return false;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            options.files.push_back(arg);
        }
    }
    return true;
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct NamedKernel
{
    std::string name;
    ir::ExprPtr source;
};

/// --stats-json: one service-wide snapshot — run configuration,
/// throughput, every ServiceStats counter (merged across shards), the
/// router's routing decisions, a per-shard counter breakdown, and the
/// per-phase latency histograms. The flat qwait_p50/exec_p99-style
/// keys at the end duplicate the nested phase table for one-liner
/// extraction (jq, spreadsheet joins); the CSV carries the same
/// columns.
void
writeStatsJson(std::ostream& out, const Options& options,
               const service::ShardedService& sharded,
               const service::ServiceStats& stats, std::size_t requests,
               int failures, double wall_seconds,
               const std::string& invariant_error)
{
    const telemetry::TelemetrySnapshot& tel = stats.telemetry;
    auto phaseJson = [&](telemetry::Phase phase) {
        const telemetry::LatencyHistogram& hist = tel.phase(phase);
        out << "\"" << telemetry::phaseName(phase)
            << "\": {\"count\": " << hist.count()
            << ", \"mean_s\": " << hist.mean()
            << ", \"min_s\": " << hist.min()
            << ", \"max_s\": " << hist.max()
            << ", \"p50_s\": " << hist.percentile(50.0)
            << ", \"p90_s\": " << hist.percentile(90.0)
            << ", \"p99_s\": " << hist.percentile(99.0) << "}";
    };
    // Generic lambda: CompileCache::Stats and RunCache::Stats are
    // distinct nested types with the same shape.
    auto cacheJson = [&](const char* key, const auto& cache) {
        out << "  \"" << key << "\": {\"hits\": " << cache.hits
            << ", \"misses\": " << cache.misses
            << ", \"inflight_joins\": " << cache.inflight_joins
            << ", \"entries\": " << cache.entries
            << ", \"evictions\": " << cache.evictions
            << ", \"resident\": " << cache.resident << "},\n";
    };
    out << "{\n";
    out << "  \"workers\": " << options.workers << ",\n";
    out << "  \"shards\": " << sharded.shards() << ",\n";
    out << "  \"mode\": \"" << service::optModeName(options.mode)
        << "\",\n";
    out << "  \"run\": " << (options.run ? "true" : "false") << ",\n";
    out << "  \"simd\": " << (fhe::simdEnabled() ? "true" : "false")
        << ",\n";
    out << "  \"batch_lanes\": " << options.batch_lanes << ",\n";
    out << "  \"cache_dir\": \"" << jsonEscape(options.cache_dir)
        << "\",\n";
    out << "  \"requests\": " << requests << ",\n";
    out << "  \"failures\": " << failures << ",\n";
    out << "  \"wall_s\": " << wall_seconds << ",\n";
    out << "  \"jobs_per_s\": "
        << (wall_seconds > 0
                ? static_cast<double>(requests) / wall_seconds
                : 0.0)
        << ",\n";
    // Empty string = every cross-counter invariant held on this
    // (quiescent) snapshot.
    out << "  \"invariants\": \"" << jsonEscape(invariant_error)
        << "\",\n";
    out << "  \"counters\": {\"submitted\": " << stats.submitted
        << ", \"compiled\": " << stats.compiled
        << ", \"failed\": " << stats.failed
        << ", \"total_compile_s\": " << stats.total_compile_seconds
        << ", \"run_submitted\": " << stats.run_submitted
        << ", \"executed\": " << stats.executed
        << ", \"run_failed\": " << stats.run_failed
        << ", \"total_exec_s\": " << stats.total_exec_seconds
        << ", \"runtimes_created\": " << stats.runtimes_created
        << ", \"arena_allocs\": " << stats.arena_allocs
        << ", \"arena_reuse\": " << stats.arena_reuses
        << ", \"arena_bytes\": " << stats.arena_bytes
        << ", \"packed_groups\": " << stats.packed_groups
        << ", \"packed_lanes\": " << stats.packed_lanes
        << ", \"solo_runs\": " << stats.solo_runs
        << ", \"full_flushes\": " << stats.full_flushes
        << ", \"window_flushes\": " << stats.window_flushes
        << ", \"packed_fallbacks\": " << stats.packed_fallbacks
        << ", \"composite_groups\": " << stats.composite_groups
        << ", \"composite_members\": " << stats.composite_members
        << ", \"mod_switch_drops\": " << stats.mod_switch_drops
        << ", \"persist_hits\": " << stats.persist.hits
        << ", \"persist_misses\": " << stats.persist.misses
        << ", \"persist_corrupt\": " << stats.persist.corrupt
        << ", \"persist_writes\": " << stats.persist.writes
        << "},\n";
    cacheJson("compile_cache", stats.cache);
    cacheJson("run_cache", stats.run_cache);
    out << "  \"load_model\": {\"warm_predictions\": "
        << stats.load_model.warm_predictions
        << ", \"cold_predictions\": "
        << stats.load_model.cold_predictions
        << ", \"compile_observations\": "
        << stats.load_model.compile_observations
        << ", \"run_observations\": "
        << stats.load_model.run_observations
        << ", \"window_shrinks\": " << stats.load_model.window_shrinks
        << ", \"window_ceilings\": " << stats.load_model.window_ceilings
        << ", \"share_preferred\": " << stats.load_model.share_preferred
        << ", \"solo_preferred\": " << stats.load_model.solo_preferred
        << "},\n";
    out << "  \"pool\": {\"tasks_run\": " << stats.pool.tasks_run
        << ", \"busy_s\": " << stats.pool.busy_seconds << "},\n";
    const service::RouterStats router = sharded.routerStats();
    out << "  \"router\": {\"compile_routed\": " << router.compile_routed
        << ", \"run_affinity\": " << router.run_affinity
        << ", \"run_rerouted\": " << router.run_rerouted << "},\n";
    // Per-shard breakdown next to the merged "counters" above: the
    // routing skew (who compiled what, who executed what, how busy
    // each pool ran) is only visible unmerged.
    out << "  \"per_shard\": [";
    for (int s = 0; s < sharded.shards(); ++s) {
        const service::ServiceStats shard = sharded.shardStats(s);
        if (s > 0) out << ", ";
        out << "{\"shard\": " << s << ", \"submitted\": "
            << shard.submitted
            << ", \"run_submitted\": " << shard.run_submitted
            << ", \"compiled\": " << shard.compiled
            << ", \"executed\": " << shard.executed
            << ", \"cache_hits\": " << shard.cache.hits
            << ", \"run_cache_hits\": " << shard.run_cache.hits
            << ", \"tasks_run\": " << shard.pool.tasks_run
            << ", \"busy_s\": " << shard.pool.busy_seconds << "}";
    }
    out << "],\n";
    out << "  \"telemetry\": {\"enabled\": "
        << (tel.enabled ? "true" : "false")
        << ", \"events\": " << tel.events
        << ", \"dropped\": " << tel.dropped << ", \"phases\": {";
    for (int p = 0; p < telemetry::kPhaseCount; ++p) {
        if (p > 0) out << ", ";
        phaseJson(static_cast<telemetry::Phase>(p));
    }
    out << "}},\n";
    out << "  \"qwait_p50\": "
        << tel.phase(telemetry::Phase::QueueWait).percentile(50.0)
        << ",\n";
    out << "  \"qwait_p99\": "
        << tel.phase(telemetry::Phase::QueueWait).percentile(99.0)
        << ",\n";
    out << "  \"compile_p50\": "
        << tel.phase(telemetry::Phase::Compile).percentile(50.0) << ",\n";
    out << "  \"compile_p99\": "
        << tel.phase(telemetry::Phase::Compile).percentile(99.0) << ",\n";
    out << "  \"exec_p50\": "
        << tel.phase(telemetry::Phase::Execute).percentile(50.0) << ",\n";
    out << "  \"exec_p99\": "
        << tel.phase(telemetry::Phase::Execute).percentile(99.0) << ",\n";
    out << "  \"window_wait_p99\": "
        << tel.phase(telemetry::Phase::WindowWait).percentile(99.0)
        << "\n";
    out << "}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage(argv[0]);
        return 2;
    }
    if (options.files.empty() && options.suite_n == 0) {
        usage(argv[0]);
        std::fprintf(stderr, "\nno kernels given; try --suite 8\n");
        return 2;
    }
    // SealLite needs a power-of-two degree with t = 65537 ≡ 1 (mod 2n);
    // reject bad values here rather than aborting inside a worker.
    if (options.run &&
        (options.poly_n < 8 || options.poly_n > 32768 ||
         (options.poly_n & (options.poly_n - 1)) != 0)) {
        std::fprintf(stderr,
                     "chehabd: --poly-n must be a power of two in "
                     "[8, 32768], got %d\n",
                     options.poly_n);
        return 2;
    }
    if (options.batch_lanes < 0 || options.batch_window_us < 0) {
        std::fprintf(stderr,
                     "chehabd: --batch-lanes and --batch-window-us must "
                     "be non-negative\n");
        return 2;
    }
    if (options.persist_load_model < 0 ||
        options.persist_load_model > 1) {
        std::fprintf(stderr,
                     "chehabd: --persist-load-model must be 0 or 1\n");
        return 2;
    }
    if (options.hot_factor <= 0.0) {
        std::fprintf(stderr, "chehabd: --hot-factor must be > 0\n");
        return 2;
    }
    if (options.hot_slack_ms < 0.0) {
        std::fprintf(stderr,
                     "chehabd: --hot-slack-ms must be non-negative\n");
        return 2;
    }
    if (options.telemetry < -1 || options.telemetry > 1) {
        std::fprintf(stderr, "chehabd: --telemetry must be 0 or 1\n");
        return 2;
    }
    if (options.mod_switch < 0 || options.mod_switch > 1) {
        std::fprintf(stderr, "chehabd: --mod-switch must be 0 or 1\n");
        return 2;
    }
    if (options.simd < -1 || options.simd > 1) {
        std::fprintf(stderr, "chehabd: --simd must be 0 or 1\n");
        return 2;
    }
    if (options.simd != -1) {
        fhe::setSimdEnabled(options.simd != 0);
    }
    // Telemetry defaults to on exactly when an exporter needs it; an
    // explicit --telemetry wins in either direction (0 with --trace-out
    // yields an empty trace).
    const bool telemetry_on =
        options.telemetry == -1
            ? !options.trace_path.empty() ||
                  !options.stats_json_path.empty()
            : options.telemetry != 0;

    // ---- assemble the kernel list -------------------------------------
    std::vector<NamedKernel> kernels;
    for (const std::string& path : options.files) {
        std::string text;
        if (path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            text = buffer.str();
        } else {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "chehabd: cannot read %s\n",
                             path.c_str());
                return 1;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
        NamedKernel kernel;
        kernel.name = path == "-" ? "<stdin>" : path;
        try {
            kernel.source = ir::parse(text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "chehabd: %s: %s\n", kernel.name.c_str(),
                         e.what());
            return 1;
        }
        kernels.push_back(std::move(kernel));
    }
    if (options.suite_n > 0) {
        for (benchsuite::Kernel& kernel :
             benchsuite::porcupineSuite(options.suite_n)) {
            kernels.push_back({kernel.name, kernel.program});
        }
    }

    compiler::DriverConfig pipeline =
        service::makePipeline(options.mode, {}, options.max_steps);
    // The mod-switch pass rides after whatever the mode picked; it is
    // part of the pipeline fingerprint, so --mod-switch runs get their
    // own kernel/run cache entries and never collide with plain ones.
    if (options.mod_switch != 0) pipeline.passes.push_back("mod-switch");

    // ---- optional RL agent --------------------------------------------
    std::unique_ptr<rl::RlAgent> agent;
    service::ServiceConfig config;
    // --workers is the fleet total; each shard runs its own pool of
    // max(1, total/shards) workers so adding shards redistributes
    // rather than multiplies threads.
    config.shards = options.shards;
    config.num_workers =
        options.shards > 0
            ? std::max(1, options.workers / options.shards)
            : options.workers;
    config.kernel_cache_capacity =
        static_cast<std::size_t>(options.cache_cap);
    config.run_cache_capacity =
        static_cast<std::size_t>(options.cache_cap);
    config.max_lanes = options.batch_lanes;
    config.batch_window_seconds = options.batch_window_us * 1e-6;
    config.adaptive_window = options.adaptive_window != 0;
    config.cross_kernel = options.cross_kernel;
    config.telemetry = telemetry_on;
    config.cache_dir = options.cache_dir;
    config.persist_load_model = options.persist_load_model != 0;
    // Reject nonsense configurations here, where the error reads as a
    // usage problem, instead of letting the service constructor throw.
    if (const std::string problem = config.validate(); !problem.empty()) {
        std::fprintf(stderr, "chehabd: %s\n", problem.c_str());
        usage(argv[0]);
        return 2;
    }
    trs::Ruleset ruleset = trs::buildChehabRuleset();
    if (options.mode == service::OptMode::Rl) {
        std::fprintf(stderr,
                     "chehabd: training RL agent (%d PPO steps)...\n",
                     options.train_steps);
        rl::AgentConfig agent_config;
        agent_config.ppo.total_timesteps = options.train_steps;
        agent_config.ppo.steps_per_update = 128;
        agent_config.compile_rollouts = 2;
        agent = std::make_unique<rl::RlAgent>(ruleset, agent_config);
        dataset::MotifSynthesizer synth(1234, {});
        agent->train(dataset::buildDataset(
            [&synth] { return synth.generate(); }, 128, {}));
        config.agent = agent.get();
    }

    fhe::SealLiteParams run_params;
    run_params.n = options.poly_n;
    run_params.prime_count = 4;
    run_params.seed = 17;

    // ---- run ----------------------------------------------------------
    // With --run every response is a RunResponse; otherwise compile-only
    // responses are adapted into the same reporting shape. Always the
    // sharded front end: at --shards 1 it routes everything to its
    // single shard and behaves exactly like a plain CompileService.
    service::RouterConfig router_config;
    router_config.hot_factor = options.hot_factor;
    router_config.hot_slack_seconds = options.hot_slack_ms * 1e-3;
    // An unusable --cache-dir (permission denied, path is a file)
    // surfaces as std::invalid_argument from the shard constructors;
    // report it as the usage error it is instead of terminating.
    std::unique_ptr<service::ShardedService> service_holder;
    try {
        service_holder = std::make_unique<service::ShardedService>(
            config, router_config);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "chehabd: %s\n", e.what());
        return 2;
    }
    service::ShardedService& compile_service = *service_holder;
    const Stopwatch wall;
    std::vector<service::RunResponse> responses;
    if (options.run) {
        std::vector<service::RunRequest> batch;
        for (int r = 0; r < options.repeat; ++r) {
            for (const NamedKernel& kernel : kernels) {
                service::RunRequest request;
                request.name = kernel.name;
                request.source = kernel.source;
                request.pipeline = pipeline;
                request.inputs = benchsuite::syntheticInputs(kernel.source);
                if (options.distinct_inputs && r > 0) {
                    // Jitter per repeat: the copies stop colliding in
                    // the run cache and instead coalesce into packed
                    // rows (when --batch-lanes allows).
                    for (auto& [name, value] : request.inputs) {
                        value += r;
                    }
                }
                request.key_budget = options.key_budget;
                request.params = run_params;
                batch.push_back(std::move(request));
            }
        }
        responses = compile_service.runBatch(std::move(batch));
    } else {
        std::vector<service::CompileRequest> batch;
        for (int r = 0; r < options.repeat; ++r) {
            for (const NamedKernel& kernel : kernels) {
                service::CompileRequest request;
                request.name = kernel.name;
                request.source = kernel.source;
                request.pipeline = pipeline;
                batch.push_back(std::move(request));
            }
        }
        for (service::CompileResponse& response :
             compile_service.compileBatch(std::move(batch))) {
            service::RunResponse adapted;
            adapted.name = std::move(response.name);
            adapted.ok = response.ok;
            adapted.error = std::move(response.error);
            adapted.compiled = std::move(response.compiled);
            adapted.compile_cache_hit = response.cache_hit;
            adapted.compile_deduplicated = response.deduplicated;
            adapted.queue_seconds = response.queue_seconds;
            adapted.compile_seconds = response.compile_seconds;
            adapted.estimated_cost = response.estimated_cost;
            adapted.predicted_seconds = response.predicted_seconds;
            adapted.worker_id = response.worker_id;
            responses.push_back(std::move(adapted));
        }
    }
    const double wall_seconds = wall.elapsedSeconds();
    // The last future resolves from inside its worker task; wait for
    // the task epilogues too so the stats snapshot and the exported
    // trace carry every span (wall_seconds above intentionally stops
    // at response availability).
    compile_service.drain();

    // ---- report -------------------------------------------------------
    if (options.run) {
        std::printf("%-24s %-7s %-3s %-5s %-5s %9s %9s %8s %8s %9s %5s "
                    "%6s %6s %5s %5s %6s\n",
                    "kernel", "mode", "ok", "csrc", "rsrc", "queue_ms",
                    "comp_ms", "pred_ms", "meas_ms", "amort_ms", "lanes",
                    "noise", "final", "keys", "drops", "worker");
    } else {
        std::printf("%-24s %-7s %-3s %-5s %9s %8s %8s %7s %6s\n",
                    "kernel", "mode", "ok", "src", "queue_ms", "pred_ms",
                    "meas_ms", "cost", "worker");
    }
    int failures = 0;
    // Mean relative prediction error of the load model over the batch:
    // |pred - meas| / meas, averaged over requests with a measurement.
    double error_sum = 0.0;
    int error_count = 0;
    for (const service::RunResponse& response : responses) {
        if (!response.ok) ++failures;
        const char* compile_src =
            response.compile_cache_hit
                ? "hit"
                : (response.compile_deduplicated ? "join" : "miss");
        // pred vs meas: the wall time the scheduler dispatched on
        // against the wall time actually measured — the execution for
        // --run, the compile otherwise.
        const double pred_s = response.predicted_seconds;
        const double meas_s =
            options.run ? response.exec_seconds : response.compile_seconds;
        if (response.ok && meas_s > 0.0) {
            error_sum += std::abs(pred_s - meas_s) / meas_s;
            ++error_count;
        }
        if (options.run) {
            const char* run_src =
                response.run_cache_hit
                    ? "hit"
                    : (response.run_deduplicated ? "join" : "miss");
            // Packed-vs-solo latency: meas_ms is the (shared) execution
            // wall time; amort_ms divides it across the lanes that rode
            // the row — for solo runs the two columns are equal.
            const double amort_ms =
                response.exec_seconds * 1e3 /
                (response.packed_lanes > 0 ? response.packed_lanes : 1);
            std::printf("%-24s %-7s %-3s %-5s %-5s %9.2f %9.2f %8.2f "
                        "%8.2f %9.2f %5d %6d %6d %5d %5d %6d\n",
                        response.name.c_str(),
                        service::optModeName(options.mode),
                        response.ok ? "y" : "N", compile_src, run_src,
                        response.queue_seconds * 1e3,
                        response.compile_seconds * 1e3, pred_s * 1e3,
                        meas_s * 1e3, amort_ms,
                        response.packed_lanes,
                        response.result.consumed_noise,
                        response.result.final_noise_budget,
                        response.result.rotation_keys,
                        response.result.mod_switch_drops,
                        response.worker_id);
        } else {
            std::printf("%-24s %-7s %-3s %-5s %9.2f %8.2f %8.2f %7.0f "
                        "%6d\n",
                        response.name.c_str(),
                        service::optModeName(options.mode),
                        response.ok ? "y" : "N", compile_src,
                        response.queue_seconds * 1e3, pred_s * 1e3,
                        meas_s * 1e3, response.estimated_cost,
                        response.worker_id);
        }
        if (!response.ok) {
            std::printf("  error: %s\n", response.error.c_str());
        }
    }

    const service::ServiceStats stats = compile_service.stats();
    std::printf("\n%zu requests in %.3f s (%.1f jobs/s) on %d workers: "
                "%llu compiled, %llu cache hits, %llu in-flight joins, "
                "%llu evicted, %llu failed\n",
                responses.size(), wall_seconds,
                wall_seconds > 0 ? static_cast<double>(responses.size()) /
                                       wall_seconds
                                 : 0.0,
                compile_service.numWorkers(),
                static_cast<unsigned long long>(stats.compiled),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.inflight_joins),
                static_cast<unsigned long long>(stats.cache.evictions),
                static_cast<unsigned long long>(stats.failed));
    if (!options.cache_dir.empty()) {
        std::printf("persist: %llu warm hits, %llu misses, %llu corrupt "
                    "entries skipped, %llu writes (%s)\n",
                    static_cast<unsigned long long>(stats.persist.hits),
                    static_cast<unsigned long long>(stats.persist.misses),
                    static_cast<unsigned long long>(stats.persist.corrupt),
                    static_cast<unsigned long long>(stats.persist.writes),
                    options.cache_dir.c_str());
    }
    if (options.shards > 1) {
        const service::RouterStats router = compile_service.routerStats();
        std::printf("router: %d shards, %llu compiles routed by "
                    "affinity, %llu runs kept on their affinity shard, "
                    "%llu re-routed to a cooler one\n",
                    compile_service.shards(),
                    static_cast<unsigned long long>(router.compile_routed),
                    static_cast<unsigned long long>(router.run_affinity),
                    static_cast<unsigned long long>(router.run_rerouted));
    }
    std::printf("load model: %llu warm / %llu cold predictions, "
                "%llu compile + %llu run observations",
                static_cast<unsigned long long>(
                    stats.load_model.warm_predictions),
                static_cast<unsigned long long>(
                    stats.load_model.cold_predictions),
                static_cast<unsigned long long>(
                    stats.load_model.compile_observations),
                static_cast<unsigned long long>(
                    stats.load_model.run_observations));
    if (error_count > 0) {
        std::printf(", %.1f%% mean |pred-meas|/meas error",
                    100.0 * error_sum / error_count);
    }
    std::printf("\n");
    if (options.run && options.batch_lanes != 1) {
        std::printf("adaptive window: %llu shrunk / %llu ceiling "
                    "deadlines\n",
                    static_cast<unsigned long long>(
                        stats.load_model.window_shrinks),
                    static_cast<unsigned long long>(
                        stats.load_model.window_ceilings));
    }
    if (options.run) {
        std::printf("run path: %llu executed, %llu run-cache hits, "
                    "%llu run joins, %llu runtimes pooled, %llu failed\n",
                    static_cast<unsigned long long>(stats.executed),
                    static_cast<unsigned long long>(stats.run_cache.hits),
                    static_cast<unsigned long long>(
                        stats.run_cache.inflight_joins),
                    static_cast<unsigned long long>(stats.runtimes_created),
                    static_cast<unsigned long long>(stats.run_failed));
        std::printf("fhe backend: AVX2 NTT %s (compiled-in %s, cpu %s); "
                    "poly arena %llu reuses / %llu allocs, %.1f MiB "
                    "minted\n",
                    fhe::simdEnabled() ? "on" : "off",
                    fhe::simdCompiledIn() ? "yes" : "no",
                    fhe::simdSupported() ? "avx2" : "scalar",
                    static_cast<unsigned long long>(stats.arena_reuses),
                    static_cast<unsigned long long>(stats.arena_allocs),
                    static_cast<double>(stats.arena_bytes) /
                        (1024.0 * 1024.0));
        if (options.batch_lanes != 1) {
            std::printf(
                "slot batching: %llu packed groups carrying %llu lanes "
                "(%llu cross-kernel rows spanning %llu kernels), "
                "%llu solo runs, %llu full flushes, %llu window flushes, "
                "%llu fallbacks\n",
                static_cast<unsigned long long>(stats.packed_groups),
                static_cast<unsigned long long>(stats.packed_lanes),
                static_cast<unsigned long long>(stats.composite_groups),
                static_cast<unsigned long long>(stats.composite_members),
                static_cast<unsigned long long>(stats.solo_runs),
                static_cast<unsigned long long>(stats.full_flushes),
                static_cast<unsigned long long>(stats.window_flushes),
                static_cast<unsigned long long>(stats.packed_fallbacks));
        }
        if (options.mod_switch != 0) {
            // Post-switch headroom: the smallest noise budget any
            // request finished with after its modulus drops. With the
            // gate working, this stays positive — drops spend budget
            // the circuit was never going to use.
            int min_final = 0;
            bool have_final = false;
            for (const service::RunResponse& response : responses) {
                if (!response.ok) continue;
                if (!have_final ||
                    response.result.final_noise_budget < min_final) {
                    min_final = response.result.final_noise_budget;
                    have_final = true;
                }
            }
            std::printf("mod-switch: %llu modulus drops across executed "
                        "rows; min noise budget after switching: %d bits\n",
                        static_cast<unsigned long long>(
                            stats.mod_switch_drops),
                        have_final ? min_final : 0);
        }
    }
    if (telemetry_on) {
        std::printf("\ntelemetry: %llu trace events (%llu dropped)\n",
                    static_cast<unsigned long long>(
                        stats.telemetry.events),
                    static_cast<unsigned long long>(
                        stats.telemetry.dropped));
        benchcommon::printPhaseTable(stats.telemetry);
    }
    // Every request has resolved by now, so the strict (quiescent)
    // accounting equalities must hold; a non-empty result is a service
    // bookkeeping bug worth surfacing even in a reporting tool.
    const std::string invariant_error =
        service::checkStatsInvariants(stats, /*quiescent=*/true);
    if (!invariant_error.empty()) {
        std::fprintf(stderr, "chehabd: WARNING: %s\n",
                     invariant_error.c_str());
    }

    if (options.dump) {
        std::map<std::string, const service::RunResponse*> distinct;
        for (const service::RunResponse& response : responses) {
            if (response.ok) distinct.emplace(response.name, &response);
        }
        for (const auto& [name, response] : distinct) {
            std::printf("\n-- %s (%s) --\n", name.c_str(),
                        response->compiled.stats.passes.empty()
                            ? "no pass breakdown"
                            : "per-pass breakdown");
            for (const compiler::PassStats& pass :
                 response->compiled.stats.passes) {
                std::printf("  %-14s %9.3f ms   cost %8.1f -> %-8.1f "
                            "%4d rewrites\n",
                            pass.name.c_str(), pass.seconds * 1e3,
                            pass.cost_before, pass.cost_after,
                            pass.rewrite_steps);
            }
            std::printf("%s",
                        response->compiled.program.disassemble().c_str());
        }
    }

    if (!options.csv_path.empty()) {
        std::vector<std::string> header = {
            "kernel", "mode", "ok", "cache_hit", "deduplicated", "queue_s",
            "compile_s", "pred_s", "meas_s", "estimated_cost", "worker",
            "instrs", "final_cost", "mult_depth", "error"};
        if (options.run) {
            for (const char* column :
                 {"run_cache_hit", "run_deduplicated", "exec_s",
                  "eval_s", "setup_s", "decode_s", "window_s",
                  "fresh_noise", "final_noise", "consumed_noise",
                  "rotation_keys", "mod_switch_drops", "packed_lanes",
                  "lane", "output0"}) {
                header.push_back(column);
            }
        }
        // Batch-wide latency percentiles (seconds), repeated on every
        // row so a single CSV joins per-request and aggregate views;
        // all 0 when telemetry is off. Shared columns + extraction:
        // bench/common.h keeps every results CSV's percentile schema
        // identical.
        benchcommon::appendLatencyColumns(header);
        const benchcommon::LatencySummary lat =
            benchcommon::latencySummary(stats.telemetry);
        CsvWriter csv(options.csv_path, header);
        for (const service::RunResponse& response : responses) {
            // pred_s/meas_s mirror the table columns: the scheduler's
            // predicted wall time vs. what the measured stage actually
            // took (execution with --run, compile otherwise).
            const double meas_s = options.run ? response.exec_seconds
                                              : response.compile_seconds;
            if (options.run) {
                csv.writeRow(
                    response.name, service::optModeName(options.mode),
                    response.ok ? 1 : 0,
                    response.compile_cache_hit ? 1 : 0,
                    response.compile_deduplicated ? 1 : 0,
                    response.queue_seconds, response.compile_seconds,
                    response.predicted_seconds, meas_s,
                    response.estimated_cost, response.worker_id,
                    response.compiled.program.instrs.size(),
                    response.compiled.stats.final_cost,
                    response.compiled.stats.mult_depth, response.error,
                    response.run_cache_hit ? 1 : 0,
                    response.run_deduplicated ? 1 : 0,
                    response.exec_seconds, response.result.exec_seconds,
                    response.result.setup_seconds,
                    response.result.decode_seconds,
                    response.window_wait_seconds,
                    response.result.fresh_noise_budget,
                    response.result.final_noise_budget,
                    response.result.consumed_noise,
                    response.result.rotation_keys,
                    response.result.mod_switch_drops,
                    response.packed_lanes, response.lane,
                    response.result.output.empty()
                        ? 0
                        : response.result.output.front(),
                    lat.qwait_p50, lat.qwait_p99, lat.compile_p50,
                    lat.compile_p99, lat.exec_p50, lat.exec_p99,
                    lat.window_wait_p99);
            } else {
                csv.writeRow(
                    response.name, service::optModeName(options.mode),
                    response.ok ? 1 : 0,
                    response.compile_cache_hit ? 1 : 0,
                    response.compile_deduplicated ? 1 : 0,
                    response.queue_seconds, response.compile_seconds,
                    response.predicted_seconds, meas_s,
                    response.estimated_cost, response.worker_id,
                    response.compiled.program.instrs.size(),
                    response.compiled.stats.final_cost,
                    response.compiled.stats.mult_depth, response.error,
                    lat.qwait_p50, lat.qwait_p99, lat.compile_p50,
                    lat.compile_p99, lat.exec_p50, lat.exec_p99,
                    lat.window_wait_p99);
            }
        }
        std::printf("wrote %s\n", options.csv_path.c_str());
    }

    if (!options.json_path.empty()) {
        std::ofstream json(options.json_path);
        json << "[\n";
        for (std::size_t i = 0; i < responses.size(); ++i) {
            const service::RunResponse& response = responses[i];
            json << "  {\"kernel\": \"" << jsonEscape(response.name)
                 << "\", \"mode\": \""
                 << service::optModeName(options.mode)
                 << "\", \"ok\": " << (response.ok ? "true" : "false")
                 << ", \"cache_hit\": "
                 << (response.compile_cache_hit ? "true" : "false")
                 << ", \"deduplicated\": "
                 << (response.compile_deduplicated ? "true" : "false")
                 << ", \"queue_s\": " << response.queue_seconds
                 << ", \"compile_s\": " << response.compile_seconds
                 << ", \"pred_s\": " << response.predicted_seconds
                 << ", \"meas_s\": "
                 << (options.run ? response.exec_seconds
                                 : response.compile_seconds);
            if (options.run) {
                json << ", \"run_cache_hit\": "
                     << (response.run_cache_hit ? "true" : "false")
                     << ", \"run_deduplicated\": "
                     << (response.run_deduplicated ? "true" : "false")
                     << ", \"exec_s\": " << response.exec_seconds
                     << ", \"eval_s\": " << response.result.exec_seconds
                     << ", \"setup_s\": "
                     << response.result.setup_seconds
                     << ", \"decode_s\": "
                     << response.result.decode_seconds
                     << ", \"window_s\": "
                     << response.window_wait_seconds
                     << ", \"fresh_noise\": "
                     << response.result.fresh_noise_budget
                     << ", \"final_noise\": "
                     << response.result.final_noise_budget
                     << ", \"consumed_noise\": "
                     << response.result.consumed_noise
                     << ", \"rotation_keys\": "
                     << response.result.rotation_keys
                     << ", \"mod_switch_drops\": "
                     << response.result.mod_switch_drops
                     << ", \"packed_lanes\": " << response.packed_lanes
                     << ", \"lane\": " << response.lane
                     << ", \"output\": [";
                for (std::size_t slot = 0;
                     slot < response.result.output.size(); ++slot) {
                    if (slot > 0) json << ", ";
                    json << response.result.output[slot];
                }
                json << "]";
            }
            json << ", \"estimated_cost\": " << response.estimated_cost
                 << ", \"worker\": " << response.worker_id
                 << ", \"error\": \"" << jsonEscape(response.error)
                 << "\"}" << (i + 1 < responses.size() ? "," : "") << "\n";
        }
        json << "]\n";
        std::printf("wrote %s\n", options.json_path.c_str());
    }

    if (!options.trace_path.empty()) {
        std::ofstream trace(options.trace_path);
        if (!trace) {
            std::fprintf(stderr, "chehabd: cannot write %s\n",
                         options.trace_path.c_str());
            return 1;
        }
        // Merged export: one Perfetto track group (pid) per shard, all
        // aligned onto the earliest shard's clock epoch.
        compile_service.writeChromeTrace(trace);
        std::printf("wrote %s (load in chrome://tracing or Perfetto)\n",
                    options.trace_path.c_str());
    }

    if (!options.stats_json_path.empty()) {
        std::ofstream stats_json(options.stats_json_path);
        if (!stats_json) {
            std::fprintf(stderr, "chehabd: cannot write %s\n",
                         options.stats_json_path.c_str());
            return 1;
        }
        writeStatsJson(stats_json, options, compile_service, stats,
                       responses.size(), failures, wall_seconds,
                       invariant_error);
        std::printf("wrote %s\n", options.stats_json_path.c_str());
    }

    return failures == 0 ? 0 : 1;
}
