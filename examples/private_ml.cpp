/// \file
/// Private ML inference with the RL-guided compiler: train a small
/// CHEHAB RL agent on a motif corpus, then compile and run encrypted
/// linear-regression and polynomial-regression inference (the ML building
/// blocks of the Porcupine suite, §7.2).
///
///   $ ./examples/private_ml
#include <cstdio>

#include "benchsuite/kernels.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "dataset/dataset.h"
#include "dataset/motif_gen.h"
#include "rl/agent.h"
#include "trs/ruleset.h"

int
main()
{
    using namespace chehab;

    const trs::Ruleset ruleset = trs::buildChehabRuleset();

    // A compact agent configuration (the paper trains 2M steps on 14
    // cores; this demo trains a few hundred steps so it finishes in
    // seconds — the compile path is identical).
    rl::AgentConfig config;
    config.env.max_steps = 24;
    config.policy.encoder.d_model = 16;
    config.policy.encoder.n_layers = 1;
    config.policy.encoder.n_heads = 2;
    config.policy.encoder.d_ff = 32;
    config.policy.encoder.max_len = 64;
    config.ppo.total_timesteps = 512;
    config.ppo.steps_per_update = 128;
    config.ppo.max_token_len = 64;
    config.compile_rollouts = 3;

    rl::RlAgent agent(ruleset, config);
    std::printf("training the RL agent on an LLM-style motif corpus...\n");
    dataset::MotifSynthesizer synth(7);
    const std::vector<ir::ExprPtr> corpus = dataset::buildDataset(
        [&synth] { return synth.generate(); }, 128);
    const rl::TrainStats stats = agent.train(corpus);
    std::printf("trained %d steps in %.1f s (final mean return %.1f)\n\n",
                stats.total_steps, stats.wall_seconds,
                stats.mean_return_curve.empty()
                    ? 0.0
                    : stats.mean_return_curve.back());

    compiler::FheRuntime runtime;

    // --- Encrypted linear regression: y_i = a*x_i + b -----------------
    const benchsuite::Kernel linreg = benchsuite::linearReg(8);
    const compiler::Compiled lin = compiler::compileWithAgent(
        agent, linreg.program);
    ir::Env lin_inputs = {{"a", 3}, {"b", 7}};
    for (int i = 0; i < 8; ++i) {
        lin_inputs["x_" + std::to_string(i)] = i;
    }
    const compiler::RunResult lin_run =
        runtime.run(lin.program, lin_inputs);
    std::printf("linear regression (y = 3x + 7) on encrypted x:\n  y = ");
    for (std::size_t i = 0; i < lin_run.output.size(); ++i) {
        std::printf("%lld ", static_cast<long long>(lin_run.output[i]));
    }
    std::printf("\n  circuit: %d ct-ct mul, %d rotations, "
                "compile %.2f s, noise %d bits\n\n",
                lin.program.counts().ct_ct_mul,
                lin.program.counts().rotations, lin.stats.totalSeconds(),
                lin_run.consumed_noise);

    // --- Encrypted polynomial regression: y_i = (w*x_i + v)*x_i + u ---
    const benchsuite::Kernel polyreg = benchsuite::polyReg(8);
    const compiler::Compiled poly = compiler::compileWithAgent(
        agent, polyreg.program);
    ir::Env poly_inputs = {{"w", 2}, {"v", 1}, {"u", 4}};
    for (int i = 0; i < 8; ++i) {
        poly_inputs["x_" + std::to_string(i)] = i;
    }
    const compiler::RunResult poly_run =
        runtime.run(poly.program, poly_inputs);
    std::printf("polynomial regression (y = 2x^2 + x + 4) on encrypted "
                "x:\n  y = ");
    for (std::size_t i = 0; i < poly_run.output.size(); ++i) {
        std::printf("%lld ", static_cast<long long>(poly_run.output[i]));
    }
    std::printf("\n  multiplicative depth %d, noise %d bits\n",
                poly.stats.mult_depth, poly_run.consumed_noise);

    // Verify against plaintext.
    bool ok = true;
    for (int i = 0; i < 8; ++i) {
        ok = ok && lin_run.output[static_cast<std::size_t>(i)] == 3 * i + 7;
        ok = ok && poly_run.output[static_cast<std::size_t>(i)] ==
                       2 * i * i + i + 4;
    }
    std::printf("\nverification: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
