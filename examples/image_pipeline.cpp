/// \file
/// Encrypted image processing: compile and execute a box blur and a Sobel
/// Gx gradient over an encrypted image — the image-processing kernels the
/// paper's evaluation uses (Box Blur, Gx/Gy, Roberts Cross) — including
/// rotation-key selection with the NAF pass (Appendix B).
///
///   $ ./examples/image_pipeline
#include <cstdio>

#include "benchsuite/kernels.h"
#include "compiler/keyselect.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "ir/evaluator.h"
#include "trs/ruleset.h"

namespace {

/// 5x5 test image (a bright cross on a dark background).
chehab::ir::Env
testImage(int size)
{
    chehab::ir::Env env;
    for (int i = 0; i < size; ++i) {
        for (int j = 0; j < size; ++j) {
            const bool on = i == size / 2 || j == size / 2;
            env["p_" + std::to_string(i) + "_" + std::to_string(j)] =
                on ? 9 : 1;
        }
    }
    return env;
}

void
runKernel(const chehab::benchsuite::Kernel& kernel,
          const chehab::trs::Ruleset& ruleset, int image_size)
{
    using namespace chehab;
    const compiler::Compiled compiled =
        compiler::compileGreedy(ruleset, kernel.program);
    const compiler::FheProgram::Counts counts = compiled.program.counts();
    std::printf("%s: cost %.0f -> %.0f | %d ct-ct mul, %d ct-pt mul, "
                "%d rot, %d add\n",
                kernel.name.c_str(), compiled.stats.initial_cost,
                compiled.stats.final_cost, counts.ct_ct_mul,
                counts.ct_pt_mul, counts.rotations, counts.ct_add);

    // Rotation-key selection (App. B): bound the Galois keys at beta.
    const std::vector<int> steps = compiled.program.rotationSteps();
    const compiler::RotationKeyPlan plan =
        compiler::selectRotationKeys(steps, /*beta=*/6);
    std::printf("  rotation steps: %zu distinct, %d keys generated under "
                "beta=6\n", steps.size(), plan.numKeys());

    compiler::FheRuntime runtime;
    const ir::Env image = testImage(image_size);
    const compiler::RunResult run =
        runtime.run(compiled.program, image, /*key_budget=*/6);

    // Cross-check against the reference evaluator.
    const ir::Value expected =
        ir::Evaluator().evaluate(kernel.program, image);
    // Rewrites may widen the output vector; only the reference's
    // slots are meaningful (prefix semantics).
    const std::size_t meaningful =
        std::min(run.output.size(), expected.slots.size());
    bool ok = true;
    for (std::size_t i = 0; i < meaningful; ++i) {
        ok = ok && run.output[i] == expected.slots[i];
    }
    std::printf("  output (%zu pixels): ", meaningful);
    for (std::size_t i = 0; i < meaningful && i < 9; ++i) {
        std::printf("%lld ", static_cast<long long>(run.output[i]));
    }
    std::printf("... %s | %.1f ms, %d bits of noise\n\n",
                ok ? "PASS" : "FAIL", run.exec_seconds * 1e3,
                run.consumed_noise);
}

} // namespace

int
main()
{
    using namespace chehab;
    const trs::Ruleset ruleset = trs::buildChehabRuleset();

    std::printf("=== encrypted image pipeline ===\n\n");
    runKernel(benchsuite::boxBlur(5), ruleset, 5);
    runKernel(benchsuite::gradientX(3), ruleset, 5);
    runKernel(benchsuite::robertsCross(3), ruleset, 4);
    return 0;
}
