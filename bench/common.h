/// \file
/// Shared benchmark harness: builds the kernel suite, trains the shared
/// CHEHAB RL agent, compiles each kernel with every compiler under
/// comparison, executes (or, for circuits exceeding the toy backend's
/// slot capacity, estimates) on SealLite, and renders the paper-style
/// comparison tables plus CSV artifacts in results/.
///
/// Environment knobs:
///  - CHEHAB_BENCH_FAST=1           smaller suite and training budget
///  - CHEHAB_BENCH_TRAIN_STEPS=N    PPO timesteps for bench agents
///  - CHEHAB_BENCH_KERNEL_FILTER=s  substring filter on kernel names
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/coyote_sim.h"
#include "benchsuite/kernels.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "dataset/dataset.h"
#include "dataset/motif_gen.h"
#include "dataset/random_gen.h"
#include "rl/agent.h"
#include "support/telemetry.h"
#include "trs/rewriter.h"

namespace chehab::benchcommon {

/// Budget read from the environment.
struct Budget
{
    bool fast = false;
    int train_steps = 1024;
    int max_n = 16;        ///< Largest Porcupine kernel size.
    int tree_depth = 8;    ///< Deepest polynomial tree.
    std::string filter;
};

Budget budgetFromEnv();

/// One (kernel, compiler) evaluation row.
struct Row
{
    std::string kernel;
    std::string compiler;
    double compile_s = 0.0;
    double exec_s = 0.0;
    bool exec_estimated = false;
    int consumed_noise = 0;
    int final_budget = 0;
    bool budget_exhausted = false;
    bool correct = false;
    int depth = 0;
    int mult_depth = 0;
    int ct_ct_mul = 0;
    int ct_pt_mul = 0;
    int rotations = 0;
    int ct_add = 0;
};

/// The shared evaluation harness.
class Harness
{
  public:
    explicit Harness(Budget budget = budgetFromEnv());

    const Budget& budget() const { return budget_; }
    const std::vector<benchsuite::Kernel>& kernels() const
    {
        return kernels_;
    }
    const trs::Ruleset& ruleset() const { return ruleset_; }

    /// Default agent configuration at the bench's training budget.
    rl::AgentConfig agentConfig() const;

    /// The motif ("LLM") training corpus with benchmark exclusion (§6).
    std::vector<ir::ExprPtr> motifDataset(int size = 512) const;

    /// Uniform random corpus (App. H.2) for the Fig. 8 ablation.
    std::vector<ir::ExprPtr> randomDataset(int size = 512) const;

    /// Shared agent, trained lazily on the motif corpus.
    rl::RlAgent& agent();

    /// \name Per-kernel compilation
    /// @{
    compiler::Compiled compileRL(const benchsuite::Kernel& kernel);
    compiler::Compiled compileRL(const rl::RlAgent& custom_agent,
                                 const benchsuite::Kernel& kernel);
    compiler::Compiled compileCoyote(const benchsuite::Kernel& kernel);
    compiler::Compiled compileGreedy(const benchsuite::Kernel& kernel);
    compiler::Compiled compileInitial(const benchsuite::Kernel& kernel);
    /// @}

    /// Execute (or estimate) a compiled kernel and fill a row.
    Row evaluate(const benchsuite::Kernel& kernel,
                 const std::string& compiler_label,
                 const compiler::Compiled& compiled);

    /// Full-suite rows for one compiler label ("CHEHAB RL", "Coyote",
    /// "CHEHAB", "Initial"). Results are cached under results/ so the
    /// per-figure binaries share one evaluation pass.
    std::vector<Row> suiteRows(const std::string& label);

    /// Geometric-mean ratio of metric(other) / metric(base) across
    /// kernels present in both row sets.
    static double geomeanRatio(const std::vector<Row>& base,
                               const std::vector<Row>& other,
                               double Row::* metric);

    /// Write rows to results/<name>.csv (directory created on demand).
    static void writeCsv(const std::string& name,
                         const std::vector<Row>& rows);

    /// Pretty-print a two-compiler comparison to stdout.
    static void printComparison(const std::string& title,
                                const std::vector<Row>& a,
                                const std::vector<Row>& b);

  private:
    Budget budget_;
    trs::Ruleset ruleset_;
    std::vector<benchsuite::Kernel> kernels_;
    std::unique_ptr<rl::RlAgent> agent_;
    std::unique_ptr<compiler::FheRuntime> runtime_;
    std::optional<compiler::OpLatencies> latencies_;
};

/// Deterministic random inputs for a kernel.
ir::Env randomEnv(const ir::ExprPtr& program, std::uint64_t seed);

/// Batch-wide latency percentiles (seconds) distilled from a service
/// telemetry snapshot — the columns the service benches and chehabd
/// report next to their throughput numbers. All zero when telemetry
/// was off.
struct LatencySummary
{
    double qwait_p50 = 0.0;       ///< Pool queue wait.
    double qwait_p99 = 0.0;
    double compile_p50 = 0.0;     ///< Owner compile wall time.
    double compile_p99 = 0.0;
    double exec_p50 = 0.0;        ///< Whole-row execution.
    double exec_p99 = 0.0;
    double window_wait_p99 = 0.0; ///< Coalescer wait for row-mates.
};

LatencySummary latencySummary(
    const telemetry::TelemetrySnapshot& snapshot);

/// The canonical CSV column names for LatencySummary, in field order —
/// every consumer (chehabd --csv, bench_load_model, bench_cross_kernel,
/// bench_sharded_service) appends exactly these so percentile columns
/// are named identically across results/*.csv.
const std::vector<std::string>& latencyCsvColumns();

/// Append latencyCsvColumns() to a CSV header under construction.
void appendLatencyColumns(std::vector<std::string>& header);

/// Print the shared per-phase latency footer table to stdout: one row
/// per phase with samples (count, p50/p90/p99/max in milliseconds),
/// drawn from the snapshot's histograms. Works on merged multi-shard
/// snapshots too — LatencyHistogram::merge keeps percentiles exact up
/// to bucket resolution.
void printPhaseTable(const telemetry::TelemetrySnapshot& snapshot);

} // namespace chehab::benchcommon
