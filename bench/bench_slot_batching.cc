/// \file
/// Slot-batching throughput benchmark: jobs/sec for a batch of small
/// coalescible run requests (one kernel, distinct inputs — the shape a
/// fleet of clients hammering the same model produces) as the lane cap
/// sweeps from 1 (solo execution) toward the full row. Each packed
/// group encrypts, evaluates and decrypts ONE ciphertext row regardless
/// of how many requests rode it, so jobs/sec should scale roughly with
/// the lane count until the row (or the batch) is exhausted.
///
/// Usage:
///   bench_slot_batching [LANES...]   lane caps to sweep (default
///                                    1 2 4 8 16; 1 = batching off)
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller batch and rewrite budget
///
/// Writes results/slot_batching.csv and prints a summary table with
/// the speedup over the lanes=1 baseline.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/parse_int.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int index, int max_steps)
{
    service::RunRequest request;
    request.name = kernel.name + "#" + std::to_string(index);
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 256; // 128-slot row.
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    // Distinct inputs per request: identical requests would collapse in
    // the run cache instead of exercising the coalescer.
    for (auto& [name, value] : request.inputs) value += index * 3 + 1;
    request.key_budget = 0;
    return request;
}

struct Outcome
{
    double wall_seconds = 0.0;
    double jobs_per_second = 0.0;
    service::ServiceStats stats;
};

Outcome
runSweep(const std::vector<service::RunRequest>& batch, int lanes,
         int workers)
{
    service::ServiceConfig config;
    config.num_workers = workers;
    config.max_lanes = lanes;
    config.batch_window_seconds = 0.002;
    service::CompileService service(config);
    std::vector<service::RunRequest> jobs = batch;
    const Stopwatch wall;
    std::vector<service::RunResponse> responses =
        service.runBatch(std::move(jobs));
    Outcome outcome;
    outcome.wall_seconds = wall.elapsedSeconds();
    outcome.jobs_per_second =
        static_cast<double>(batch.size()) / outcome.wall_seconds;
    outcome.stats = service.stats();
    for (const service::RunResponse& response : responses) {
        if (!response.ok) {
            std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                         response.name.c_str(), response.error.c_str());
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char** argv)
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 8 : 20;
    const int jobs = budget.fast ? 16 : 32;
    const int workers = 4;

    std::vector<int> lane_caps;
    for (int i = 1; i < argc; ++i) {
        int lanes = 0;
        if (!parseInt(argv[i], lanes) || lanes < 0) {
            std::fprintf(stderr,
                         "bench_slot_batching: bad lane count '%s'\n",
                         argv[i]);
            return 2;
        }
        lane_caps.push_back(lanes);
    }
    if (lane_caps.empty()) lane_caps = {1, 2, 4, 8, 16};

    // One small kernel, many distinct-input requests: the coalescible
    // load slot batching exists for.
    const benchsuite::Kernel kernel = benchsuite::dotProduct(4);
    std::vector<service::RunRequest> batch;
    for (int i = 0; i < jobs; ++i) {
        batch.push_back(makeRequest(kernel, i, max_steps));
    }

    std::filesystem::create_directories("results");
    CsvWriter csv("results/slot_batching.csv",
                  {"lanes", "workers", "jobs", "wall_s", "jobs_per_s",
                   "speedup_vs_solo", "packed_groups", "packed_lanes",
                   "solo_runs", "executed", "fallbacks"});

    std::printf("%-6s %-8s %6s %9s %11s %9s %7s %7s %6s %6s\n", "lanes",
                "workers", "jobs", "wall_s", "jobs/s", "speedup",
                "groups", "packed", "solo", "exec");
    double solo_rate = 0.0;
    for (int lanes : lane_caps) {
        const Outcome outcome = runSweep(batch, lanes, workers);
        // Speedup baseline: the most recent lanes=1 run, or — when the
        // sweep omits 1 — the first run, so the column is never 0/0.
        if (lanes == 1 || solo_rate == 0.0) {
            solo_rate = outcome.jobs_per_second;
        }
        const double speedup =
            solo_rate > 0.0 ? outcome.jobs_per_second / solo_rate : 0.0;
        std::printf("%-6d %-8d %6zu %9.3f %11.1f %8.2fx %7llu %7llu "
                    "%6llu %6llu\n",
                    lanes, workers, batch.size(), outcome.wall_seconds,
                    outcome.jobs_per_second, speedup,
                    static_cast<unsigned long long>(
                        outcome.stats.packed_groups),
                    static_cast<unsigned long long>(
                        outcome.stats.packed_lanes),
                    static_cast<unsigned long long>(
                        outcome.stats.solo_runs),
                    static_cast<unsigned long long>(
                        outcome.stats.executed));
        csv.writeRow(lanes, workers, batch.size(), outcome.wall_seconds,
                     outcome.jobs_per_second, speedup,
                     outcome.stats.packed_groups,
                     outcome.stats.packed_lanes, outcome.stats.solo_runs,
                     outcome.stats.executed,
                     outcome.stats.packed_fallbacks);
    }
    std::printf("[bench] wrote results/slot_batching.csv\n");
    return 0;
}
