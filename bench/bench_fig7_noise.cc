/// \file
/// Figure 7: consumed noise budget, CHEHAB RL vs Coyote, measured with
/// SealLite's invariant-noise-budget accounting (App. H.1). The paper
/// reports 2.54x less noise consumed by CHEHAB RL, with Coyote exhausting
/// the whole budget on Sort 4 and two polynomial trees.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_NoiseMeasurement(benchmark::State& state)
{
    // Cost of one invariant-noise-budget measurement.
    chehab::compiler::FheRuntime runtime;
    auto& scheme = runtime.scheme();
    const auto ct = scheme.encrypt(scheme.encode({1, 2, 3}));
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme.noiseBudgetBits(ct));
    }
}
BENCHMARK(BM_NoiseMeasurement)->Iterations(3);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    const std::vector<Row> rl = h.suiteRows("CHEHAB RL");
    const std::vector<Row> coyote = h.suiteRows("Coyote");
    Harness::printComparison("Fig. 7 — consumed noise budget (bits)", rl,
                             coyote);

    std::vector<Row> all = rl;
    all.insert(all.end(), coyote.begin(), coyote.end());
    Harness::writeCsv("fig7_noise.csv", all);

    auto noise = [](const std::vector<Row>& rows) {
        std::vector<Row> measured;
        for (const Row& row : rows) {
            if (!row.exec_estimated && row.consumed_noise > 0) {
                measured.push_back(row);
            }
        }
        return measured;
    };
    const std::vector<Row> rl_measured = noise(rl);
    const std::vector<Row> coyote_measured = noise(coyote);

    double log_sum = 0.0;
    int count = 0;
    for (const Row& c : coyote_measured) {
        for (const Row& r : rl_measured) {
            if (r.kernel == c.kernel) {
                log_sum += std::log(static_cast<double>(c.consumed_noise) /
                                    r.consumed_noise);
                ++count;
            }
        }
    }
    const double ratio = count ? std::exp(log_sum / count) : 0.0;
    std::printf("\nCHEHAB RL consumes %.2fx less noise budget than Coyote "
                "(geomean; paper: 2.54x)\n", ratio);

    int exhausted_coyote = 0;
    int exhausted_rl = 0;
    for (const Row& row : coyote) exhausted_coyote += row.budget_exhausted;
    for (const Row& row : rl) exhausted_rl += row.budget_exhausted;
    std::printf("kernels exhausting the budget: Coyote %d, CHEHAB RL %d\n",
                exhausted_coyote, exhausted_rl);
    return 0;
}
