/// \file
/// Compile-service throughput benchmark: jobs/sec for the concurrent
/// CompileService at 1/2/4/8 workers against the serial single-shot
/// pipeline, on two batch shapes:
///
///   cold — distinct kernels only (measures worker-pool scaling and the
///          cost-priority dispatch; no cache reuse is possible),
///   dup  — a 90%-duplicate batch (each kernel repeated 10x, shuffled),
///          where the content-addressed cache and single-flight dedup
///          carry the load.
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller batch and rewrite budget
///
/// Writes results/service_throughput.csv through the shared
/// support/csv.h writer and prints a summary table.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "dataset/motif_gen.h"
#include "ir/cost_model.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

struct Scenario
{
    std::string name;
    std::vector<service::CompileRequest> batch;
    std::size_t distinct = 0;
};

std::vector<ir::ExprPtr>
distinctKernels(int count)
{
    // Motif-synthesized programs: structured enough that the greedy TRS
    // has real work to do, cheap enough for a laptop-scale bench.
    dataset::MotifGenConfig config;
    config.max_terms = 6;
    config.max_width = 4;
    dataset::MotifSynthesizer synth(4242, config);
    std::vector<ir::ExprPtr> kernels;
    kernels.reserve(static_cast<std::size_t>(count));
    std::vector<ir::Fingerprint> seen;
    while (static_cast<int>(kernels.size()) < count) {
        ir::ExprPtr program = synth.generate();
        const ir::Fingerprint fp = ir::fingerprint(program);
        bool duplicate = false;
        for (const ir::Fingerprint& other : seen) {
            if (other == fp) duplicate = true;
        }
        if (duplicate) continue;
        seen.push_back(fp);
        kernels.push_back(std::move(program));
    }
    return kernels;
}

service::CompileRequest
makeRequest(const std::string& name, ir::ExprPtr source, int max_steps)
{
    service::CompileRequest request;
    request.name = name;
    request.source = std::move(source);
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    return request;
}

double
runSerial(const Scenario& scenario, const trs::Ruleset& ruleset)
{
    const Stopwatch wall;
    for (const service::CompileRequest& request : scenario.batch) {
        compiler::compileGreedy(ruleset, request.source,
                                request.pipeline.weights,
                                request.pipeline.max_steps);
    }
    return wall.elapsedSeconds();
}

struct RunResult
{
    double wall_seconds = 0.0;
    service::ServiceStats stats;
};

RunResult
runService(const Scenario& scenario, int workers)
{
    service::CompileService compile_service({workers});
    std::vector<service::CompileRequest> batch = scenario.batch;
    const Stopwatch wall;
    std::vector<service::CompileResponse> responses =
        compile_service.compileBatch(std::move(batch));
    RunResult result;
    result.wall_seconds = wall.elapsedSeconds();
    result.stats = compile_service.stats();
    for (const service::CompileResponse& response : responses) {
        if (!response.ok) {
            std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                         response.name.c_str(), response.error.c_str());
        }
    }
    return result;
}

} // namespace

int
main()
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int kernel_count = budget.fast ? 8 : 24;
    const int max_steps = budget.fast ? 8 : 20;
    const int dup_factor = 10; // 90%-duplicate batch.

    std::vector<ir::ExprPtr> kernels = distinctKernels(kernel_count);

    Scenario cold;
    cold.name = "cold";
    cold.distinct = kernels.size();
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        cold.batch.push_back(makeRequest("k" + std::to_string(i),
                                         kernels[i], max_steps));
    }

    Scenario dup;
    dup.name = "dup90";
    dup.distinct = kernels.size();
    for (int r = 0; r < dup_factor; ++r) {
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            dup.batch.push_back(makeRequest("k" + std::to_string(i),
                                            kernels[i], max_steps));
        }
    }
    // Deterministic shuffle so duplicates interleave like real traffic.
    Rng rng(99);
    for (std::size_t i = dup.batch.size(); i > 1; --i) {
        std::swap(dup.batch[i - 1], dup.batch[rng.pickIndex(i)]);
    }

    const trs::Ruleset ruleset = trs::buildChehabRuleset();

    std::filesystem::create_directories("results");
    CsvWriter csv("results/service_throughput.csv",
                  {"scenario", "workers", "jobs", "distinct", "wall_s",
                   "jobs_per_s", "speedup_vs_serial", "compiled",
                   "cache_hits", "inflight_joins"});

    std::printf("%-8s %-8s %6s %9s %11s %9s %9s %6s %6s\n", "scenario",
                "workers", "jobs", "wall_s", "jobs/s", "speedup",
                "compiled", "hits", "joins");
    for (Scenario* scenario : {&cold, &dup}) {
        const double serial_seconds = runSerial(*scenario, ruleset);
        const double serial_rate =
            static_cast<double>(scenario->batch.size()) / serial_seconds;
        std::printf("%-8s %-8s %6zu %9.3f %11.1f %9s %9zu %6s %6s\n",
                    scenario->name.c_str(), "serial",
                    scenario->batch.size(), serial_seconds, serial_rate,
                    "1.00x", scenario->batch.size(), "-", "-");
        csv.writeRow(scenario->name, "serial", scenario->batch.size(),
                     scenario->distinct, serial_seconds, serial_rate, 1.0,
                     scenario->batch.size(), 0, 0);

        for (int workers : {1, 2, 4, 8}) {
            const RunResult run = runService(*scenario, workers);
            const double rate =
                static_cast<double>(scenario->batch.size()) /
                run.wall_seconds;
            const double speedup = serial_seconds / run.wall_seconds;
            std::printf(
                "%-8s %-8d %6zu %9.3f %11.1f %8.2fx %9llu %6llu %6llu\n",
                scenario->name.c_str(), workers, scenario->batch.size(),
                run.wall_seconds, rate, speedup,
                static_cast<unsigned long long>(run.stats.compiled),
                static_cast<unsigned long long>(run.stats.cache.hits),
                static_cast<unsigned long long>(
                    run.stats.cache.inflight_joins));
            csv.writeRow(scenario->name, workers, scenario->batch.size(),
                         scenario->distinct, run.wall_seconds, rate,
                         speedup, run.stats.compiled, run.stats.cache.hits,
                         run.stats.cache.inflight_joins);
        }
    }
    std::printf("[bench] wrote results/service_throughput.csv\n");
    return 0;
}
