/// \file
/// NTT hot-path microbench: forward/inverse transform and full
/// negacyclic poly-multiply throughput, old (seed mulMod-per-butterfly,
/// division in every reduction) vs new (Harvey lazy butterflies with
/// Shoup twiddles, Barrett pointwise) at n ∈ {2^12, 2^13, 2^14} over a
/// 30-bit NTT prime — the same prime width the SealLite coefficient
/// chains use.
///
/// Both paths are exercised from the same NttTables instance
/// (forwardBaseline/inverseBaseline preserve the seed code), so the
/// comparison isolates the reduction strategy: twiddles, ordering and
/// outputs are bit-identical, which this bench asserts on every size
/// before timing.
///
/// Output: one table row per (n, op) with µs/op for each path and the
/// speedup, plus results/ntt.csv with the same columns.
///
/// Raw speed round 2 additions: fwd_simd / inv_simd rows compare the
/// scalar Harvey path against the AVX2 dispatch (same tables, same lazy
/// reduction, 4-wide lanes; bit-identity asserted first), and a SealLite
/// multiply loop measures heap allocations per op on a warm arena.
/// CI floors: AVX2 forward >= CHEHAB_BENCH_SIMD_FLOOR x scalar at
/// n >= 4096 when the machine supports AVX2 (default 1.2x — the
/// "dispatch pays for itself" sanity bar for shared/virtualized
/// machines; the CI AVX2 leg pins 1.5x, the bare-metal target), and
/// zero arena-external allocations per steady-state multiply. The
/// scalar and SIMD sides are timed in alternating windows with the
/// minimum kept, so transient machine noise biases both sides equally
/// instead of landing on whichever ran second.
///
/// Environment knobs:
///  - CHEHAB_BENCH_FAST=1   n = 4096 only, shorter timing windows
///    (the CI per-push smoke).
///  - CHEHAB_BENCH_SIMD_FLOOR=<x>  forward AVX2-over-scalar floor.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/sealite.h"
#include "support/csv.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

/// Deterministic pseudo-random coefficients in [0, p) (splitmix64).
std::vector<std::uint64_t>
randomPoly(int n, std::uint64_t p, std::uint64_t seed)
{
    std::vector<std::uint64_t> poly(static_cast<std::size_t>(n));
    std::uint64_t state = seed;
    for (auto& c : poly) {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        c = (z ^ (z >> 31)) % p;
    }
    return poly;
}

/// Seconds per call: run \p fn in doubling batches until the window
/// fills, take the best (least-disturbed) rate of three passes.
double
secondsPerOp(double window_s, const std::function<void()>& fn)
{
    fn(); // warm caches and branch predictors
    double best = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
        int reps = 1;
        for (;;) {
            const Stopwatch timer;
            for (int r = 0; r < reps; ++r) fn();
            const double elapsed = timer.elapsedSeconds();
            if (elapsed >= window_s) {
                const double per_op = elapsed / reps;
                if (best == 0.0 || per_op < best) best = per_op;
                break;
            }
            reps *= 2;
        }
    }
    return best;
}

/// Minimum seconds per call for two functions timed in alternating
/// windows. A one-sided measurement is at the mercy of whatever the
/// machine was doing while that side ran; alternating spreads any
/// transient (VM neighbor, frequency excursion) across both sides, and
/// the per-side minimum is the least-disturbed estimate of each.
void
interleavedSecondsPerOp(double window_s, int passes,
                        const std::function<void()>& a_fn,
                        const std::function<void()>& b_fn,
                        double& a_best, double& b_best)
{
    a_fn();
    b_fn(); // warm caches and branch predictors
    a_best = 0.0;
    b_best = 0.0;
    for (int pass = 0; pass < passes; ++pass) {
        for (int side = 0; side < 2; ++side) {
            const std::function<void()>& fn = side == 0 ? a_fn : b_fn;
            double& best = side == 0 ? a_best : b_best;
            int reps = 1;
            for (;;) {
                const Stopwatch timer;
                for (int r = 0; r < reps; ++r) fn();
                const double elapsed = timer.elapsedSeconds();
                if (elapsed >= window_s) {
                    const double per_op = elapsed / reps;
                    if (best == 0.0 || per_op < best) best = per_op;
                    break;
                }
                reps *= 2;
            }
        }
    }
}

struct BenchRow
{
    int n = 0;
    const char* op = "";
    double old_s = 0.0;
    double new_s = 0.0;
    double speedup() const { return new_s > 0.0 ? old_s / new_s : 0.0; }
};

} // namespace

int
main()
{
    const bool fast = [] {
        const char* v = std::getenv("CHEHAB_BENCH_FAST");
        return v != nullptr && std::string(v) != "0";
    }();
    const double window_s = fast ? 0.02 : 0.15;
    std::vector<int> sizes = {1 << 12, 1 << 13, 1 << 14};
    if (fast) sizes = {1 << 12};

    std::printf("[bench] NTT hot path: seed mulMod vs Harvey/Shoup "
                "(%s mode)\n\n",
                fast ? "fast" : "full");
    std::printf("%6s %8s %12s %12s %9s\n", "n", "op", "old_us", "new_us",
                "speedup");

    std::vector<BenchRow> rows;
    for (const int n : sizes) {
        const std::uint64_t p =
            fhe::findNttPrimes(30, 1,
                               static_cast<std::uint64_t>(2 * n))[0];
        const std::shared_ptr<const fhe::NttTables> tables =
            fhe::acquireNttTables(n, p);
        const std::vector<std::uint64_t> a = randomPoly(n, p, 1);
        const std::vector<std::uint64_t> b = randomPoly(n, p, 2);

        // Bit-identity sanity: the timed paths must agree before the
        // numbers mean anything.
        {
            std::vector<std::uint64_t> lhs = a;
            std::vector<std::uint64_t> rhs = a;
            tables->forward(lhs.data());
            tables->forwardBaseline(rhs.data());
            if (lhs != rhs) {
                std::fprintf(stderr,
                             "bench_ntt: forward mismatch at n=%d\n", n);
                return 1;
            }
            tables->inverse(lhs.data());
            tables->inverseBaseline(rhs.data());
            if (lhs != rhs || lhs != a) {
                std::fprintf(stderr,
                             "bench_ntt: inverse mismatch at n=%d\n", n);
                return 1;
            }
        }

        std::vector<std::uint64_t> scratch = a;
        std::vector<std::uint64_t> scratch2 = b;
        BenchRow fwd{n, "forward"};
        fwd.old_s = secondsPerOp(window_s, [&] {
            tables->forwardBaseline(scratch.data());
        });
        fwd.new_s = secondsPerOp(window_s, [&] {
            tables->forward(scratch.data());
        });
        // Transforms round-trip values through [0, p) either way, so
        // the same scratch buffer stays a valid input across reps.
        BenchRow inv{n, "inverse"};
        inv.old_s = secondsPerOp(window_s, [&] {
            tables->inverseBaseline(scratch.data());
        });
        inv.new_s = secondsPerOp(window_s, [&] {
            tables->inverse(scratch.data());
        });

        // Full negacyclic product: two forwards, a pointwise multiply,
        // one inverse — the shape sealite.cc's mulPoly executes per
        // prime. Old pointwise = generic 128-bit division mulMod; new
        // pointwise = the tables' Barrett reducer.
        const fhe::Barrett& barrett = tables->reducer();
        BenchRow mul{n, "polymul"};
        mul.old_s = secondsPerOp(window_s, [&] {
            scratch = a;
            scratch2 = b;
            tables->forwardBaseline(scratch.data());
            tables->forwardBaseline(scratch2.data());
            for (int i = 0; i < n; ++i) {
                scratch[static_cast<std::size_t>(i)] = fhe::mulMod(
                    scratch[static_cast<std::size_t>(i)],
                    scratch2[static_cast<std::size_t>(i)], p);
            }
            tables->inverseBaseline(scratch.data());
        });
        mul.new_s = secondsPerOp(window_s, [&] {
            scratch = a;
            scratch2 = b;
            tables->forward(scratch.data());
            tables->forward(scratch2.data());
            for (int i = 0; i < n; ++i) {
                scratch[static_cast<std::size_t>(i)] = barrett.mulMod(
                    scratch[static_cast<std::size_t>(i)],
                    scratch2[static_cast<std::size_t>(i)]);
            }
            tables->inverse(scratch.data());
        });

        for (const BenchRow& row : {fwd, inv, mul}) {
            std::printf("%6d %8s %12.2f %12.2f %8.2fx\n", row.n, row.op,
                        row.old_s * 1e6, row.new_s * 1e6, row.speedup());
            rows.push_back(row);
        }

        // Scalar Harvey vs the AVX2 dispatch (Raw speed round 2): both
        // sides share this tables instance; only the butterfly width
        // differs.
        if (fhe::simdSupported()) {
            fhe::setSimdEnabled(true);
            std::vector<std::uint64_t> lhs = a;
            std::vector<std::uint64_t> rhs = a;
            tables->forward(lhs.data());
            tables->forwardScalar(rhs.data());
            if (lhs != rhs) {
                std::fprintf(stderr,
                             "bench_ntt: AVX2 forward mismatch at n=%d\n",
                             n);
                return 1;
            }
            tables->inverse(lhs.data());
            tables->inverseScalar(rhs.data());
            if (lhs != rhs || lhs != a) {
                std::fprintf(stderr,
                             "bench_ntt: AVX2 inverse mismatch at n=%d\n",
                             n);
                return 1;
            }
            scratch = a;
            const int simd_passes = fast ? 5 : 8;
            BenchRow sfwd{n, "fwd_simd"};
            interleavedSecondsPerOp(
                window_s, simd_passes,
                [&] { tables->forwardScalar(scratch.data()); },
                [&] { tables->forward(scratch.data()); }, sfwd.old_s,
                sfwd.new_s);
            BenchRow sinv{n, "inv_simd"};
            interleavedSecondsPerOp(
                window_s, simd_passes,
                [&] { tables->inverseScalar(scratch.data()); },
                [&] { tables->inverse(scratch.data()); }, sinv.old_s,
                sinv.new_s);
            for (const BenchRow& row : {sfwd, sinv}) {
                std::printf("%6d %8s %12.2f %12.2f %8.2fx\n", row.n,
                            row.op, row.old_s * 1e6, row.new_s * 1e6,
                            row.speedup());
                rows.push_back(row);
            }
        }
    }

    // Allocations per op: a steady-state SealLite multiply on a warm
    // arena must mint zero fresh buffers — every poly and scratch
    // acquisition is served from the freelist.
    std::uint64_t allocs_per_op = 0;
    {
        fhe::SealLiteParams params;
        params.n = 1024;
        fhe::SealLite scheme(params);
        const fhe::Plaintext plain = scheme.encode({1, 2, 3, 4});
        const fhe::Ciphertext ct = scheme.encrypt(plain);
        // Priming pass populates the freelist with every size class the
        // op cycles through.
        fhe::Ciphertext warm = scheme.multiply(ct, ct);
        scheme.recycle(std::move(warm));
        const fhe::PolyArena::Stats before = scheme.arenaStats();
        const int ops = 16;
        for (int i = 0; i < ops; ++i) {
            fhe::Ciphertext out = scheme.multiply(ct, ct);
            scheme.recycle(std::move(out));
        }
        const fhe::PolyArena::Stats after = scheme.arenaStats();
        allocs_per_op = (after.allocs - before.allocs) /
                        static_cast<std::uint64_t>(ops);
        std::printf("\n[bench] arena: %llu allocs / %llu reuses across "
                    "%d steady-state multiplies -> %llu allocs/op "
                    "(floor: 0)\n",
                    static_cast<unsigned long long>(after.allocs -
                                                    before.allocs),
                    static_cast<unsigned long long>(after.reuses -
                                                    before.reuses),
                    ops, static_cast<unsigned long long>(allocs_per_op));
    }

    // The forward transform is the gated row (the ISSUE's CI floor);
    // the inverse ratio is reported alongside for visibility — its
    // scalar baseline is faster (no separate normalize pass to beat),
    // so its ratio is structurally lower.
    const double simd_floor = [] {
        const char* v = std::getenv("CHEHAB_BENCH_SIMD_FLOOR");
        return v != nullptr ? std::atof(v) : 1.2;
    }();
    double polymul_worst = 0.0;
    double fwd_simd_worst = 0.0;
    double inv_simd_worst = 0.0;
    for (const BenchRow& row : rows) {
        if (std::string(row.op) == "polymul" &&
            (polymul_worst == 0.0 || row.speedup() < polymul_worst)) {
            polymul_worst = row.speedup();
        }
        if (row.n < 4096) continue;
        if (std::string(row.op) == "fwd_simd" &&
            (fwd_simd_worst == 0.0 || row.speedup() < fwd_simd_worst)) {
            fwd_simd_worst = row.speedup();
        }
        if (std::string(row.op) == "inv_simd" &&
            (inv_simd_worst == 0.0 || row.speedup() < inv_simd_worst)) {
            inv_simd_worst = row.speedup();
        }
    }
    std::printf("\n[bench] worst-case poly-multiply speedup: %.2fx "
                "(acceptance floor: 2x)\n",
                polymul_worst);
    if (fhe::simdSupported()) {
        std::printf("[bench] AVX2-over-scalar forward speedup at "
                    "n >= 4096: %.2fx (floor: %.2fx; inverse: %.2fx, "
                    "reported only)\n",
                    fwd_simd_worst, simd_floor, inv_simd_worst);
    } else {
        std::printf("[bench] AVX2 rows skipped (%s)\n",
                    fhe::simdCompiledIn() ? "cpu lacks AVX2"
                                          : "not compiled in");
    }

    std::filesystem::create_directories("results");
    CsvWriter csv("results/ntt.csv",
                  {"n", "op", "old_us", "new_us", "speedup"});
    for (const BenchRow& row : rows) {
        csv.writeRow(row.n, row.op, row.old_s * 1e6, row.new_s * 1e6,
                     row.speedup());
    }
    std::printf("[bench] wrote results/ntt.csv\n");

    // The CI smoke treats a regression below the acceptance floors as a
    // failure: the hot path cannot silently rot back to divisions, the
    // AVX2 dispatch cannot quietly stop paying for itself, and the
    // evaluator cannot start leaking allocations past the arena.
    if (polymul_worst < 2.0) return 1;
    if (fhe::simdSupported() && fwd_simd_worst < simd_floor) return 1;
    if (allocs_per_op != 0) return 1;
    return 0;
}
