/// \file
/// Figure 8: training-data ablation — an agent trained on the
/// LLM-distribution (motif) corpus vs the same agent trained on uniform
/// random programs (App. H.2). The paper observes order-of-magnitude
/// execution-time gaps in favour of the realistic corpus.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_MotifGeneration(benchmark::State& state)
{
    chehab::dataset::MotifSynthesizer synth(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth.generate());
    }
}
BENCHMARK(BM_MotifGeneration);

void
BM_RandomGeneration(benchmark::State& state)
{
    chehab::dataset::RandomProgramGenerator gen(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.generate());
    }
}
BENCHMARK(BM_RandomGeneration);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    std::vector<chehab::benchsuite::Kernel> kernels = {
        chehab::benchsuite::dotProduct(8),
        chehab::benchsuite::hammingDistance(8),
        chehab::benchsuite::l2Distance(8),
        chehab::benchsuite::linearReg(8),
        chehab::benchsuite::matMul(3),
    };

    auto train_and_eval = [&](const char* label,
                              std::vector<chehab::ir::ExprPtr> corpus) {
        chehab::rl::AgentConfig config = h.agentConfig();
        // Ablations compare pure policies: no cost-guided seed.
        config.use_greedy_seed = false;
        config.ppo.total_timesteps =
            std::max(512, h.budget().train_steps / 2);
        chehab::rl::RlAgent agent(h.ruleset(), config);
        std::fprintf(stderr, "[bench] training on %s data...\n", label);
        agent.train(corpus);
        std::vector<Row> rows;
        for (const auto& kernel : kernels) {
            rows.push_back(
                h.evaluate(kernel, label, h.compileRL(agent, kernel)));
        }
        return rows;
    };

    const std::vector<Row> llm =
        train_and_eval("LLM-data", h.motifDataset(256));
    const std::vector<Row> random =
        train_and_eval("random", h.randomDataset(256));

    Harness::printComparison("Fig. 8 — LLM vs random training data", llm,
                             random);
    std::vector<Row> all = llm;
    all.insert(all.end(), random.begin(), random.end());
    Harness::writeCsv("fig8_dataset_ablation.csv", all);

    const double ratio = Harness::geomeanRatio(random, llm, &Row::exec_s);
    std::printf("\nLLM-distribution training yields %.2fx faster circuits "
                "than random training (geomean; paper shows up to 13x on "
                "single kernels)\n", ratio);
    return 0;
}
