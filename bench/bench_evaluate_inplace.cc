/// \file
/// Raw speed round 2: the in-place evaluator on the Fig. 5 kernel mix.
/// Each kernel is compiled once (no-opt pipeline — the evaluator, not
/// the optimizer, is under test) and executed twice on the same
/// runtime: once with the copying evaluator and once with the
/// destructive last-use evaluator. The bench asserts the two runs
/// decode to bit-identical outputs (the determinism contract), then
/// reports per-kernel wall time, the copies the in-place path avoided
/// (InPlaceStats), and the steady-state arena alloc count — which must
/// be zero after the priming pass, mirroring bench_ntt's floor.
///
/// Exit status is the CI gate: non-zero when any kernel's outputs
/// diverge or when steady-state execution still mints arena buffers.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchsuite/kernels.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "support/stopwatch.h"

namespace {

using chehab::benchsuite::Kernel;
using chehab::compiler::Compiled;
using chehab::compiler::FheRuntime;
using chehab::compiler::RunResult;

/// The Fig. 5 mix, scaled down so the bench stays a smoke test: one
/// representative of each kernel family (reduction, elementwise,
/// image stencil, matrix, tree).
std::vector<Kernel>
kernelMix(bool fast)
{
    const int n = fast ? 4 : 8;
    std::vector<Kernel> mix;
    mix.push_back(chehab::benchsuite::dotProduct(n));
    mix.push_back(chehab::benchsuite::l2Distance(n));
    mix.push_back(chehab::benchsuite::polyReg(n));
    mix.push_back(chehab::benchsuite::boxBlur(fast ? 3 : 4));
    mix.push_back(chehab::benchsuite::matMul(2));
    mix.push_back(chehab::benchsuite::maxKernel(n));
    return mix;
}

} // namespace

int
main()
{
    const bool fast = std::getenv("CHEHAB_BENCH_FAST") != nullptr;
    const std::vector<Kernel> mix = kernelMix(fast);

    FheRuntime runtime;
    int failures = 0;
    std::uint64_t total_saved = 0;

    std::printf("%-16s %12s %12s %8s %9s %9s %7s\n", "kernel",
                "copy_ms", "inplace_ms", "speedup", "consumed", "copies",
                "match");
    for (const Kernel& kernel : mix) {
        const Compiled compiled = chehab::compiler::compileNoOpt(kernel.program);
        const chehab::ir::Env env =
            chehab::benchsuite::syntheticInputs(kernel.program);

        runtime.setInPlaceEnabled(false);
        const chehab::Stopwatch copy_watch;
        const RunResult copying = runtime.run(compiled.program, env);
        const double copy_s = copy_watch.elapsedSeconds();

        runtime.setInPlaceEnabled(true);
        const chehab::compiler::InPlaceStats before = runtime.inPlaceStats();
        const chehab::Stopwatch inplace_watch;
        const RunResult inplace = runtime.run(compiled.program, env);
        const double inplace_s = inplace_watch.elapsedSeconds();
        const chehab::compiler::InPlaceStats after = runtime.inPlaceStats();

        const bool match = copying.output == inplace.output;
        if (!match) ++failures;
        const std::uint64_t consumed = after.consumed - before.consumed;
        const std::uint64_t copies = after.copies - before.copies;
        total_saved += consumed;
        std::printf("%-16s %12.2f %12.2f %7.2fx %9llu %9llu %7s\n",
                    kernel.name.c_str(), copy_s * 1e3, inplace_s * 1e3,
                    inplace_s > 0.0 ? copy_s / inplace_s : 0.0,
                    static_cast<unsigned long long>(consumed),
                    static_cast<unsigned long long>(copies),
                    match ? "yes" : "NO");
    }

    // Steady-state arena check: the passes above primed every buffer
    // size class, so replaying the whole mix must not mint anything.
    const chehab::fhe::PolyArena::Stats primed = runtime.arenaStats();
    for (const Kernel& kernel : mix) {
        const Compiled compiled = chehab::compiler::compileNoOpt(kernel.program);
        (void)runtime.run(compiled.program,
                          chehab::benchsuite::syntheticInputs(kernel.program));
    }
    const chehab::fhe::PolyArena::Stats steady = runtime.arenaStats();
    const std::uint64_t steady_allocs = steady.allocs - primed.allocs;

    std::printf("\nciphertext copies avoided across the mix: %llu\n",
                static_cast<unsigned long long>(total_saved));
    std::printf("steady-state arena allocs over a full replay: %llu "
                "(floor: 0; %llu reuses)\n",
                static_cast<unsigned long long>(steady_allocs),
                static_cast<unsigned long long>(steady.reuses - primed.reuses));

    if (failures > 0) {
        std::fprintf(stderr, "FAIL: %d kernel(s) diverged between the "
                             "copying and in-place evaluators\n", failures);
        return 1;
    }
    if (steady_allocs != 0) {
        std::fprintf(stderr, "FAIL: steady-state execution minted %llu "
                             "arena buffer(s); expected 0\n",
                     static_cast<unsigned long long>(steady_allocs));
        return 1;
    }
    std::printf("OK: in-place evaluator bit-identical to copying "
                "evaluator on all %zu kernels\n", mix.size());
    return 0;
}
