#include "common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "ir/evaluator.h"
#include "support/csv.h"
#include "support/error.h"

namespace chehab::benchcommon {

Budget
budgetFromEnv()
{
    Budget budget;
    if (const char* fast = std::getenv("CHEHAB_BENCH_FAST")) {
        budget.fast = std::string(fast) == "1";
    }
    if (budget.fast) {
        budget.train_steps = 640;
        budget.max_n = 8;
        budget.tree_depth = 6;
    }
    if (const char* steps = std::getenv("CHEHAB_BENCH_TRAIN_STEPS")) {
        budget.train_steps = std::atoi(steps);
    }
    if (const char* filter = std::getenv("CHEHAB_BENCH_KERNEL_FILTER")) {
        budget.filter = filter;
    }
    return budget;
}

Harness::Harness(Budget budget)
    : budget_(std::move(budget)), ruleset_(trs::buildChehabRuleset())
{
    for (benchsuite::Kernel& kernel :
         benchsuite::fullSuite(budget_.max_n, budget_.tree_depth)) {
        if (!budget_.filter.empty() &&
            kernel.name.find(budget_.filter) == std::string::npos) {
            continue;
        }
        kernels_.push_back(std::move(kernel));
    }
}

rl::AgentConfig
Harness::agentConfig() const
{
    rl::AgentConfig config;
    config.env.max_steps = 32;
    config.env.max_locations = 8;
    config.policy.encoder.d_model = 32;
    config.policy.encoder.n_layers = 2;
    config.policy.encoder.n_heads = 4;
    config.policy.encoder.d_ff = 64;
    config.policy.encoder.max_len = 96;
    config.policy.rule_hidden = {128, 64};
    config.policy.loc_hidden = {64, 64};
    config.policy.critic_hidden = {128, 64};
    config.ppo.steps_per_update = 256;
    config.ppo.minibatch_size = 64;
    config.ppo.update_epochs = 3;
    config.ppo.total_timesteps = budget_.train_steps;
    config.ppo.max_token_len = 96;
    config.ppo.learning_rate = 3e-4f;
    config.compile_rollouts = 3;
    return config;
}

std::vector<ir::ExprPtr>
Harness::motifDataset(int size) const
{
    std::vector<ir::ExprPtr> excluded;
    excluded.reserve(kernels_.size());
    for (const auto& kernel : kernels_) excluded.push_back(kernel.program);
    dataset::MotifGenConfig config;
    config.max_terms = 8;
    config.max_width = 6;
    dataset::MotifSynthesizer synth(1234, config);
    return dataset::buildDataset([&synth] { return synth.generate(); },
                                 size, excluded);
}

std::vector<ir::ExprPtr>
Harness::randomDataset(int size) const
{
    std::vector<ir::ExprPtr> excluded;
    for (const auto& kernel : kernels_) excluded.push_back(kernel.program);
    dataset::RandomGenConfig config;
    config.max_depth = 6;
    config.max_width = 6;
    dataset::RandomProgramGenerator gen(1234, config);
    return dataset::buildDataset([&gen] { return gen.generate(); }, size,
                                 excluded);
}

rl::RlAgent&
Harness::agent()
{
    if (!agent_) {
        std::fprintf(stderr,
                     "[bench] training shared CHEHAB RL agent (%d steps, "
                     "%zu-program corpus)...\n",
                     budget_.train_steps, static_cast<std::size_t>(512));
        agent_ = std::make_unique<rl::RlAgent>(ruleset_, agentConfig());
        agent_->train(motifDataset());
    }
    return *agent_;
}

compiler::Compiled
Harness::compileRL(const benchsuite::Kernel& kernel)
{
    return compiler::compileWithAgent(agent(), kernel.program);
}

compiler::Compiled
Harness::compileRL(const rl::RlAgent& custom_agent,
                   const benchsuite::Kernel& kernel)
{
    return compiler::compileWithAgent(custom_agent, kernel.program);
}

compiler::Compiled
Harness::compileCoyote(const benchsuite::Kernel& kernel)
{
    baselines::CoyoteConfig config;
    config.refinement_factor = budget_.fast ? 500 : 5000;
    const baselines::CoyoteResult coyote =
        baselines::coyoteCompile(kernel.program, config);
    compiler::Compiled compiled;
    compiled.optimized = coyote.program;
    compiled.program = compiler::schedule(coyote.program);
    compiler::PassStats coyote_pass;
    coyote_pass.name = "coyote";
    coyote_pass.seconds = coyote.compile_seconds;
    compiled.stats.passes.push_back(std::move(coyote_pass));
    compiled.stats.final_cost = ir::cost(coyote.program);
    compiled.stats.circuit_depth = ir::circuitDepth(coyote.program);
    compiled.stats.mult_depth = ir::multiplicativeDepth(coyote.program);
    compiled.stats.ir_counts = ir::countOps(coyote.program);
    return compiled;
}

compiler::Compiled
Harness::compileGreedy(const benchsuite::Kernel& kernel)
{
    return compiler::compileGreedy(ruleset_, kernel.program, {},
                                   /*max_steps=*/48);
}

compiler::Compiled
Harness::compileInitial(const benchsuite::Kernel& kernel)
{
    return compiler::compileNoOpt(kernel.program);
}

ir::Env
randomEnv(const ir::ExprPtr& program, std::uint64_t seed)
{
    Rng rng(seed);
    ir::Env env;
    for (const std::string& name : ir::ciphertextVars(program)) {
        env[name] = static_cast<std::int64_t>(rng.uniformInt(64));
    }
    for (const std::string& name : ir::plaintextVars(program)) {
        env[name] = static_cast<std::int64_t>(rng.uniformInt(64));
    }
    return env;
}

LatencySummary
latencySummary(const telemetry::TelemetrySnapshot& snapshot)
{
    LatencySummary summary;
    const telemetry::LatencyHistogram& qwait =
        snapshot.phase(telemetry::Phase::QueueWait);
    const telemetry::LatencyHistogram& compile =
        snapshot.phase(telemetry::Phase::Compile);
    const telemetry::LatencyHistogram& exec =
        snapshot.phase(telemetry::Phase::Execute);
    summary.qwait_p50 = qwait.percentile(50.0);
    summary.qwait_p99 = qwait.percentile(99.0);
    summary.compile_p50 = compile.percentile(50.0);
    summary.compile_p99 = compile.percentile(99.0);
    summary.exec_p50 = exec.percentile(50.0);
    summary.exec_p99 = exec.percentile(99.0);
    summary.window_wait_p99 =
        snapshot.phase(telemetry::Phase::WindowWait).percentile(99.0);
    return summary;
}

const std::vector<std::string>&
latencyCsvColumns()
{
    static const std::vector<std::string> columns = {
        "qwait_p50", "qwait_p99",      "compile_p50",    "compile_p99",
        "exec_p50",  "exec_p99",       "window_wait_p99"};
    return columns;
}

void
appendLatencyColumns(std::vector<std::string>& header)
{
    const std::vector<std::string>& columns = latencyCsvColumns();
    header.insert(header.end(), columns.begin(), columns.end());
}

void
printPhaseTable(const telemetry::TelemetrySnapshot& snapshot)
{
    std::printf("%-12s %9s %10s %10s %10s %10s\n", "phase", "count",
                "p50_ms", "p90_ms", "p99_ms", "max_ms");
    for (int p = 0; p < telemetry::kPhaseCount; ++p) {
        const telemetry::LatencyHistogram& hist =
            snapshot.hist[static_cast<std::size_t>(p)];
        if (hist.count() == 0) continue;
        std::printf("%-12s %9llu %10.3f %10.3f %10.3f %10.3f\n",
                    telemetry::phaseName(static_cast<telemetry::Phase>(p)),
                    static_cast<unsigned long long>(hist.count()),
                    hist.percentile(50.0) * 1e3,
                    hist.percentile(90.0) * 1e3,
                    hist.percentile(99.0) * 1e3, hist.max() * 1e3);
    }
}

Row
Harness::evaluate(const benchsuite::Kernel& kernel,
                  const std::string& compiler_label,
                  const compiler::Compiled& compiled)
{
    if (!runtime_) {
        fhe::SealLiteParams params;
        params.n = 512;        // 256 slots: covers the suite's packs.
        params.prime_count = 6;
        params.seed = 4242;
        runtime_ = std::make_unique<compiler::FheRuntime>(params);
        latencies_ = runtime_->calibrate(1);
    }

    Row row;
    row.kernel = kernel.name;
    row.compiler = compiler_label;
    row.compile_s = compiled.stats.totalSeconds();
    row.depth = compiled.stats.circuit_depth;
    row.mult_depth = compiled.stats.mult_depth;

    const compiler::FheProgram::Counts counts = compiled.program.counts();
    row.ct_ct_mul = counts.ct_ct_mul;
    row.ct_pt_mul = counts.ct_pt_mul;
    row.rotations = counts.rotations;
    row.ct_add = counts.ct_add;

    const ir::Env env = randomEnv(kernel.program, 97);
    // Large circuits (very deep trees, > 400 homomorphic ops) fall back
    // to the calibrated per-op latency estimate to keep bench wall time
    // bounded on a 1-core box.
    const int total_ops = counts.ct_add + counts.ct_ct_mul +
                          counts.ct_pt_mul + counts.rotations;
    if (total_ops > 400) {
        row.exec_estimated = true;
        row.exec_s = runtime_->estimate(compiled.program, *latencies_);
        row.consumed_noise = -1;
        return row;
    }
    try {
        const compiler::RunResult run =
            runtime_->run(compiled.program, env);
        row.exec_s = run.exec_seconds;
        row.consumed_noise = run.consumed_noise;
        row.final_budget = run.final_noise_budget;
        row.budget_exhausted = run.final_noise_budget <= 0;
        // Compare against the reference evaluator.
        const ir::Value expected =
            ir::Evaluator().evaluate(kernel.program, env);
        row.correct = !row.budget_exhausted;
        // Rewrites may legally widen the output vector (prefix
        // semantics): only the reference's slots are meaningful.
        const std::size_t meaningful =
            std::min(run.output.size(), expected.slots.size());
        for (std::size_t i = 0; i < meaningful && row.correct; ++i) {
            if (run.output[i] != expected.slots[i]) row.correct = false;
        }
    } catch (const ::chehab::CompileError &) {
        // Pack wider than the toy backend's row: estimate instead.
        row.exec_estimated = true;
        row.exec_s = runtime_->estimate(compiled.program, *latencies_);
        row.consumed_noise = -1;
    }
    return row;
}

namespace {

std::string
sanitize(const std::string& label)
{
    std::string out;
    for (char c : label) {
        out += (std::isalnum(static_cast<unsigned char>(c)) != 0)
                   ? static_cast<char>(std::tolower(
                         static_cast<unsigned char>(c)))
                   : '_';
    }
    return out;
}

} // namespace

std::vector<Row>
Harness::suiteRows(const std::string& label)
{
    const std::string cache_path =
        "results/suite_cache_" + sanitize(label) +
        (budget_.fast ? "_fast" : "") + ".csv";

    // Try the cache: it must cover exactly the current kernel list.
    {
        std::ifstream in(cache_path);
        if (in) {
            std::vector<Row> rows;
            std::string line;
            std::getline(in, line); // Header.
            while (std::getline(in, line)) {
                const std::vector<std::string> cells = splitCsvLine(line);
                if (cells.size() < 15) continue;
                Row row;
                row.kernel = cells[0];
                row.compiler = cells[1];
                row.compile_s = std::atof(cells[2].c_str());
                row.exec_s = std::atof(cells[3].c_str());
                row.exec_estimated = cells[4] == "1";
                row.consumed_noise = std::atoi(cells[5].c_str());
                row.final_budget = std::atoi(cells[6].c_str());
                row.budget_exhausted = cells[7] == "1";
                row.correct = cells[8] == "1";
                row.depth = std::atoi(cells[9].c_str());
                row.mult_depth = std::atoi(cells[10].c_str());
                row.ct_ct_mul = std::atoi(cells[11].c_str());
                row.ct_pt_mul = std::atoi(cells[12].c_str());
                row.rotations = std::atoi(cells[13].c_str());
                row.ct_add = std::atoi(cells[14].c_str());
                rows.push_back(std::move(row));
            }
            if (rows.size() == kernels_.size()) {
                bool all_match = true;
                for (std::size_t i = 0; i < rows.size(); ++i) {
                    if (rows[i].kernel != kernels_[i].name) {
                        all_match = false;
                    }
                }
                if (all_match) {
                    std::fprintf(stderr, "[bench] reusing %s\n",
                                 cache_path.c_str());
                    return rows;
                }
            }
        }
    }

    std::vector<Row> rows;
    for (const benchsuite::Kernel& kernel : kernels_) {
        compiler::Compiled compiled;
        if (label == "CHEHAB RL") {
            compiled = compileRL(kernel);
        } else if (label == "Coyote") {
            compiled = compileCoyote(kernel);
        } else if (label == "CHEHAB") {
            compiled = compileGreedy(kernel);
        } else {
            compiled = compileInitial(kernel);
        }
        rows.push_back(evaluate(kernel, label, compiled));
        std::fprintf(stderr, "[bench] %-12s %-20s done\n", label.c_str(),
                     kernel.name.c_str());
    }
    std::filesystem::create_directories("results");
    {
        CsvWriter csv(cache_path,
                      {"kernel", "compiler", "compile_s", "exec_s",
                       "exec_estimated", "consumed_noise", "final_budget",
                       "budget_exhausted", "correct", "depth", "mult_depth",
                       "ct_ct_mul", "ct_pt_mul", "rotations", "ct_add"});
        for (const Row& row : rows) {
            csv.writeRow(row.kernel, row.compiler, row.compile_s,
                         row.exec_s, row.exec_estimated ? 1 : 0,
                         row.consumed_noise, row.final_budget,
                         row.budget_exhausted ? 1 : 0, row.correct ? 1 : 0,
                         row.depth, row.mult_depth, row.ct_ct_mul,
                         row.ct_pt_mul, row.rotations, row.ct_add);
        }
    }
    return rows;
}

double
Harness::geomeanRatio(const std::vector<Row>& base,
                      const std::vector<Row>& other, double Row::* metric)
{
    double log_sum = 0.0;
    int count = 0;
    for (const Row& b : base) {
        for (const Row& o : other) {
            if (o.kernel != b.kernel) continue;
            const double x = b.*metric;
            const double y = o.*metric;
            if (x > 0.0 && y > 0.0) {
                log_sum += std::log(x / y);
                ++count;
            }
        }
    }
    return count ? std::exp(log_sum / count) : 0.0;
}

void
Harness::writeCsv(const std::string& name, const std::vector<Row>& rows)
{
    std::filesystem::create_directories("results");
    CsvWriter csv("results/" + name,
                  {"kernel", "compiler", "compile_s", "exec_s",
                   "exec_estimated", "consumed_noise", "final_budget",
                   "budget_exhausted", "correct", "depth", "mult_depth",
                   "ct_ct_mul", "ct_pt_mul", "rotations", "ct_add"});
    for (const Row& row : rows) {
        csv.writeRow(row.kernel, row.compiler, row.compile_s, row.exec_s,
                     row.exec_estimated, row.consumed_noise,
                     row.final_budget, row.budget_exhausted, row.correct,
                     row.depth, row.mult_depth, row.ct_ct_mul,
                     row.ct_pt_mul, row.rotations, row.ct_add);
    }
    std::printf("[bench] wrote results/%s\n", name.c_str());
}

void
Harness::printComparison(const std::string& title, const std::vector<Row>& a,
                         const std::vector<Row>& b)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-20s %-12s %12s %12s %8s %6s %6s %6s %6s\n", "kernel",
                "compiler", "compile_s", "exec_s", "noise", "x", "+", "rot",
                "pt*");
    auto print_rows = [](const std::vector<Row>& rows) {
        for (const Row& row : rows) {
            std::printf("%-20s %-12s %12.4f %12.6f %8d %6d %6d %6d %6d%s\n",
                        row.kernel.c_str(), row.compiler.c_str(),
                        row.compile_s, row.exec_s, row.consumed_noise,
                        row.ct_ct_mul, row.ct_add, row.rotations,
                        row.ct_pt_mul,
                        row.exec_estimated
                            ? " (est)"
                            : (row.budget_exhausted ? " (EXHAUSTED)" : ""));
        }
    };
    print_rows(a);
    print_rows(b);
}

} // namespace chehab::benchcommon
