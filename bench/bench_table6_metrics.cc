/// \file
/// Table 6: per-kernel circuit statistics — circuit depth (∪),
/// multiplicative depth (∪⊗), ct-ct multiplications (⊗), rotations (⟳),
/// ct-pt multiplications (⊙), ciphertext additions (⊕), compile time (CT)
/// and consumed noise (CN) — for the Initial (naive) implementation,
/// CHEHAB RL, and Coyote.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_ScheduleKernel(benchmark::State& state)
{
    // Cost of scheduling (CSE + lowering) the largest matmul kernel.
    const chehab::benchsuite::Kernel kernel = chehab::benchsuite::matMul(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            chehab::compiler::schedule(kernel.program));
    }
}
BENCHMARK(BM_ScheduleKernel)->Iterations(3);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    const std::vector<Row> initial = h.suiteRows("Initial");
    const std::vector<Row> rl = h.suiteRows("CHEHAB RL");
    const std::vector<Row> coyote = h.suiteRows("Coyote");

    std::printf("\n=== Table 6 — circuit statistics ===\n");
    std::printf("%-20s | %-8s | %3s %3s %5s %5s %5s %5s %9s %6s\n",
                "kernel", "compiler", "D", "Dx", "ctct", "rot", "ctpt",
                "add", "CT(s)", "CN");
    auto print_row = [](const Row& row) {
        std::printf("%-20s | %-8s | %3d %3d %5d %5d %5d %5d %9.4f %6d%s\n",
                    row.kernel.c_str(), row.compiler.c_str(), row.depth,
                    row.mult_depth, row.ct_ct_mul, row.rotations,
                    row.ct_pt_mul, row.ct_add, row.compile_s,
                    row.consumed_noise,
                    row.budget_exhausted ? " (EXHAUSTED)" : "");
    };
    for (std::size_t i = 0; i < initial.size(); ++i) {
        print_row(initial[i]);
        print_row(rl[i]);
        print_row(coyote[i]);
    }

    std::vector<Row> all = initial;
    all.insert(all.end(), rl.begin(), rl.end());
    all.insert(all.end(), coyote.begin(), coyote.end());
    Harness::writeCsv("table6_metrics.csv", all);

    // Shape assertions from the paper, reported (not enforced):
    // CHEHAB RL should lower multiplicative depth and rotations relative
    // to Coyote on most kernels.
    int rl_fewer_rot = 0;
    int comparable = 0;
    for (std::size_t i = 0; i < rl.size(); ++i) {
        ++comparable;
        if (rl[i].rotations <= coyote[i].rotations) ++rl_fewer_rot;
    }
    std::printf("\nCHEHAB RL uses <= rotations than Coyote on %d/%d "
                "kernels\n", rl_fewer_rot, comparable);
    return 0;
}
