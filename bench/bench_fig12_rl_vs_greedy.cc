/// \file
/// Figure 12: CHEHAB RL vs the original CHEHAB (greedy best-improvement
/// TRS). The paper finds RL faster on most kernels, with occasional
/// greedy wins (e.g. Gx 3x3) where the learned policy pays for a rotation
/// that does not amortize.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_GreedyCompile(benchmark::State& state)
{
    auto& h = harness();
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::dotProduct(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.compileGreedy(kernel));
    }
}
BENCHMARK(BM_GreedyCompile)->Arg(8)->Iterations(1);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    const std::vector<Row> rl = h.suiteRows("CHEHAB RL");
    const std::vector<Row> greedy = h.suiteRows("CHEHAB");
    Harness::printComparison("Fig. 12 — CHEHAB (greedy) vs CHEHAB RL", rl,
                             greedy);
    std::vector<Row> all = rl;
    all.insert(all.end(), greedy.begin(), greedy.end());
    Harness::writeCsv("fig12_rl_vs_greedy.csv", all);

    const double ratio = Harness::geomeanRatio(greedy, rl, &Row::exec_s);
    std::printf("\nCHEHAB RL vs greedy CHEHAB execution-time geomean: "
                "%.2fx\n", ratio);
    int greedy_wins = 0;
    for (std::size_t i = 0; i < rl.size(); ++i) {
        if (greedy[i].exec_s < rl[i].exec_s) ++greedy_wins;
    }
    std::printf("greedy wins on %d/%zu kernels (paper: occasional, e.g. "
                "Gx 3x3)\n", greedy_wins, rl.size());
    return 0;
}
