/// \file
/// End-to-end compile-and-execute throughput benchmark: jobs/sec for
/// CompileService::runBatch at 1/2/4/8 workers, on two batch shapes:
///
///   cold — distinct kernels only (measures worker-pool scaling of the
///          execute path and per-parameter runtime pooling; every job
///          compiles and runs),
///   dup  — a 90%-duplicate batch (each kernel repeated 10x, shuffled),
///          where the run-result cache and single-flight dedup carry
///          the load (each distinct job executes once).
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller batch and rewrite budget
///
/// Writes results/service_execute.csv through the shared support/csv.h
/// writer and prints a summary table.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

struct Scenario
{
    std::string name;
    std::vector<service::RunRequest> batch;
    std::size_t distinct = 0;
};

/// Suite kernels that fit the toy 128-slot batching row used here.
std::vector<benchsuite::Kernel>
executableKernels(bool fast)
{
    std::vector<benchsuite::Kernel> kernels = {
        benchsuite::dotProduct(4),     benchsuite::dotProduct(8),
        benchsuite::l2Distance(4),     benchsuite::hammingDistance(4),
        benchsuite::linearReg(8),      benchsuite::polyReg(8),
        benchsuite::robertsCross(3),
    };
    if (!fast) {
        kernels.push_back(benchsuite::dotProduct(16));
        kernels.push_back(benchsuite::l2Distance(8));
        kernels.push_back(benchsuite::hammingDistance(8));
        kernels.push_back(benchsuite::robertsCross(4));
        kernels.push_back(benchsuite::boxBlur(3));
    }
    return kernels;
}

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int max_steps)
{
    service::RunRequest request;
    request.name = kernel.name;
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 256;
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    return request;
}

struct RunOutcome
{
    double wall_seconds = 0.0;
    service::ServiceStats stats;
};

RunOutcome
runService(const Scenario& scenario, int workers)
{
    service::CompileService compile_service({workers});
    std::vector<service::RunRequest> batch = scenario.batch;
    const Stopwatch wall;
    std::vector<service::RunResponse> responses =
        compile_service.runBatch(std::move(batch));
    RunOutcome outcome;
    outcome.wall_seconds = wall.elapsedSeconds();
    outcome.stats = compile_service.stats();
    for (const service::RunResponse& response : responses) {
        if (!response.ok) {
            std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                         response.name.c_str(), response.error.c_str());
        }
    }
    return outcome;
}

} // namespace

int
main()
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 8 : 20;
    const int dup_factor = 10; // 90%-duplicate batch.

    const std::vector<benchsuite::Kernel> kernels =
        executableKernels(budget.fast);

    Scenario cold;
    cold.name = "cold";
    cold.distinct = kernels.size();
    for (const benchsuite::Kernel& kernel : kernels) {
        cold.batch.push_back(makeRequest(kernel, max_steps));
    }

    Scenario dup;
    dup.name = "dup90";
    dup.distinct = kernels.size();
    for (int r = 0; r < dup_factor; ++r) {
        for (const benchsuite::Kernel& kernel : kernels) {
            dup.batch.push_back(makeRequest(kernel, max_steps));
        }
    }
    // Deterministic shuffle so duplicates interleave like real traffic.
    Rng rng(99);
    for (std::size_t i = dup.batch.size(); i > 1; --i) {
        std::swap(dup.batch[i - 1], dup.batch[rng.pickIndex(i)]);
    }

    std::filesystem::create_directories("results");
    CsvWriter csv("results/service_execute.csv",
                  {"scenario", "workers", "jobs", "distinct", "wall_s",
                   "jobs_per_s", "compiled", "executed", "run_hits",
                   "run_joins", "runtimes"});

    std::printf("%-8s %-8s %6s %9s %11s %9s %9s %6s %6s %9s\n",
                "scenario", "workers", "jobs", "wall_s", "jobs/s",
                "compiled", "executed", "hits", "joins", "runtimes");
    for (Scenario* scenario : {&cold, &dup}) {
        for (int workers : {1, 2, 4, 8}) {
            const RunOutcome run = runService(*scenario, workers);
            const double rate =
                static_cast<double>(scenario->batch.size()) /
                run.wall_seconds;
            std::printf(
                "%-8s %-8d %6zu %9.3f %11.1f %9llu %9llu %6llu %6llu "
                "%9llu\n",
                scenario->name.c_str(), workers, scenario->batch.size(),
                run.wall_seconds, rate,
                static_cast<unsigned long long>(run.stats.compiled),
                static_cast<unsigned long long>(run.stats.executed),
                static_cast<unsigned long long>(run.stats.run_cache.hits),
                static_cast<unsigned long long>(
                    run.stats.run_cache.inflight_joins),
                static_cast<unsigned long long>(
                    run.stats.runtimes_created));
            csv.writeRow(scenario->name, workers, scenario->batch.size(),
                         scenario->distinct, run.wall_seconds, rate,
                         run.stats.compiled, run.stats.executed,
                         run.stats.run_cache.hits,
                         run.stats.run_cache.inflight_joins,
                         run.stats.runtimes_created);
        }
    }
    std::printf("[bench] wrote results/service_execute.csv\n");
    return 0;
}
