/// \file
/// Figure 6: end-to-end compilation time, CHEHAB RL vs Coyote. The paper
/// reports a 27.9x geometric-mean compile-time advantage for CHEHAB RL
/// (the RL policy replaces Coyote's combinatorial search), with small
/// kernels as the exception where Coyote's tiny search space wins.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_CompileRl(benchmark::State& state)
{
    auto& h = harness();
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::dotProduct(static_cast<int>(state.range(0)));
    h.agent(); // Train outside the timed region.
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.compileRL(kernel));
    }
}
BENCHMARK(BM_CompileRl)->Arg(8)->Iterations(1);

void
BM_CompileCoyote(benchmark::State& state)
{
    auto& h = harness();
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::dotProduct(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.compileCoyote(kernel));
    }
}
BENCHMARK(BM_CompileCoyote)->Arg(8)->Iterations(1);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    const std::vector<Row> rl = h.suiteRows("CHEHAB RL");
    const std::vector<Row> coyote = h.suiteRows("Coyote");
    Harness::printComparison("Fig. 6 — compilation time (s)", rl, coyote);

    std::vector<Row> all = rl;
    all.insert(all.end(), coyote.begin(), coyote.end());
    Harness::writeCsv("fig6_compile_time.csv", all);

    const double ratio = Harness::geomeanRatio(coyote, rl, &Row::compile_s);
    std::printf("\nCHEHAB RL vs Coyote compile-time geomean ratio: %.2fx "
                "faster (paper: 27.9x; note the paper's Coyote runs an "
                "ILP solver for minutes per kernel, while CoyoteSim's "
                "search budget is laptop-sized)\n",
                ratio);

    // Crossover check: the paper notes Coyote compiles faster on the
    // smallest kernels (Tree 50-50-5, Linear Reg 4).
    for (const Row& r : rl) {
        for (const Row& c : coyote) {
            if (c.kernel == r.kernel && c.compile_s < r.compile_s) {
                std::printf("crossover: Coyote compiles %s faster "
                            "(%.4fs vs %.4fs)\n",
                            r.kernel.c_str(), c.compile_s, r.compile_s);
            }
        }
    }
    return 0;
}
