/// \file
/// Figure 5: execution time of the generated circuits, CHEHAB RL vs
/// Coyote across the full benchmark suite. The paper reports a 5.3x
/// geometric-mean speedup for CHEHAB RL; this harness regenerates the
/// per-kernel series and the geomean on the SealLite backend.
#include <benchmark/benchmark.h>

#include "common.h"
#include "ir/parser.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

/// Micro-benchmark: executing one RL-compiled dot product circuit.
void
BM_ExecRlDotProduct(benchmark::State& state)
{
    auto& h = harness();
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::dotProduct(static_cast<int>(state.range(0)));
    const chehab::compiler::Compiled compiled = h.compileRL(kernel);
    chehab::compiler::FheRuntime runtime;
    const chehab::ir::Env env =
        chehab::benchcommon::randomEnv(kernel.program, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runtime.run(compiled.program, env));
    }
}
BENCHMARK(BM_ExecRlDotProduct)->Arg(4)->Arg(8)->Iterations(1);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    const std::vector<Row> rl = h.suiteRows("CHEHAB RL");
    const std::vector<Row> coyote = h.suiteRows("Coyote");
    Harness::printComparison("Fig. 5 — execution time (s)", rl, coyote);

    std::vector<Row> all = rl;
    all.insert(all.end(), coyote.begin(), coyote.end());
    Harness::writeCsv("fig5_exec_time.csv", all);

    // geomean over kernels of (Coyote time / CHEHAB RL time).
    const double speedup = Harness::geomeanRatio(coyote, rl, &Row::exec_s);
    std::printf("\nCHEHAB RL vs Coyote execution-time geomean speedup: "
                "%.2fx (paper: 5.3x)\n", speedup);
    return 0;
}
