/// \file
/// Table 1: reward-weight sensitivity. Agents are trained with cost
/// weights (w_ops, w_depth, w_mult) in {(1,1,1), (1,50,50), (1,100,100),
/// (1,150,150)} and compared on execution time and consumed noise. The
/// paper finds (1,1,1) fastest while heavier depth weights shave a few
/// percent of noise.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_CostEvaluation(benchmark::State& state)
{
    // Cost-model evaluation speed (the reward's inner loop).
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::matMul(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(chehab::ir::cost(kernel.program));
    }
}
BENCHMARK(BM_CostEvaluation);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    // A representative sub-suite keeps 4 trainings affordable.
    std::vector<chehab::benchsuite::Kernel> kernels = {
        chehab::benchsuite::dotProduct(8),
        chehab::benchsuite::l2Distance(8),
        chehab::benchsuite::hammingDistance(8),
        chehab::benchsuite::polyReg(8),
        chehab::benchsuite::matMul(3),
    };

    struct WeightConfig
    {
        const char* label;
        chehab::ir::CostWeights weights;
    };
    const WeightConfig configs[] = {
        {"(1,1,1)", {1.0, 1.0, 1.0}},
        {"(1,50,50)", {1.0, 50.0, 50.0}},
        {"(1,100,100)", {1.0, 100.0, 100.0}},
        {"(1,150,150)", {1.0, 150.0, 150.0}},
    };

    std::vector<std::vector<Row>> per_config;
    for (const WeightConfig& config : configs) {
        chehab::rl::AgentConfig agent_config = h.agentConfig();
        // Pure-policy comparison: no cost-guided seed.
        agent_config.use_greedy_seed = false;
        agent_config.env.weights = config.weights;
        agent_config.ppo.total_timesteps =
            std::max(512, h.budget().train_steps / 2);
        chehab::rl::RlAgent agent(h.ruleset(), agent_config);
        std::fprintf(stderr, "[bench] training agent with weights %s...\n",
                     config.label);
        agent.train(h.motifDataset(256));

        std::vector<Row> rows;
        for (const auto& kernel : kernels) {
            const chehab::compiler::Compiled compiled =
                h.compileRL(agent, kernel);
            Row row = h.evaluate(kernel, config.label, compiled);
            rows.push_back(std::move(row));
        }
        per_config.push_back(std::move(rows));
    }

    std::printf("\n=== Table 1 — reward-weight sensitivity ===\n");
    std::printf("%-14s %14s %14s\n", "weights", "exec vs (1,1,1)",
                "noise vs (1,1,1)");
    for (std::size_t c = 0; c < per_config.size(); ++c) {
        const double exec_ratio = Harness::geomeanRatio(
            per_config[c], per_config[0], &Row::exec_s);
        double noise_log = 0.0;
        int noise_count = 0;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            const int base = per_config[0][i].consumed_noise;
            const int self = per_config[c][i].consumed_noise;
            if (base > 0 && self > 0) {
                noise_log += std::log(static_cast<double>(self) / base);
                ++noise_count;
            }
        }
        const double noise_ratio =
            noise_count ? std::exp(noise_log / noise_count) : 1.0;
        std::printf("%-14s %13.3fx %13.3fx\n", configs[c].label, exec_ratio,
                    noise_ratio);
    }
    std::printf("(paper: (1,50..150) variants run 1.40-1.49x slower and "
                "consume 0.91-0.94x the noise of (1,1,1))\n");

    std::vector<Row> all;
    for (auto& rows : per_config) {
        all.insert(all.end(), rows.begin(), rows.end());
    }
    Harness::writeCsv("table1_weights.csv", all);
    return 0;
}
